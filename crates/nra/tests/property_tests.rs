//! Property-based tests for the NRA substrate: whatever the inputs, the
//! algorithm's answer must agree with exhaustive aggregation.

use copydet_nra::{NoRandomAccess, SortedList};
use proptest::prelude::*;
use std::collections::HashMap;

fn lists_strategy() -> impl Strategy<Value = Vec<Vec<(u16, f64)>>> {
    prop::collection::vec(prop::collection::vec((0u16..40, 0.0f64..10.0), 0..30), 1..6)
}

/// Deduplicate keys within one list (an object appears at most once per
/// list in the NRA model), keeping the larger score.
fn dedup(list: Vec<(u16, f64)>) -> Vec<(u16, f64)> {
    let mut best: HashMap<u16, f64> = HashMap::new();
    for (k, s) in list {
        let e = best.entry(k).or_insert(s);
        if s > *e {
            *e = s;
        }
    }
    best.into_iter().collect()
}

proptest! {
    /// The top-k keys returned by NRA have the k largest exact aggregate
    /// scores (ties allowed), and the reported lower bounds never exceed the
    /// exact scores.
    #[test]
    fn nra_matches_exhaustive(raw_lists in lists_strategy(), k in 1usize..8) {
        let lists: Vec<SortedList<u16>> = raw_lists
            .into_iter()
            .map(|l| SortedList::from_pairs(dedup(l)))
            .collect();
        let nra = NoRandomAccess::new(lists);
        let exact = nra.exact_scores();
        let out = nra.top_k(k);

        // Reported lower bounds are never above the exact aggregate.
        for r in &out.top_k {
            let exact_score = exact.get(&r.key).copied().unwrap_or(0.0);
            prop_assert!(r.lower <= exact_score + 1e-9);
            prop_assert!(r.upper + 1e-9 >= exact_score);
        }

        // When converged (or lists exhausted), the returned set must contain
        // keys whose exact scores are at least as large as every excluded
        // key's exact score, up to ties.
        let mut exact_sorted: Vec<(u16, f64)> = exact.iter().map(|(&k, &s)| (k, s)).collect();
        exact_sorted.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let expected_k = k.min(exact_sorted.len());
        prop_assert_eq!(out.top_k.len(), expected_k);
        if expected_k > 0 {
            let threshold = exact_sorted[expected_k - 1].1;
            for r in &out.top_k {
                let score = exact[&r.key];
                prop_assert!(
                    score + 1e-9 >= threshold,
                    "returned key {} with exact score {score} below k-th best {threshold}",
                    r.key
                );
            }
        }
    }

    /// `top_k` is deterministic: two runs over the same lists return
    /// *identical* `top_k` vectors — same keys in the same order, same
    /// bounds — even when many objects tie on score. The score strategy
    /// quantizes to tenths so equal-score ties are common: with the old
    /// `HashMap` bound tracking, tie order leaked hash-iteration order.
    #[test]
    fn top_k_is_deterministic_across_runs(
        raw_lists in prop::collection::vec(
            prop::collection::vec((0u16..20, 0u8..5), 0..30),
            1..6,
        ),
        k in 1usize..10,
    ) {
        let lists: Vec<SortedList<u16>> = raw_lists
            .into_iter()
            .map(|l| {
                let scored: Vec<(u16, f64)> =
                    l.into_iter().map(|(key, s)| (key, f64::from(s) / 10.0)).collect();
                SortedList::from_pairs(dedup(scored))
            })
            .collect();
        let first = NoRandomAccess::new(lists.clone()).top_k(k);
        let second = NoRandomAccess::new(lists).top_k(k);
        prop_assert_eq!(&first, &second, "two runs over identical lists diverged");
        // Equal lower bounds within one run are ordered by key — the
        // deterministic tie-break the bit-stable serving path relies on.
        for pair in first.top_k.windows(2) {
            if pair[0].lower == pair[1].lower {
                prop_assert!(pair[0].key < pair[1].key, "ties must be ordered by key");
            }
        }
    }

    /// With k equal to the number of distinct objects, NRA returns every
    /// object, and each object's exact score is sandwiched between the
    /// reported lower and upper bounds. (The bounds need not be tight — NRA
    /// may stop before exhausting the lists once the answer set is certain.)
    #[test]
    fn full_k_returns_every_object_with_valid_bounds(raw_lists in lists_strategy()) {
        let lists: Vec<SortedList<u16>> = raw_lists
            .into_iter()
            .map(|l| SortedList::from_pairs(dedup(l)))
            .collect();
        let nra = NoRandomAccess::new(lists);
        let exact = nra.exact_scores();
        let out = nra.top_k(exact.len().max(1));
        prop_assert_eq!(out.top_k.len(), exact.len());
        let returned: std::collections::HashSet<u16> = out.top_k.iter().map(|r| r.key).collect();
        prop_assert_eq!(returned.len(), exact.len());
        for r in &out.top_k {
            let score = exact[&r.key];
            prop_assert!(r.lower <= score + 1e-9);
            prop_assert!(r.upper + 1e-9 >= score);
        }
    }
}
