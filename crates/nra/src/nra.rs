//! The NRA (No Random Access) top-k algorithm over sorted lists.

use crate::list::SortedList;
use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// One object in the top-k answer, with the bounds NRA had established when
/// it stopped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NraResult<K> {
    /// The object.
    pub key: K,
    /// Lower bound on the object's aggregate score (sum of the local scores
    /// actually read).
    pub lower: f64,
    /// Upper bound on the aggregate score at stopping time.
    pub upper: f64,
}

/// Outcome of an NRA run.
#[derive(Debug, Clone, PartialEq)]
pub struct NraOutcome<K> {
    /// The top-k objects by lower-bound score, best first. Guaranteed to be a
    /// correct top-k set when `converged` is `true`.
    pub top_k: Vec<NraResult<K>>,
    /// Whether the stopping condition was met before the lists were
    /// exhausted. When the lists run out, the bounds are exact and `top_k`
    /// is the exact answer as well.
    pub converged: bool,
    /// How many depths were read from every list (sequential accesses per
    /// list).
    pub depth_reached: usize,
    /// Total number of `(object, score)` entries read across all lists.
    pub entries_read: usize,
}

/// Fagin's NRA algorithm for monotone-sum aggregation over sorted lists with
/// only sequential access.
#[derive(Debug, Clone)]
pub struct NoRandomAccess<K> {
    lists: Vec<SortedList<K>>,
}

impl<K: Copy + Eq + Hash + Ord> NoRandomAccess<K> {
    /// Creates an NRA instance over the given lists.
    pub fn new(lists: Vec<SortedList<K>>) -> Self {
        Self { lists }
    }

    /// Number of input lists.
    pub fn num_lists(&self) -> usize {
        self.lists.len()
    }

    /// Runs NRA and returns the top-k objects by aggregate (summed) score.
    ///
    /// The algorithm performs round-robin sequential reads: at depth `d` it
    /// reads the `d`-th entry of every list, updates each seen object's lower
    /// bound (scores actually read) and recomputes upper bounds (lower bound
    /// plus the frontier of every list the object has not been seen in), and
    /// stops when the k-th largest lower bound is at least the upper bound of
    /// every object outside the current top-k (including the "unseen object"
    /// whose upper bound is the sum of all frontiers).
    pub fn top_k(&self, k: usize) -> NraOutcome<K> {
        if k == 0 {
            return NraOutcome {
                top_k: Vec::new(),
                converged: true,
                depth_reached: 0,
                entries_read: 0,
            };
        }
        let m = self.lists.len();
        let max_depth = self.lists.iter().map(SortedList::len).max().unwrap_or(0);
        // For each object: (lower bound, bitset of lists seen in). A
        // `BTreeMap` (not a `HashMap`) so every iteration below — bound
        // scans, tie-breaking, result assembly — walks objects in key order:
        // the output is structurally deterministic, not just deterministic
        // because a final sort happens to break ties.
        let mut seen: BTreeMap<K, (f64, Vec<bool>)> = BTreeMap::new();
        let mut entries_read = 0;
        let mut depth = 0;

        while depth < max_depth {
            for (li, list) in self.lists.iter().enumerate() {
                if let Some(entry) = list.at_depth(depth) {
                    entries_read += 1;
                    let slot = seen.entry(entry.key).or_insert_with(|| (0.0, vec![false; m]));
                    slot.0 += entry.score;
                    slot.1[li] = true;
                }
            }
            depth += 1;

            if self.stopping_condition_met(k, depth, &seen) {
                return NraOutcome {
                    top_k: self.current_top_k(k, depth, &seen),
                    converged: true,
                    depth_reached: depth,
                    entries_read,
                };
            }
        }

        NraOutcome {
            top_k: self.current_top_k(k, depth, &seen),
            converged: false,
            depth_reached: depth,
            entries_read,
        }
    }

    /// Exact aggregate scores of every object, by exhausting all lists.
    /// Provided as a reference implementation and for verifying NRA outputs.
    pub fn exact_scores(&self) -> HashMap<K, f64> {
        let mut totals = HashMap::new();
        for list in &self.lists {
            for e in list.entries() {
                *totals.entry(e.key).or_insert(0.0) += e.score;
            }
        }
        totals
    }

    fn frontiers(&self, depth: usize) -> Vec<f64> {
        self.lists.iter().map(|l| l.frontier(depth)).collect()
    }

    fn upper_bound(&self, lower: f64, seen_in: &[bool], frontiers: &[f64]) -> f64 {
        let mut upper = lower;
        for (li, &seen) in seen_in.iter().enumerate() {
            if !seen {
                upper += frontiers[li];
            }
        }
        upper
    }

    fn stopping_condition_met(
        &self,
        k: usize,
        depth: usize,
        seen: &BTreeMap<K, (f64, Vec<bool>)>,
    ) -> bool {
        if seen.len() < k {
            return false;
        }
        let frontiers = self.frontiers(depth);
        let unseen_upper: f64 = frontiers.iter().sum();
        // k-th largest lower bound
        let mut lowers: Vec<f64> = seen.values().map(|(l, _)| *l).collect();
        lowers.sort_by(|a, b| b.partial_cmp(a).expect("scores are never NaN"));
        let kth_lower = lowers[k - 1];
        if kth_lower < unseen_upper {
            return false;
        }
        // Determine the current top-k keys, then require every other seen
        // object's upper bound to be at most the k-th lower bound.
        let top = self.current_top_k(k, depth, seen);
        let top_keys: std::collections::HashSet<K> = top.iter().map(|r| r.key).collect();
        for (key, (lower, seen_in)) in seen {
            if top_keys.contains(key) {
                continue;
            }
            if self.upper_bound(*lower, seen_in, &frontiers) > kth_lower {
                return false;
            }
        }
        true
    }

    fn current_top_k(
        &self,
        k: usize,
        depth: usize,
        seen: &BTreeMap<K, (f64, Vec<bool>)>,
    ) -> Vec<NraResult<K>> {
        let frontiers = self.frontiers(depth);
        let mut results: Vec<NraResult<K>> = seen
            .iter()
            .map(|(&key, (lower, seen_in))| NraResult {
                key,
                lower: *lower,
                upper: self.upper_bound(*lower, seen_in, &frontiers),
            })
            .collect();
        results.sort_by(|a, b| {
            b.lower
                .partial_cmp(&a.lower)
                .expect("scores are never NaN")
                .then_with(|| a.key.cmp(&b.key))
        });
        results.truncate(k);
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_lists() -> NoRandomAccess<u32> {
        // Object aggregate scores: 1 → 3.0, 2 → 2.6, 3 → 1.2, 4 → 0.4
        let l1 = SortedList::from_pairs([(1u32, 1.5), (2, 1.0), (3, 0.4)]);
        let l2 = SortedList::from_pairs([(2u32, 1.6), (1, 1.5), (4, 0.4)]);
        let l3 = SortedList::from_pairs([(3u32, 0.8)]);
        NoRandomAccess::new(vec![l1, l2, l3])
    }

    #[test]
    fn top_1_is_best_aggregate() {
        let nra = three_lists();
        let out = nra.top_k(1);
        assert_eq!(out.top_k[0].key, 1);
        assert!(out.top_k[0].lower <= 3.0 + 1e-12);
        assert_eq!(nra.num_lists(), 3);
    }

    #[test]
    fn top_2_matches_exact_ranking() {
        let nra = three_lists();
        let out = nra.top_k(2);
        let keys: Vec<u32> = out.top_k.iter().map(|r| r.key).collect();
        assert_eq!(keys, vec![1, 2]);
    }

    #[test]
    fn exhausting_lists_gives_exact_scores() {
        let nra = three_lists();
        let out = nra.top_k(4);
        let exact = nra.exact_scores();
        for r in &out.top_k {
            assert!((r.lower - exact[&r.key]).abs() < 1e-12);
        }
        assert_eq!(out.top_k.len(), 4);
    }

    #[test]
    fn k_zero_and_empty_lists() {
        let nra = three_lists();
        assert!(nra.top_k(0).top_k.is_empty());
        let empty: NoRandomAccess<u32> = NoRandomAccess::new(vec![]);
        let out = empty.top_k(3);
        assert!(out.top_k.is_empty());
        assert!(!out.converged);
    }

    #[test]
    fn early_stop_reads_fewer_entries_than_exhaustion() {
        // A clear winner at the top of both lists lets NRA stop early.
        let l1 = SortedList::from_pairs((0..100u32).map(|i| (i, if i == 0 { 50.0 } else { 0.01 })));
        let l2 = SortedList::from_pairs((0..100u32).map(|i| (i, if i == 0 { 50.0 } else { 0.01 })));
        let nra = NoRandomAccess::new(vec![l1, l2]);
        let out = nra.top_k(1);
        assert!(out.converged);
        assert_eq!(out.top_k[0].key, 0);
        assert!(out.entries_read < 200, "read {} entries", out.entries_read);
    }

    #[test]
    fn upper_bounds_dominate_lower_bounds() {
        let nra = three_lists();
        let out = nra.top_k(3);
        for r in &out.top_k {
            assert!(r.upper + 1e-12 >= r.lower);
        }
    }
}
