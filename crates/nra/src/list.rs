//! Sorted input lists for the NRA algorithm.

/// One `(object, local score)` pair inside a sorted list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredEntry<K> {
    /// The object the score belongs to.
    pub key: K,
    /// The local score contributed by this list.
    pub score: f64,
}

/// A list of objects sorted by decreasing local score, readable only from the
/// top (sequential access), as required by the NRA model.
#[derive(Debug, Clone, Default)]
pub struct SortedList<K> {
    entries: Vec<ScoredEntry<K>>,
}

impl<K: Copy + Eq + std::hash::Hash> SortedList<K> {
    /// Creates a list from arbitrary `(key, score)` pairs, sorting them by
    /// decreasing score.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (K, f64)>) -> Self {
        let mut entries: Vec<ScoredEntry<K>> =
            pairs.into_iter().map(|(key, score)| ScoredEntry { key, score }).collect();
        entries.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("scores are never NaN"));
        Self { entries }
    }

    /// Creates a list from pairs that are already sorted by decreasing score.
    ///
    /// # Panics
    /// Panics if the pairs are not sorted.
    pub fn from_sorted(pairs: Vec<(K, f64)>) -> Self {
        assert!(
            pairs.windows(2).all(|w| w[0].1 >= w[1].1),
            "input must be sorted by decreasing score"
        );
        Self { entries: pairs.into_iter().map(|(key, score)| ScoredEntry { key, score }).collect() }
    }

    /// Number of entries in the list.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the list has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry at depth `d` (0-based), if the list is that deep.
    pub fn at_depth(&self, d: usize) -> Option<&ScoredEntry<K>> {
        self.entries.get(d)
    }

    /// The local score at depth `d`; below the bottom of the list the
    /// frontier score is 0 (an object absent from a list contributes
    /// nothing).
    pub fn frontier(&self, d: usize) -> f64 {
        self.entries.get(d).map(|e| e.score).unwrap_or(0.0)
    }

    /// All entries, best first.
    pub fn entries(&self) -> &[ScoredEntry<K>] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_sorts() {
        let list = SortedList::from_pairs([(1u32, 0.5), (2, 2.0), (3, 1.0)]);
        let keys: Vec<u32> = list.entries().iter().map(|e| e.key).collect();
        assert_eq!(keys, vec![2, 3, 1]);
        assert_eq!(list.len(), 3);
        assert!(!list.is_empty());
    }

    #[test]
    fn frontier_below_bottom_is_zero() {
        let list = SortedList::from_pairs([(1u32, 0.5)]);
        assert_eq!(list.frontier(0), 0.5);
        assert_eq!(list.frontier(1), 0.0);
        assert_eq!(list.frontier(100), 0.0);
        assert!(list.at_depth(1).is_none());
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn from_sorted_validates() {
        let _ = SortedList::from_sorted(vec![(1u32, 0.5), (2, 2.0)]);
    }
}
