//! # copydet-nra
//!
//! Fagin's **No-Random-Access (NRA)** top-k aggregation algorithm
//! (Fagin, Lotem, Naor, PODS 2001), the alternative the paper considers —
//! and rejects — for scalable copy detection (Section II-B, Table X).
//!
//! NRA answers top-k queries over `m` sorted lists: every object appears in
//! some of the lists with a local score, the lists are sorted by decreasing
//! local score, the overall score of an object is a monotone aggregate (here:
//! the sum) of its local scores, and the algorithm may only read the lists
//! sequentially from the top (no random access). NRA maintains, for every
//! object seen so far, a lower bound (sum of the scores actually seen) and an
//! upper bound (seen scores plus the current list frontiers for the unseen
//! lists) and stops when the k-th best lower bound is at least every other
//! object's upper bound.
//!
//! In the paper's setting the "objects" are source pairs, each value-entry
//! produces one list of per-pair contribution scores, and an extra list holds
//! the accumulated negative scores from items with different values. The
//! expensive part is *building* those lists — which already requires the same
//! work as scoring every shared value — which is why the paper only measures
//! `FAGININPUT`, the list-generation step, and shows its own algorithms beat
//! even that. We implement the full algorithm so the comparison in Table X
//! can be reproduced and sanity-checked end to end.

#![forbid(unsafe_code)]
#![deny(unused_must_use)]
#![warn(missing_docs)]

mod list;
mod nra;

pub use list::{ScoredEntry, SortedList};
pub use nra::{NoRandomAccess, NraOutcome, NraResult};
