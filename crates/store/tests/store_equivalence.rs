//! Store/batch equivalence: any interleaving of ingest + seal + compact
//! must yield a snapshot whose `Dataset`, inverted index, and HYBRID copy
//! decisions are identical to building the same claim sequence in one
//! `DatasetBuilder` pass.

use copydet_bayes::{CopyParams, SourceAccuracies, ValueProbabilities};
use copydet_detect::{CopyDetector, HybridDetector, RoundInput};
use copydet_index::{InvertedIndex, SharedItemCounts};
use copydet_model::{Dataset, DatasetBuilder};
use copydet_store::{ClaimStore, StoreConfig};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// After each claim, the interleaving may seal (op 1), seal + compact
/// (op 2), snapshot (op 3), or do nothing (op 0).
fn workload_strategy() -> impl Strategy<Value = Vec<(u8, u8, u8, u8)>> {
    prop::collection::vec((0u8..10, 0u8..12, 0u8..5, 0u8..=3), 0..90)
}

fn batch_dataset(claims: &[(u8, u8, u8, u8)]) -> Dataset {
    let mut b = DatasetBuilder::new();
    for (s, d, v, _) in claims {
        b.add_claim(&format!("S{s}"), &format!("D{d}"), &format!("v{v}"));
    }
    b.build()
}

fn streamed_store(claims: &[(u8, u8, u8, u8)]) -> ClaimStore {
    let mut store = ClaimStore::new();
    for (s, d, v, op) in claims {
        store.ingest(&format!("S{s}"), &format!("D{d}"), &format!("v{v}"));
        match op {
            1 => store.seal(),
            2 => {
                store.seal();
                store.compact();
            }
            3 => {
                let _ = store.snapshot();
            }
            _ => {}
        }
    }
    store
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The snapshot dataset is indistinguishable from a one-pass build.
    #[test]
    fn snapshot_dataset_equals_batch_build(claims in workload_strategy()) {
        let batch = batch_dataset(&claims);
        let mut store = streamed_store(&claims);
        let snap = store.snapshot();
        prop_assert_eq!(&snap.dataset, &batch);
        prop_assert_eq!(store.num_claims(), batch.num_claims());
    }

    /// The incrementally-maintained shared-item counts and the store-built
    /// index match a cold build over the batch dataset.
    #[test]
    fn snapshot_index_equals_batch_index(claims in workload_strategy()) {
        let batch = batch_dataset(&claims);
        let mut store = streamed_store(&claims);
        let snap = store.snapshot();

        let cold_counts = SharedItemCounts::build(&batch);
        for (pair, n) in cold_counts.iter_nonzero() {
            prop_assert_eq!(store.shared_item_counts().get(pair), n);
        }
        prop_assert_eq!(
            store.shared_item_counts().num_sharing_pairs(),
            cold_counts.num_sharing_pairs()
        );

        let params = CopyParams::paper_defaults();
        let accuracies = SourceAccuracies::uniform(batch.num_sources(), 0.8).unwrap();
        let probabilities = ValueProbabilities::uniform_over_dataset(&batch, 0.35).unwrap();
        let warm = store.build_index(&snap, &accuracies, &probabilities, &params);
        let cold = InvertedIndex::build(&batch, &accuracies, &probabilities, &params);
        prop_assert_eq!(warm.entries(), cold.entries());
        prop_assert_eq!(warm.ebar_start(), cold.ebar_start());
    }

    /// HYBRID decides the same copying pairs on the snapshot as on the
    /// batch-built dataset.
    #[test]
    fn hybrid_decisions_agree(claims in workload_strategy()) {
        let batch = batch_dataset(&claims);
        let mut store = streamed_store(&claims);
        let snap = store.snapshot();
        if batch.num_claims() == 0 {
            return Ok(());
        }

        let params = CopyParams::paper_defaults();
        let accuracies = SourceAccuracies::uniform(batch.num_sources(), 0.8).unwrap();
        let probabilities = copydet_fusion::value_probabilities(
            &batch,
            &accuracies,
            None,
            &copydet_fusion::VoteConfig::new(params),
        );
        let mut hybrid = HybridDetector::new();
        let on_batch = hybrid.detect_round(
            &RoundInput::new(&batch, &accuracies, &probabilities, params),
            1,
        );
        let on_snapshot = hybrid.detect_round(
            &RoundInput::new(&snap.dataset, &accuracies, &probabilities, params),
            1,
        );
        let batch_pairs: BTreeSet<_> = on_batch.copying_pairs().collect();
        let snapshot_pairs: BTreeSet<_> = on_snapshot.copying_pairs().collect();
        prop_assert_eq!(batch_pairs, snapshot_pairs);
        prop_assert_eq!(on_batch.pairs_considered, on_snapshot.pairs_considered);
        prop_assert_eq!(on_batch.counter.score_updates, on_snapshot.counter.score_updates);
    }

    /// Auto-sealing/compaction configurations do not change the snapshot.
    #[test]
    fn auto_segmentation_is_transparent(claims in workload_strategy()) {
        let batch = batch_dataset(&claims);
        let mut store = ClaimStore::with_config(StoreConfig {
            seal_threshold: Some(7),
            max_sealed_segments: Some(2),
            ..StoreConfig::default()
        });
        for (s, d, v, _) in &claims {
            store.ingest(&format!("S{s}"), &format!("D{d}"), &format!("v{v}"));
        }
        let snap = store.snapshot();
        prop_assert_eq!(&snap.dataset, &batch);
    }

    /// A snapshot held across later ingest/seal/compact/snapshot stays
    /// bit-identical to the one-pass build over its prefix: the zero-copy
    /// aliasing of sealed segments and shared tables must never leak a later
    /// mutation into a handed-out snapshot.
    #[test]
    fn held_snapshot_survives_later_mutation(claims in workload_strategy()) {
        if claims.len() < 2 {
            return Ok(());
        }
        let (first, rest) = claims.split_at(claims.len() / 2);
        let mut store = streamed_store(first);
        let held = store.snapshot();
        // Keep mutating: ingest, seal, compact, snapshot — per the op stream,
        // then force a final seal + full compaction.
        for (s, d, v, op) in rest {
            store.ingest(&format!("S{s}"), &format!("D{d}"), &format!("v{v}"));
            match op {
                1 => store.seal(),
                2 => {
                    store.seal();
                    store.compact();
                }
                3 => {
                    let _ = store.snapshot();
                }
                _ => {}
            }
        }
        store.seal();
        store.compact();
        let final_snap = store.snapshot();
        // The held snapshot still equals an independent from-scratch build of
        // its own prefix…
        prop_assert_eq!(&held.dataset, &batch_dataset(first));
        // …and the post-compaction snapshot equals the build of everything.
        prop_assert_eq!(&final_snap.dataset, &batch_dataset(&claims));
    }

    /// Every snapshot taken along an arbitrary interleaving, *held until the
    /// end*, equals the one-pass build of its ingest prefix even after all
    /// later mutations and compactions.
    #[test]
    fn every_held_snapshot_stays_prefix_identical(claims in workload_strategy()) {
        let mut store = ClaimStore::new();
        let mut held: Vec<(usize, copydet_store::StoreSnapshot)> = Vec::new();
        for (i, (s, d, v, op)) in claims.iter().enumerate() {
            store.ingest(&format!("S{s}"), &format!("D{d}"), &format!("v{v}"));
            match op {
                1 => store.seal(),
                2 => {
                    store.seal();
                    store.compact();
                }
                3 => held.push((i + 1, store.snapshot())),
                _ => {}
            }
        }
        store.seal();
        store.compact();
        held.push((claims.len(), store.snapshot()));
        for (prefix, snap) in &held {
            prop_assert_eq!(
                &snap.dataset,
                &batch_dataset(&claims[..*prefix]),
                "snapshot over the first {} claims diverged after later mutations",
                prefix
            );
        }
    }

    /// Consecutive snapshots carry a delta equal to the snapshot diff.
    #[test]
    fn tracked_delta_equals_snapshot_diff(claims in workload_strategy()) {
        if claims.len() < 2 {
            return Ok(());
        }
        let (first, rest) = claims.split_at(claims.len() / 2);
        let mut store = streamed_store(first);
        let snap1 = store.snapshot();
        for (s, d, v, _) in rest {
            store.ingest(&format!("S{s}"), &format!("D{d}"), &format!("v{v}"));
        }
        let snap2 = store.snapshot();
        let delta = snap2.delta.as_ref().expect("second snapshot carries a delta");
        let expected = copydet_model::DatasetDelta::between(&snap1.dataset, &snap2.dataset);
        prop_assert_eq!(delta, &expected);
    }
}
