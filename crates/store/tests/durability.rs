//! Durability of the claim store: persistence round-trips (open → ingest →
//! reopen recovers the identical dataset, verified against the same
//! `DatasetBuilder` equivalence machinery as the in-memory store) and
//! corruption resilience (a damaged committed file surfaces as the right
//! typed `StoreIoError`, a torn write-ahead-log tail is dropped cleanly —
//! never a panic, never silent bad data).

mod common;

use common::Scratch;
use copydet_index::SharedItemCounts;
use copydet_model::{Dataset, DatasetBuilder};
use copydet_store::{
    ClaimStore, SharedClaimStore, StoreConfig, StoreIoError, SyncPoint, WritePermit,
};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

const CLAIMS: &[(&str, &str, &str)] = &[
    ("S0", "NJ", "Trenton"),
    ("S1", "NJ", "Trenton"),
    ("S2", "NJ", "Newark"),
    ("S0", "AZ", "Phoenix"),
    ("S1", "AZ", "Tempe"),
    ("S2", "AZ", "Phoenix"),
    ("S0", "NJ", "Newark"), // overwrite
    ("S3", "CA", "Sacramento"),
];

fn builder_dataset(claims: &[(&str, &str, &str)]) -> Dataset {
    let mut b = DatasetBuilder::new();
    for (s, d, v) in claims {
        b.add_claim(s, d, v);
    }
    b.build()
}

/// The single file in the directory with the given extension.
fn file_with_ext(dir: &Path, ext: &str) -> PathBuf {
    let mut matches: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some(ext))
        .collect();
    assert_eq!(matches.len(), 1, "expected exactly one .{ext} file");
    matches.pop().unwrap()
}

fn flip_byte(path: &Path, offset_from_end: usize) {
    let mut bytes = std::fs::read(path).unwrap();
    let idx = bytes.len() - 1 - offset_from_end;
    bytes[idx] ^= 0x20;
    std::fs::write(path, bytes).unwrap();
}

#[test]
fn reopen_recovers_the_identical_dataset() {
    let scratch = Scratch::new("roundtrip");
    {
        let mut store = ClaimStore::open(scratch.path()).unwrap();
        assert!(store.is_durable());
        assert_eq!(store.dir(), Some(scratch.path()));
        for (i, (s, d, v)) in CLAIMS.iter().enumerate() {
            store.ingest(s, d, v);
            if i == 2 {
                store.seal();
            }
            if i == 4 {
                store.seal();
                store.compact();
            }
        }
        store.sync().unwrap();
        assert!(store.stats().durable);
        assert_eq!(store.stats().wal_frames, 3, "claims since the last seal");
    } // dropped without any clean-shutdown step — recovery needs none

    let mut recovered = ClaimStore::recover(scratch.path()).unwrap();
    let snap = recovered.snapshot();
    assert_eq!(snap.dataset, builder_dataset(CLAIMS));
    assert_eq!(recovered.num_claims(), 7);
    assert_eq!(recovered.stats().sealed_segments, 1, "compacted state was recovered as-is");

    // The recovered bookkeeping (providers, shared-item counts) must be the
    // ingest-time one: continue ingesting and compare against a cold build.
    recovered.ingest("S3", "NJ", "Trenton");
    recovered.ingest("S4", "AZ", "Phoenix");
    let snap = recovered.snapshot();
    let mut all: Vec<(&str, &str, &str)> = CLAIMS.to_vec();
    all.extend([("S3", "NJ", "Trenton"), ("S4", "AZ", "Phoenix")]);
    assert_eq!(snap.dataset, builder_dataset(&all));
    let cold = SharedItemCounts::build(&snap.dataset);
    assert_eq!(recovered.shared_item_counts().num_sharing_pairs(), cold.num_sharing_pairs());
    for (pair, n) in cold.iter_nonzero() {
        assert_eq!(recovered.shared_item_counts().get(pair), n, "pair {pair}");
    }
}

#[test]
fn wal_only_and_segments_only_recovery() {
    // Everything in the WAL (no seal ever happened).
    let scratch = Scratch::new("walonly");
    {
        let mut store = ClaimStore::open(scratch.path()).unwrap();
        for (s, d, v) in CLAIMS {
            store.ingest(s, d, v);
        }
    }
    let mut recovered = ClaimStore::open(scratch.path()).unwrap();
    assert_eq!(recovered.snapshot().dataset, builder_dataset(CLAIMS));
    assert_eq!(recovered.stats().sealed_segments, 0);

    // Everything in committed segments (WAL empty after the final seal).
    let scratch = Scratch::new("segonly");
    {
        let mut store = ClaimStore::open(scratch.path()).unwrap();
        for (s, d, v) in CLAIMS {
            store.ingest(s, d, v);
        }
        store.seal();
        assert_eq!(store.stats().wal_frames, 0, "seal resets the log");
    }
    let mut recovered = ClaimStore::open(scratch.path()).unwrap();
    assert_eq!(recovered.snapshot().dataset, builder_dataset(CLAIMS));
    assert_eq!(recovered.stats().sealed_segments, 1);
}

#[test]
fn bare_interning_is_durable() {
    let scratch = Scratch::new("defs");
    {
        let mut store = ClaimStore::open(scratch.path()).unwrap();
        store.source("lonely-source");
        store.item("lonely-item");
        store.value("lonely-value");
        store.ingest("S0", "D0", "x");
    }
    let mut recovered = ClaimStore::open(scratch.path()).unwrap();
    let mut b = DatasetBuilder::new();
    b.source("lonely-source");
    b.item("lonely-item");
    b.value("lonely-value");
    b.add_claim("S0", "D0", "x");
    assert_eq!(recovered.snapshot().dataset, b.build());
    assert_eq!(recovered.num_values(), 2);
}

#[test]
fn recover_requires_existing_state() {
    let scratch = Scratch::new("strict");
    let err = ClaimStore::recover(scratch.path()).unwrap_err();
    assert!(matches!(err, StoreIoError::Io { .. }), "unexpected {err:?}");
    assert!(err.to_string().contains("no durable store state"));

    // open() creates; recover() then succeeds.
    drop(ClaimStore::open(scratch.path()).unwrap());
    assert!(ClaimStore::recover(scratch.path()).is_ok());
}

#[test]
fn truncated_wal_tail_is_dropped_cleanly() {
    let scratch = Scratch::new("torntail");
    {
        let mut store = ClaimStore::open(scratch.path()).unwrap();
        for (s, d, v) in CLAIMS {
            store.ingest(s, d, v);
        }
    }
    let wal = scratch.path().join("wal.log");
    let bytes = std::fs::read(&wal).unwrap();
    std::fs::write(&wal, &bytes[..bytes.len() - 3]).unwrap();

    // The torn final frame (the last ingest) is dropped; everything before
    // it survives, and the log is usable again after recovery.
    let mut recovered = ClaimStore::open(scratch.path()).unwrap();
    assert_eq!(
        recovered.snapshot().dataset,
        builder_dataset(&CLAIMS[..CLAIMS.len() - 1]),
        "recovery keeps exactly the durable prefix"
    );
    recovered.ingest("S9", "NJ", "Trenton");
    drop(recovered);
    let mut reopened = ClaimStore::open(scratch.path()).unwrap();
    let mut expected: Vec<(&str, &str, &str)> = CLAIMS[..CLAIMS.len() - 1].to_vec();
    expected.push(("S9", "NJ", "Trenton"));
    assert_eq!(reopened.snapshot().dataset, builder_dataset(&expected));
}

/// Prepares a directory with both committed files and WAL frames.
fn populated_store(label: &str) -> Scratch {
    let scratch = Scratch::new(label);
    let mut store = ClaimStore::open(scratch.path()).unwrap();
    for (s, d, v) in &CLAIMS[..5] {
        store.ingest(s, d, v);
    }
    store.seal();
    for (s, d, v) in &CLAIMS[5..] {
        store.ingest(s, d, v);
    }
    drop(store);
    scratch
}

#[test]
fn bit_flipped_segment_body_is_corrupt_not_a_panic() {
    let scratch = populated_store("segflip");
    let seg = file_with_ext(scratch.path(), "seg");
    flip_byte(&seg, 6); // inside the claim payload / checksum region
    match ClaimStore::open(scratch.path()) {
        Err(StoreIoError::Corrupt { path, detail }) => {
            assert_eq!(path, seg);
            assert!(detail.contains("checksum"), "unexpected detail: {detail}");
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn bit_flipped_segment_header_is_corrupt() {
    let scratch = populated_store("hdrflip");
    let seg = file_with_ext(scratch.path(), "seg");
    let mut bytes = std::fs::read(&seg).unwrap();
    bytes[0] ^= 0xFF; // magic
    std::fs::write(&seg, bytes).unwrap();
    assert!(matches!(ClaimStore::open(scratch.path()), Err(StoreIoError::Corrupt { .. })));
}

#[test]
fn foreign_version_is_a_version_mismatch() {
    let scratch = populated_store("version");
    let seg = file_with_ext(scratch.path(), "seg");
    let mut bytes = std::fs::read(&seg).unwrap();
    bytes[4..8].copy_from_slice(&7u32.to_le_bytes());
    std::fs::write(&seg, bytes).unwrap();
    match ClaimStore::open(scratch.path()) {
        Err(StoreIoError::VersionMismatch { found, expected, .. }) => {
            assert_eq!(found, 7);
            assert_eq!(expected, 2, "format version 2: delta-table chains");
        }
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
}

#[test]
fn truncated_segment_file_is_truncated_error() {
    let scratch = populated_store("segtrunc");
    let seg = file_with_ext(scratch.path(), "seg");
    let bytes = std::fs::read(&seg).unwrap();
    std::fs::write(&seg, &bytes[..bytes.len() / 2]).unwrap();
    assert!(matches!(ClaimStore::open(scratch.path()), Err(StoreIoError::Truncated { .. })));
}

#[test]
fn bit_flip_in_a_complete_wal_frame_is_corrupt_not_truncation() {
    let scratch = populated_store("walflip");
    let wal = scratch.path().join("wal.log");
    let mut bytes = std::fs::read(&wal).unwrap();
    // Flip inside the *first* frame's payload (offset 8 is the frame header,
    // +6 lands in the record body) while later frames stay intact — this
    // must be corruption, not a silently dropped tail.
    bytes[8 + 6] ^= 0x08;
    std::fs::write(&wal, bytes).unwrap();
    match ClaimStore::open(scratch.path()) {
        Err(StoreIoError::Corrupt { path, .. }) => assert_eq!(path, wal),
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn corrupt_manifest_and_tables_are_detected() {
    let scratch = populated_store("manifest");
    let manifest = scratch.path().join("MANIFEST");
    flip_byte(&manifest, 2);
    assert!(matches!(ClaimStore::open(scratch.path()), Err(StoreIoError::Corrupt { .. })));

    let scratch = populated_store("tables");
    let tables = file_with_ext(scratch.path(), "tbl");
    flip_byte(&tables, 5);
    match ClaimStore::open(scratch.path()) {
        Err(StoreIoError::Corrupt { path, .. }) => assert_eq!(path, tables),
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn a_second_open_of_a_live_store_is_refused() {
    let scratch = Scratch::new("lock");
    let mut store = ClaimStore::open(scratch.path()).unwrap();
    store.ingest("S0", "D0", "x");
    // A concurrent second open would share the WAL and GC the first
    // store's files — the advisory directory lock refuses it.
    let err = ClaimStore::open(scratch.path()).unwrap_err();
    assert!(matches!(err, StoreIoError::Io { .. }), "unexpected {err:?}");
    assert!(err.to_string().contains("already open"), "unexpected message: {err}");
    // Releasing the store (clean or by process death) frees the lock.
    drop(store);
    let mut reopened = ClaimStore::open(scratch.path()).unwrap();
    assert_eq!(reopened.snapshot().dataset, builder_dataset(&[("S0", "D0", "x")]));
}

#[test]
fn a_missing_manifest_never_costs_committed_segment_files() {
    // A crashed *first* commit legitimately leaves a segment file with no
    // manifest (its claims still live in the WAL) — but so does an
    // operator-deleted manifest, where the segment is the only copy. Open
    // must not garbage-collect data files it has no manifest to judge.
    let scratch = populated_store("nomanifest");
    let seg = file_with_ext(scratch.path(), "seg");
    std::fs::remove_file(scratch.path().join("MANIFEST")).unwrap();
    // Without the manifest the name tables are gone, so the WAL's
    // id-based claims no longer resolve: open surfaces the interference
    // as a typed error instead of silently recovering a subset…
    let err = ClaimStore::open(scratch.path()).unwrap_err();
    assert!(matches!(err, StoreIoError::Corrupt { .. }), "unexpected {err:?}");
    // …and the committed segment file is preserved for repair, not
    // garbage-collected as an "orphan".
    assert!(seg.exists(), "an unreferenced segment survives a manifest-less open");
}

#[test]
#[should_panic(expected = "on-disk string limit")]
fn oversized_strings_are_rejected_loudly_not_poisoning_persistence() {
    let scratch = Scratch::new("hugestr");
    let mut store = ClaimStore::open(scratch.path()).unwrap();
    let huge = "x".repeat((1 << 20) + 1);
    store.ingest("S0", "D0", &huge);
}

#[test]
fn clone_is_an_in_memory_fork() {
    let scratch = Scratch::new("clone");
    let mut store = ClaimStore::open(scratch.path()).unwrap();
    store.ingest("S0", "D0", "x");
    let mut fork = store.clone();
    assert!(!fork.is_durable());
    fork.ingest("S1", "D0", "y");
    fork.seal();
    drop(store);
    drop(fork);
    // Only the original's claim is on disk.
    let mut recovered = ClaimStore::open(scratch.path()).unwrap();
    assert_eq!(recovered.snapshot().dataset, builder_dataset(&[("S0", "D0", "x")]));
}

#[test]
fn shared_store_maintenance_doubles_as_flushing() {
    let scratch = Scratch::new("shared");
    let store = SharedClaimStore::open_with_config(scratch.path(), StoreConfig::default()).unwrap();
    store.ingest("S0", "D0", "x");
    store.ingest("S1", "D0", "x");
    assert!(store.maintenance_tick(1000, 1000), "pending WAL frames make the tick act");
    assert!(!store.maintenance_tick(1000, 1000), "flushed: nothing left to do");
    assert!(store.io_error().is_none());
    store.sync().unwrap();
    let stats = store.stats();
    assert!(stats.durable);
    assert_eq!(stats.wal_frames, 2);
    drop(store);
    let recovered = SharedClaimStore::open(scratch.path()).unwrap();
    assert_eq!(recovered.num_claims(), 2);
}

#[test]
fn auto_seal_config_is_durable_and_transparent() {
    let scratch = Scratch::new("autoseal");
    let config = StoreConfig {
        seal_threshold: Some(3),
        max_sealed_segments: Some(2),
        wal_fsync_per_append: true,
    };
    {
        let mut store = ClaimStore::open_with_config(scratch.path(), config).unwrap();
        for (s, d, v) in CLAIMS {
            store.ingest(s, d, v);
        }
        assert!(store.stats().sealed_segments >= 1, "auto-seal fired");
    }
    // Recovery under the same config (auto-sealing a recovered growing
    // segment past the threshold is allowed and committed).
    let mut recovered = ClaimStore::open_with_config(scratch.path(), config).unwrap();
    assert_eq!(recovered.snapshot().dataset, builder_dataset(CLAIMS));
}

/// Counts files with the given extension in a store directory.
fn count_ext(dir: &Path, ext: &str) -> usize {
    std::fs::read_dir(dir)
        .unwrap()
        .flatten()
        .filter(|e| e.path().extension().and_then(|x| x.to_str()) == Some(ext))
        .count()
}

#[test]
fn seals_append_delta_tables_and_compaction_collapses_the_chain() {
    let scratch = Scratch::new("deltachain");
    let mut store = ClaimStore::open(scratch.path()).unwrap();
    // Three seals, each interning new names: the chain grows one delta file
    // per seal instead of rewriting the vocabulary (byte sizes prove it:
    // each link carries only its window's names).
    let mut sizes = Vec::new();
    for batch in 0..3 {
        for i in 0..4 {
            store.ingest(&format!("S{batch}-{i}"), &format!("D{batch}-{i}"), "x");
        }
        store.seal();
        assert_eq!(count_ext(scratch.path(), "tbl"), batch + 1, "one delta link per seal");
        let total: u64 = std::fs::read_dir(scratch.path())
            .unwrap()
            .flatten()
            .filter(|e| e.path().extension().and_then(|x| x.to_str()) == Some("tbl"))
            .map(|e| e.metadata().unwrap().len())
            .sum();
        sizes.push(total);
    }
    // Each seal added roughly the same number of bytes — the chain grows
    // linearly in new names, not quadratically as full rewrites would.
    let first = sizes[0];
    let growth1 = sizes[1] - sizes[0];
    let growth2 = sizes[2] - sizes[1];
    assert!(
        growth1 <= first + 16 && growth2 <= first + 16,
        "delta links stay O(new names): {sizes:?}"
    );

    // A seal that interns nothing new appends no link.
    store.ingest("S0-0", "D0-0", "x");
    store.seal();
    assert_eq!(count_ext(scratch.path(), "tbl"), 3, "no new names, no new link");

    // Recovery concatenates the chain.
    drop(store);
    let mut recovered = ClaimStore::open(scratch.path()).unwrap();
    let mut b = DatasetBuilder::new();
    for batch in 0..3 {
        for i in 0..4 {
            b.add_claim(&format!("S{batch}-{i}"), &format!("D{batch}-{i}"), "x");
        }
    }
    assert_eq!(recovered.snapshot().dataset, b.build());

    // Compaction collapses the chain into a single full tables file and the
    // dataset still recovers identically.
    recovered.compact();
    assert_eq!(count_ext(scratch.path(), "tbl"), 1, "compaction collapses the chain");
    drop(recovered);
    let mut again = ClaimStore::open(scratch.path()).unwrap();
    let mut b = DatasetBuilder::new();
    for batch in 0..3 {
        for i in 0..4 {
            b.add_claim(&format!("S{batch}-{i}"), &format!("D{batch}-{i}"), "x");
        }
    }
    assert_eq!(again.snapshot().dataset, b.build());
}

/// Hook that records every physical I/O event and lets it through.
#[derive(Default)]
struct Recording {
    events: Mutex<Vec<(String, usize)>>,
}

impl SyncPoint for Recording {
    fn permit(&self, tag: &str, len: usize) -> WritePermit {
        self.events.lock().unwrap().push((tag.to_owned(), len));
        WritePermit::Full
    }
}

#[test]
fn dropping_a_store_flushes_unsynced_wal_frames() {
    let scratch = Scratch::new("dropsync");
    let hook = Arc::new(Recording::default());
    {
        let mut store = ClaimStore::open_with_sync_point(
            scratch.path(),
            StoreConfig::default(),
            Arc::clone(&hook) as Arc<dyn SyncPoint>,
        )
        .unwrap();
        for (s, d, v) in &CLAIMS[..3] {
            store.ingest(s, d, v);
        }
        assert!(store.stats().wal_frames == 3);
        // No explicit sync: the frames are appended but not yet fsynced.
    } // drop must fsync them before the handle disappears
    let events = hook.events.lock().unwrap();
    let last = events.last().expect("events were recorded");
    assert_eq!(last.0, "wal:fsync", "drop ends with the final WAL flush, got {events:?}");
    drop(events);

    let mut recovered = ClaimStore::open(scratch.path()).unwrap();
    assert_eq!(recovered.snapshot().dataset, builder_dataset(&CLAIMS[..3]));
}

#[test]
fn dropping_a_shared_store_mid_maintenance_loses_no_acknowledged_frame() {
    let scratch = Scratch::new("droptick");
    let hook = Arc::new(Recording::default());
    let store = ClaimStore::open_with_sync_point(
        scratch.path(),
        StoreConfig::default(),
        Arc::clone(&hook) as Arc<dyn SyncPoint>,
    )
    .unwrap();
    let shared = SharedClaimStore::from_store(store);
    // Writers and a maintenance thread race; the scope ends with frames
    // potentially appended after the last tick's fsync.
    std::thread::scope(|scope| {
        let writer = shared.clone();
        scope.spawn(move || {
            for (s, d, v) in CLAIMS {
                writer.ingest(s, d, v);
            }
        });
        let maintainer = shared.clone();
        scope.spawn(move || {
            for _ in 0..4 {
                maintainer.maintenance_tick(1000, 1000);
                std::thread::yield_now();
            }
        });
    });
    drop(shared); // the last handle: drop must flush whatever the ticks missed
    let mut recovered = ClaimStore::open(scratch.path()).unwrap();
    assert_eq!(
        recovered.snapshot().dataset,
        builder_dataset(CLAIMS),
        "every acknowledged ingest survives an orderly shutdown mid-maintenance"
    );
    // The event stream ends with a WAL fsync (from the drop or the final
    // tick) — never with an unflushed frame append.
    let events = hook.events.lock().unwrap();
    assert_eq!(
        events.iter().rev().find(|(tag, _)| tag.starts_with("wal:")).map(|(t, _)| t.as_str()),
        Some("wal:fsync"),
        "the last WAL event must be a flush: {events:?}"
    );
}

fn workload_strategy() -> impl Strategy<Value = Vec<(u8, u8, u8, u8)>> {
    prop::collection::vec((0u8..8, 0u8..10, 0u8..5, 0u8..=3), 0..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any interleaving of ingest/seal/compact/snapshot against a durable
    /// store — dropped without clean shutdown and reopened, twice — recovers
    /// a snapshot identical to the one-pass `DatasetBuilder` build. This is
    /// the PR-2 equivalence machinery extended across process "restarts".
    #[test]
    fn durable_interleavings_recover_builder_identical(claims in workload_strategy()) {
        let scratch = Scratch::new("prop");
        let split = claims.len() / 2;
        {
            let mut store = ClaimStore::open(scratch.path()).unwrap();
            for (s, d, v, op) in &claims[..split] {
                store.ingest(&format!("S{s}"), &format!("D{d}"), &format!("v{v}"));
                match op {
                    1 => store.seal(),
                    2 => {
                        store.seal();
                        store.compact();
                    }
                    3 => {
                        let _ = store.snapshot();
                    }
                    _ => {}
                }
            }
        }
        // First restart: recover, verify, continue the stream.
        {
            let mut store = ClaimStore::open(scratch.path()).unwrap();
            prop_assert_eq!(&store.snapshot().dataset, &batch_dataset(&claims[..split]));
            for (s, d, v, op) in &claims[split..] {
                store.ingest(&format!("S{s}"), &format!("D{d}"), &format!("v{v}"));
                match op {
                    1 => store.seal(),
                    2 => {
                        store.seal();
                        store.compact();
                    }
                    _ => {}
                }
            }
        }
        // Second restart: the full stream must have survived.
        let mut store = ClaimStore::open(scratch.path()).unwrap();
        let snap = store.snapshot();
        prop_assert_eq!(&snap.dataset, &batch_dataset(&claims));
        let cold = SharedItemCounts::build(&snap.dataset);
        prop_assert_eq!(store.shared_item_counts().num_sharing_pairs(), cold.num_sharing_pairs());
        for (pair, n) in cold.iter_nonzero() {
            prop_assert_eq!(store.shared_item_counts().get(pair), n);
        }
    }
}

fn batch_dataset(claims: &[(u8, u8, u8, u8)]) -> Dataset {
    let mut b = DatasetBuilder::new();
    for (s, d, v, _) in claims {
        b.add_claim(&format!("S{s}"), &format!("D{d}"), &format!("v{v}"));
    }
    b.build()
}

#[test]
fn oversized_manifest_is_a_typed_error_not_a_slurp() {
    let scratch = populated_store("bigmanifest");
    // Grow MANIFEST past its 1 MiB control-file bound: open must refuse it
    // up front (without reading the whole thing) as typed corruption.
    std::fs::write(scratch.path().join("MANIFEST"), vec![0u8; (1 << 20) + 1]).unwrap();
    match ClaimStore::open(scratch.path()) {
        Err(StoreIoError::Corrupt { path, detail }) => {
            assert_eq!(path, scratch.path().join("MANIFEST"));
            assert!(detail.contains("-byte bound"), "unexpected detail: {detail}");
        }
        other => panic!("expected Corrupt for an oversized manifest, got {other:?}"),
    }
}
