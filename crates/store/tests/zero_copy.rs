//! Snapshot-cost regression: `snapshot()` must not copy per-name data.
//!
//! On a synthetic corpus with ~100k distinct strings, zero-copy behaviour is
//! proven structurally — by pointer equality ([`Arc::ptr_eq`]) and reference
//! counts ([`Arc::strong_count`]) on the shared tables — rather than by
//! timing, so the assertions are deterministic in CI. If `snapshot()`
//! regressed to cloning the name tables, the interner or untouched claim
//! lists, these pointer identities would break immediately.

use copydet_bayes::{CopyParams, SourceAccuracies, ValueProbabilities};
use copydet_store::ClaimStore;
use std::sync::Arc;

const SOURCES: usize = 4;
const ITEMS: usize = 25_000;
// Distinct strings: 4 source names + 25k item names + ~4×25k mostly-distinct
// values ≈ 100k.

fn populated_store() -> ClaimStore {
    let mut store = ClaimStore::new();
    for j in 0..ITEMS {
        for s in 0..SOURCES {
            // Source 0 and 1 agree; 2 and 3 provide distinct values, so the
            // vocabulary carries three values per item.
            let value = if s <= 1 { format!("v-{j}-shared") } else { format!("v-{j}-{s}") };
            store.ingest(&format!("S{s}"), &format!("item-{j}"), &value);
        }
    }
    store
}

#[test]
fn snapshot_allocates_no_per_name_copies() {
    let mut store = populated_store();
    assert!(
        store.num_items() + store.num_values() + store.num_sources() >= 100_000,
        "the corpus must carry ~100k distinct strings, got {}",
        store.num_items() + store.num_values() + store.num_sources()
    );
    store.seal();

    let snap1 = store.snapshot();
    // A small delta over *existing* names only: one value flip re-using an
    // interned string. No table may be copied for the next snapshot.
    store.ingest("S2", "item-7", "v-7-shared");
    let snap2 = store.snapshot();

    // The name tables and the value interner of both snapshots are the very
    // same allocations — zero per-name copies across snapshots.
    assert!(Arc::ptr_eq(snap1.dataset.shared_source_names(), snap2.dataset.shared_source_names()));
    assert!(Arc::ptr_eq(snap1.dataset.shared_item_names(), snap2.dataset.shared_item_names()));
    assert!(snap1.dataset.values_interner().ptr_eq(snap2.dataset.values_interner()));

    // Reference counts prove the store and the held snapshots share one
    // table: store + snap1 + snap2 + the store's cached last snapshot all
    // point at the same item-name allocation.
    assert!(
        Arc::strong_count(snap2.dataset.shared_item_names()) >= 4,
        "expected the store and every live snapshot to alias one table, got {}",
        Arc::strong_count(snap2.dataset.shared_item_names())
    );

    // Per-source claim lists: only the touched source was rebuilt.
    let touched = snap2.dataset.source_by_name("S2").unwrap();
    for s in snap2.dataset.sources() {
        let aliased =
            Arc::ptr_eq(snap1.dataset.shared_claims_of(s), snap2.dataset.shared_claims_of(s));
        assert_eq!(aliased, s != touched, "claim list of source {s}");
    }
    // Per-item groups: only the touched item was rebuilt.
    let touched_item = snap2.dataset.item_by_name("item-7").unwrap();
    for d in [0usize, 1, 12_345, 24_999] {
        let d = copydet_model::ItemId::from_index(d);
        let aliased =
            Arc::ptr_eq(snap1.dataset.shared_groups_of(d), snap2.dataset.shared_groups_of(d));
        assert_eq!(aliased, d != touched_item, "groups of item {d}");
    }

    // A no-change snapshot aliases *everything*.
    let snap3 = store.snapshot();
    assert!(Arc::ptr_eq(snap2.dataset.shared_item_names(), snap3.dataset.shared_item_names()));
    for s in snap3.dataset.sources() {
        assert!(Arc::ptr_eq(snap2.dataset.shared_claims_of(s), snap3.dataset.shared_claims_of(s)));
    }

    // Later interning of a *new* name detaches copy-on-write without
    // disturbing the held snapshots.
    store.ingest("brand-new-source", "item-0", "v-0-shared");
    let snap4 = store.snapshot();
    assert!(!Arc::ptr_eq(snap3.dataset.shared_source_names(), snap4.dataset.shared_source_names()));
    assert!(
        Arc::ptr_eq(snap3.dataset.shared_item_names(), snap4.dataset.shared_item_names()),
        "no new item was interned, so the item table still aliases"
    );
    assert_eq!(snap3.dataset.num_sources() + 1, snap4.dataset.num_sources());
}

#[test]
fn build_index_shares_the_counts_table() {
    let mut store = ClaimStore::new();
    for j in 0..50 {
        for s in 0..6 {
            store.ingest(&format!("S{s}"), &format!("D{j}"), &format!("v{}", j % 7));
        }
    }
    let snap = store.snapshot();
    let params = CopyParams::paper_defaults();
    let accuracies = SourceAccuracies::uniform(snap.dataset.num_sources(), 0.8).unwrap();
    let probabilities = ValueProbabilities::uniform_over_dataset(&snap.dataset, 0.3).unwrap();

    let before = Arc::strong_count(store.shared_item_counts_handle());
    let index = store.build_index(&snap, &accuracies, &probabilities, &params);
    assert_eq!(
        Arc::strong_count(store.shared_item_counts_handle()),
        before + 1,
        "the index must alias the store's counts table, not copy it"
    );
    // Ingest after the build detaches the store copy-on-write; the index
    // keeps its frozen counts.
    let frozen: Vec<_> = index.shared_item_counts().iter_nonzero().collect();
    store.ingest("S0", "D-new", "x");
    store.ingest("S1", "D-new", "x");
    let after: Vec<_> = index.shared_item_counts().iter_nonzero().collect();
    assert_eq!(frozen, after, "an index built before later ingest keeps its counts");
    assert_eq!(Arc::strong_count(store.shared_item_counts_handle()), 1, "detached");
}
