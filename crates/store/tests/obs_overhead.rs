//! Instrumentation overhead budget (DESIGN.md §9): the registry primitives
//! the ingest hot path touches must cost under 3% of the ingest operation
//! they instrument.
//!
//! Instrumentation cannot be compiled out, so the budget is bounded from
//! above by measuring the primitive itself (the in-memory ingest path
//! records exactly one counter increment per claim) against the real
//! per-claim ingest cost in the same build. The ratio assertion runs in
//! release only — debug builds skew both sides and CI's release stress step
//! is the enforcement point.

use copydet_obs::{emit, registry, Severity};
use copydet_store::ClaimStore;
use std::time::Instant;

#[test]
fn ingest_instrumentation_is_within_three_percent() {
    const OPS: usize = 100_000;

    // Per-op cost of the primitive ingest records, on the live registry
    // object (shared, contended the same way production is).
    let counter = registry().counter("copydet_overhead_probe_total");
    let instr_start = Instant::now();
    for _ in 0..OPS {
        counter.inc();
    }
    let instr_per_op = instr_start.elapsed().as_secs_f64() / OPS as f64;

    // Per-op cost of the instrumented ingest itself. Names are prebuilt so
    // the measurement covers ingest, not `format!`.
    let items: Vec<String> = (0..OPS).map(|i| format!("D{i}")).collect();
    let mut store = ClaimStore::new();
    let ingest_start = Instant::now();
    for item in &items {
        store.ingest("S0", item, "v");
    }
    let ingest_per_op = ingest_start.elapsed().as_secs_f64() / OPS as f64;

    eprintln!(
        "instrumentation {:.1} ns/op vs ingest {:.1} ns/op ({:.2}%)",
        instr_per_op * 1e9,
        ingest_per_op * 1e9,
        100.0 * instr_per_op / ingest_per_op
    );
    if cfg!(debug_assertions) {
        eprintln!("debug build: ratio not asserted (CI asserts it in the release stress step)");
        return;
    }
    assert!(
        instr_per_op < 0.03 * ingest_per_op,
        "instrumentation primitive ({instr_per_op:.2e}s) must stay under 3% of an ingest op \
         ({ingest_per_op:.2e}s)"
    );
}

/// The flight recorder's default-severity guard: an `emit` below the
/// process log floor (`Debug` under the default `Info`) costs one atomic
/// load, which must stay under 3% of the ingest op it would instrument —
/// the hot paths emit `Debug` records unconditionally and rely on this.
#[test]
fn suppressed_emit_is_within_three_percent() {
    const OPS: usize = 100_000;

    let emit_start = Instant::now();
    for _ in 0..OPS {
        let suppressed = emit(Severity::Debug, "bench", "overhead.probe", Vec::new());
        assert!(suppressed.is_none(), "the default floor is Info");
    }
    let emit_per_op = emit_start.elapsed().as_secs_f64() / OPS as f64;

    let items: Vec<String> = (0..OPS).map(|i| format!("D{i}")).collect();
    let mut store = ClaimStore::new();
    let ingest_start = Instant::now();
    for item in &items {
        store.ingest("S0", item, "v");
    }
    let ingest_per_op = ingest_start.elapsed().as_secs_f64() / OPS as f64;

    eprintln!(
        "suppressed emit {:.1} ns/op vs ingest {:.1} ns/op ({:.2}%)",
        emit_per_op * 1e9,
        ingest_per_op * 1e9,
        100.0 * emit_per_op / ingest_per_op
    );
    if cfg!(debug_assertions) {
        eprintln!("debug build: ratio not asserted (CI asserts it in the release stress step)");
        return;
    }
    assert!(
        emit_per_op < 0.03 * ingest_per_op,
        "a suppressed emit ({emit_per_op:.2e}s) must stay under 3% of an ingest op \
         ({ingest_per_op:.2e}s)"
    );
}
