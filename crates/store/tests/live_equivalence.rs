//! The acceptance test for delta-driven live detection: after ingesting N
//! claims, sealing, and ingesting a small delta, `snapshot()` + delta-driven
//! incremental detection must produce the same copy decisions as a
//! from-scratch HYBRID run on the full claim set — while the recorded
//! `ComputationCounter` shows strictly fewer pair recomputations.

use copydet_detect::{pairwise_detection, CopyDetector, HybridDetector, RoundInput};
use copydet_store::{ClaimStore, LiveDetector};
use std::collections::BTreeSet;

#[test]
fn delta_round_matches_from_scratch_hybrid_with_fewer_computations() {
    // N initial claims from the Book-CS-shaped preset.
    let synth = copydet_synth::presets::book_cs(0.2, 20260728);
    let mut store = ClaimStore::new();
    for c in synth.dataset.claim_refs() {
        store.ingest(c.source, c.item, c.value);
    }
    let mut live = LiveDetector::new();
    let snap1 = store.snapshot();
    let n = snap1.dataset.num_claims();
    assert!(n > 1000, "workload should be non-trivial, got {n} claims");
    let warmup = live.observe(&snap1);
    store.seal();

    // A small delta: a brand-new source copying part of an existing
    // mid-coverage source, a handful of changed values on mid-coverage
    // sources, and one brand-new item.
    let donor = snap1
        .dataset
        .sources()
        .filter(|&s| snap1.dataset.coverage(s) >= 30)
        .min_by_key(|&s| snap1.dataset.coverage(s))
        .expect("a source with ≥30 claims exists");
    let donor_claims: Vec<(String, String)> = snap1
        .dataset
        .claims_of(donor)
        .iter()
        .take(30)
        .map(|&(d, v)| {
            (snap1.dataset.item_name(d).to_owned(), snap1.dataset.value_str(v).to_owned())
        })
        .collect();
    for (item, value) in &donor_claims {
        store.ingest("live-copier", item, value);
    }
    let changed: Vec<_> = snap1
        .dataset
        .sources()
        .filter(|&s| {
            let c = snap1.dataset.coverage(s);
            (5..30).contains(&c) && s != donor
        })
        .take(8)
        .collect();
    assert!(!changed.is_empty());
    for &source in &changed {
        let &(d, _) = snap1.dataset.claims_of(source).last().unwrap();
        store.ingest(
            snap1.dataset.source_name(source),
            snap1.dataset.item_name(d),
            "freshly-changed-value",
        );
    }
    store.ingest("live-copier", "brand-new-item", "brand-new-value");
    store.ingest(snap1.dataset.source_name(changed[0]), "brand-new-item", "brand-new-value");

    let snap2 = store.snapshot();
    let delta = snap2.delta.as_ref().expect("second snapshot carries a delta");
    assert!(delta.len() >= 30, "the delta covers the new claims");
    assert!(
        (delta.len() as f64) < 0.05 * n as f64,
        "the delta must be small relative to the corpus"
    );

    // Delta-driven incremental round.
    let incremental = live.observe(&snap2);
    let stats = live.round_stats().last().copied().expect("delta round records stats");
    assert!(stats.delta_recomputed > 0);
    assert!(
        stats.delta_recomputed < stats.pairs_total,
        "only a fraction of the {} tracked pairs may be recomputed, got {}",
        stats.pairs_total,
        stats.delta_recomputed
    );

    // From-scratch HYBRID (and the exact PAIRWISE baseline) on the identical
    // full claim set and bootstrap state.
    let (accuracies, probabilities) = live.bootstrap_state(&snap2);
    let input = RoundInput::new(&snap2.dataset, &accuracies, &probabilities, live_params());
    let mut hybrid = HybridDetector::new();
    let scratch = hybrid.detect_round(&input, 1);
    let exact = pairwise_detection(&input);

    let incremental_pairs: BTreeSet<_> = incremental.copying_pairs().collect();
    let scratch_pairs: BTreeSet<_> = scratch.copying_pairs().collect();
    let exact_pairs: BTreeSet<_> = exact.copying_pairs().collect();
    // The delta-driven round is *exact*: it must agree with the PAIRWISE
    // baseline on the full claim set. From-scratch HYBRID is allowed its
    // paper-sanctioned bound deviations from exact — but the delta round may
    // not introduce any deviation beyond those, so the disagreement sets
    // must coincide.
    assert_eq!(
        incremental_pairs, exact_pairs,
        "delta-driven detection must agree with the exact baseline on the full claim set"
    );
    assert_eq!(
        incremental_pairs.symmetric_difference(&scratch_pairs).collect::<BTreeSet<_>>(),
        exact_pairs.symmetric_difference(&scratch_pairs).collect::<BTreeSet<_>>(),
        "any disagreement with from-scratch HYBRID must be HYBRID's own bound deviation"
    );
    assert!(!scratch_pairs.is_empty(), "the workload has planted copiers");
    // The new copier is detected.
    let copier = snap2.dataset.source_by_name("live-copier").unwrap();
    assert!(incremental_pairs.iter().any(|p| p.contains(copier)), "the live copier must be caught");

    eprintln!(
        "incremental: {}\nfrom-scratch: {}\nwarm-up: {}",
        incremental.counter, scratch.counter, warmup.counter
    );
    // Strictly fewer pair recomputations and less scoring work than both the
    // from-scratch run and the warm-up.
    assert!(
        incremental.counter.pair_finalizations < scratch.counter.pair_finalizations,
        "pair recomputations: incremental {} vs from-scratch {}",
        incremental.counter.pair_finalizations,
        scratch.counter.pair_finalizations
    );
    assert!(
        incremental.counter.score_updates < scratch.counter.score_updates,
        "score updates: incremental {} vs from-scratch {}",
        incremental.counter.score_updates,
        scratch.counter.score_updates
    );
    assert!(incremental.counter.score_updates < warmup.counter.score_updates);
}

fn live_params() -> copydet_bayes::CopyParams {
    copydet_bayes::CopyParams::paper_defaults()
}

/// Repeated small batches keep agreeing with from-scratch HYBRID (the
/// steady-state serving loop).
#[test]
fn repeated_delta_batches_stay_consistent() {
    let synth = copydet_synth::presets::stock_1day(0.02, 7);
    let claims: Vec<(String, String, String)> = synth
        .dataset
        .claim_refs()
        .map(|c| (c.source.to_owned(), c.item.to_owned(), c.value.to_owned()))
        .collect();
    let (head, tail) = claims.split_at(claims.len() * 9 / 10);

    let mut store = ClaimStore::new();
    let mut live = LiveDetector::new();
    for (s, d, v) in head {
        store.ingest(s, d, v);
    }
    let _ = live.observe(&store.snapshot());

    for batch in tail.chunks(tail.len().div_ceil(3).max(1)) {
        for (s, d, v) in batch {
            store.ingest(s, d, v);
        }
        store.seal();
        let snap = store.snapshot();
        let result = live.observe(&snap);
        let (accuracies, probabilities) = live.bootstrap_state(&snap);
        let exact = pairwise_detection(&RoundInput::new(
            &snap.dataset,
            &accuracies,
            &probabilities,
            live_params(),
        ));
        let got: BTreeSet<_> = result.copying_pairs().collect();
        let expected: BTreeSet<_> = exact.copying_pairs().collect();
        assert_eq!(got, expected, "batch at epoch {} disagrees with exact", snap.epoch);
    }
    assert_eq!(live.rounds(), 4);
}
