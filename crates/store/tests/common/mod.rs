//! Shared helpers for the store's integration tests.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A unique scratch directory for one test; removed again on drop.
pub struct Scratch(PathBuf);

impl Scratch {
    pub fn new(label: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "copydet_store_test_{label}_{}_{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Self(dir)
    }

    pub fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}
