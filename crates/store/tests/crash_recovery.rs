//! Crash-injection recovery equivalence.
//!
//! For arbitrary ingest/seal/compact/snapshot interleavings, the store is
//! "killed" at **every physical write boundary** (and torn mid-write at
//! many of them) via an injected `SyncPoint` hook, then recovered from the
//! directory. At every single crash point the recovered `snapshot()` must
//! equal a from-scratch `DatasetBuilder` build over exactly the durable
//! claim prefix — **no phantom claims** (nothing that was not durably
//! logged) **and no lost claims** (everything that was).
//!
//! The durable prefix is computed independently of the store: a claim is
//! durable if and only if its write-ahead-log frame was *fully* written
//! before the crash. The commit ordering (segments → tables → manifest
//! rename → WAL reset, each fsynced) guarantees a claim never leaves the
//! log before a committed segment covers it, so counting full `wal:frame`
//! events is exact at every boundary.
//!
//! `COPYDET_CRASH_CASES` scales the proptest case count for the dedicated
//! release-mode CI stress step.

mod common;

use common::Scratch;
use copydet_index::SharedItemCounts;
use copydet_model::{Dataset, DatasetBuilder};
use copydet_store::{ClaimStore, StoreConfig, SyncPoint, WritePermit};
use proptest::prelude::*;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// One observed I/O event: its tag and the bytes it wanted to write.
#[derive(Debug, Clone)]
struct Event {
    tag: String,
    len: usize,
}

/// Hook pass 1: record every event, let everything through.
#[derive(Default)]
struct Recording {
    events: Mutex<Vec<Event>>,
}

impl SyncPoint for Recording {
    fn permit(&self, tag: &str, len: usize) -> WritePermit {
        self.events.lock().unwrap().push(Event { tag: tag.to_owned(), len });
        WritePermit::Full
    }
}

/// Hook pass 2: let events `0..at` through, cut event `at` down to `keep`
/// bytes (the I/O layer enters dead mode at the first cut — later events
/// never reach the hook's decision).
struct KillAt {
    counter: AtomicUsize,
    at: usize,
    keep: usize,
}

impl SyncPoint for KillAt {
    fn permit(&self, _tag: &str, len: usize) -> WritePermit {
        let i = self.counter.fetch_add(1, Ordering::SeqCst);
        if i < self.at {
            WritePermit::Full
        } else if i == self.at {
            WritePermit::Partial(self.keep.min(len))
        } else {
            WritePermit::Die
        }
    }
}

type Op = (u8, u8, u8, u8);

fn claim_strings(op: &Op) -> (String, String, String) {
    (format!("S{}", op.0), format!("D{}", op.1), format!("v{}", op.2))
}

/// Drives the full workload against a durable store opened with `hook`.
fn run_workload(dir: &Path, config: StoreConfig, ops: &[Op], hook: Arc<dyn SyncPoint>) {
    let mut store = ClaimStore::open_with_sync_point(dir, config, hook)
        .expect("a fresh directory always opens");
    for op in ops {
        let (s, d, v) = claim_strings(op);
        store.ingest(&s, &d, &v);
        match op.3 {
            1 => store.seal(),
            2 => {
                store.seal();
                store.compact();
            }
            3 => {
                let _ = store.snapshot();
            }
            _ => {}
        }
    }
    let _ = store.sync();
}

fn builder_dataset(ops: &[Op]) -> Dataset {
    let mut b = DatasetBuilder::new();
    for op in ops {
        let (s, d, v) = claim_strings(op);
        b.add_claim(&s, &d, &v);
    }
    b.build()
}

/// Runs the workload once to enumerate every I/O event, then once per crash
/// point, asserting recovery equals the durable prefix each time.
fn assert_recovery_at_every_boundary(ops: &[Op], config: StoreConfig) -> usize {
    // Pass 1: observe the full event stream.
    let recording = Arc::new(Recording::default());
    let count_dir = Scratch::new("count");
    run_workload(count_dir.path(), config, ops, Arc::clone(&recording) as Arc<dyn SyncPoint>);
    let events = recording.events.lock().unwrap().clone();

    // Pass 2: kill at every boundary. The event stream is deterministic, so
    // the counting run's prefix predicts each killed run's durable state.
    for at in 0..=events.len() {
        // Vary how much of the cut write survives: nothing, half, or all of
        // it (the last models a crash immediately after a complete write).
        let keep = match (at + events.get(at).map_or(0, |e| e.len)) % 3 {
            0 => 0,
            1 => events.get(at).map_or(0, |e| e.len / 2),
            _ => usize::MAX,
        };
        let durable_claims = events
            .iter()
            .enumerate()
            .filter(|(i, e)| e.tag == "wal:frame" && (*i < at || (*i == at && keep >= e.len)))
            .count();

        let crash_dir = Scratch::new("kill");
        run_workload(
            crash_dir.path(),
            config,
            ops,
            Arc::new(KillAt { counter: AtomicUsize::new(0), at, keep }),
        );

        // The "process" died; recover from what reached the disk.
        let mut recovered = ClaimStore::open_with_config(crash_dir.path(), config)
            .unwrap_or_else(|e| panic!("recovery after crash at event {at} failed: {e}"));
        let snapshot = recovered.snapshot();
        let expected = builder_dataset(&ops[..durable_claims]);
        assert_eq!(
            snapshot.dataset,
            expected,
            "crash at event {at} ({:?}, keep {keep}): recovered {} claims, expected the \
             {durable_claims}-claim durable prefix",
            events.get(at).map(|e| e.tag.as_str()).unwrap_or("end"),
            snapshot.dataset.num_claims(),
        );

        // The recovered bookkeeping must be ingest-equivalent, not just the
        // dataset: finish the stream on the recovered store and re-check
        // against the full one-pass build (shared counts included).
        for op in &ops[durable_claims..] {
            let (s, d, v) = claim_strings(op);
            recovered.ingest(&s, &d, &v);
        }
        let final_snapshot = recovered.snapshot();
        assert_eq!(
            final_snapshot.dataset,
            builder_dataset(ops),
            "crash at event {at}: continuing after recovery diverged"
        );
        let cold = SharedItemCounts::build(&final_snapshot.dataset);
        assert_eq!(
            recovered.shared_item_counts().num_sharing_pairs(),
            cold.num_sharing_pairs(),
            "crash at event {at}: recovered shared-item counts diverged"
        );
        for (pair, n) in cold.iter_nonzero() {
            assert_eq!(recovered.shared_item_counts().get(pair), n, "event {at}, pair {pair}");
        }
    }
    events.len()
}

#[test]
fn every_boundary_of_a_fixed_manual_workload() {
    // Ingests with explicit seals, a compaction, a snapshot, and overwrites
    // (S0/D0 written three times) — small enough to enumerate exhaustively.
    let ops: Vec<Op> = vec![
        (0, 0, 0, 0),
        (1, 0, 0, 0),
        (0, 1, 1, 1), // seal
        (2, 0, 2, 0),
        (0, 0, 3, 2), // overwrite, then seal + compact
        (3, 2, 0, 3), // snapshot
        (0, 0, 0, 0), // back to the original value
        (2, 2, 4, 1), // seal
        (4, 1, 1, 0),
    ];
    let boundaries = assert_recovery_at_every_boundary(&ops, StoreConfig::default());
    assert!(boundaries > 40, "expected a rich event stream, got {boundaries}");
}

#[test]
fn every_boundary_with_auto_seal_and_per_append_fsync() {
    let ops: Vec<Op> =
        vec![(0, 0, 0, 0), (1, 1, 1, 0), (2, 0, 1, 0), (0, 2, 2, 0), (3, 1, 0, 0), (1, 0, 2, 0)];
    let config = StoreConfig {
        seal_threshold: Some(3),
        max_sealed_segments: Some(1),
        wal_fsync_per_append: true,
    };
    assert_recovery_at_every_boundary(&ops, config);
}

fn cases() -> u32 {
    std::env::var("COPYDET_CRASH_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(8)
}

fn workload_strategy() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec((0u8..6, 0u8..8, 0u8..4, 0u8..=3), 1..24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Arbitrary interleavings, killed at every write boundary: recovery
    /// reproduces exactly the durable prefix.
    #[test]
    fn arbitrary_interleavings_survive_every_crash_point(ops in workload_strategy()) {
        assert_recovery_at_every_boundary(&ops, StoreConfig::default());
    }

    /// The same under auto-sealing/compaction, where commits fire from
    /// inside ingest.
    #[test]
    fn auto_sealing_interleavings_survive_every_crash_point(ops in workload_strategy()) {
        let config = StoreConfig {
            seal_threshold: Some(4),
            max_sealed_segments: Some(2),
            ..StoreConfig::default()
        };
        assert_recovery_at_every_boundary(&ops, config);
    }
}
