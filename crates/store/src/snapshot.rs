//! Consistent point-in-time views of the store.

use copydet_model::{Dataset, DatasetDelta};

/// A consistent point-in-time view of a [`ClaimStore`](crate::ClaimStore).
///
/// The dataset is a full, immutable [`Dataset`] — indistinguishable from one
/// built by a single `DatasetBuilder` pass over the same claims — so every
/// existing detector, index builder and fusion loop runs on it unchanged.
/// From the second snapshot on, `delta` records exactly the claims added or
/// changed since the previous snapshot; feeding it to
/// [`RoundInput::with_delta`](copydet_detect::RoundInput::with_delta) lets
/// `IncrementalDetector` re-decide only the affected pairs.
#[derive(Debug, Clone)]
pub struct StoreSnapshot {
    /// 1-based snapshot sequence number.
    pub epoch: u64,
    /// All claims ingested up to the snapshot point.
    pub dataset: Dataset,
    /// Claims added/changed since the previous snapshot (`None` for the
    /// first snapshot, which has no predecessor).
    pub delta: Option<DatasetDelta>,
}

impl StoreSnapshot {
    /// Returns `true` if this snapshot differs from its predecessor (always
    /// `true` for the first snapshot of a non-empty store).
    pub fn has_changes(&self) -> bool {
        match &self.delta {
            Some(delta) => !delta.is_empty(),
            None => self.dataset.num_claims() > 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::ClaimStore;

    #[test]
    fn has_changes_tracks_the_delta() {
        let mut store = ClaimStore::new();
        store.ingest("S0", "D0", "x");
        let snap1 = store.snapshot();
        assert!(snap1.has_changes(), "first non-empty snapshot counts as changed");
        let snap2 = store.snapshot();
        assert!(!snap2.has_changes(), "nothing happened between the snapshots");
        store.ingest("S1", "D0", "x");
        let snap3 = store.snapshot();
        assert!(snap3.has_changes());
        assert_eq!(snap3.epoch, 3);
    }
}
