//! Bounded small-file reads for control files (`MANIFEST`, `SHARDS`, …).
//!
//! Control files are tiny by construction, so an oversized one is always
//! corruption (or a mis-pointed path). These helpers refuse to slurp it:
//! the size is checked *before* the allocation, and a concurrent append
//! racing past the bound is caught by a one-extra-byte read. Everything
//! surfaces as a typed [`StoreIoError`], never a panic — these run on the
//! recovery path, where the input is whatever a crash (or an operator)
//! left on disk.

use crate::error::StoreIoError;
use std::io::Read;
use std::path::Path;

/// Reads a file of at most `max_len` bytes; `Ok(None)` if it does not
/// exist.
///
/// # Errors
/// [`StoreIoError::Corrupt`] if the file exceeds `max_len` bytes (reported
/// without reading past the bound); [`StoreIoError::Io`] for anything the
/// filesystem refuses.
pub fn read_bounded(path: &Path, max_len: u64) -> Result<Option<Vec<u8>>, StoreIoError> {
    let file = match std::fs::File::open(path) {
        Ok(file) => file,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(StoreIoError::io(path, &e)),
    };
    let too_big = |len: String| StoreIoError::Corrupt {
        path: path.to_path_buf(),
        detail: format!("{len} exceeds the {max_len}-byte bound for this control file"),
    };
    // The metadata check rejects an absurd file before any allocation; the
    // +1 `take` below re-checks, catching growth between stat and read.
    let metadata = file.metadata().map_err(|e| StoreIoError::io(path, &e))?;
    if metadata.len() > max_len {
        return Err(too_big(format!("{}-byte file", metadata.len())));
    }
    let mut contents = Vec::new();
    let read = file
        .take(max_len.saturating_add(1))
        .read_to_end(&mut contents)
        .map_err(|e| StoreIoError::io(path, &e))?;
    if u64::try_from(read).unwrap_or(u64::MAX) > max_len {
        return Err(too_big(format!("{read}-byte read")));
    }
    Ok(Some(contents))
}

/// Reads a UTF-8 text file of at most `max_len` bytes; `Ok(None)` if it
/// does not exist.
///
/// # Errors
/// As [`read_bounded`], plus [`StoreIoError::Corrupt`] for invalid UTF-8.
pub fn read_bounded_text(path: &Path, max_len: u64) -> Result<Option<String>, StoreIoError> {
    let Some(bytes) = read_bounded(path, max_len)? else { return Ok(None) };
    match String::from_utf8(bytes) {
        Ok(text) => Ok(Some(text)),
        Err(e) => Err(StoreIoError::Corrupt {
            path: path.to_path_buf(),
            detail: format!(
                "control file is not UTF-8 (first invalid byte at offset {})",
                e.utf8_error().valid_up_to()
            ),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("copydet-ioutil-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn missing_file_is_none() {
        let dir = tmp_dir("missing");
        assert_eq!(read_bounded(&dir.join("absent"), 16).unwrap(), None);
        assert_eq!(read_bounded_text(&dir.join("absent"), 16).unwrap(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn small_files_round_trip() {
        let dir = tmp_dir("small");
        let path = dir.join("pin");
        std::fs::write(&path, "4\n").unwrap();
        assert_eq!(read_bounded(&path, 16).unwrap(), Some(b"4\n".to_vec()));
        assert_eq!(read_bounded_text(&path, 16).unwrap(), Some("4\n".to_owned()));
        // Exactly at the bound is allowed.
        assert_eq!(read_bounded_text(&path, 2).unwrap(), Some("4\n".to_owned()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_file_is_corrupt_not_slurped() {
        let dir = tmp_dir("oversized");
        let path = dir.join("pin");
        std::fs::write(&path, vec![b'9'; 100]).unwrap();
        let err = read_bounded(&path, 64).unwrap_err();
        assert!(matches!(err, StoreIoError::Corrupt { .. }), "got {err}");
        assert!(err.to_string().contains("64-byte bound"), "got {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_utf8_text_is_corrupt() {
        let dir = tmp_dir("nonutf8");
        let path = dir.join("pin");
        std::fs::write(&path, [b'4', 0xFF, 0xFE]).unwrap();
        let err = read_bounded_text(&path, 64).unwrap_err();
        assert!(err.to_string().contains("not UTF-8"), "got {err}");
        // The binary reader is happy with the same bytes.
        assert_eq!(read_bounded(&path, 64).unwrap(), Some(vec![b'4', 0xFF, 0xFE]));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
