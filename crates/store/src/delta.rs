//! Tracking of claims added/changed between consecutive snapshots.

use copydet_model::{ClaimChange, DatasetDelta, ItemId, SourceId, ValueId};
use std::collections::HashMap;

/// Records, for every `(source, item)` written since the last snapshot, the
/// value that claim had *in* the last snapshot (`None` if it did not exist).
///
/// The baseline is captured at the first write after a snapshot — at that
/// moment the store's merged value for the claim still is the snapshot
/// value — so the delta emitted at the next snapshot compares
/// snapshot-to-snapshot regardless of how many times a claim was rewritten
/// in between (and a value written back to its snapshot state drops out as a
/// no-op).
#[derive(Debug, Default, Clone)]
pub(crate) struct DeltaTracker {
    baseline: HashMap<(SourceId, ItemId), Option<ValueId>>,
}

impl DeltaTracker {
    /// Notes a write; `snapshot_value` is the merged value *before* the
    /// write. Only the first write per `(source, item)` records a baseline.
    pub fn note(&mut self, source: SourceId, item: ItemId, snapshot_value: Option<ValueId>) {
        self.baseline.entry((source, item)).or_insert(snapshot_value);
    }

    /// Number of `(source, item)` slots written since the last snapshot.
    pub fn len(&self) -> usize {
        self.baseline.len()
    }

    /// The `(source, item)` slots written since the last snapshot, in
    /// arbitrary order. This is the patch set of the O(delta) snapshot path:
    /// exactly the sources/items whose merged claim lists or value groups can
    /// differ from the previous snapshot.
    pub fn touched(&self) -> impl Iterator<Item = (SourceId, ItemId)> + '_ {
        self.baseline.keys().copied()
    }

    /// Drains the tracker into a [`DatasetDelta`], resolving every touched
    /// claim's current value through `current`.
    pub fn drain_into_delta(
        &mut self,
        mut current: impl FnMut(SourceId, ItemId) -> Option<ValueId>,
    ) -> DatasetDelta {
        let changes = self.baseline.drain().map(|((source, item), old)| {
            let new = current(source, item).expect("a tracked claim must exist in the merged view");
            ClaimChange { source, item, old, new }
        });
        DatasetDelta::from_changes(changes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_write_captures_baseline_and_roundtrips_drop_out() {
        let s = SourceId::new(0);
        let d0 = ItemId::new(0);
        let d1 = ItemId::new(1);
        let (v0, v1) = (ValueId::new(0), ValueId::new(1));
        let mut t = DeltaTracker::default();
        t.note(s, d0, Some(v0)); // snapshot value v0
        t.note(s, d0, Some(v1)); // later rewrite must not move the baseline
        t.note(s, d1, None); // brand-new claim
        assert_eq!(t.len(), 2);

        // Current merged view: d0 back at its snapshot value, d1 at v1.
        let delta = t.drain_into_delta(|_, d| if d == d0 { Some(v0) } else { Some(v1) });
        assert_eq!(t.len(), 0, "drained");
        assert_eq!(delta.len(), 1, "the d0 roundtrip is a no-op");
        assert_eq!(delta.changes()[0].item, d1);
        assert!(delta.changes()[0].is_addition());
    }
}
