//! Typed I/O and recovery errors of the durable claim store.

use std::fmt;
use std::path::{Path, PathBuf};

/// Errors produced while persisting or recovering a [`ClaimStore`].
///
/// The variants separate the three failure classes recovery has to treat
/// differently:
///
/// * [`Io`](StoreIoError::Io) — the operating system failed the operation
///   (permissions, disk full, …). Retryable in principle.
/// * [`Truncated`](StoreIoError::Truncated) — a file ends before its declared
///   content. For committed files (segments, tables, manifest) this is fatal:
///   they are written via atomic rename and can only be short if something
///   outside the store cut them. (A torn write-ahead-log *tail* is **not** an
///   error — it is the expected shape of a crash and recovery drops it
///   silently.)
/// * [`Corrupt`](StoreIoError::Corrupt) — bytes are present but wrong: bad
///   magic, checksum mismatch, an id out of range, invalid UTF-8. The file
///   was damaged after it was written.
/// * [`VersionMismatch`](StoreIoError::VersionMismatch) — the file was
///   written by an incompatible format version.
///
/// Recovery **never panics** on hostile bytes: every decode path funnels into
/// one of these variants.
///
/// All variants carry the offending path. The error is `Clone`/`PartialEq`
/// (messages, not live `io::Error` values) so a store can hold a sticky copy
/// of its first persistence failure and hand it out repeatedly.
///
/// [`ClaimStore`]: crate::ClaimStore
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreIoError {
    /// An operating-system I/O failure.
    Io {
        /// The file or directory the operation targeted.
        path: PathBuf,
        /// The rendered `io::Error`.
        message: String,
    },
    /// A committed file ends before its declared content.
    Truncated {
        /// The truncated file.
        path: PathBuf,
        /// What was missing.
        detail: String,
    },
    /// A file's bytes fail validation (magic, checksum, ids, UTF-8).
    Corrupt {
        /// The corrupt file.
        path: PathBuf,
        /// What failed to validate.
        detail: String,
    },
    /// A file was written by an incompatible format version.
    VersionMismatch {
        /// The offending file.
        path: PathBuf,
        /// The version found in the file header.
        found: u32,
        /// The version this build reads and writes.
        expected: u32,
    },
}

impl StoreIoError {
    /// Wraps an `io::Error` with the path it occurred on.
    pub fn io(path: impl Into<PathBuf>, err: &std::io::Error) -> Self {
        StoreIoError::Io { path: path.into(), message: err.to_string() }
    }

    /// The path the error occurred on.
    pub fn path(&self) -> &Path {
        match self {
            StoreIoError::Io { path, .. }
            | StoreIoError::Truncated { path, .. }
            | StoreIoError::Corrupt { path, .. }
            | StoreIoError::VersionMismatch { path, .. } => path,
        }
    }
}

impl fmt::Display for StoreIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreIoError::Io { path, message } => {
                write!(f, "I/O error on {}: {message}", path.display())
            }
            StoreIoError::Truncated { path, detail } => {
                write!(f, "{} is truncated: {detail}", path.display())
            }
            StoreIoError::Corrupt { path, detail } => {
                write!(f, "{} is corrupt: {detail}", path.display())
            }
            StoreIoError::VersionMismatch { path, found, expected } => {
                write!(
                    f,
                    "{} has format version {found}, this build supports {expected}",
                    path.display()
                )
            }
        }
    }
}

impl std::error::Error for StoreIoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_file_and_class() {
        let e = StoreIoError::Corrupt { path: "/x/seg-000001.seg".into(), detail: "crc".into() };
        assert!(e.to_string().contains("seg-000001.seg"));
        assert!(e.to_string().contains("corrupt"));
        assert_eq!(e.path(), Path::new("/x/seg-000001.seg"));

        let v = StoreIoError::VersionMismatch { path: "/m".into(), found: 9, expected: 1 };
        assert!(v.to_string().contains("version 9"));

        let io = StoreIoError::io("/f", &std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(io.to_string().contains("gone"));
        let t = StoreIoError::Truncated { path: "/t".into(), detail: "short".into() };
        assert!(t.to_string().contains("truncated"));
    }

    #[test]
    fn errors_are_comparable_and_cloneable() {
        let a = StoreIoError::Io { path: "/f".into(), message: "boom".into() };
        assert_eq!(a.clone(), a);
        assert_ne!(a, StoreIoError::Truncated { path: "/f".into(), detail: "boom".into() });
    }
}
