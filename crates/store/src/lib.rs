//! # copydet-store
//!
//! A segmented live claim store with incremental index maintenance — the
//! subsystem that turns the batch reproduction of *Scaling up Copy
//! Detection* (Li et al., ICDE 2015) into an online engine for continuously
//! arriving claims.
//!
//! The paper's machinery assumes an immutable [`Dataset`] snapshot: the
//! inverted index is built once per round and the detectors scan it from
//! scratch. Production sources do not hold still — feeds update prices,
//! aggregators add listings, new sources appear. This crate closes the gap
//! with a design borrowed from search-engine segment stores:
//!
//! * **[`ClaimStore`]** — append-oriented ingest with last-claim-wins
//!   semantics. Writes land in an in-memory **growing segment**
//!   ([`GrowingSegment`]); [`seal`](ClaimStore::seal) freezes it into an
//!   immutable, densely-sorted **sealed segment** ([`SealedSegment`]);
//!   [`compact`](ClaimStore::compact) coalesces sealed segments newest-wins.
//! * **[`snapshot`](ClaimStore::snapshot)** — assembles a [`Dataset`]
//!   *identical* to one `DatasetBuilder` pass over the same claim sequence
//!   (ids in first-seen ingest order), so every existing detector, index
//!   builder and fusion loop runs on it unchanged. From the second snapshot
//!   on it also carries the
//!   [`DatasetDelta`](copydet_model::DatasetDelta) against the previous
//!   snapshot. Snapshots are **zero-copy in the corpus**: name tables and
//!   interner are shared `Arc` handles and consecutive snapshots alias every
//!   untouched claim list and value group, so snapshot cost is O(delta).
//! * **[`SharedClaimStore`]** — a cloneable thread-safe handle: writers
//!   stream claims, a background thread seals/compacts, and a reader
//!   snapshots + detects concurrently (the detection round runs entirely
//!   outside the store lock).
//! * **Durability** — [`ClaimStore::open`] makes the store survive
//!   restarts: every ingest is written ahead to a checksummed log before it
//!   is applied, sealing/compaction commit segment + name-table files via
//!   write-new-then-atomic-rename (fsync'd), and reopening the directory
//!   recovers a store whose `snapshot()` is identical to the pre-crash one.
//!   Torn log tails are dropped cleanly; damaged committed files surface as
//!   a typed [`StoreIoError`] (corruption vs truncation vs version
//!   mismatch), never a panic. See `DESIGN.md` §6 for the on-disk format.
//! * **Incremental index maintenance** — the store maintains the pairwise
//!   shared-item counts `l(S1, S2)` at ingest time, so
//!   [`build_index`](ClaimStore::build_index) skips the counting pass of a
//!   cold build; and the snapshot delta drives
//!   [`InvertedIndex::apply_claim_delta`](copydet_index::InvertedIndex::apply_claim_delta)
//!   plus the delta path of
//!   [`IncrementalDetector`](copydet_detect::IncrementalDetector), which
//!   re-decides only the pairs the new claims can have affected.
//! * **[`LiveDetector`]** — the batteries-included pipeline: feed it
//!   snapshots, get per-pair copy decisions, with only the first snapshot
//!   detected from scratch.
//!
//! See `DESIGN.md` §5 for the segment lifecycle and the delta-propagation
//! invariants.
//!
//! ```
//! use copydet_store::{ClaimStore, LiveDetector};
//!
//! let mut store = ClaimStore::new();
//! let mut live = LiveDetector::new();
//! for (s, d, v) in [
//!     ("alice", "NJ", "Trenton"),
//!     ("bob", "NJ", "Trenton"),
//!     ("carol", "NJ", "Newark"),
//! ] {
//!     store.ingest(s, d, v);
//! }
//! let result = live.observe(&store.snapshot());
//! assert_eq!(result.algorithm, "INCREMENTAL");
//!
//! // New claims arrive; only affected pairs are re-decided.
//! store.ingest("dave", "NJ", "Trenton");
//! let result = live.observe(&store.snapshot());
//! assert!(result.pairs_considered > 0);
//! ```

#![forbid(unsafe_code)]
#![deny(unused_must_use)]
#![warn(missing_docs)]

mod concurrent;
mod delta;
#[warn(clippy::cast_possible_truncation, clippy::indexing_slicing)]
mod durable;
mod error;
#[warn(clippy::cast_possible_truncation, clippy::indexing_slicing)]
mod format;
mod ioutil;
mod live;
mod segment;
mod snapshot;
mod stats;
mod store;
#[warn(clippy::cast_possible_truncation, clippy::indexing_slicing)]
mod wal;

pub use concurrent::SharedClaimStore;
pub use error::StoreIoError;
pub use ioutil::{read_bounded, read_bounded_text};
pub use live::{LiveConfig, LiveDetector};
pub use segment::{GrowingSegment, SealedSegment};
pub use snapshot::StoreSnapshot;
pub use stats::StoreStats;
pub use store::{ClaimStore, StoreConfig};
pub use wal::{SyncPoint, WritePermit};

// Re-exported so store users can name the dataset/delta types without a
// direct copydet-model dependency.
pub use copydet_model::{Dataset, DatasetDelta};
