//! The on-disk binary format of the durable claim store: checksummed file
//! envelopes and the payload codecs for name tables, sealed segments, the
//! manifest and write-ahead-log frames.
//!
//! Every committed file (`tables-*.tbl`, `seg-*.seg`, `MANIFEST`) shares one
//! envelope:
//!
//! ```text
//! [magic: 4 bytes][version: u32][payload_len: u64][payload][crc32(payload): u32]
//! ```
//!
//! The write-ahead log starts with the same 8-byte magic + version header
//! and is followed by independently checksummed frames:
//!
//! ```text
//! [len: u32][payload: len bytes][crc32(payload): u32]
//! ```
//!
//! Framing rules give recovery its failure taxonomy (see
//! [`StoreIoError`](crate::StoreIoError)):
//!
//! * a frame that ends before its declared length is a **torn tail** —
//!   the expected shape of a crash mid-append; it is dropped, not an error;
//! * a *complete* frame whose checksum fails, an oversized length, bad
//!   magic, an out-of-range id or invalid UTF-8 is **corruption**;
//! * a header version other than [`FORMAT_VERSION`] is a version mismatch.
//!
//! All decoding is total — hostile bytes produce a typed [`FormatError`],
//! never a panic. Payload primitives come from
//! [`copydet_model::codec`], so the claim encoding is the model crate's
//! stable interned-id serialization.

use crate::segment::SealedSegment;
use copydet_model::codec::{self, u32_to_usize, usize_to_u64, CodecError, Reader};
use copydet_model::{Claim, ItemId, SourceId, ValueId};

/// Version written into (and required of) every file header.
///
/// Version history:
/// * 1 — initial durable format (PR 4): single full name-table file.
/// * 2 — the manifest lists a **chain** of name-table files (each holding
///   the names appended since its predecessor), so a durable seal writes
///   O(new names) instead of rewriting the full vocabulary.
pub(crate) const FORMAT_VERSION: u32 = 2;

/// Magic of sealed-segment files.
pub(crate) const MAGIC_SEGMENT: [u8; 4] = *b"CDSG";
/// Magic of name-table files.
pub(crate) const MAGIC_TABLES: [u8; 4] = *b"CDTB";
/// Magic of the manifest.
pub(crate) const MAGIC_MANIFEST: [u8; 4] = *b"CDMF";
/// Magic of the write-ahead log.
pub(crate) const MAGIC_WAL: [u8; 4] = *b"CDWL";

/// Byte length of the WAL header (magic + version).
pub(crate) const WAL_HEADER_LEN: usize = 8;

/// Upper bound on a single WAL frame payload (64 MiB): a corrupted length
/// prefix is rejected instead of being treated as a gigantic torn frame.
pub(crate) const MAX_FRAME_LEN: u32 = 1 << 26;

/// Path-free decode failure; callers attach the offending path to build a
/// [`StoreIoError`](crate::StoreIoError).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum FormatError {
    /// The file ends before its declared content.
    Truncated(String),
    /// Bytes fail validation (magic, checksum, ids, UTF-8, framing).
    Corrupt(String),
    /// The header carries an unsupported format version.
    Version(u32),
}

impl FormatError {
    /// Attaches a path, producing the public error type.
    pub fn at(self, path: impl Into<std::path::PathBuf>) -> crate::StoreIoError {
        match self {
            FormatError::Truncated(detail) => {
                crate::StoreIoError::Truncated { path: path.into(), detail }
            }
            FormatError::Corrupt(detail) => {
                crate::StoreIoError::Corrupt { path: path.into(), detail }
            }
            FormatError::Version(found) => crate::StoreIoError::VersionMismatch {
                path: path.into(),
                found,
                expected: FORMAT_VERSION,
            },
        }
    }
}

impl From<CodecError> for FormatError {
    fn from(e: CodecError) -> Self {
        match e {
            CodecError::Truncated { .. } => FormatError::Truncated(e.to_string()),
            CodecError::Utf8 { .. }
            | CodecError::StringTooLong { .. }
            | CodecError::FrameTooLong { .. }
            | CodecError::ChecksumMismatch { .. } => FormatError::Corrupt(e.to_string()),
        }
    }
}

/// Encodes a collection length as its `u32` wire form; a count past
/// `u32::MAX` cannot be represented on disk and is refused, not truncated.
fn len_u32(len: usize, what: &str) -> Result<u32, FormatError> {
    u32::try_from(len).map_err(|_| {
        FormatError::Corrupt(format!("{what} count {len} overflows the u32 length field"))
    })
}

/// CRC32 (IEEE) of `bytes` — shared with the wire-protocol frames.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    codec::crc32_ieee(bytes)
}

// ---------------------------------------------------------------------------
// File envelope
// ---------------------------------------------------------------------------

/// Byte length of a committed-file envelope header (magic + version +
/// payload length).
const FILE_HEADER_LEN: usize = 16;

/// Wraps `payload` in the committed-file envelope.
pub(crate) fn encode_file(magic: [u8; 4], payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 20);
    out.extend_from_slice(&magic);
    codec::put_u32(&mut out, FORMAT_VERSION);
    codec::put_u64(&mut out, usize_to_u64(payload.len()));
    out.extend_from_slice(payload);
    codec::put_u32(&mut out, crc32(payload));
    out
}

/// Unwraps a committed-file envelope, verifying magic, version, length and
/// checksum, and returns the payload slice.
pub(crate) fn decode_file(magic: [u8; 4], bytes: &[u8]) -> Result<&[u8], FormatError> {
    let too_short = || {
        FormatError::Truncated(format!(
            "file header needs {FILE_HEADER_LEN} bytes, file has {}",
            bytes.len()
        ))
    };
    let (header, body) = bytes.split_at_checked(FILE_HEADER_LEN).ok_or_else(too_short)?;
    let header: &[u8; FILE_HEADER_LEN] = header.try_into().map_err(|_| too_short())?;
    let [m0, m1, m2, m3, v0, v1, v2, v3, len_bytes @ ..] = *header;
    let found_magic = [m0, m1, m2, m3];
    if found_magic != magic {
        return Err(FormatError::Corrupt(format!(
            "bad magic {found_magic:02x?}, expected {magic:02x?} ({})",
            String::from_utf8_lossy(&magic)
        )));
    }
    let version = u32::from_le_bytes([v0, v1, v2, v3]);
    if version != FORMAT_VERSION {
        return Err(FormatError::Version(version));
    }
    let declared_len = u64::from_le_bytes(len_bytes);
    // Compare in u64: a corrupt length near u64::MAX must classify as
    // truncation, not overflow `declared_len + 4` into a panic / wrap.
    if usize_to_u64(body.len()) < declared_len.saturating_add(4) {
        return Err(FormatError::Truncated(format!(
            "payload declares {declared_len} byte(s) + checksum, file holds {}",
            body.len()
        )));
    }
    // declared_len + 4 fits in body.len() (a usize), so this cannot fail;
    // the error arm keeps the conversion total.
    let payload_len = usize::try_from(declared_len)
        .map_err(|_| FormatError::Corrupt(format!("payload length {declared_len} overflows")))?;
    let (payload, tail) = body.split_at_checked(payload_len).ok_or_else(too_short)?;
    let stored = match *tail {
        [c0, c1, c2, c3] => u32::from_le_bytes([c0, c1, c2, c3]),
        _ => {
            return Err(FormatError::Corrupt(format!(
                "{} trailing byte(s) after the checksum",
                tail.len().saturating_sub(4)
            )))
        }
    };
    let actual = crc32(payload);
    if stored != actual {
        return Err(FormatError::Corrupt(format!(
            "checksum mismatch: stored {stored:#010x}, computed {actual:#010x}"
        )));
    }
    Ok(payload)
}

// ---------------------------------------------------------------------------
// Name tables
// ---------------------------------------------------------------------------

/// The three id-ordered name tables: `(sources, items, values)`.
pub(crate) type NameTables = (Vec<String>, Vec<String>, Vec<String>);

/// Encodes the three id-ordered name tables (sources, items, values).
pub(crate) fn encode_tables(
    sources: &[String],
    items: &[String],
    values: &[String],
) -> Result<Vec<u8>, FormatError> {
    let mut payload = Vec::new();
    for table in [sources, items, values] {
        codec::put_u32(&mut payload, len_u32(table.len(), "name table")?);
        for name in table {
            codec::put_str(&mut payload, name).map_err(FormatError::from)?;
        }
    }
    Ok(encode_file(MAGIC_TABLES, &payload))
}

/// Decodes a name-table file into `(sources, items, values)` in id order.
pub(crate) fn decode_tables(bytes: &[u8]) -> Result<NameTables, FormatError> {
    let payload = decode_file(MAGIC_TABLES, bytes)?;
    let mut r = Reader::new(payload);
    let mut tables: [Vec<String>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for table in &mut tables {
        let count = u32_to_usize(r.u32()?);
        table.reserve(count.min(1 << 20));
        for _ in 0..count {
            table.push(r.string()?);
        }
    }
    if !r.is_empty() {
        return Err(FormatError::Corrupt(format!(
            "{} trailing byte(s) after the value table",
            r.remaining()
        )));
    }
    let [sources, items, values] = tables;
    Ok((sources, items, values))
}

// ---------------------------------------------------------------------------
// Sealed segments
// ---------------------------------------------------------------------------

/// Encodes a sealed segment: per-source sorted claim lists in source order.
pub(crate) fn encode_segment(segment: &SealedSegment) -> Result<Vec<u8>, FormatError> {
    let mut payload = Vec::new();
    codec::put_u32(&mut payload, len_u32(segment.num_sources(), "segment source")?);
    for (source, list) in segment.per_source() {
        codec::put_u32(&mut payload, source.raw());
        codec::put_u32(&mut payload, len_u32(list.len(), "segment claim-list")?);
        for &(item, value) in list {
            codec::put_u32(&mut payload, item.raw());
            codec::put_u32(&mut payload, value.raw());
        }
    }
    Ok(encode_file(MAGIC_SEGMENT, &payload))
}

/// Decodes a sealed-segment file, re-validating the segment invariants
/// (strictly increasing source ids, strictly increasing items per source).
pub(crate) fn decode_segment(bytes: &[u8]) -> Result<SealedSegment, FormatError> {
    let payload = decode_file(MAGIC_SEGMENT, bytes)?;
    let mut r = Reader::new(payload);
    let num_sources = u32_to_usize(r.u32()?);
    let mut claims: Vec<(SourceId, Vec<(ItemId, ValueId)>)> = Vec::new();
    let mut num_claims = 0usize;
    for _ in 0..num_sources {
        let source = SourceId::new(r.u32()?);
        if let Some((prev, _)) = claims.last() {
            if *prev >= source {
                return Err(FormatError::Corrupt(format!(
                    "source {source} out of order after {prev}"
                )));
            }
        }
        let len = u32_to_usize(r.u32()?);
        if len == 0 {
            return Err(FormatError::Corrupt(format!("source {source} has an empty claim list")));
        }
        let mut list = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            let item = ItemId::new(r.u32()?);
            let value = ValueId::new(r.u32()?);
            if let Some(&(prev, _)) = list.last() {
                if prev >= item {
                    return Err(FormatError::Corrupt(format!(
                        "item {item} of source {source} out of order after {prev}"
                    )));
                }
            }
            list.push((item, value));
        }
        num_claims += len;
        claims.push((source, list));
    }
    if !r.is_empty() {
        return Err(FormatError::Corrupt(format!(
            "{} trailing byte(s) after the last claim list",
            r.remaining()
        )));
    }
    Ok(SealedSegment::from_parts(claims, num_claims))
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

/// The commit record of the durable store: which files make up the current
/// sealed state, in segment order (oldest first).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub(crate) struct Manifest {
    /// Next file sequence number to allocate.
    pub next_seq: u64,
    /// The name-table **chain**, oldest first: each file holds the names
    /// appended since its predecessor, so the concatenation (in chain
    /// order) yields every table in id order. A durable seal appends one
    /// delta file with only the names that seal introduced — O(new names) —
    /// and compaction collapses the chain back into a single file.
    pub tables: Vec<String>,
    /// Sealed-segment file names, oldest first.
    pub segments: Vec<String>,
}

/// Encodes the manifest.
pub(crate) fn encode_manifest(manifest: &Manifest) -> Result<Vec<u8>, FormatError> {
    let mut payload = Vec::new();
    codec::put_u64(&mut payload, manifest.next_seq);
    codec::put_u32(&mut payload, len_u32(manifest.tables.len(), "manifest tables")?);
    for name in &manifest.tables {
        codec::put_str(&mut payload, name).map_err(FormatError::from)?;
    }
    codec::put_u32(&mut payload, len_u32(manifest.segments.len(), "manifest segment")?);
    for name in &manifest.segments {
        codec::put_str(&mut payload, name).map_err(FormatError::from)?;
    }
    Ok(encode_file(MAGIC_MANIFEST, &payload))
}

/// Decodes and validates a manifest file.
pub(crate) fn decode_manifest(bytes: &[u8]) -> Result<Manifest, FormatError> {
    let payload = decode_file(MAGIC_MANIFEST, bytes)?;
    let mut r = Reader::new(payload);
    let next_seq = r.u64()?;
    let tables_count = u32_to_usize(r.u32()?);
    let mut tables = Vec::with_capacity(tables_count.min(1 << 16));
    for _ in 0..tables_count {
        tables.push(validate_file_name(r.string()?)?);
    }
    let count = u32_to_usize(r.u32()?);
    let mut segments = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        segments.push(validate_file_name(r.string()?)?);
    }
    if !r.is_empty() {
        return Err(FormatError::Corrupt(format!(
            "{} trailing byte(s) after the segment list",
            r.remaining()
        )));
    }
    Ok(Manifest { next_seq, tables, segments })
}

/// Rejects manifest entries that could escape the store directory.
fn validate_file_name(name: String) -> Result<String, FormatError> {
    if name.is_empty() || name.contains(['/', '\\']) || name == "." || name == ".." {
        return Err(FormatError::Corrupt(format!("invalid file name {name:?} in manifest")));
    }
    Ok(name)
}

// ---------------------------------------------------------------------------
// Write-ahead log
// ---------------------------------------------------------------------------

/// The WAL header bytes (magic + version).
pub(crate) fn wal_header() -> Vec<u8> {
    let mut out = Vec::with_capacity(WAL_HEADER_LEN);
    out.extend_from_slice(&MAGIC_WAL);
    codec::put_u32(&mut out, FORMAT_VERSION);
    out
}

/// One durable event in the write-ahead log.
///
/// `Def*` records are written by the bare interning entry points
/// (`ClaimStore::source` / `item` / `value`); a [`Claim`](WalRecord::Claim)
/// record is written by every ingest and *embeds* the definitions of any
/// names that ingest interned, so one ingest is one atomic frame — a crash
/// boundary can never separate a claim from the names it introduced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum WalRecord {
    /// A source name was interned with the given dense id.
    DefSource {
        /// The assigned id (`NameTable` index).
        id: u32,
        /// The interned name.
        name: String,
    },
    /// An item name was interned with the given dense id.
    DefItem {
        /// The assigned id.
        id: u32,
        /// The interned name.
        name: String,
    },
    /// A value string was interned with the given dense id.
    DefValue {
        /// The assigned id.
        id: u32,
        /// The interned string.
        name: String,
    },
    /// One ingested claim, with the names it newly interned (if any).
    Claim {
        /// The claim in dense ids.
        claim: Claim,
        /// The source name, when this ingest interned it.
        source_def: Option<String>,
        /// The item name, when this ingest interned it.
        item_def: Option<String>,
        /// The value string, when this ingest interned it.
        value_def: Option<String>,
    },
}

const KIND_DEF_SOURCE: u8 = 1;
const KIND_DEF_ITEM: u8 = 2;
const KIND_DEF_VALUE: u8 = 3;
const KIND_CLAIM: u8 = 4;

/// Encodes a record payload (no framing).
pub(crate) fn encode_record(record: &WalRecord) -> Result<Vec<u8>, FormatError> {
    let mut out = Vec::new();
    match record {
        WalRecord::DefSource { id, name }
        | WalRecord::DefItem { id, name }
        | WalRecord::DefValue { id, name } => {
            codec::put_u8(
                &mut out,
                match record {
                    WalRecord::DefSource { .. } => KIND_DEF_SOURCE,
                    WalRecord::DefItem { .. } => KIND_DEF_ITEM,
                    _ => KIND_DEF_VALUE,
                },
            );
            codec::put_u32(&mut out, *id);
            codec::put_str(&mut out, name).map_err(FormatError::from)?;
        }
        WalRecord::Claim { claim, source_def, item_def, value_def } => {
            codec::put_u8(&mut out, KIND_CLAIM);
            codec::put_claim(&mut out, claim);
            let flags = u8::from(source_def.is_some())
                | u8::from(item_def.is_some()) << 1
                | u8::from(value_def.is_some()) << 2;
            codec::put_u8(&mut out, flags);
            for def in [source_def, item_def, value_def].into_iter().flatten() {
                codec::put_str(&mut out, def).map_err(FormatError::from)?;
            }
        }
    }
    Ok(out)
}

/// Decodes one record payload; the payload must be exactly one record.
pub(crate) fn decode_record(payload: &[u8]) -> Result<WalRecord, FormatError> {
    let mut r = Reader::new(payload);
    let kind = r.u8()?;
    let record = match kind {
        KIND_DEF_SOURCE | KIND_DEF_ITEM | KIND_DEF_VALUE => {
            let id = r.u32()?;
            let name = r.string()?;
            match kind {
                KIND_DEF_SOURCE => WalRecord::DefSource { id, name },
                KIND_DEF_ITEM => WalRecord::DefItem { id, name },
                _ => WalRecord::DefValue { id, name },
            }
        }
        KIND_CLAIM => {
            let claim = r.claim()?;
            let flags = r.u8()?;
            if flags & !0b111 != 0 {
                return Err(FormatError::Corrupt(format!("bad claim flags {flags:#04x}")));
            }
            let source_def = if flags & 1 != 0 { Some(r.string()?) } else { None };
            let item_def = if flags & 2 != 0 { Some(r.string()?) } else { None };
            let value_def = if flags & 4 != 0 { Some(r.string()?) } else { None };
            WalRecord::Claim { claim, source_def, item_def, value_def }
        }
        other => return Err(FormatError::Corrupt(format!("unknown WAL record kind {other}"))),
    };
    if !r.is_empty() {
        return Err(FormatError::Corrupt(format!(
            "{} trailing byte(s) after a kind-{kind} record",
            r.remaining()
        )));
    }
    Ok(record)
}

/// Frames an encoded record payload: `[len][payload][crc32]`.
///
/// A payload past [`MAX_FRAME_LEN`] cannot be framed (its length would not
/// scan back) and is refused as a typed error, never an assert — WAL
/// appends run on the ingest path.
pub(crate) fn encode_frame(payload: &[u8]) -> Result<Vec<u8>, FormatError> {
    let len =
        u32::try_from(payload.len()).ok().filter(|&len| len <= MAX_FRAME_LEN).ok_or_else(|| {
            FormatError::Corrupt(format!(
                "WAL frame payload of {} bytes exceeds the {MAX_FRAME_LEN}-byte limit",
                payload.len()
            ))
        })?;
    let mut out = Vec::with_capacity(payload.len() + 8);
    codec::put_u32(&mut out, len);
    out.extend_from_slice(payload);
    codec::put_u32(&mut out, crc32(payload));
    Ok(out)
}

/// Result of scanning a WAL's bytes.
#[derive(Debug)]
pub(crate) struct WalContents {
    /// The decoded records of every complete, checksummed frame, in order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix (header + complete frames). Anything
    /// beyond is a torn tail from a crash mid-append and must be truncated
    /// before the log is appended to again.
    pub valid_len: usize,
    /// `true` if a torn tail was found (and dropped).
    pub torn: bool,
}

/// Scans a write-ahead log.
///
/// An empty or header-only file is a valid empty log; a file shorter than
/// the header is treated as a torn header (empty log). A complete frame
/// whose checksum or record fails to decode is **corruption**; an
/// *incomplete* trailing frame is a torn tail and is dropped silently.
pub(crate) fn read_wal(bytes: &[u8]) -> Result<WalContents, FormatError> {
    let header_parts = bytes.split_at_checked(WAL_HEADER_LEN).and_then(|(header, rest)| {
        let header: &[u8; WAL_HEADER_LEN] = header.try_into().ok()?;
        Some((*header, rest))
    });
    let Some(([m0, m1, m2, m3, v0, v1, v2, v3], mut rest)) = header_parts else {
        // A torn header write; nothing was ever durably logged.
        return Ok(WalContents { records: Vec::new(), valid_len: 0, torn: !bytes.is_empty() });
    };
    let found_magic = [m0, m1, m2, m3];
    if found_magic != MAGIC_WAL {
        return Err(FormatError::Corrupt(format!(
            "bad WAL magic {found_magic:02x?}, expected {MAGIC_WAL:02x?}"
        )));
    }
    let version = u32::from_le_bytes([v0, v1, v2, v3]);
    if version != FORMAT_VERSION {
        return Err(FormatError::Version(version));
    }
    let mut records = Vec::new();
    let mut pos = WAL_HEADER_LEN;
    loop {
        if rest.is_empty() {
            return Ok(WalContents { records, valid_len: pos, torn: false });
        }
        let torn = WalContents { records: Vec::new(), valid_len: pos, torn: true };
        // Each frame is peeled off with checked splits; any piece that ends
        // early is the torn-tail case, never an index panic.
        let frame = rest.split_at_checked(4).and_then(|(len_bytes, after_len)| {
            let len_bytes: [u8; 4] = len_bytes.try_into().ok()?;
            Some((u32::from_le_bytes(len_bytes), after_len))
        });
        let Some((len, after_len)) = frame else {
            return Ok(WalContents { records, ..torn });
        };
        if len > MAX_FRAME_LEN {
            return Err(FormatError::Corrupt(format!(
                "frame at byte {pos} declares {len} bytes (limit {MAX_FRAME_LEN})"
            )));
        }
        let payload_len = u32_to_usize(len);
        let Some((payload, after_payload)) = after_len.split_at_checked(payload_len) else {
            // The final append was cut short — the torn-tail case.
            return Ok(WalContents { records, ..torn });
        };
        let crc_parts = after_payload.split_at_checked(4).and_then(|(crc_bytes, next)| {
            let crc_bytes: [u8; 4] = crc_bytes.try_into().ok()?;
            Some((u32::from_le_bytes(crc_bytes), next))
        });
        let Some((stored, next)) = crc_parts else {
            return Ok(WalContents { records, ..torn });
        };
        let actual = crc32(payload);
        if stored != actual {
            return Err(FormatError::Corrupt(format!(
                "frame at byte {pos} checksum mismatch: stored {stored:#010x}, computed {actual:#010x}"
            )));
        }
        records.push(decode_record(payload)?);
        pos += 4 + payload_len + 4;
        rest = next;
    }
}

#[cfg(test)]
#[allow(clippy::indexing_slicing, clippy::cast_possible_truncation)]
mod tests {
    use super::*;
    use crate::segment::GrowingSegment;
    use proptest::prelude::*;

    fn sample_segment() -> SealedSegment {
        let mut g = GrowingSegment::new();
        g.insert(SourceId::new(0), ItemId::new(2), ValueId::new(1));
        g.insert(SourceId::new(0), ItemId::new(0), ValueId::new(0));
        g.insert(SourceId::new(5), ItemId::new(1), ValueId::new(3));
        g.freeze()
    }

    fn segments_equal(a: &SealedSegment, b: &SealedSegment) -> bool {
        a.num_claims() == b.num_claims()
            && a.per_source().zip(b.per_source()).all(|((s1, l1), (s2, l2))| s1 == s2 && l1 == l2)
            && a.num_sources() == b.num_sources()
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC32 test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn envelope_roundtrip_and_tamper_detection() {
        let original = encode_file(MAGIC_TABLES, b"hello payload");
        assert_eq!(decode_file(MAGIC_TABLES, &original).unwrap(), b"hello payload");

        // Wrong magic class.
        assert!(matches!(decode_file(MAGIC_SEGMENT, &original), Err(FormatError::Corrupt(_))));
        // A flipped payload bit fails the checksum.
        let mut flipped = original.clone();
        flipped[18] ^= 0x40;
        assert!(matches!(decode_file(MAGIC_TABLES, &flipped), Err(FormatError::Corrupt(_))));
        // A flipped checksum bit fails too.
        let mut bad_crc = original.clone();
        *bad_crc.last_mut().unwrap() ^= 1;
        assert!(matches!(decode_file(MAGIC_TABLES, &bad_crc), Err(FormatError::Corrupt(_))));
        // A truncated file is reported as truncated.
        assert!(matches!(
            decode_file(MAGIC_TABLES, &original[..original.len() - 3]),
            Err(FormatError::Truncated(_))
        ));
        // A length field damaged to near-u64::MAX is truncation, not an
        // arithmetic overflow panic.
        let mut huge_len = original.clone();
        huge_len[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(decode_file(MAGIC_TABLES, &huge_len), Err(FormatError::Truncated(_))));
        assert!(matches!(
            decode_file(MAGIC_TABLES, &original[..7]),
            Err(FormatError::Truncated(_))
        ));
        // Extra bytes after the checksum are corruption, not silently ignored.
        let mut padded = original.clone();
        padded.push(0);
        assert!(matches!(decode_file(MAGIC_TABLES, &padded), Err(FormatError::Corrupt(_))));
        // A foreign version is a version mismatch.
        let mut wrong_version = original;
        wrong_version[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(decode_file(MAGIC_TABLES, &wrong_version), Err(FormatError::Version(99)));
    }

    #[test]
    fn tables_roundtrip_including_empty_and_non_ascii() {
        let cases: Vec<(Vec<String>, Vec<String>, Vec<String>)> = vec![
            (vec![], vec![], vec![]),
            (
                vec!["alice".into(), "böb".into(), "источник".into()],
                vec!["NJ".into(), "首都".into()],
                vec!["".into(), "Trenton\u{1F600}".into()],
            ),
        ];
        for (s, i, v) in cases {
            let bytes = encode_tables(&s, &i, &v).unwrap();
            assert_eq!(decode_tables(&bytes).unwrap(), (s, i, v));
        }
    }

    #[test]
    fn segment_roundtrip_and_invariant_validation() {
        let seg = sample_segment();
        let bytes = encode_segment(&seg).unwrap();
        let back = decode_segment(&bytes).unwrap();
        assert!(segments_equal(&seg, &back));

        // Hand-roll a payload with out-of-order sources → corrupt.
        let mut payload = Vec::new();
        codec::put_u32(&mut payload, 2);
        for source in [3u32, 1] {
            codec::put_u32(&mut payload, source);
            codec::put_u32(&mut payload, 1);
            codec::put_u32(&mut payload, 0);
            codec::put_u32(&mut payload, 0);
        }
        let file = encode_file(MAGIC_SEGMENT, &payload);
        assert!(matches!(decode_segment(&file), Err(FormatError::Corrupt(_))));
    }

    #[test]
    fn manifest_roundtrip_and_validation() {
        let m = Manifest {
            next_seq: 7,
            tables: vec!["tables-000003.tbl".into(), "tables-000005.tbl".into()],
            segments: vec!["seg-000001.seg".into(), "seg-000002.seg".into()],
        };
        let bytes = encode_manifest(&m).unwrap();
        assert_eq!(decode_manifest(&bytes).unwrap(), m);

        let empty = Manifest::default();
        let bytes = encode_manifest(&empty).unwrap();
        assert_eq!(decode_manifest(&bytes).unwrap(), empty);

        // Path-traversal names are rejected — in the tables chain too.
        let evil = Manifest { next_seq: 0, tables: vec![], segments: vec!["../../etc".into()] };
        let bytes = encode_manifest(&evil).unwrap();
        assert!(matches!(decode_manifest(&bytes), Err(FormatError::Corrupt(_))));
        let evil = Manifest { next_seq: 0, tables: vec!["a/b.tbl".into()], segments: vec![] };
        let bytes = encode_manifest(&evil).unwrap();
        assert!(matches!(decode_manifest(&bytes), Err(FormatError::Corrupt(_))));
    }

    #[test]
    fn wal_frames_roundtrip_and_torn_tail_is_dropped() {
        let records = vec![
            WalRecord::DefSource { id: 0, name: "alice".into() },
            WalRecord::Claim {
                claim: Claim::new(SourceId::new(0), ItemId::new(0), ValueId::new(0)),
                source_def: None,
                item_def: Some("NJ".into()),
                value_def: Some("Trenton".into()),
            },
            WalRecord::DefValue { id: 1, name: "Ph\u{153}nix".into() },
        ];
        let mut bytes = wal_header();
        for record in &records {
            bytes.extend_from_slice(&encode_frame(&encode_record(record).unwrap()).unwrap());
        }
        let full = read_wal(&bytes).unwrap();
        assert_eq!(full.records, records);
        assert_eq!(full.valid_len, bytes.len());
        assert!(!full.torn);

        // Cutting anywhere inside the final frame drops exactly that frame.
        let second_end =
            full.valid_len - encode_frame(&encode_record(&records[2]).unwrap()).unwrap().len();
        for cut in second_end + 1..bytes.len() {
            let torn = read_wal(&bytes[..cut]).unwrap();
            assert_eq!(torn.records, records[..2], "cut at {cut}");
            assert_eq!(torn.valid_len, second_end);
            assert!(torn.torn);
        }

        // A bit flip in a *complete* frame is corruption, not truncation.
        let mut flipped = bytes.clone();
        flipped[WAL_HEADER_LEN + 6] ^= 0x10;
        assert!(matches!(read_wal(&flipped), Err(FormatError::Corrupt(_))));

        // Bad header magic / version.
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert!(matches!(read_wal(&bad_magic), Err(FormatError::Corrupt(_))));
        let mut bad_version = bytes;
        bad_version[4] = 9;
        assert!(matches!(read_wal(&bad_version), Err(FormatError::Version(9))));

        // Empty and torn-header files are valid empty logs.
        assert!(read_wal(&[]).unwrap().records.is_empty());
        let torn_header = read_wal(&MAGIC_WAL[..3]).unwrap();
        assert!(torn_header.records.is_empty() && torn_header.torn);
    }

    #[test]
    fn oversized_frame_length_is_corruption() {
        let mut bytes = wal_header();
        codec::put_u32(&mut bytes, MAX_FRAME_LEN + 1);
        assert!(matches!(read_wal(&bytes), Err(FormatError::Corrupt(_))));
    }

    // -- round-trip properties ---------------------------------------------

    /// Short strings over a mixed ASCII / non-ASCII alphabet.
    fn name_strategy() -> impl Strategy<Value = String> {
        prop::collection::vec(0u8..12, 0..8).prop_map(|chars| {
            const ALPHABET: [char; 12] =
                ['a', 'Z', '0', '#', '\t', ' ', 'é', 'ß', '雪', '\u{1F600}', '\u{0}', 'Ω'];
            chars.into_iter().map(|i| ALPHABET[i as usize]).collect()
        })
    }

    fn record_strategy() -> impl Strategy<Value = WalRecord> {
        (0u8..4, any::<u32>(), name_strategy(), name_strategy(), name_strategy(), 0u8..8).prop_map(
            |(kind, id, a, b, c, flags)| match kind {
                0 => WalRecord::DefSource { id, name: a },
                1 => WalRecord::DefItem { id, name: a },
                2 => WalRecord::DefValue { id, name: a },
                _ => WalRecord::Claim {
                    claim: Claim::new(
                        SourceId::new(id),
                        ItemId::new(id.wrapping_mul(3)),
                        ValueId::new(id.wrapping_add(7)),
                    ),
                    source_def: (flags & 1 != 0).then_some(a),
                    item_def: (flags & 2 != 0).then_some(b),
                    value_def: (flags & 4 != 0).then_some(c),
                },
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// decode(encode(record)) == record for arbitrary records, and the
        /// framed form survives a full WAL scan.
        #[test]
        fn wal_record_roundtrip(records in prop::collection::vec(record_strategy(), 0..12)) {
            let mut bytes = wal_header();
            for record in &records {
                let payload = encode_record(record).unwrap();
                prop_assert_eq!(&decode_record(&payload).unwrap(), record);
                bytes.extend_from_slice(&encode_frame(&payload).unwrap());
            }
            let scanned = read_wal(&bytes).unwrap();
            prop_assert_eq!(scanned.records, records);
            prop_assert_eq!(scanned.valid_len, bytes.len());
            prop_assert!(!scanned.torn);
        }

        /// decode(encode(tables)) == tables for arbitrary name tables.
        #[test]
        fn tables_roundtrip(
            sources in prop::collection::vec(name_strategy(), 0..6),
            items in prop::collection::vec(name_strategy(), 0..6),
            values in prop::collection::vec(name_strategy(), 0..6),
        ) {
            let bytes = encode_tables(&sources, &items, &values).unwrap();
            prop_assert_eq!(decode_tables(&bytes).unwrap(), (sources, items, values));
        }

        /// Arbitrary segments round-trip through the segment codec.
        #[test]
        fn segment_codec_roundtrip(claims in prop::collection::vec((0u32..20, 0u32..20, 0u32..8), 0..40)) {
            let mut g = GrowingSegment::new();
            for (s, d, v) in claims {
                g.insert(SourceId::new(s), ItemId::new(d), ValueId::new(v));
            }
            let seg = g.freeze();
            let back = decode_segment(&encode_segment(&seg).unwrap()).unwrap();
            prop_assert!(segments_equal(&seg, &back));
        }

        /// Feeding arbitrary bytes to every decoder returns an error or a
        /// value — never a panic, never an absurd allocation.
        #[test]
        fn decoders_tolerate_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
            let _ = decode_tables(&bytes);
            let _ = decode_segment(&bytes);
            let _ = decode_manifest(&bytes);
            let _ = decode_record(&bytes);
            let _ = read_wal(&bytes);
            let _ = decode_file(MAGIC_TABLES, &bytes);
        }

        /// Arbitrary bytes *appended to a valid WAL* either extend it with
        /// garbage that is flagged (torn/corrupt) or leave the valid prefix
        /// intact — the original records are never lost or reordered.
        #[test]
        fn wal_prefix_survives_garbage_tail(tail in prop::collection::vec(any::<u8>(), 0..40)) {
            let record = WalRecord::DefSource { id: 0, name: "s".into() };
            let mut bytes = wal_header();
            bytes.extend_from_slice(&encode_frame(&encode_record(&record).unwrap()).unwrap());
            let valid = bytes.len();
            bytes.extend_from_slice(&tail);
            match read_wal(&bytes) {
                Ok(contents) => {
                    prop_assert!(!contents.records.is_empty());
                    prop_assert_eq!(&contents.records[0], &record);
                    prop_assert!(contents.valid_len >= valid || contents.records.len() == 1);
                }
                Err(FormatError::Corrupt(_)) | Err(FormatError::Version(_)) => {}
                Err(other) => prop_assert!(false, "unexpected error {:?}", other),
            }
        }
    }
}
