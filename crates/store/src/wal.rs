//! The physical I/O layer of the durable store: every byte that reaches disk
//! goes through [`DurableIo`], which funnels writes, fsyncs, renames and
//! removals past an injectable [`SyncPoint`] hook — the crash-injection
//! surface the recovery test suite is built on — and the [`WalWriter`] that
//! appends checksummed frames to the write-ahead log.
//!
//! ## Crash model
//!
//! A [`SyncPoint`] decides the fate of each physical event: let it through,
//! cut a write short after a prefix of its bytes (a torn write), or drop it
//! entirely. The first cut or drop puts the `DurableIo` into **dead mode**:
//! every later event is silently skipped, exactly as if the process had been
//! killed at that boundary — the in-memory store sails on, the disk freezes.
//! Tests then discard the store and recover from the directory, asserting
//! the recovered state equals the durable prefix.
//!
//! Real I/O errors are *not* part of the crash model: they are returned to
//! the persistence layer, which records the first failure as the store's
//! sticky [`StoreIoError`](crate::StoreIoError) and stops persisting.

use crate::error::StoreIoError;
use crate::format::{self, WalRecord};
use copydet_model::codec::usize_to_u64;
use copydet_obs::event::field;
use copydet_obs::{emit, registry, Histogram, Severity, Span};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

/// An append or fsync slower than this is a stall worth an event: 10ms is
/// two orders of magnitude above a healthy buffered append and roughly a
/// spinning disk's worst-case seek, so it only fires when the device (or a
/// saturated queue ahead of it) is genuinely misbehaving.
const WAL_STALL_NANOS: u64 = 10_000_000;

/// Latency of one WAL frame append (encode + gated write), in nanoseconds.
fn wal_append_nanos() -> &'static Arc<Histogram> {
    static HIST: OnceLock<Arc<Histogram>> = OnceLock::new();
    HIST.get_or_init(|| registry().histogram("copydet_store_wal_append_nanos"))
}

/// Latency of one WAL fsync, in nanoseconds.
fn wal_fsync_nanos() -> &'static Arc<Histogram> {
    static HIST: OnceLock<Arc<Histogram>> = OnceLock::new();
    HIST.get_or_init(|| registry().histogram("copydet_store_wal_fsync_nanos"))
}

/// The fate of one physical I/O event, chosen by a [`SyncPoint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePermit {
    /// Perform the event in full.
    Full,
    /// Write only the first `n` bytes, then die (simulates a torn write; for
    /// non-write events such as renames any `Partial` behaves like `Die`).
    Partial(usize),
    /// Skip the event and die.
    Die,
}

/// A fault-injection hook observing (and deciding) every physical I/O event
/// of a durable store.
///
/// `tag` names the event — `"wal:frame"`, `"segment:rename"`,
/// `"manifest:dirsync"`, … — and `len` is the number of bytes about to be
/// written (0 for renames, fsyncs, truncations and removals). Returning
/// anything but [`WritePermit::Full`] kills the store's persistence at that
/// boundary; see the module docs for the crash model.
///
/// Production stores never install a hook; the default is a no-op.
pub trait SyncPoint: Send + Sync {
    /// Decides the fate of one physical I/O event.
    fn permit(&self, tag: &str, len: usize) -> WritePermit;
}

/// How [`DurableIo::gate`] resolved an event.
enum Gate {
    /// Proceed with the full event.
    Proceed,
    /// Write only this many bytes, then enter dead mode.
    Cut(usize),
    /// Skip the event entirely (dead mode, or the hook said die).
    Skip,
}

/// All physical file operations of a durable store, gated by an optional
/// [`SyncPoint`] and a dead flag.
pub(crate) struct DurableIo {
    dir: PathBuf,
    hook: Option<Arc<dyn SyncPoint>>,
    dead: bool,
}

impl std::fmt::Debug for DurableIo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableIo")
            .field("dir", &self.dir)
            .field("hooked", &self.hook.is_some())
            .field("dead", &self.dead)
            .finish()
    }
}

impl DurableIo {
    /// Creates the I/O layer for `dir`, optionally fault-injected.
    pub fn new(dir: PathBuf, hook: Option<Arc<dyn SyncPoint>>) -> Self {
        Self { dir, hook, dead: false }
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Absolute path of a file inside the store directory.
    pub fn path_of(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    /// `true` once a sync point has simulated a crash; all later events are
    /// skipped.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    fn gate(&mut self, tag: &str, len: usize) -> Gate {
        if self.dead {
            return Gate::Skip;
        }
        match self.hook.as_ref().map_or(WritePermit::Full, |h| h.permit(tag, len)) {
            WritePermit::Full => Gate::Proceed,
            WritePermit::Partial(n) if n >= len => {
                // Writing every byte and then dying is still a death.
                self.dead = true;
                Gate::Cut(len)
            }
            WritePermit::Partial(n) => {
                self.dead = true;
                Gate::Cut(n)
            }
            WritePermit::Die => {
                self.dead = true;
                Gate::Skip
            }
        }
    }

    /// Appends `bytes` to an open file (gated).
    pub fn append(
        &mut self,
        file: &mut File,
        path: &Path,
        tag: &str,
        bytes: &[u8],
    ) -> Result<(), StoreIoError> {
        let take = match self.gate(tag, bytes.len()) {
            Gate::Proceed => bytes.len(),
            Gate::Cut(n) => n,
            Gate::Skip => return Ok(()),
        };
        // `take` never exceeds `bytes.len()` (the gate cuts, it does not
        // extend); `get` keeps the slice total regardless.
        file.write_all(bytes.get(..take).unwrap_or(bytes)).map_err(|e| StoreIoError::io(path, &e))
    }

    /// Fsyncs an open file (gated).
    pub fn fsync(&mut self, file: &File, path: &Path, tag: &str) -> Result<(), StoreIoError> {
        match self.gate(tag, 0) {
            Gate::Proceed => file.sync_all().map_err(|e| StoreIoError::io(path, &e)),
            Gate::Cut(_) | Gate::Skip => Ok(()),
        }
    }

    /// Truncates an open file to `len` bytes (gated).
    pub fn truncate(
        &mut self,
        file: &File,
        path: &Path,
        tag: &str,
        len: u64,
    ) -> Result<(), StoreIoError> {
        match self.gate(tag, 0) {
            Gate::Proceed => file.set_len(len).map_err(|e| StoreIoError::io(path, &e)),
            Gate::Cut(_) | Gate::Skip => Ok(()),
        }
    }

    /// Removes a file by name, ignoring "not found" (gated).
    pub fn remove(&mut self, name: &str, tag: &str) -> Result<(), StoreIoError> {
        match self.gate(tag, 0) {
            Gate::Proceed => {}
            Gate::Cut(_) | Gate::Skip => return Ok(()),
        }
        let path = self.path_of(name);
        match std::fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(StoreIoError::io(path, &e)),
        }
    }

    /// Fsyncs the store directory so a preceding rename is durable (gated).
    pub fn fsync_dir(&mut self, tag: &str) -> Result<(), StoreIoError> {
        match self.gate(tag, 0) {
            Gate::Proceed => {}
            Gate::Cut(_) | Gate::Skip => return Ok(()),
        }
        // Directory fsync is a POSIX-ism; on platforms where opening a
        // directory fails, the rename itself is the best available barrier.
        if let Ok(dir) = File::open(&self.dir) {
            dir.sync_all().map_err(|e| StoreIoError::io(&self.dir, &e))?;
        }
        Ok(())
    }

    /// Writes `bytes` to `name` atomically: write `name.tmp`, fsync it,
    /// rename over `name`, fsync the directory. Emits the gated events
    /// `{tag}:write`, `{tag}:fsync`, `{tag}:rename`, `{tag}:dirsync`.
    ///
    /// A reader never observes a partially written `name`: either the old
    /// file (or absence) survives, or the complete new bytes do.
    pub fn atomic_write(
        &mut self,
        name: &str,
        tag: &str,
        bytes: &[u8],
    ) -> Result<(), StoreIoError> {
        let tmp_name = format!("{name}.tmp");
        let tmp = self.path_of(&tmp_name);
        let take = match self.gate(&format!("{tag}:write"), bytes.len()) {
            Gate::Proceed => bytes.len(),
            Gate::Cut(n) => n,
            Gate::Skip => return Ok(()),
        };
        let mut file = File::create(&tmp).map_err(|e| StoreIoError::io(&tmp, &e))?;
        file.write_all(bytes.get(..take).unwrap_or(bytes))
            .map_err(|e| StoreIoError::io(&tmp, &e))?;
        self.fsync(&file, &tmp, &format!("{tag}:fsync"))?;
        drop(file);
        match self.gate(&format!("{tag}:rename"), 0) {
            Gate::Proceed => {}
            Gate::Cut(_) | Gate::Skip => return Ok(()),
        }
        let dest = self.path_of(name);
        std::fs::rename(&tmp, &dest).map_err(|e| StoreIoError::io(&dest, &e))?;
        self.fsync_dir(&format!("{tag}:dirsync"))
    }
}

/// Appends checksummed frames to the write-ahead log and resets it after a
/// durable seal.
#[derive(Debug)]
pub(crate) struct WalWriter {
    file: Option<File>,
    path: PathBuf,
    /// Complete frames currently in the log file.
    frames: u64,
    /// Bytes currently in the log file (header + frames).
    bytes: u64,
    /// Frames appended since the last fsync.
    unsynced: u64,
    /// Fsync after every append instead of at sync/seal boundaries.
    fsync_each: bool,
}

/// Name of the write-ahead log inside a store directory.
pub(crate) const WAL_FILE: &str = "wal.log";

impl WalWriter {
    /// Creates a fresh log (atomic header write), or resets an existing one.
    pub fn create(io: &mut DurableIo, fsync_each: bool) -> Result<Self, StoreIoError> {
        let mut writer = WalWriter {
            file: None,
            path: io.path_of(WAL_FILE),
            frames: 0,
            bytes: usize_to_u64(format::WAL_HEADER_LEN),
            unsynced: 0,
            fsync_each,
        };
        writer.reset(io)?;
        Ok(writer)
    }

    /// Opens an existing log whose valid prefix is `valid_len` bytes and
    /// holds `frames` frames; a torn tail beyond the prefix is truncated
    /// away so later appends start at a clean boundary.
    pub fn open_existing(
        io: &mut DurableIo,
        valid_len: u64,
        frames: u64,
        torn: bool,
        fsync_each: bool,
    ) -> Result<Self, StoreIoError> {
        let path = io.path_of(WAL_FILE);
        let file =
            OpenOptions::new().append(true).open(&path).map_err(|e| StoreIoError::io(&path, &e))?;
        if torn {
            io.truncate(&file, &path, "wal:truncate", valid_len)?;
        }
        Ok(WalWriter { file: Some(file), path, frames, bytes: valid_len, unsynced: 0, fsync_each })
    }

    /// Number of complete frames in the log.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Byte length of the log (header + frames).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// `true` if frames were appended since the last fsync.
    pub fn needs_sync(&self) -> bool {
        self.unsynced > 0
    }

    /// Appends one record as a checksummed frame (write-ahead: call before
    /// applying the record in memory).
    pub fn append(&mut self, io: &mut DurableIo, record: &WalRecord) -> Result<(), StoreIoError> {
        let span = Span::start();
        let payload = format::encode_record(record).map_err(|e| e.at(&self.path))?;
        let frame = format::encode_frame(&payload).map_err(|e| e.at(&self.path))?;
        let Some(file) = self.file.as_mut() else {
            // Detached writer: a sync point "killed" the store mid-reset;
            // every later event is skipped, like all dead-mode I/O.
            return Ok(());
        };
        io.append(file, &self.path, "wal:frame", &frame)?;
        self.frames += 1;
        self.bytes += usize_to_u64(frame.len());
        self.unsynced += 1;
        // Recorded before any chained fsync, so the append and fsync series
        // decompose the per-claim durability cost instead of double-counting.
        let nanos = span.elapsed_nanos();
        wal_append_nanos().record(nanos);
        if nanos >= WAL_STALL_NANOS {
            emit(
                Severity::Warn,
                "store",
                "wal.append_stall",
                vec![field::u64("nanos", nanos), field::u64("frames", self.frames)],
            );
        }
        if self.fsync_each {
            self.sync(io)?;
        }
        Ok(())
    }

    /// Fsyncs appended frames down to disk.
    pub fn sync(&mut self, io: &mut DurableIo) -> Result<(), StoreIoError> {
        let span = Span::start();
        if let Some(file) = &self.file {
            io.fsync(file, &self.path, "wal:fsync")?;
        }
        self.unsynced = 0;
        let nanos = span.elapsed_nanos();
        wal_fsync_nanos().record(nanos);
        if nanos >= WAL_STALL_NANOS {
            emit(
                Severity::Warn,
                "store",
                "wal.fsync_stall",
                vec![field::u64("nanos", nanos), field::u64("frames", self.frames)],
            );
        }
        Ok(())
    }

    /// Resets the log to an empty header via atomic rename — called after a
    /// durable seal has committed the frames' claims into a sealed segment.
    /// If the rename is cut by a crash, the old log survives intact; its
    /// frames replay idempotently over the committed segment.
    pub fn reset(&mut self, io: &mut DurableIo) -> Result<(), StoreIoError> {
        self.file = None;
        io.atomic_write(WAL_FILE, "wal:reset", &format::wal_header())?;
        self.frames = 0;
        self.bytes = usize_to_u64(format::WAL_HEADER_LEN);
        self.unsynced = 0;
        if io.is_dead() {
            // The process "died" at this boundary; leave the writer detached
            // (every later event is skipped anyway).
            return Ok(());
        }
        let file = OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|e| StoreIoError::io(&self.path, &e))?;
        self.file = Some(file);
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::indexing_slicing, clippy::cast_possible_truncation)]
mod tests {
    use super::*;
    use crate::format::read_wal;
    use copydet_model::{Claim, ItemId, SourceId, ValueId};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    fn tmp_dir(label: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "copydet_wal_{label}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_record(i: u32) -> WalRecord {
        WalRecord::Claim {
            claim: Claim::new(SourceId::new(i), ItemId::new(0), ValueId::new(i)),
            source_def: Some(format!("S{i}")),
            item_def: None,
            value_def: None,
        }
    }

    #[test]
    fn append_reset_append_roundtrip() {
        let dir = tmp_dir("roundtrip");
        let mut io = DurableIo::new(dir.clone(), None);
        let mut wal = WalWriter::create(&mut io, false).unwrap();
        for i in 0..3 {
            wal.append(&mut io, &sample_record(i)).unwrap();
        }
        assert!(wal.needs_sync());
        wal.sync(&mut io).unwrap();
        assert!(!wal.needs_sync());
        assert_eq!(wal.frames(), 3);

        let contents = read_wal(&std::fs::read(dir.join(WAL_FILE)).unwrap()).unwrap();
        assert_eq!(contents.records.len(), 3);
        assert_eq!(contents.records[1], sample_record(1));

        wal.reset(&mut io).unwrap();
        assert_eq!(wal.frames(), 0);
        wal.append(&mut io, &sample_record(9)).unwrap();
        let contents = read_wal(&std::fs::read(dir.join(WAL_FILE)).unwrap()).unwrap();
        assert_eq!(contents.records, vec![sample_record(9)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_existing_truncates_a_torn_tail() {
        let dir = tmp_dir("torn");
        let mut io = DurableIo::new(dir.clone(), None);
        let mut wal = WalWriter::create(&mut io, true).unwrap();
        wal.append(&mut io, &sample_record(0)).unwrap();
        let valid = wal.bytes();
        drop(wal);
        // Simulate a crash mid-append: garbage half-frame at the tail.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(dir.join(WAL_FILE)).unwrap();
            f.write_all(&[7, 0, 0, 0, 1, 2]).unwrap();
        }
        let bytes = std::fs::read(dir.join(WAL_FILE)).unwrap();
        let contents = read_wal(&bytes).unwrap();
        assert!(contents.torn);
        assert_eq!(contents.valid_len as u64, valid);

        let mut wal = WalWriter::open_existing(
            &mut io,
            contents.valid_len as u64,
            contents.records.len() as u64,
            contents.torn,
            false,
        )
        .unwrap();
        wal.append(&mut io, &sample_record(1)).unwrap();
        wal.sync(&mut io).unwrap();
        let contents = read_wal(&std::fs::read(dir.join(WAL_FILE)).unwrap()).unwrap();
        assert_eq!(contents.records, vec![sample_record(0), sample_record(1)]);
        assert!(!contents.torn, "the torn tail was truncated before appending");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Kills at the `n`-th event, optionally tearing a write in half.
    struct KillAt {
        counter: AtomicUsize,
        at: usize,
        tear: bool,
        log: Mutex<Vec<(String, usize)>>,
    }

    impl SyncPoint for KillAt {
        fn permit(&self, tag: &str, len: usize) -> WritePermit {
            let i = self.counter.fetch_add(1, Ordering::SeqCst);
            self.log.lock().unwrap().push((tag.to_owned(), len));
            match i.cmp(&self.at) {
                std::cmp::Ordering::Less => WritePermit::Full,
                std::cmp::Ordering::Equal if self.tear && len > 0 => WritePermit::Partial(len / 2),
                _ => WritePermit::Die,
            }
        }
    }

    #[test]
    fn dead_mode_freezes_the_disk_and_tears_are_recoverable() {
        let dir = tmp_dir("kill");
        let hook = Arc::new(KillAt {
            counter: AtomicUsize::new(0),
            at: 5,
            tear: true,
            log: Mutex::new(Vec::new()),
        });
        let mut io = DurableIo::new(dir.clone(), Some(Arc::clone(&hook) as Arc<dyn SyncPoint>));
        let mut wal = WalWriter::create(&mut io, false).unwrap(); // events 0..4 (header atomic write)
        assert!(!io.is_dead());
        wal.append(&mut io, &sample_record(0)).unwrap(); // event 4: full frame
        wal.append(&mut io, &sample_record(1)).unwrap(); // event 5: torn in half
        assert!(io.is_dead());
        wal.append(&mut io, &sample_record(2)).unwrap(); // skipped silently
        wal.sync(&mut io).unwrap(); // skipped
        drop(wal);

        let contents = read_wal(&std::fs::read(dir.join(WAL_FILE)).unwrap()).unwrap();
        assert_eq!(contents.records, vec![sample_record(0)], "only the pre-crash frame is durable");
        assert!(contents.torn, "the cut frame is a torn tail");
        let log = hook.log.lock().unwrap();
        assert_eq!(log[0].0, "wal:reset:write");
        assert_eq!(log[4].0, "wal:frame");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn atomic_write_cut_at_rename_preserves_the_old_file() {
        let dir = tmp_dir("rename");
        let mut io = DurableIo::new(dir.clone(), None);
        io.atomic_write("MANIFEST", "manifest", b"old").unwrap();

        let hook = Arc::new(KillAt {
            counter: AtomicUsize::new(0),
            at: 2, // manifest:write, manifest:fsync, then die at manifest:rename
            tear: false,
            log: Mutex::new(Vec::new()),
        });
        let mut io = DurableIo::new(dir.clone(), Some(hook as Arc<dyn SyncPoint>));
        io.atomic_write("MANIFEST", "manifest", b"new").unwrap();
        assert!(io.is_dead());
        assert_eq!(std::fs::read(dir.join("MANIFEST")).unwrap(), b"old");
        io.remove("MANIFEST", "gc").unwrap(); // dead: skipped
        assert!(dir.join("MANIFEST").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
