//! Summary statistics of a [`ClaimStore`](crate::ClaimStore).

use serde::{Deserialize, Serialize};

/// A point-in-time summary of a store's shape, for monitoring and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreStats {
    /// Number of snapshots taken so far.
    pub epoch: u64,
    /// Sources seen so far.
    pub num_sources: usize,
    /// Items seen so far.
    pub num_items: usize,
    /// Distinct values seen so far.
    pub num_values: usize,
    /// Distinct live `(source, item)` claims in the merged view.
    pub live_claims: usize,
    /// Total ingest calls (including overwrites). After a recovery this is
    /// a lower bound: overwrites that collapsed inside a segment before it
    /// was sealed are not re-observable from disk.
    pub total_ingested: u64,
    /// Ingests that overwrote an existing claim (lower bound after a
    /// recovery, like `total_ingested`).
    pub overwrites: usize,
    /// Number of sealed segments.
    pub sealed_segments: usize,
    /// Claims across all sealed segments (counting per-segment duplicates).
    pub sealed_claims: usize,
    /// Claims in the growing segment.
    pub growing_claims: usize,
    /// `(source, item)` slots written since the last snapshot.
    pub pending_delta_claims: usize,
    /// `true` if the store persists to disk (opened via `ClaimStore::open`).
    pub durable: bool,
    /// Complete frames currently in the write-ahead log (durable stores).
    pub wal_frames: u64,
    /// Byte length of the write-ahead log, header included (durable stores).
    pub wal_bytes: u64,
}

impl StoreStats {
    /// Folds per-shard statistics into one fleet-wide summary: counts sum,
    /// `epoch` takes the maximum (shards snapshot independently), and
    /// `durable` holds iff every shard persists. Name counts are sums of
    /// per-shard vocabularies — a source claiming items in several shards is
    /// counted once per shard, so `num_sources` is an upper bound on the
    /// global distinct-source count (items are hash-partitioned, hence
    /// counted exactly once).
    pub fn merged(shards: impl IntoIterator<Item = StoreStats>) -> StoreStats {
        let mut shards = shards.into_iter();
        let Some(mut total) = shards.next() else { return StoreStats::default() };
        for s in shards {
            total.epoch = total.epoch.max(s.epoch);
            total.num_sources += s.num_sources;
            total.num_items += s.num_items;
            total.num_values += s.num_values;
            total.live_claims += s.live_claims;
            total.total_ingested += s.total_ingested;
            total.overwrites += s.overwrites;
            total.sealed_segments += s.sealed_segments;
            total.sealed_claims += s.sealed_claims;
            total.growing_claims += s.growing_claims;
            total.pending_delta_claims += s.pending_delta_claims;
            total.durable &= s.durable;
            total.wal_frames += s.wal_frames;
            total.wal_bytes += s.wal_bytes;
        }
        total
    }
}

impl std::fmt::Display for StoreStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "epoch {}: {} claims live ({} sealed segment(s) holding {}, {} growing), \
             {} sources × {} items, {} ingested ({} overwrites), {} pending delta claim(s)",
            self.epoch,
            self.live_claims,
            self.sealed_segments,
            self.sealed_claims,
            self.growing_claims,
            self.num_sources,
            self.num_items,
            self.total_ingested,
            self.overwrites,
            self.pending_delta_claims,
        )?;
        if self.durable {
            write!(f, ", durable ({} WAL frame(s), {} bytes)", self.wal_frames, self.wal_bytes)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merged_sums_counts_and_maxes_epochs() {
        let a = StoreStats {
            epoch: 3,
            live_claims: 10,
            num_sources: 2,
            durable: true,
            wal_frames: 4,
            ..Default::default()
        };
        let b = StoreStats {
            epoch: 1,
            live_claims: 5,
            num_sources: 3,
            durable: false,
            ..Default::default()
        };
        let m = StoreStats::merged([a, b]);
        assert_eq!(m.epoch, 3);
        assert_eq!(m.live_claims, 15);
        assert_eq!(m.num_sources, 5);
        assert!(!m.durable, "one in-memory shard makes the fleet non-durable");
        assert_eq!(m.wal_frames, 4);
        assert_eq!(StoreStats::merged([]), StoreStats::default());
    }

    #[test]
    fn display_is_informative() {
        let stats =
            StoreStats { epoch: 2, live_claims: 10, sealed_segments: 1, ..Default::default() };
        let s = stats.to_string();
        assert!(s.contains("epoch 2"));
        assert!(s.contains("10 claims live"));
    }
}
