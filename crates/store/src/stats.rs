//! Summary statistics of a [`ClaimStore`](crate::ClaimStore).

use serde::{Deserialize, Serialize};

/// A point-in-time summary of a store's shape, for monitoring and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreStats {
    /// Number of snapshots taken so far.
    pub epoch: u64,
    /// Sources seen so far.
    pub num_sources: usize,
    /// Items seen so far.
    pub num_items: usize,
    /// Distinct values seen so far.
    pub num_values: usize,
    /// Distinct live `(source, item)` claims in the merged view.
    pub live_claims: usize,
    /// Total ingest calls (including overwrites). After a recovery this is
    /// a lower bound: overwrites that collapsed inside a segment before it
    /// was sealed are not re-observable from disk.
    pub total_ingested: u64,
    /// Ingests that overwrote an existing claim (lower bound after a
    /// recovery, like `total_ingested`).
    pub overwrites: usize,
    /// Number of sealed segments.
    pub sealed_segments: usize,
    /// Claims across all sealed segments (counting per-segment duplicates).
    pub sealed_claims: usize,
    /// Claims in the growing segment.
    pub growing_claims: usize,
    /// `(source, item)` slots written since the last snapshot.
    pub pending_delta_claims: usize,
    /// `true` if the store persists to disk (opened via `ClaimStore::open`).
    pub durable: bool,
    /// Complete frames currently in the write-ahead log (durable stores).
    pub wal_frames: u64,
    /// Byte length of the write-ahead log, header included (durable stores).
    pub wal_bytes: u64,
}

impl std::fmt::Display for StoreStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "epoch {}: {} claims live ({} sealed segment(s) holding {}, {} growing), \
             {} sources × {} items, {} ingested ({} overwrites), {} pending delta claim(s)",
            self.epoch,
            self.live_claims,
            self.sealed_segments,
            self.sealed_claims,
            self.growing_claims,
            self.num_sources,
            self.num_items,
            self.total_ingested,
            self.overwrites,
            self.pending_delta_claims,
        )?;
        if self.durable {
            write!(f, ", durable ({} WAL frame(s), {} bytes)", self.wal_frames, self.wal_bytes)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let stats =
            StoreStats { epoch: 2, live_claims: 10, sealed_segments: 1, ..Default::default() };
        let s = stats.to_string();
        assert!(s.contains("epoch 2"));
        assert!(s.contains("10 claims live"));
    }
}
