//! The segmented live claim store.

use crate::delta::DeltaTracker;
use crate::segment::{merge_sorted, GrowingSegment, SealedSegment};
use crate::snapshot::StoreSnapshot;
use crate::stats::StoreStats;
use copydet_bayes::{CopyParams, SourceAccuracies, ValueProbabilities};
use copydet_index::{InvertedIndex, SharedItemCounts};
use copydet_model::{
    Claim, Dataset, Interner, ItemId, ItemValueGroup, NameTable, SourceId, ValueId,
};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Configuration of a [`ClaimStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreConfig {
    /// Automatically seal the growing segment once it holds this many
    /// claims (`None` = seal only on explicit [`ClaimStore::seal`] /
    /// [`ClaimStore::snapshot`] boundaries).
    pub seal_threshold: Option<usize>,
    /// Automatically compact once the number of sealed segments exceeds this
    /// bound (`None` = compact only on explicit [`ClaimStore::compact`]).
    pub max_sealed_segments: Option<usize>,
}

/// An append-oriented claim store for continuously arriving claims.
///
/// Writes land in an in-memory [`GrowingSegment`]; [`seal`](Self::seal)
/// freezes it into an immutable [`SealedSegment`];
/// [`compact`](Self::compact) coalesces sealed segments newest-wins. The
/// store owns the global name tables (sources, items, values interned in
/// first-seen order), so a [`snapshot`](Self::snapshot) assembles a
/// [`Dataset`] **identical** to building the same claim sequence through one
/// [`DatasetBuilder`](copydet_model::DatasetBuilder) pass — every existing
/// detector runs unchanged on it. Each snapshot (after the first) also
/// carries the [`DatasetDelta`](copydet_model::DatasetDelta) against the
/// previous snapshot, which feeds delta-driven incremental detection.
///
/// Snapshots are **zero-copy in the corpus**: the name tables and value
/// interner are handed out as shared `Arc` handles (copy-on-write inside the
/// store, so a held snapshot never observes later interns), and from the
/// second snapshot on the dataset is *patched* from its predecessor — only
/// the claim lists of touched sources and the value groups of touched items
/// are rebuilt, everything else aliases the previous snapshot's storage.
/// Snapshot cost is therefore O(delta), not O(corpus).
///
/// The store additionally maintains the pairwise shared-item counts
/// `l(S1, S2)` *incrementally at ingest time* behind a shared handle, so
/// building an inverted index over a snapshot
/// ([`build_index`](Self::build_index)) skips both the counting pass and the
/// `O(|S|²)` table copy that dominate index construction on provider-dense
/// datasets.
#[derive(Debug, Clone)]
pub struct ClaimStore {
    sources: NameTable,
    items: NameTable,
    values: Interner,
    sealed: Vec<SealedSegment>,
    growing: GrowingSegment,
    /// Sources providing each item (any value), kept sorted — the substrate
    /// for incremental shared-item counting.
    item_providers: Vec<Vec<SourceId>>,
    shared: Arc<SharedItemCounts>,
    tracker: DeltaTracker,
    /// The previous snapshot's dataset (cheap handle), the base the next
    /// snapshot is patched from.
    last_snapshot: Option<Dataset>,
    epoch: u64,
    config: StoreConfig,
    num_live_claims: usize,
    total_ingested: u64,
    overwrites: usize,
}

impl Default for ClaimStore {
    fn default() -> Self {
        Self::new()
    }
}

impl ClaimStore {
    /// Creates an empty store with manual sealing/compaction.
    pub fn new() -> Self {
        Self::with_config(StoreConfig::default())
    }

    /// Creates an empty store with the given configuration.
    pub fn with_config(config: StoreConfig) -> Self {
        let empty = copydet_model::DatasetBuilder::new().build();
        Self {
            sources: NameTable::new(),
            items: NameTable::new(),
            values: Interner::new(),
            sealed: Vec::new(),
            growing: GrowingSegment::new(),
            item_providers: Vec::new(),
            shared: Arc::new(SharedItemCounts::build(&empty)),
            tracker: DeltaTracker::default(),
            last_snapshot: None,
            epoch: 0,
            config,
            num_live_claims: 0,
            total_ingested: 0,
            overwrites: 0,
        }
    }

    /// Interns (or retrieves) a source by name.
    ///
    /// Id assignment is shared with `DatasetBuilder` through
    /// [`NameTable`], so the two construction paths cannot drift.
    pub fn source(&mut self, name: &str) -> SourceId {
        SourceId::from_index(self.sources.intern(name))
    }

    /// Interns (or retrieves) a data item by name.
    pub fn item(&mut self, name: &str) -> ItemId {
        let idx = self.items.intern(name);
        if idx == self.item_providers.len() {
            self.item_providers.push(Vec::new());
        }
        ItemId::from_index(idx)
    }

    /// Interns (or retrieves) a value string.
    pub fn value(&mut self, s: &str) -> ValueId {
        self.values.intern(s)
    }

    /// Ingests the claim "source provides `value` for `item`", interning all
    /// three strings, and returns it as dense ids.
    ///
    /// Re-claiming an already-claimed item overwrites the value
    /// (last-claim-wins, like `DatasetBuilder`). May auto-seal per
    /// [`StoreConfig::seal_threshold`].
    pub fn ingest(&mut self, source: &str, item: &str, value: &str) -> Claim {
        let s = self.source(source);
        let d = self.item(item);
        let v = self.value(value);
        self.ingest_ids(s, d, v);
        Claim { source: s, item: d, value: v }
    }

    /// Ingests a claim using already-interned identifiers.
    ///
    /// # Panics
    /// Panics if any id was not produced by this store.
    pub fn ingest_ids(&mut self, source: SourceId, item: ItemId, value: ValueId) {
        assert!(source.index() < self.sources.len(), "unknown source id {source}");
        assert!(item.index() < self.items.len(), "unknown item id {item}");
        assert!(value.index() < self.values.len(), "unknown value id {value}");
        self.total_ingested += 1;
        let old = self.merged_value(source, item);
        self.tracker.note(source, item, old);
        if old.is_none() {
            // A brand-new (source, item) claim: update the live claim count
            // and the shared-item counts against the item's other providers.
            // Copy-on-write: an index built over the handle keeps its frozen
            // counts.
            self.num_live_claims += 1;
            let shared = Arc::make_mut(&mut self.shared);
            shared.grow(self.sources.len());
            let providers = &mut self.item_providers[item.index()];
            for &t in providers.iter() {
                shared.increment(copydet_model::SourcePair::new(source, t), 1);
            }
            let pos = providers.binary_search(&source).unwrap_err();
            providers.insert(pos, source);
        } else {
            self.overwrites += 1;
        }
        self.growing.insert(source, item, value);
        if let Some(limit) = self.config.seal_threshold {
            if self.growing.num_claims() >= limit {
                self.seal();
            }
        }
    }

    /// The current merged value for `(source, item)`: growing segment first,
    /// then sealed segments newest to oldest.
    pub fn merged_value(&self, source: SourceId, item: ItemId) -> Option<ValueId> {
        if let Some(v) = self.growing.get(source, item) {
            return Some(v);
        }
        self.sealed.iter().rev().find_map(|seg| seg.get(source, item))
    }

    /// Freezes the growing segment into a sealed segment (no-op when the
    /// growing segment is empty). May auto-compact per
    /// [`StoreConfig::max_sealed_segments`].
    pub fn seal(&mut self) {
        if self.growing.is_empty() {
            return;
        }
        let growing = std::mem::take(&mut self.growing);
        self.sealed.push(growing.freeze());
        if let Some(limit) = self.config.max_sealed_segments {
            if self.sealed.len() > limit {
                self.compact();
            }
        }
    }

    /// Coalesces all sealed segments into one (newest-wins), bounding the
    /// number of segments a lookup or snapshot has to visit.
    pub fn compact(&mut self) {
        if self.sealed.len() < 2 {
            return;
        }
        let mut merged = self.sealed.remove(0);
        for seg in self.sealed.drain(..) {
            merged = SealedSegment::merge(&merged, &seg);
        }
        self.sealed = vec![merged];
    }

    /// Takes a consistent snapshot: a [`Dataset`] over all claims ingested so
    /// far (identical to one `DatasetBuilder` pass over the same claim
    /// sequence) plus, from the second snapshot on, the delta against the
    /// previous snapshot.
    ///
    /// The first snapshot assembles the dataset in full; every later snapshot
    /// is **patched** from its predecessor in O(delta): only the claim lists
    /// of sources and the value groups of items written since the previous
    /// snapshot are rebuilt, while the name tables, the value interner and
    /// every untouched list alias the shared storage (no string or claim is
    /// copied — pointer-provable via
    /// [`Dataset::shared_source_names`] and friends).
    ///
    /// Snapshotting does not seal or otherwise disturb the segments; ingest
    /// can continue afterwards, and snapshots taken earlier keep observing
    /// exactly the claims they were taken over regardless of later ingest,
    /// sealing or compaction.
    pub fn snapshot(&mut self) -> StoreSnapshot {
        let dataset = match &self.last_snapshot {
            Some(prev) => {
                let mut touched_sources: BTreeSet<SourceId> = BTreeSet::new();
                let mut touched_items: BTreeSet<ItemId> = BTreeSet::new();
                for (s, d) in self.tracker.touched() {
                    touched_sources.insert(s);
                    touched_items.insert(d);
                }
                let patched_sources: Vec<(SourceId, Vec<(ItemId, ValueId)>)> =
                    touched_sources.into_iter().map(|s| (s, self.merged_claims_of(s))).collect();
                let patched_items: Vec<(ItemId, Vec<ItemValueGroup>)> =
                    touched_items.into_iter().map(|d| (d, self.rebuild_groups_of(d))).collect();
                prev.with_patches(
                    self.sources.shared_names(),
                    self.items.shared_names(),
                    self.values.clone(),
                    patched_sources,
                    patched_items,
                )
            }
            None => {
                // First snapshot: merge per-source claim lists across
                // segments, oldest to newest (the growing segment, frozen
                // into a view, is simply the newest).
                let mut claims: Vec<Vec<(ItemId, ValueId)>> = vec![Vec::new(); self.sources.len()];
                let frozen = (!self.growing.is_empty()).then(|| self.growing.freeze_ref());
                for seg in self.sealed.iter().chain(frozen.iter()) {
                    for (s, list) in seg.per_source() {
                        let slot = &mut claims[s.index()];
                        if slot.is_empty() {
                            slot.extend_from_slice(list);
                        } else {
                            *slot = merge_sorted(slot, list);
                        }
                    }
                }
                Dataset::from_shared_claims(
                    self.sources.shared_names(),
                    self.items.shared_names(),
                    self.values.clone(),
                    claims,
                )
            }
        };
        debug_assert_eq!(
            dataset.num_claims(),
            self.num_live_claims,
            "patched snapshot must cover every live claim"
        );
        let delta = if self.epoch == 0 {
            self.tracker = DeltaTracker::default();
            None
        } else {
            let sealed = &self.sealed;
            let growing = &self.growing;
            Some(self.tracker.drain_into_delta(|s, d| {
                growing.get(s, d).or_else(|| sealed.iter().rev().find_map(|seg| seg.get(s, d)))
            }))
        };
        self.epoch += 1;
        self.last_snapshot = Some(dataset.clone());
        StoreSnapshot { epoch: self.epoch, dataset, delta }
    }

    /// The merged (newest-wins) claim list of one source across all
    /// segments — the per-source unit of the O(delta) snapshot path.
    fn merged_claims_of(&self, s: SourceId) -> Vec<(ItemId, ValueId)> {
        let mut list: Vec<(ItemId, ValueId)> = Vec::new();
        for seg in &self.sealed {
            let seg_list = seg.claims_of(s);
            if !seg_list.is_empty() {
                list =
                    if list.is_empty() { seg_list.to_vec() } else { merge_sorted(&list, seg_list) };
            }
        }
        let grown = self.growing.sorted_claims_of(s);
        if !grown.is_empty() {
            list = if list.is_empty() { grown } else { merge_sorted(&list, &grown) };
        }
        list
    }

    /// Rebuilds one item's value groups from the merged view, with exactly
    /// the builder normalization (groups sorted by value, providers sorted by
    /// id — `item_providers` is maintained sorted, so providers arrive in
    /// order).
    fn rebuild_groups_of(&self, d: ItemId) -> Vec<ItemValueGroup> {
        let mut by_value: std::collections::BTreeMap<ValueId, Vec<SourceId>> =
            std::collections::BTreeMap::new();
        for &s in &self.item_providers[d.index()] {
            let v = self.merged_value(s, d).expect("a listed provider has a claim");
            by_value.entry(v).or_default().push(s);
        }
        by_value
            .into_iter()
            .map(|(value, providers)| ItemValueGroup { item: d, value, providers })
            .collect()
    }

    /// Builds the inverted index for the *latest* snapshot using the store's
    /// incrementally-maintained shared-item counts, skipping the
    /// `O(Σ providers²)` counting pass of a cold
    /// [`InvertedIndex::build`]. The counts are passed as a shared handle —
    /// the `O(|S|²)` table is aliased, not copied (later ingest detaches the
    /// store's handle copy-on-write).
    ///
    /// # Panics
    /// Panics if `snapshot` is not the store's latest snapshot or claims were
    /// ingested after it was taken (the shared counts would not match).
    pub fn build_index(
        &self,
        snapshot: &StoreSnapshot,
        accuracies: &SourceAccuracies,
        probabilities: &ValueProbabilities,
        params: &CopyParams,
    ) -> InvertedIndex {
        assert_eq!(snapshot.epoch, self.epoch, "snapshot is not the store's latest");
        assert_eq!(
            snapshot.dataset.num_claims(),
            self.num_live_claims,
            "claims were ingested after the snapshot was taken"
        );
        InvertedIndex::build_from_groups(
            snapshot.dataset.groups(),
            Arc::clone(&self.shared),
            accuracies,
            probabilities,
            params,
        )
    }

    /// The incrementally-maintained shared-item counts `l(S1, S2)` over the
    /// current merged view.
    pub fn shared_item_counts(&self) -> &SharedItemCounts {
        &self.shared
    }

    /// The shared handle to the incrementally-maintained counts table.
    /// Exposed so zero-copy behaviour can be asserted via
    /// [`Arc::strong_count`] / [`Arc::ptr_eq`].
    pub fn shared_item_counts_handle(&self) -> &Arc<SharedItemCounts> {
        &self.shared
    }

    /// Number of distinct live `(source, item)` claims in the merged view.
    pub fn num_claims(&self) -> usize {
        self.num_live_claims
    }

    /// Number of sources seen so far.
    pub fn num_sources(&self) -> usize {
        self.sources.len()
    }

    /// Number of items seen so far.
    pub fn num_items(&self) -> usize {
        self.items.len()
    }

    /// Number of distinct values seen so far.
    pub fn num_values(&self) -> usize {
        self.values.len()
    }

    /// Number of snapshots taken so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Summary statistics of the store.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            epoch: self.epoch,
            num_sources: self.num_sources(),
            num_items: self.num_items(),
            num_values: self.num_values(),
            live_claims: self.num_live_claims,
            total_ingested: self.total_ingested,
            overwrites: self.overwrites,
            sealed_segments: self.sealed.len(),
            sealed_claims: self.sealed.iter().map(SealedSegment::num_claims).sum(),
            growing_claims: self.growing.num_claims(),
            pending_delta_claims: self.tracker.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copydet_model::DatasetBuilder;

    const CLAIMS: &[(&str, &str, &str)] = &[
        ("S0", "NJ", "Trenton"),
        ("S1", "NJ", "Trenton"),
        ("S2", "NJ", "Newark"),
        ("S0", "AZ", "Phoenix"),
        ("S1", "AZ", "Tempe"),
        ("S2", "AZ", "Phoenix"),
        ("S0", "NJ", "Newark"), // overwrite
    ];

    fn builder_dataset(claims: &[(&str, &str, &str)]) -> Dataset {
        let mut b = DatasetBuilder::new();
        for (s, d, v) in claims {
            b.add_claim(s, d, v);
        }
        b.build()
    }

    #[test]
    fn snapshot_equals_one_builder_pass() {
        let mut store = ClaimStore::new();
        for (i, (s, d, v)) in CLAIMS.iter().enumerate() {
            store.ingest(s, d, v);
            if i == 2 {
                store.seal();
            }
            if i == 4 {
                store.seal();
                store.compact();
            }
        }
        let snap = store.snapshot();
        assert_eq!(snap.dataset, builder_dataset(CLAIMS));
        assert_eq!(snap.epoch, 1);
        assert!(snap.delta.is_none(), "first snapshot has no predecessor");
        assert_eq!(store.num_claims(), snap.dataset.num_claims());
    }

    #[test]
    fn second_snapshot_carries_the_delta() {
        let mut store = ClaimStore::new();
        for (s, d, v) in &CLAIMS[..5] {
            store.ingest(s, d, v);
        }
        let snap1 = store.snapshot();
        store.seal();
        for (s, d, v) in &CLAIMS[5..] {
            store.ingest(s, d, v);
        }
        store.ingest("S3", "NJ", "Trenton");
        let snap2 = store.snapshot();
        let delta = snap2.delta.as_ref().expect("second snapshot has a delta");
        assert_eq!(
            delta,
            &copydet_model::DatasetDelta::between(&snap1.dataset, &snap2.dataset),
            "tracked delta must equal the snapshot diff"
        );
        assert_eq!(delta.len(), 3);
        assert_eq!(snap2.epoch, 2);
    }

    #[test]
    fn shared_counts_match_cold_build_and_index_agrees() {
        let mut store = ClaimStore::new();
        for (s, d, v) in CLAIMS {
            store.ingest(s, d, v);
        }
        store.ingest("S3", "NJ", "Trenton");
        store.ingest("S3", "AZ", "Phoenix");
        let snap = store.snapshot();
        let cold = SharedItemCounts::build(&snap.dataset);
        for (pair, n) in cold.iter_nonzero() {
            assert_eq!(store.shared_item_counts().get(pair), n, "pair {pair}");
        }
        assert_eq!(store.shared_item_counts().num_sharing_pairs(), cold.num_sharing_pairs());

        let params = CopyParams::paper_defaults();
        let accuracies = SourceAccuracies::uniform(snap.dataset.num_sources(), 0.8).unwrap();
        let probabilities = ValueProbabilities::uniform_over_dataset(&snap.dataset, 0.4).unwrap();
        let warm = store.build_index(&snap, &accuracies, &probabilities, &params);
        let cold_index = InvertedIndex::build(&snap.dataset, &accuracies, &probabilities, &params);
        assert_eq!(warm.entries(), cold_index.entries());
        assert_eq!(warm.ebar_start(), cold_index.ebar_start());
    }

    #[test]
    fn auto_seal_and_auto_compact() {
        let mut store = ClaimStore::with_config(StoreConfig {
            seal_threshold: Some(2),
            max_sealed_segments: Some(2),
        });
        for (s, d, v) in CLAIMS {
            store.ingest(s, d, v);
        }
        let stats = store.stats();
        assert!(stats.sealed_segments >= 1, "auto-seal must have fired");
        assert!(stats.sealed_segments <= 2, "auto-compact must bound the segment count");
        assert_eq!(stats.live_claims, 6);
        assert_eq!(stats.total_ingested, 7);
        assert_eq!(stats.overwrites, 1);
        let snap = store.snapshot();
        assert_eq!(snap.dataset, builder_dataset(CLAIMS));
    }

    #[test]
    fn stats_reflect_the_pipeline() {
        let mut store = ClaimStore::new();
        store.ingest("S0", "D0", "x");
        store.ingest("S1", "D0", "y");
        let stats = store.stats();
        assert_eq!(stats.epoch, 0);
        assert_eq!(stats.num_sources, 2);
        assert_eq!(stats.num_items, 1);
        assert_eq!(stats.num_values, 2);
        assert_eq!(stats.growing_claims, 2);
        assert_eq!(stats.sealed_claims, 0);
        assert_eq!(stats.pending_delta_claims, 2);
        let _ = store.snapshot();
        assert_eq!(store.stats().pending_delta_claims, 0);
        store.seal();
        let stats = store.stats();
        assert_eq!(stats.growing_claims, 0);
        assert_eq!(stats.sealed_claims, 2);
    }

    #[test]
    #[should_panic(expected = "unknown source id")]
    fn ingest_ids_validates() {
        let mut store = ClaimStore::new();
        let d = store.item("D");
        let v = store.value("x");
        store.ingest_ids(SourceId::new(7), d, v);
    }

    #[test]
    #[should_panic(expected = "ingested after the snapshot")]
    fn build_index_rejects_stale_snapshots() {
        let mut store = ClaimStore::new();
        store.ingest("S0", "D0", "x");
        store.ingest("S1", "D0", "x");
        let snap = store.snapshot();
        store.ingest("S2", "D0", "x");
        let params = CopyParams::paper_defaults();
        let accuracies = SourceAccuracies::uniform(3, 0.8).unwrap();
        let probabilities = ValueProbabilities::new(1);
        let _ = store.build_index(&snap, &accuracies, &probabilities, &params);
    }
}
