//! The segmented live claim store.

use crate::delta::DeltaTracker;
use crate::durable::{self, Persistence, Recovered};
use crate::error::StoreIoError;
use crate::format::WalRecord;
use crate::segment::{merge_sorted, GrowingSegment, SealedSegment};
use crate::snapshot::StoreSnapshot;
use crate::stats::StoreStats;
use crate::wal::SyncPoint;
use copydet_bayes::{CopyParams, SourceAccuracies, ValueProbabilities};
use copydet_index::{InvertedIndex, SharedItemCounts};
use copydet_model::{
    Claim, Dataset, Interner, ItemId, ItemValueGroup, NameTable, SourceId, ValueId,
};
use copydet_obs::{registry, Counter, Histogram, Span};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

/// Claims applied to the in-memory state (ingest paths and WAL replay).
fn ingest_claims_total() -> &'static Arc<Counter> {
    static COUNTER: OnceLock<Arc<Counter>> = OnceLock::new();
    COUNTER.get_or_init(|| registry().counter("copydet_store_ingest_claims_total"))
}

/// Wall time of one seal (freeze + optional auto-compaction + commit).
fn seal_nanos() -> &'static Arc<Histogram> {
    static HIST: OnceLock<Arc<Histogram>> = OnceLock::new();
    HIST.get_or_init(|| registry().histogram("copydet_store_seal_nanos"))
}

/// Wall time of one compaction (segment merge + commit).
fn compact_nanos() -> &'static Arc<Histogram> {
    static HIST: OnceLock<Arc<Histogram>> = OnceLock::new();
    HIST.get_or_init(|| registry().histogram("copydet_store_compact_nanos"))
}

/// Configuration of a [`ClaimStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreConfig {
    /// Automatically seal the growing segment once it holds this many
    /// claims (`None` = seal only on explicit [`ClaimStore::seal`] /
    /// [`ClaimStore::snapshot`] boundaries).
    pub seal_threshold: Option<usize>,
    /// Automatically compact once the number of sealed segments exceeds this
    /// bound (`None` = compact only on explicit [`ClaimStore::compact`]).
    pub max_sealed_segments: Option<usize>,
    /// For durable stores: fsync the write-ahead log after **every** ingest
    /// instead of at [`sync`](ClaimStore::sync) / seal boundaries. Maximum
    /// durability, at a per-claim fsync cost; ignored by in-memory stores.
    pub wal_fsync_per_append: bool,
}

/// An append-oriented claim store for continuously arriving claims.
///
/// Writes land in an in-memory [`GrowingSegment`]; [`seal`](Self::seal)
/// freezes it into an immutable [`SealedSegment`];
/// [`compact`](Self::compact) coalesces sealed segments newest-wins. The
/// store owns the global name tables (sources, items, values interned in
/// first-seen order), so a [`snapshot`](Self::snapshot) assembles a
/// [`Dataset`] **identical** to building the same claim sequence through one
/// [`DatasetBuilder`](copydet_model::DatasetBuilder) pass — every existing
/// detector runs unchanged on it. Each snapshot (after the first) also
/// carries the [`DatasetDelta`](copydet_model::DatasetDelta) against the
/// previous snapshot, which feeds delta-driven incremental detection.
///
/// Snapshots are **zero-copy in the corpus**: the name tables and value
/// interner are handed out as shared `Arc` handles (copy-on-write inside the
/// store, so a held snapshot never observes later interns), and from the
/// second snapshot on the dataset is *patched* from its predecessor — only
/// the claim lists of touched sources and the value groups of touched items
/// are rebuilt, everything else aliases the previous snapshot's storage.
/// Snapshot cost is therefore O(delta), not O(corpus).
///
/// The store additionally maintains the pairwise shared-item counts
/// `l(S1, S2)` *incrementally at ingest time* behind a shared handle, so
/// building an inverted index over a snapshot
/// ([`build_index`](Self::build_index)) skips both the counting pass and the
/// `O(|S|²)` table copy that dominate index construction on provider-dense
/// datasets.
///
/// A store is either **in-memory** ([`new`](Self::new) — state dies with the
/// process) or **durable** ([`open`](Self::open) — every ingest is logged to
/// a write-ahead log, seals and compactions commit checksummed segment files
/// via atomic rename, and [`recover`](Self::recover) rebuilds a store whose
/// `snapshot()` is identical to the pre-crash one). See `DESIGN.md` §6 for
/// the on-disk format and the recovery guarantees.
#[derive(Debug)]
pub struct ClaimStore {
    sources: NameTable,
    items: NameTable,
    values: Interner,
    sealed: Vec<SealedSegment>,
    growing: GrowingSegment,
    /// Sources providing each item (any value), kept sorted — the substrate
    /// for incremental shared-item counting.
    item_providers: Vec<Vec<SourceId>>,
    shared: Arc<SharedItemCounts>,
    tracker: DeltaTracker,
    /// The previous snapshot's dataset (cheap handle), the base the next
    /// snapshot is patched from.
    last_snapshot: Option<Dataset>,
    epoch: u64,
    config: StoreConfig,
    num_live_claims: usize,
    total_ingested: u64,
    overwrites: usize,
    /// The durable half (write-ahead log + committed segment files);
    /// `None` for in-memory stores.
    persist: Option<Persistence>,
}

impl Default for ClaimStore {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for ClaimStore {
    /// Clones the in-memory state. The clone is always an **in-memory
    /// fork**: it shares no write-ahead log or segment files with the
    /// original (two stores appending to one log would corrupt it).
    fn clone(&self) -> Self {
        Self {
            sources: self.sources.clone(),
            items: self.items.clone(),
            values: self.values.clone(),
            sealed: self.sealed.clone(),
            growing: self.growing.clone(),
            item_providers: self.item_providers.clone(),
            shared: Arc::clone(&self.shared),
            tracker: self.tracker.clone(),
            last_snapshot: self.last_snapshot.clone(),
            epoch: self.epoch,
            config: self.config,
            num_live_claims: self.num_live_claims,
            total_ingested: self.total_ingested,
            overwrites: self.overwrites,
            persist: None,
        }
    }
}

impl ClaimStore {
    /// Creates an empty store with manual sealing/compaction.
    pub fn new() -> Self {
        Self::with_config(StoreConfig::default())
    }

    /// Creates an empty store with the given configuration.
    pub fn with_config(config: StoreConfig) -> Self {
        let empty = copydet_model::DatasetBuilder::new().build();
        Self {
            sources: NameTable::new(),
            items: NameTable::new(),
            values: Interner::new(),
            sealed: Vec::new(),
            growing: GrowingSegment::new(),
            item_providers: Vec::new(),
            shared: Arc::new(SharedItemCounts::build(&empty)),
            tracker: DeltaTracker::default(),
            last_snapshot: None,
            epoch: 0,
            config,
            num_live_claims: 0,
            total_ingested: 0,
            overwrites: 0,
            persist: None,
        }
    }

    /// Opens (creating or recovering) a **durable** store in `dir` with the
    /// default configuration.
    ///
    /// Every ingest is appended to a checksummed write-ahead log before it
    /// is applied; [`seal`](Self::seal) and [`compact`](Self::compact)
    /// additionally commit the sealed segments to disk (write-new-then-
    /// atomic-rename, fsync'd). Reopening the same directory rebuilds the
    /// store from the committed segments plus the log — no re-ingest.
    ///
    /// # Errors
    /// Returns a [`StoreIoError`] if the directory cannot be created or the
    /// existing state fails validation (corruption, truncation of a
    /// committed file, or a format-version mismatch). A torn log *tail* is
    /// not an error: it is the expected shape of a crash and is dropped.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreIoError> {
        Self::open_with_config(dir, StoreConfig::default())
    }

    /// Opens (creating or recovering) a durable store with the given
    /// configuration; see [`open`](Self::open).
    pub fn open_with_config(
        dir: impl AsRef<Path>,
        config: StoreConfig,
    ) -> Result<Self, StoreIoError> {
        Self::open_impl(dir.as_ref().to_path_buf(), config, None)
    }

    /// Like [`open_with_config`](Self::open_with_config), with a
    /// [`SyncPoint`] fault-injection hook observing (and deciding the fate
    /// of) every physical I/O event. This is the crash-injection surface
    /// the recovery test suite drives; production code has no reason to
    /// install a hook.
    pub fn open_with_sync_point(
        dir: impl AsRef<Path>,
        config: StoreConfig,
        hook: Arc<dyn SyncPoint>,
    ) -> Result<Self, StoreIoError> {
        Self::open_impl(dir.as_ref().to_path_buf(), config, Some(hook))
    }

    /// Recovers a durable store from existing on-disk state.
    ///
    /// Identical to [`open`](Self::open) except that a directory holding no
    /// store state (neither a `MANIFEST` nor a `wal.log`) is an error
    /// instead of a fresh empty store — use it when silently starting over
    /// would mask data loss.
    pub fn recover(dir: impl AsRef<Path>) -> Result<Self, StoreIoError> {
        let dir = dir.as_ref();
        if !durable::state_exists(dir) {
            return Err(StoreIoError::Io {
                path: dir.to_path_buf(),
                message: "no durable store state (MANIFEST or wal.log) to recover".to_owned(),
            });
        }
        Self::open(dir)
    }

    fn open_impl(
        dir: PathBuf,
        config: StoreConfig,
        hook: Option<Arc<dyn SyncPoint>>,
    ) -> Result<Self, StoreIoError> {
        let (persistence, recovered) = Persistence::open(dir, hook, config.wal_fsync_per_append)?;
        Self::from_recovered(persistence, recovered, config)
    }

    /// Rebuilds the in-memory store from recovered durable state, then
    /// attaches the persistence handle. The rebuilt store's `snapshot()` is
    /// identical to one `DatasetBuilder` pass over the durable claim
    /// sequence (committed segments oldest→newest, then the log in append
    /// order) — the same equivalence contract every other construction path
    /// honours.
    fn from_recovered(
        persistence: Persistence,
        recovered: Recovered,
        config: StoreConfig,
    ) -> Result<Self, StoreIoError> {
        let corrupt = |path: PathBuf, detail: String| StoreIoError::Corrupt { path, detail };
        let dir = persistence.dir().to_path_buf();
        let wal_path = dir.join(crate::wal::WAL_FILE);
        let mut store = Self::with_config(config);

        // 1. Name tables, re-interned in id order so every persisted id
        //    resolves to the string it was written with.
        for (pos, name) in recovered.sources.iter().enumerate() {
            if store.sources.intern(name) != pos {
                return Err(corrupt(dir, format!("duplicate source name {name:?} in tables")));
            }
        }
        for (pos, name) in recovered.items.iter().enumerate() {
            if store.items.intern(name) != pos {
                return Err(corrupt(dir, format!("duplicate item name {name:?} in tables")));
            }
            store.item_providers.push(Vec::new());
        }
        for (pos, name) in recovered.values.iter().enumerate() {
            if store.values.intern(name).index() != pos {
                return Err(corrupt(dir, format!("duplicate value {name:?} in tables")));
            }
        }

        // 2. Committed segments are adopted as-is (the exact pre-crash
        //    segmentation), with the ingest-time bookkeeping — live-claim
        //    count, per-item providers, shared-item counts — replayed
        //    oldest→newest under the same newest-wins rules.
        store.sealed = recovered.segments;
        Arc::make_mut(&mut store.shared).grow(store.sources.len());
        let segments = std::mem::take(&mut store.sealed);
        for segment in &segments {
            for (source, list) in segment.per_source() {
                for &(item, _) in list {
                    store.replay_bookkeeping(source, item);
                }
            }
        }
        store.sealed = segments;

        // 3. The write-ahead log replays through the normal ingest path
        //    (auto-sealing suppressed: the log must keep mirroring the
        //    growing segment until the next commit boundary).
        for record in &recovered.wal_records {
            match record {
                WalRecord::DefSource { id, name } => {
                    let (sid, _) = store.intern_source(name);
                    if sid.raw() != *id {
                        return Err(corrupt(
                            wal_path,
                            format!("source def {name:?} resolves to {sid}, log says S{id}"),
                        ));
                    }
                }
                WalRecord::DefItem { id, name } => {
                    let (did, _) = store.intern_item(name);
                    if did.raw() != *id {
                        return Err(corrupt(
                            wal_path,
                            format!("item def {name:?} resolves to {did}, log says D{id}"),
                        ));
                    }
                }
                WalRecord::DefValue { id, name } => {
                    let (vid, _) = store.intern_value(name);
                    if vid.raw() != *id {
                        return Err(corrupt(
                            wal_path,
                            format!("value def {name:?} resolves to {vid}, log says V{id}"),
                        ));
                    }
                }
                WalRecord::Claim { claim, source_def, item_def, value_def } => {
                    // Embedded defs intern idempotently: after a crash
                    // between the manifest commit and the WAL reset, the
                    // log replays over tables that already contain these
                    // names — the assigned id must simply match the logged
                    // one. A claim without a def must reference a known id.
                    let ok = match source_def {
                        Some(name) => store.intern_source(name).0 == claim.source,
                        None => claim.source.index() < store.sources.len(),
                    } && match item_def {
                        Some(name) => store.intern_item(name).0 == claim.item,
                        None => claim.item.index() < store.items.len(),
                    } && match value_def {
                        Some(name) => store.intern_value(name).0 == claim.value,
                        None => claim.value.index() < store.values.len(),
                    };
                    if !ok {
                        return Err(corrupt(
                            wal_path,
                            format!("claim {claim:?} does not resolve against its tables"),
                        ));
                    }
                    store.apply_claim(claim.source, claim.item, claim.value, false);
                }
            }
        }

        store.persist = Some(persistence);
        // A recovered growing segment past the auto-seal threshold is
        // sealed (and committed) now that persistence is attached.
        if let Some(limit) = store.config.seal_threshold {
            if store.growing.num_claims() >= limit {
                store.seal();
            }
        }
        Ok(store)
    }

    /// Ingest-time bookkeeping replayed for one committed claim during
    /// recovery: reproduces the *correctness-bearing* state of
    /// [`apply_claim`](Self::apply_claim) — live-claim count, per-item
    /// providers, shared-item counts — using provider membership (instead
    /// of segment lookups) to decide new-vs-overwrite.
    ///
    /// The diagnostic counters `total_ingested` / `overwrites` become
    /// **lower bounds** across a recovery: overwrites that collapsed inside
    /// a segment before it was sealed are not re-observable from its
    /// deduplicated claim lists.
    fn replay_bookkeeping(&mut self, source: SourceId, item: ItemId) {
        self.total_ingested += 1;
        let providers = &mut self.item_providers[item.index()];
        match providers.binary_search(&source) {
            Ok(_) => self.overwrites += 1,
            Err(pos) => {
                self.num_live_claims += 1;
                let shared = Arc::make_mut(&mut self.shared);
                for &t in providers.iter() {
                    shared.increment(copydet_model::SourcePair::new(source, t), 1);
                }
                providers.insert(pos, source);
            }
        }
    }

    /// On a durable store, rejects a string the on-disk format cannot
    /// carry **before** it is interned or logged. Rejecting loudly here is
    /// deliberate: the alternatives are interning a name the log can never
    /// define (recovery would then mismatch) or letting one absurd string
    /// poison persistence and silently lose every *later* claim across a
    /// restart. In-memory stores accept any string.
    ///
    /// # Panics
    /// Panics if `s` exceeds [`copydet_model::codec::MAX_STR_LEN`] bytes
    /// and the store is durable.
    fn check_persistable(&self, what: &str, s: &str) {
        if self.persist.is_some() {
            assert!(
                s.len() <= copydet_model::codec::MAX_STR_LEN,
                "{what} of {} bytes exceeds the {}-byte on-disk string limit of a durable store",
                s.len(),
                copydet_model::codec::MAX_STR_LEN
            );
        }
    }

    /// Interns a source, returning `(id, newly_interned)` without logging.
    fn intern_source(&mut self, name: &str) -> (SourceId, bool) {
        let before = self.sources.len();
        let idx = self.sources.intern(name);
        (SourceId::from_index(idx), idx == before)
    }

    /// Interns an item, returning `(id, newly_interned)` without logging.
    fn intern_item(&mut self, name: &str) -> (ItemId, bool) {
        let before = self.items.len();
        let idx = self.items.intern(name);
        if idx == self.item_providers.len() {
            self.item_providers.push(Vec::new());
        }
        (ItemId::from_index(idx), idx == before)
    }

    /// Interns a value, returning `(id, newly_interned)` without logging.
    fn intern_value(&mut self, s: &str) -> (ValueId, bool) {
        let before = self.values.len();
        let id = self.values.intern(s);
        (id, id.index() == before)
    }

    /// Interns (or retrieves) a source by name.
    ///
    /// Id assignment is shared with `DatasetBuilder` through
    /// [`NameTable`], so the two construction paths cannot drift. On a
    /// durable store a *new* name is logged before the id is returned.
    ///
    /// # Panics
    /// On a durable store, panics if `name` exceeds the on-disk string
    /// limit ([`copydet_model::codec::MAX_STR_LEN`], 1 MiB).
    pub fn source(&mut self, name: &str) -> SourceId {
        self.check_persistable("source name", name);
        let (id, new) = self.intern_source(name);
        if new {
            if let Some(persist) = &mut self.persist {
                persist.log(&WalRecord::DefSource { id: id.raw(), name: name.to_owned() });
            }
        }
        id
    }

    /// Interns (or retrieves) a data item by name.
    ///
    /// # Panics
    /// On a durable store, panics if `name` exceeds the on-disk string
    /// limit ([`copydet_model::codec::MAX_STR_LEN`], 1 MiB).
    pub fn item(&mut self, name: &str) -> ItemId {
        self.check_persistable("item name", name);
        let (id, new) = self.intern_item(name);
        if new {
            if let Some(persist) = &mut self.persist {
                persist.log(&WalRecord::DefItem { id: id.raw(), name: name.to_owned() });
            }
        }
        id
    }

    /// Interns (or retrieves) a value string.
    ///
    /// # Panics
    /// On a durable store, panics if `s` exceeds the on-disk string limit
    /// ([`copydet_model::codec::MAX_STR_LEN`], 1 MiB).
    pub fn value(&mut self, s: &str) -> ValueId {
        self.check_persistable("value", s);
        let (id, new) = self.intern_value(s);
        if new {
            if let Some(persist) = &mut self.persist {
                persist.log(&WalRecord::DefValue { id: id.raw(), name: s.to_owned() });
            }
        }
        id
    }

    /// Ingests the claim "source provides `value` for `item`", interning all
    /// three strings, and returns it as dense ids.
    ///
    /// Re-claiming an already-claimed item overwrites the value
    /// (last-claim-wins, like `DatasetBuilder`). May auto-seal per
    /// [`StoreConfig::seal_threshold`].
    ///
    /// On a durable store the claim — together with any names it newly
    /// interned — is written ahead to the log as **one atomic frame**, so a
    /// crash boundary can never separate a claim from its definitions.
    ///
    /// # Panics
    /// On a durable store, panics if any of the three strings exceeds the
    /// on-disk string limit ([`copydet_model::codec::MAX_STR_LEN`], 1 MiB)
    /// — rejected before interning, so neither memory nor log is touched.
    pub fn ingest(&mut self, source: &str, item: &str, value: &str) -> Claim {
        self.check_persistable("source name", source);
        self.check_persistable("item name", item);
        self.check_persistable("value", value);
        let (s, new_s) = self.intern_source(source);
        let (d, new_d) = self.intern_item(item);
        let (v, new_v) = self.intern_value(value);
        let claim = Claim { source: s, item: d, value: v };
        if let Some(persist) = &mut self.persist {
            persist.log(&WalRecord::Claim {
                claim,
                source_def: new_s.then(|| source.to_owned()),
                item_def: new_d.then(|| item.to_owned()),
                value_def: new_v.then(|| value.to_owned()),
            });
        }
        self.apply_claim(s, d, v, true);
        claim
    }

    /// Ingests a claim using already-interned identifiers.
    ///
    /// # Panics
    /// Panics if any id was not produced by this store.
    pub fn ingest_ids(&mut self, source: SourceId, item: ItemId, value: ValueId) {
        assert!(source.index() < self.sources.len(), "unknown source id {source}");
        assert!(item.index() < self.items.len(), "unknown item id {item}");
        assert!(value.index() < self.values.len(), "unknown value id {value}");
        if let Some(persist) = &mut self.persist {
            persist.log(&WalRecord::Claim {
                claim: Claim { source, item, value },
                source_def: None,
                item_def: None,
                value_def: None,
            });
        }
        self.apply_claim(source, item, value, true);
    }

    /// Applies one claim to the in-memory state (bookkeeping + growing
    /// segment); the write-ahead logging has already happened. Auto-sealing
    /// is suppressed during WAL replay, where the log must keep mirroring
    /// the growing segment.
    fn apply_claim(
        &mut self,
        source: SourceId,
        item: ItemId,
        value: ValueId,
        allow_autoseal: bool,
    ) {
        self.total_ingested += 1;
        ingest_claims_total().inc();
        let old = self.merged_value(source, item);
        self.tracker.note(source, item, old);
        if old.is_none() {
            // A brand-new (source, item) claim: update the live claim count
            // and the shared-item counts against the item's other providers.
            // Copy-on-write: an index built over the handle keeps its frozen
            // counts.
            self.num_live_claims += 1;
            let shared = Arc::make_mut(&mut self.shared);
            shared.grow(self.sources.len());
            let providers = &mut self.item_providers[item.index()];
            for &t in providers.iter() {
                shared.increment(copydet_model::SourcePair::new(source, t), 1);
            }
            let pos = providers.binary_search(&source).unwrap_err();
            providers.insert(pos, source);
        } else {
            self.overwrites += 1;
        }
        self.growing.insert(source, item, value);
        if allow_autoseal {
            if let Some(limit) = self.config.seal_threshold {
                if self.growing.num_claims() >= limit {
                    self.seal();
                }
            }
        }
    }

    /// The current merged value for `(source, item)`: growing segment first,
    /// then sealed segments newest to oldest.
    pub fn merged_value(&self, source: SourceId, item: ItemId) -> Option<ValueId> {
        if let Some(v) = self.growing.get(source, item) {
            return Some(v);
        }
        self.sealed.iter().rev().find_map(|seg| seg.get(source, item))
    }

    /// Freezes the growing segment into a sealed segment (no-op when the
    /// growing segment is empty). May auto-compact per
    /// [`StoreConfig::max_sealed_segments`].
    ///
    /// On a durable store sealing is a **commit**: the new segment (and, if
    /// the name tables grew, a *delta* tables file holding only the names
    /// this window interned — seal cost is O(new names), never
    /// O(vocabulary)) is written out write-new-then-atomic-rename with
    /// fsyncs, the manifest rename publishes it, and the write-ahead log —
    /// whose claims the segment now covers — is reset. A crash at any point
    /// leaves either the old committed state plus the intact log, or the
    /// new one.
    pub fn seal(&mut self) {
        if self.growing.is_empty() {
            return;
        }
        let span = Span::start();
        let growing = std::mem::take(&mut self.growing);
        self.sealed.push(growing.freeze());
        let mut auto_compacted = false;
        if let Some(limit) = self.config.max_sealed_segments {
            if self.sealed.len() > limit {
                self.compact_segments();
                auto_compacted = true;
            }
        }
        self.persist_commit(true, auto_compacted);
        seal_nanos().record(span.elapsed_nanos());
    }

    /// Coalesces all sealed segments into one (newest-wins), bounding the
    /// number of segments a lookup or snapshot has to visit. On a durable
    /// store the merged segment is committed like a seal — compaction also
    /// collapses the delta tables *chain* into one full file, amortizing
    /// the O(vocabulary) rewrite onto the already-O(corpus) compaction —
    /// but the write-ahead log is untouched, since compaction never sees
    /// the growing segment.
    pub fn compact(&mut self) {
        if self.sealed.len() < 2 {
            return;
        }
        let span = Span::start();
        self.compact_segments();
        self.persist_commit(false, true);
        compact_nanos().record(span.elapsed_nanos());
    }

    /// The in-memory merge of all sealed segments into one (newest-wins).
    fn compact_segments(&mut self) {
        if self.sealed.len() < 2 {
            return;
        }
        let mut merged = self.sealed.remove(0);
        for seg in self.sealed.drain(..) {
            merged = SealedSegment::merge(&merged, &seg);
        }
        self.sealed = vec![merged];
    }

    /// Commits the current sealed state to disk (durable stores only). A
    /// plain seal appends a delta tables file (O(new names) in table I/O);
    /// a commit that compacted segments also collapses the tables chain.
    fn persist_commit(&mut self, reset_wal: bool, compact_tables: bool) {
        let Some(persist) = &mut self.persist else { return };
        let values = self.values.shared_strings();
        persist.commit(
            &self.sealed,
            self.sources.names(),
            self.items.names(),
            values.as_slice(),
            reset_wal,
            compact_tables,
        );
    }

    /// Flushes and fsyncs the write-ahead log (no-op for in-memory stores).
    ///
    /// # Errors
    /// Returns the store's sticky [`StoreIoError`] if persistence has
    /// failed, now or earlier — after the first failure the store keeps
    /// serving from memory but stops persisting, and every later `sync`
    /// reports that same error.
    pub fn sync(&mut self) -> Result<(), StoreIoError> {
        match &mut self.persist {
            Some(persist) => persist.sync(),
            None => Ok(()),
        }
    }

    /// The first persistence failure, if any (durable stores only).
    pub fn io_error(&self) -> Option<&StoreIoError> {
        self.persist.as_ref().and_then(Persistence::broken)
    }

    /// Returns `true` if this store persists to disk.
    pub fn is_durable(&self) -> bool {
        self.persist.is_some()
    }

    /// The durable store directory, if any.
    pub fn dir(&self) -> Option<&Path> {
        self.persist.as_ref().map(Persistence::dir)
    }

    /// Returns `true` if write-ahead-log frames await an fsync — the signal
    /// background maintenance uses to double as background flushing.
    pub fn wal_needs_sync(&self) -> bool {
        self.persist.as_ref().is_some_and(Persistence::wal_needs_sync)
    }

    /// Takes a consistent snapshot: a [`Dataset`] over all claims ingested so
    /// far (identical to one `DatasetBuilder` pass over the same claim
    /// sequence) plus, from the second snapshot on, the delta against the
    /// previous snapshot.
    ///
    /// The first snapshot assembles the dataset in full; every later snapshot
    /// is **patched** from its predecessor in O(delta): only the claim lists
    /// of sources and the value groups of items written since the previous
    /// snapshot are rebuilt, while the name tables, the value interner and
    /// every untouched list alias the shared storage (no string or claim is
    /// copied — pointer-provable via
    /// [`Dataset::shared_source_names`] and friends).
    ///
    /// Snapshotting does not seal or otherwise disturb the segments; ingest
    /// can continue afterwards, and snapshots taken earlier keep observing
    /// exactly the claims they were taken over regardless of later ingest,
    /// sealing or compaction.
    pub fn snapshot(&mut self) -> StoreSnapshot {
        let dataset = match &self.last_snapshot {
            Some(prev) => {
                let mut touched_sources: BTreeSet<SourceId> = BTreeSet::new();
                let mut touched_items: BTreeSet<ItemId> = BTreeSet::new();
                for (s, d) in self.tracker.touched() {
                    touched_sources.insert(s);
                    touched_items.insert(d);
                }
                let patched_sources: Vec<(SourceId, Vec<(ItemId, ValueId)>)> =
                    touched_sources.into_iter().map(|s| (s, self.merged_claims_of(s))).collect();
                let patched_items: Vec<(ItemId, Vec<ItemValueGroup>)> =
                    touched_items.into_iter().map(|d| (d, self.rebuild_groups_of(d))).collect();
                prev.with_patches(
                    self.sources.shared_names(),
                    self.items.shared_names(),
                    self.values.clone(),
                    patched_sources,
                    patched_items,
                )
            }
            None => {
                // First snapshot: merge per-source claim lists across
                // segments, oldest to newest (the growing segment, frozen
                // into a view, is simply the newest).
                let mut claims: Vec<Vec<(ItemId, ValueId)>> = vec![Vec::new(); self.sources.len()];
                let frozen = (!self.growing.is_empty()).then(|| self.growing.freeze_ref());
                for seg in self.sealed.iter().chain(frozen.iter()) {
                    for (s, list) in seg.per_source() {
                        let slot = &mut claims[s.index()];
                        if slot.is_empty() {
                            slot.extend_from_slice(list);
                        } else {
                            *slot = merge_sorted(slot, list);
                        }
                    }
                }
                Dataset::from_shared_claims(
                    self.sources.shared_names(),
                    self.items.shared_names(),
                    self.values.clone(),
                    claims,
                )
            }
        };
        debug_assert_eq!(
            dataset.num_claims(),
            self.num_live_claims,
            "patched snapshot must cover every live claim"
        );
        let delta = if self.epoch == 0 {
            self.tracker = DeltaTracker::default();
            None
        } else {
            let sealed = &self.sealed;
            let growing = &self.growing;
            Some(self.tracker.drain_into_delta(|s, d| {
                growing.get(s, d).or_else(|| sealed.iter().rev().find_map(|seg| seg.get(s, d)))
            }))
        };
        self.epoch += 1;
        self.last_snapshot = Some(dataset.clone());
        StoreSnapshot { epoch: self.epoch, dataset, delta }
    }

    /// The merged (newest-wins) claim list of one source across all
    /// segments — the per-source unit of the O(delta) snapshot path.
    fn merged_claims_of(&self, s: SourceId) -> Vec<(ItemId, ValueId)> {
        let mut list: Vec<(ItemId, ValueId)> = Vec::new();
        for seg in &self.sealed {
            let seg_list = seg.claims_of(s);
            if !seg_list.is_empty() {
                list =
                    if list.is_empty() { seg_list.to_vec() } else { merge_sorted(&list, seg_list) };
            }
        }
        let grown = self.growing.sorted_claims_of(s);
        if !grown.is_empty() {
            list = if list.is_empty() { grown } else { merge_sorted(&list, &grown) };
        }
        list
    }

    /// Rebuilds one item's value groups from the merged view, with exactly
    /// the builder normalization (groups sorted by value, providers sorted by
    /// id — `item_providers` is maintained sorted, so providers arrive in
    /// order).
    fn rebuild_groups_of(&self, d: ItemId) -> Vec<ItemValueGroup> {
        let mut by_value: std::collections::BTreeMap<ValueId, Vec<SourceId>> =
            std::collections::BTreeMap::new();
        for &s in &self.item_providers[d.index()] {
            let v = self.merged_value(s, d).expect("a listed provider has a claim");
            by_value.entry(v).or_default().push(s);
        }
        by_value
            .into_iter()
            .map(|(value, providers)| ItemValueGroup { item: d, value, providers })
            .collect()
    }

    /// Builds the inverted index for the *latest* snapshot using the store's
    /// incrementally-maintained shared-item counts, skipping the
    /// `O(Σ providers²)` counting pass of a cold
    /// [`InvertedIndex::build`]. The counts are passed as a shared handle —
    /// the `O(|S|²)` table is aliased, not copied (later ingest detaches the
    /// store's handle copy-on-write).
    ///
    /// # Panics
    /// Panics if `snapshot` is not the store's latest snapshot or claims were
    /// ingested after it was taken (the shared counts would not match).
    pub fn build_index(
        &self,
        snapshot: &StoreSnapshot,
        accuracies: &SourceAccuracies,
        probabilities: &ValueProbabilities,
        params: &CopyParams,
    ) -> InvertedIndex {
        assert_eq!(snapshot.epoch, self.epoch, "snapshot is not the store's latest");
        assert_eq!(
            snapshot.dataset.num_claims(),
            self.num_live_claims,
            "claims were ingested after the snapshot was taken"
        );
        InvertedIndex::build_from_groups(
            snapshot.dataset.groups(),
            Arc::clone(&self.shared),
            accuracies,
            probabilities,
            params,
        )
    }

    /// The incrementally-maintained shared-item counts `l(S1, S2)` over the
    /// current merged view.
    pub fn shared_item_counts(&self) -> &SharedItemCounts {
        &self.shared
    }

    /// The shared handle to the incrementally-maintained counts table.
    /// Exposed so zero-copy behaviour can be asserted via
    /// [`Arc::strong_count`] / [`Arc::ptr_eq`].
    pub fn shared_item_counts_handle(&self) -> &Arc<SharedItemCounts> {
        &self.shared
    }

    /// Number of distinct live `(source, item)` claims in the merged view.
    pub fn num_claims(&self) -> usize {
        self.num_live_claims
    }

    /// Number of sources seen so far.
    pub fn num_sources(&self) -> usize {
        self.sources.len()
    }

    /// Number of items seen so far.
    pub fn num_items(&self) -> usize {
        self.items.len()
    }

    /// Number of distinct values seen so far.
    pub fn num_values(&self) -> usize {
        self.values.len()
    }

    /// Number of snapshots taken so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Summary statistics of the store.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            epoch: self.epoch,
            num_sources: self.num_sources(),
            num_items: self.num_items(),
            num_values: self.num_values(),
            live_claims: self.num_live_claims,
            total_ingested: self.total_ingested,
            overwrites: self.overwrites,
            sealed_segments: self.sealed.len(),
            sealed_claims: self.sealed.iter().map(SealedSegment::num_claims).sum(),
            growing_claims: self.growing.num_claims(),
            pending_delta_claims: self.tracker.len(),
            durable: self.persist.is_some(),
            wal_frames: self.persist.as_ref().map_or(0, Persistence::wal_frames),
            wal_bytes: self.persist.as_ref().map_or(0, Persistence::wal_bytes),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copydet_model::DatasetBuilder;

    const CLAIMS: &[(&str, &str, &str)] = &[
        ("S0", "NJ", "Trenton"),
        ("S1", "NJ", "Trenton"),
        ("S2", "NJ", "Newark"),
        ("S0", "AZ", "Phoenix"),
        ("S1", "AZ", "Tempe"),
        ("S2", "AZ", "Phoenix"),
        ("S0", "NJ", "Newark"), // overwrite
    ];

    fn builder_dataset(claims: &[(&str, &str, &str)]) -> Dataset {
        let mut b = DatasetBuilder::new();
        for (s, d, v) in claims {
            b.add_claim(s, d, v);
        }
        b.build()
    }

    #[test]
    fn snapshot_equals_one_builder_pass() {
        let mut store = ClaimStore::new();
        for (i, (s, d, v)) in CLAIMS.iter().enumerate() {
            store.ingest(s, d, v);
            if i == 2 {
                store.seal();
            }
            if i == 4 {
                store.seal();
                store.compact();
            }
        }
        let snap = store.snapshot();
        assert_eq!(snap.dataset, builder_dataset(CLAIMS));
        assert_eq!(snap.epoch, 1);
        assert!(snap.delta.is_none(), "first snapshot has no predecessor");
        assert_eq!(store.num_claims(), snap.dataset.num_claims());
    }

    #[test]
    fn second_snapshot_carries_the_delta() {
        let mut store = ClaimStore::new();
        for (s, d, v) in &CLAIMS[..5] {
            store.ingest(s, d, v);
        }
        let snap1 = store.snapshot();
        store.seal();
        for (s, d, v) in &CLAIMS[5..] {
            store.ingest(s, d, v);
        }
        store.ingest("S3", "NJ", "Trenton");
        let snap2 = store.snapshot();
        let delta = snap2.delta.as_ref().expect("second snapshot has a delta");
        assert_eq!(
            delta,
            &copydet_model::DatasetDelta::between(&snap1.dataset, &snap2.dataset),
            "tracked delta must equal the snapshot diff"
        );
        assert_eq!(delta.len(), 3);
        assert_eq!(snap2.epoch, 2);
    }

    #[test]
    fn shared_counts_match_cold_build_and_index_agrees() {
        let mut store = ClaimStore::new();
        for (s, d, v) in CLAIMS {
            store.ingest(s, d, v);
        }
        store.ingest("S3", "NJ", "Trenton");
        store.ingest("S3", "AZ", "Phoenix");
        let snap = store.snapshot();
        let cold = SharedItemCounts::build(&snap.dataset);
        for (pair, n) in cold.iter_nonzero() {
            assert_eq!(store.shared_item_counts().get(pair), n, "pair {pair}");
        }
        assert_eq!(store.shared_item_counts().num_sharing_pairs(), cold.num_sharing_pairs());

        let params = CopyParams::paper_defaults();
        let accuracies = SourceAccuracies::uniform(snap.dataset.num_sources(), 0.8).unwrap();
        let probabilities = ValueProbabilities::uniform_over_dataset(&snap.dataset, 0.4).unwrap();
        let warm = store.build_index(&snap, &accuracies, &probabilities, &params);
        let cold_index = InvertedIndex::build(&snap.dataset, &accuracies, &probabilities, &params);
        assert_eq!(warm.entries(), cold_index.entries());
        assert_eq!(warm.ebar_start(), cold_index.ebar_start());
    }

    #[test]
    fn auto_seal_and_auto_compact() {
        let mut store = ClaimStore::with_config(StoreConfig {
            seal_threshold: Some(2),
            max_sealed_segments: Some(2),
            ..StoreConfig::default()
        });
        for (s, d, v) in CLAIMS {
            store.ingest(s, d, v);
        }
        let stats = store.stats();
        assert!(stats.sealed_segments >= 1, "auto-seal must have fired");
        assert!(stats.sealed_segments <= 2, "auto-compact must bound the segment count");
        assert_eq!(stats.live_claims, 6);
        assert_eq!(stats.total_ingested, 7);
        assert_eq!(stats.overwrites, 1);
        let snap = store.snapshot();
        assert_eq!(snap.dataset, builder_dataset(CLAIMS));
    }

    #[test]
    fn stats_reflect_the_pipeline() {
        let mut store = ClaimStore::new();
        store.ingest("S0", "D0", "x");
        store.ingest("S1", "D0", "y");
        let stats = store.stats();
        assert_eq!(stats.epoch, 0);
        assert_eq!(stats.num_sources, 2);
        assert_eq!(stats.num_items, 1);
        assert_eq!(stats.num_values, 2);
        assert_eq!(stats.growing_claims, 2);
        assert_eq!(stats.sealed_claims, 0);
        assert_eq!(stats.pending_delta_claims, 2);
        let _ = store.snapshot();
        assert_eq!(store.stats().pending_delta_claims, 0);
        store.seal();
        let stats = store.stats();
        assert_eq!(stats.growing_claims, 0);
        assert_eq!(stats.sealed_claims, 2);
    }

    #[test]
    #[should_panic(expected = "unknown source id")]
    fn ingest_ids_validates() {
        let mut store = ClaimStore::new();
        let d = store.item("D");
        let v = store.value("x");
        store.ingest_ids(SourceId::new(7), d, v);
    }

    #[test]
    #[should_panic(expected = "ingested after the snapshot")]
    fn build_index_rejects_stale_snapshots() {
        let mut store = ClaimStore::new();
        store.ingest("S0", "D0", "x");
        store.ingest("S1", "D0", "x");
        let snap = store.snapshot();
        store.ingest("S2", "D0", "x");
        let params = CopyParams::paper_defaults();
        let accuracies = SourceAccuracies::uniform(3, 0.8).unwrap();
        let probabilities = ValueProbabilities::new(1);
        let _ = store.build_index(&snap, &accuracies, &probabilities, &params);
    }
}
