//! Durable state of a [`ClaimStore`](crate::ClaimStore): the directory
//! layout, the manifest-based commit protocol, and recovery.
//!
//! ## Directory layout
//!
//! ```text
//! store-dir/
//!   MANIFEST            commit record: table-file chain + segment files
//!   tables-000002.tbl   name-table chain, oldest first: each file holds the
//!   tables-000004.tbl   names appended since its predecessor (id order)
//!   seg-000000.seg      sealed segments, oldest first
//!   seg-000001.seg
//!   wal.log             growing segment, one checksummed frame per ingest
//! ```
//!
//! ## Commit protocol (durable `seal` / `compact`)
//!
//! 1. write every not-yet-persisted sealed segment to a fresh `seg-*.seg`
//!    (write `*.tmp`, fsync, rename, fsync dir),
//! 2. if the name tables grew, append a **delta** `tables-*.tbl` holding
//!    only the new names to the chain — a seal therefore writes O(new
//!    names), never O(vocabulary); a *compacting* commit instead collapses
//!    the whole chain into one full tables file,
//! 3. write the new `MANIFEST` the same atomic way — **the rename of the
//!    manifest is the commit point**,
//! 4. garbage-collect files the new manifest no longer references,
//! 5. after a seal (growing segment now empty): reset `wal.log`.
//!
//! Every step is fsynced before the next starts, which gives recovery its
//! happens-before chain: a manifest is only visible if the segments and
//! tables it references are complete, and the WAL is only reset after the
//! manifest that covers its claims is durable. A crash between 3 and 5
//! leaves claims present in *both* a sealed segment and the WAL; replaying
//! the WAL over the segments is idempotent (same claims, same order, same
//! last-claim-wins merge), so recovery converges to the identical dataset.
//!
//! The first I/O failure is recorded as a sticky
//! [`StoreIoError`](crate::StoreIoError) and persistence stops; the
//! in-memory store remains fully usable.

use crate::error::StoreIoError;
use crate::format::{self, Manifest, WalRecord};
use crate::ioutil::read_bounded;
use crate::segment::SealedSegment;
use crate::wal::{DurableIo, SyncPoint, WalWriter, WAL_FILE};
use copydet_model::codec::usize_to_u64;
use copydet_obs::event::field;
use copydet_obs::{emit, Severity, Span};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The durable half of a claim store.
#[derive(Debug)]
pub(crate) struct Persistence {
    io: DurableIo,
    wal: WalWriter,
    /// Advisory exclusive lock on `LOCK`, held for the store's lifetime so
    /// a second open of the same directory fails instead of corrupting the
    /// WAL. Released automatically when the handle (or the process) dies,
    /// so a crash never wedges recovery.
    _lock: std::fs::File,
    /// The committed name-table chain, oldest first (empty until the first
    /// commit). Concatenating the chain's files yields the tables in id
    /// order; the last link holds the most recently appended names.
    tables_chain: Vec<String>,
    /// Table lengths `(sources, items, values)` covered by the whole chain.
    persisted_table_lens: (usize, usize, usize),
    /// Committed segments and their file names, aligned with the store's
    /// sealed-segment order. Matched by `Arc` identity (segments are
    /// immutable), so compaction is detected structurally.
    persisted: Vec<(SealedSegment, String)>,
    next_seq: u64,
    /// First persistence failure; once set, every operation is a no-op.
    broken: Option<StoreIoError>,
}

/// The state recovered from a store directory, ready to be replayed into an
/// in-memory [`ClaimStore`](crate::ClaimStore).
#[derive(Debug, Default)]
pub(crate) struct Recovered {
    /// Source names in id order (from the committed tables file).
    pub sources: Vec<String>,
    /// Item names in id order.
    pub items: Vec<String>,
    /// Value strings in id order.
    pub values: Vec<String>,
    /// Committed sealed segments, oldest first.
    pub segments: Vec<SealedSegment>,
    /// Valid write-ahead-log records, in append order.
    pub wal_records: Vec<WalRecord>,
}

/// Name of the manifest file inside a store directory.
const MANIFEST_FILE: &str = "MANIFEST";

/// Name of the advisory lock file inside a store directory.
const LOCK_FILE: &str = "LOCK";

/// Byte bound on the `MANIFEST` file: it lists a handful of segment/table
/// file names, so a larger one is corruption — refused before it is read
/// (see [`read_bounded`]), not slurped and then rejected by the decoder.
const MAX_MANIFEST_LEN: u64 = 1 << 20;

/// Returns `true` if `dir` holds durable store state (a manifest or a WAL).
pub(crate) fn state_exists(dir: &Path) -> bool {
    dir.join(MANIFEST_FILE).exists() || dir.join(WAL_FILE).exists()
}

fn read_file(path: &Path) -> Result<Vec<u8>, StoreIoError> {
    std::fs::read(path).map_err(|e| StoreIoError::io(path, &e))
}

impl Persistence {
    /// Opens (creating or recovering) the durable state in `dir`.
    ///
    /// Returns the persistence handle plus everything recovered from disk;
    /// a fresh directory recovers to the empty state.
    pub fn open(
        dir: PathBuf,
        hook: Option<Arc<dyn SyncPoint>>,
        fsync_each: bool,
    ) -> Result<(Self, Recovered), StoreIoError> {
        std::fs::create_dir_all(&dir).map_err(|e| StoreIoError::io(&dir, &e))?;
        let mut io = DurableIo::new(dir, hook);

        // 0. Take the advisory directory lock: two stores appending to one
        //    WAL (and garbage-collecting each other's segment files) would
        //    corrupt the state, so a concurrent second open must fail. The
        //    OS releases the lock when the holding process dies, so a
        //    crashed store never blocks its own recovery.
        let lock_path = io.path_of(LOCK_FILE);
        let lock = std::fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(&lock_path)
            .map_err(|e| StoreIoError::io(&lock_path, &e))?;
        lock.try_lock().map_err(|e| StoreIoError::Io {
            path: lock_path,
            message: format!("store directory is already open (advisory lock held): {e}"),
        })?;

        // 1. The manifest names the committed state (absent → empty). The
        //    read is bounded: a multi-megabyte MANIFEST is corruption and is
        //    refused as such, not allocated.
        let manifest_path = io.path_of(MANIFEST_FILE);
        let manifest_bytes = read_bounded(&manifest_path, MAX_MANIFEST_LEN)?;
        let manifest_present = manifest_bytes.is_some();
        let manifest = match &manifest_bytes {
            Some(bytes) => format::decode_manifest(bytes).map_err(|e| e.at(&manifest_path))?,
            None => Manifest::default(),
        };

        // 2. Name tables: the chain's files concatenate, oldest first, into
        //    the id-ordered tables (each link holds the names appended since
        //    its predecessor).
        let (mut sources, mut items, mut values) =
            (Vec::<String>::new(), Vec::<String>::new(), Vec::<String>::new());
        for name in &manifest.tables {
            let path = io.path_of(name);
            let (s, i, v) = format::decode_tables(&read_file(&path)?).map_err(|e| e.at(&path))?;
            sources.extend(s);
            items.extend(i);
            values.extend(v);
        }

        // 3. Sealed segments, re-validated against the tables.
        let mut segments = Vec::with_capacity(manifest.segments.len());
        for name in &manifest.segments {
            let path = io.path_of(name);
            let segment = format::decode_segment(&read_file(&path)?).map_err(|e| e.at(&path))?;
            for (source, list) in segment.per_source() {
                let out_of_range = source.index() >= sources.len()
                    || list
                        .iter()
                        .any(|&(d, v)| d.index() >= items.len() || v.index() >= values.len());
                if out_of_range {
                    return Err(StoreIoError::Corrupt {
                        path,
                        detail: format!(
                            "segment references ids beyond the {}-source/{}-item/{}-value tables",
                            sources.len(),
                            items.len(),
                            values.len()
                        ),
                    });
                }
            }
            segments.push(segment);
        }

        // 4. The write-ahead log (absent → create fresh; torn tail →
        //    truncated when the writer opens it).
        let wal_path = io.path_of(WAL_FILE);
        let (wal, wal_records) = if wal_path.exists() {
            let contents = format::read_wal(&read_file(&wal_path)?).map_err(|e| e.at(&wal_path))?;
            let writer = WalWriter::open_existing(
                &mut io,
                usize_to_u64(contents.valid_len),
                usize_to_u64(contents.records.len()),
                contents.torn,
                fsync_each,
            )?;
            (writer, contents.records)
        } else {
            (WalWriter::create(&mut io, fsync_each)?, Vec::new())
        };

        // 5. Garbage-collect files a crash may have orphaned: tmp files and
        //    segment/table files the manifest does not reference. Best
        //    effort — an orphan is harmless, it is just dead bytes. Data
        //    files are swept only when a manifest exists to judge them by:
        //    with no manifest at all, a stray `.seg` is *either* the debris
        //    of a crashed first commit (its claims still live in the WAL)
        //    *or* committed state whose manifest was lost to outside
        //    interference — deleting it in the second case would turn a
        //    repairable directory into permanent loss, so absent a
        //    manifest the sweep touches nothing but `.tmp` files.
        let referenced: Vec<&str> =
            manifest.segments.iter().chain(manifest.tables.iter()).map(String::as_str).collect();
        if let Ok(entries) = std::fs::read_dir(io.dir()) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                let orphan_tmp = name.ends_with(".tmp");
                let orphan_data = manifest_present
                    && (name.ends_with(".seg") || name.ends_with(".tbl"))
                    && !referenced.contains(&name);
                if orphan_tmp || orphan_data {
                    let _ = io.remove(name, "gc:orphan");
                }
            }
        }

        // A fresh directory "recovers" to the empty state — not worth a
        // line in the flight recorder; a real recovery is.
        if manifest_present || !wal_records.is_empty() {
            emit(
                Severity::Info,
                "store",
                "store.recovered",
                vec![
                    field::u64("sources", usize_to_u64(sources.len())),
                    field::u64("items", usize_to_u64(items.len())),
                    field::u64("values", usize_to_u64(values.len())),
                    field::u64("segments", usize_to_u64(segments.len())),
                    field::u64("wal_records", usize_to_u64(wal_records.len())),
                ],
            );
        }

        let persistence = Persistence {
            io,
            wal,
            _lock: lock,
            tables_chain: manifest.tables.clone(),
            persisted_table_lens: (sources.len(), items.len(), values.len()),
            persisted: segments.iter().cloned().zip(manifest.segments.iter().cloned()).collect(),
            next_seq: manifest.next_seq,
            broken: None,
        };
        Ok((persistence, Recovered { sources, items, values, segments, wal_records }))
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        self.io.dir()
    }

    /// The sticky first persistence failure, if any.
    pub fn broken(&self) -> Option<&StoreIoError> {
        self.broken.as_ref()
    }

    /// Complete frames currently in the WAL.
    pub fn wal_frames(&self) -> u64 {
        self.wal.frames()
    }

    /// Byte length of the WAL.
    pub fn wal_bytes(&self) -> u64 {
        self.wal.bytes()
    }

    /// `true` if WAL frames await an fsync. Always `false` once persistence
    /// is broken — a flush can no longer succeed, and reporting a permanent
    /// backlog would make a maintenance loop spin instead of backing off.
    pub fn wal_needs_sync(&self) -> bool {
        self.broken.is_none() && self.wal.needs_sync()
    }

    fn guard(&mut self, result: Result<(), StoreIoError>) {
        if let Err(e) = result {
            if self.broken.is_none() {
                emit(
                    Severity::Error,
                    "store",
                    "persistence.broken",
                    vec![field::str("detail", &e.to_string())],
                );
                self.broken = Some(e);
            }
        }
    }

    /// Appends one record to the WAL (write-ahead: call before applying the
    /// record to the in-memory store). Failures become the sticky error.
    pub fn log(&mut self, record: &WalRecord) {
        if self.broken.is_some() {
            return;
        }
        let result = self.wal.append(&mut self.io, record);
        self.guard(result);
    }

    /// Fsyncs appended WAL frames; returns the sticky error if persistence
    /// has failed (now or earlier).
    pub fn sync(&mut self) -> Result<(), StoreIoError> {
        if self.broken.is_none() {
            let result = self.wal.sync(&mut self.io);
            self.guard(result);
        }
        match &self.broken {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    /// Commits the current sealed state: writes new segment files, appends a
    /// delta tables file if the tables grew (or, with `compact_tables`,
    /// collapses the whole chain into one full file), atomically publishes
    /// the new manifest, garbage-collects superseded files, and — after a
    /// seal, when the WAL's claims are now covered by a committed segment —
    /// resets the WAL.
    pub fn commit(
        &mut self,
        sealed: &[SealedSegment],
        sources: &[String],
        items: &[String],
        values: &[String],
        reset_wal: bool,
        compact_tables: bool,
    ) {
        if self.broken.is_some() {
            return;
        }
        let span = Span::start();
        let result = self.commit_inner(sealed, sources, items, values, reset_wal, compact_tables);
        let committed = result.is_ok();
        self.guard(result);
        if committed {
            let name = match (reset_wal, compact_tables) {
                (true, _) => "commit.seal",
                (false, true) => "commit.compact",
                (false, false) => "commit",
            };
            emit(
                Severity::Info,
                "store",
                name,
                vec![
                    field::u64("segments", usize_to_u64(sealed.len())),
                    field::u64("nanos", span.elapsed_nanos()),
                ],
            );
        }
    }

    fn commit_inner(
        &mut self,
        sealed: &[SealedSegment],
        sources: &[String],
        items: &[String],
        values: &[String],
        reset_wal: bool,
        compact_tables: bool,
    ) -> Result<(), StoreIoError> {
        // 1. Segment files for every not-yet-persisted segment.
        let mut new_persisted: Vec<(SealedSegment, String)> = Vec::with_capacity(sealed.len());
        for segment in sealed {
            let name = match self.persisted.iter().find(|(p, _)| p.ptr_eq(segment)) {
                Some((_, name)) => name.clone(),
                None => {
                    let name = format!("seg-{:06}.seg", self.next_seq);
                    self.next_seq += 1;
                    let bytes = format::encode_segment(segment)
                        .map_err(|e| e.at(self.io.path_of(&name)))?;
                    self.io.atomic_write(&name, "segment", &bytes)?;
                    name
                }
            };
            new_persisted.push((segment.clone(), name));
        }

        // 2. The tables chain. Tables are append-only, so the committed
        //    lengths say exactly which names are new. A growing commit
        //    appends one delta file holding only those — the seal path is
        //    O(new names) in table I/O. A compacting commit (segment
        //    compaction, which is O(corpus) anyway) collapses the chain
        //    back into a single full file so recovery and GC stay bounded.
        let lens = (sources.len(), items.len(), values.len());
        let manifest_path = self.io.path_of(MANIFEST_FILE);
        let rewrite_full = compact_tables && (self.tables_chain.len() > 1);
        if rewrite_full || lens != self.persisted_table_lens {
            let name = format!("tables-{:06}.tbl", self.next_seq);
            self.next_seq += 1;
            let (s0, i0, v0) = if rewrite_full { (0, 0, 0) } else { self.persisted_table_lens };
            // Tables are append-only, so the committed lengths are always
            // within the current tables; `get` keeps the slice total anyway.
            let bytes = format::encode_tables(
                sources.get(s0..).unwrap_or(&[]),
                items.get(i0..).unwrap_or(&[]),
                values.get(v0..).unwrap_or(&[]),
            )
            .map_err(|e| e.at(self.io.path_of(&name)))?;
            self.io.atomic_write(&name, "tables", &bytes)?;
            if rewrite_full {
                self.tables_chain = vec![name];
            } else {
                self.tables_chain.push(name);
            }
            self.persisted_table_lens = lens;
        }

        // 3. The manifest rename is the commit point.
        let manifest = Manifest {
            next_seq: self.next_seq,
            tables: self.tables_chain.clone(),
            segments: new_persisted.iter().map(|(_, name)| name.clone()).collect(),
        };
        let bytes = format::encode_manifest(&manifest).map_err(|e| e.at(&manifest_path))?;
        self.io.atomic_write(MANIFEST_FILE, "manifest", &bytes)?;

        // 4. Garbage-collect what the new manifest no longer references.
        //    Best effort, like the open-time sweep: the commit has already
        //    succeeded and an orphan is harmless dead bytes (the next open
        //    removes it), so a failed unlink must not poison persistence.
        let old_persisted = std::mem::replace(&mut self.persisted, new_persisted);
        for (_, name) in &old_persisted {
            if !self.persisted.iter().any(|(_, kept)| kept == name) {
                let _ = self.io.remove(name, "gc:segment");
            }
        }
        if let Ok(entries) = std::fs::read_dir(self.io.dir()) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                if name.ends_with(".tbl") && !self.tables_chain.iter().any(|kept| kept == name) {
                    let _ = self.io.remove(name, "gc:tables");
                }
            }
        }

        // 5. After a seal the WAL's claims live in a committed segment:
        //    start a fresh log. (Not after a pure compaction — the growing
        //    segment, and hence the WAL, is untouched by it.)
        if reset_wal {
            self.wal.reset(&mut self.io)?;
        }
        Ok(())
    }
}

impl Drop for Persistence {
    /// Flushes any write-ahead-log frames still awaiting an fsync.
    ///
    /// `ingest` acknowledges a claim after *appending* its frame; the fsync
    /// is deferred to `sync()` / seal boundaries / background maintenance.
    /// Without this hook, dropping the last handle to a store — including a
    /// `SharedClaimStore` whose maintenance thread was mid-tick — could end
    /// the process with appended-but-unsynced frames, silently narrowing
    /// the durable prefix below what maintenance had reported flushed. A
    /// best-effort final fsync closes that window; failures are swallowed
    /// (the store is gone — there is nobody left to report to), and under
    /// crash injection the gated fsync is skipped exactly like every other
    /// dead-mode event, so the simulated-crash model is unchanged.
    fn drop(&mut self) {
        if self.broken.is_none() && self.wal.needs_sync() {
            let _ = self.wal.sync(&mut self.io);
        }
    }
}
