//! The live detection pipeline: store snapshots in, copy decisions out.

use crate::concurrent::SharedClaimStore;
use crate::snapshot::StoreSnapshot;
use copydet_bayes::{CopyParams, SourceAccuracies, ValueProbabilities};
use copydet_detect::{
    CopyDetector, DetectionResult, IncrementalConfig, IncrementalDetector, IncrementalRoundStats,
    OwnedRoundInput,
};
use copydet_fusion::{value_probabilities, VoteConfig};

/// Configuration of a [`LiveDetector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiveConfig {
    /// Model priors shared with the detector and the vote bootstrap.
    pub params: CopyParams,
    /// Accuracy assumed for every source by the vote bootstrap (the paper's
    /// implementations use 0.8).
    pub initial_accuracy: f64,
    /// Configuration of the underlying incremental detector. The default
    /// uses `warmup_rounds: 0`: only the very first batch is detected from
    /// scratch, every later batch is delta-driven.
    pub incremental: IncrementalConfig,
}

impl Default for LiveConfig {
    fn default() -> Self {
        Self {
            params: CopyParams::paper_defaults(),
            initial_accuracy: 0.8,
            incremental: IncrementalConfig { warmup_rounds: 0, ..IncrementalConfig::default() },
        }
    }
}

/// Drives delta-driven copy detection over a stream of store snapshots.
///
/// Each [`observe`](Self::observe) call bootstraps the detection state for
/// the snapshot (uniform source accuracies, accuracy-weighted vote
/// probabilities — the same state a from-scratch single-round run would use)
/// and runs one detection round: the first snapshot from scratch (HYBRID
/// with bookkeeping), every later snapshot through the incremental
/// delta path, so only pairs affected by the new claims are re-decided.
pub struct LiveDetector {
    config: LiveConfig,
    detector: IncrementalDetector,
    round: usize,
    last_epoch: Option<u64>,
}

impl Default for LiveDetector {
    fn default() -> Self {
        Self::new()
    }
}

impl LiveDetector {
    /// Creates the pipeline with the default configuration.
    pub fn new() -> Self {
        Self::with_config(LiveConfig::default())
    }

    /// Creates the pipeline with a custom configuration.
    pub fn with_config(config: LiveConfig) -> Self {
        Self {
            config,
            detector: IncrementalDetector::with_config(config.incremental),
            round: 0,
            last_epoch: None,
        }
    }

    /// Runs one detection round over a snapshot and returns the per-pair
    /// outcomes.
    ///
    /// # Panics
    /// Panics if a snapshot is skipped or observed out of order: after the
    /// first observation, each call must see the immediately following epoch.
    /// A snapshot's delta only covers the changes since its *direct*
    /// predecessor, so skipping one would silently drop the skipped window's
    /// claims from the detector's bookkeeping. (Snapshots taken before the
    /// first observation are fine — the first round detects the full dataset
    /// from scratch.)
    pub fn observe(&mut self, snapshot: &StoreSnapshot) -> DetectionResult {
        if let Some(last) = self.last_epoch {
            assert!(
                snapshot.epoch == last + 1,
                "snapshots must be observed consecutively (epoch {} after {}): a snapshot's \
                 delta covers only its direct predecessor, so a skipped snapshot would lose \
                 its claims from the incremental bookkeeping",
                snapshot.epoch,
                last
            );
        }
        self.last_epoch = Some(snapshot.epoch);
        let (accuracies, probabilities) = self.bootstrap_state(snapshot);
        self.round += 1;
        let mut input = copydet_detect::RoundInput::new(
            &snapshot.dataset,
            &accuracies,
            &probabilities,
            self.config.params,
        );
        if let Some(delta) = &snapshot.delta {
            input = input.with_delta(delta);
        }
        self.detector.detect_round(&input, self.round)
    }

    /// One round against the *current* state of a shared store: takes the
    /// snapshot under the store lock (O(delta)), then runs detection entirely
    /// outside it — writers keep ingesting, and a maintenance thread keeps
    /// sealing/compacting, while the round computes over the frozen snapshot.
    ///
    /// The same consecutive-epoch contract as [`observe`](Self::observe)
    /// applies: this detector must be the only snapshot-taker of the store.
    pub fn observe_shared(&mut self, store: &SharedClaimStore) -> DetectionResult {
        let snapshot = store.snapshot();
        self.observe(&snapshot)
    }

    /// Assembles the owned round input for a snapshot: the bootstrap
    /// accuracy/probability state plus cheap handles to the snapshot's
    /// dataset and delta. The result is self-contained (no borrow of the
    /// snapshot or the store), so it can cross a thread boundary and be
    /// detected while the store moves on.
    pub fn prepare(&self, snapshot: &StoreSnapshot) -> OwnedRoundInput {
        let (accuracies, probabilities) = self.bootstrap_state(snapshot);
        OwnedRoundInput {
            dataset: snapshot.dataset.clone(),
            accuracies,
            probabilities,
            params: self.config.params,
            delta: snapshot.delta.clone(),
        }
    }

    /// The bootstrap detection state the pipeline uses for a snapshot:
    /// uniform accuracies and vote-based value probabilities. Exposed so
    /// equivalence tests can run a from-scratch baseline on identical state.
    pub fn bootstrap_state(
        &self,
        snapshot: &StoreSnapshot,
    ) -> (SourceAccuracies, ValueProbabilities) {
        let accuracies =
            SourceAccuracies::uniform(snapshot.dataset.num_sources(), self.config.initial_accuracy)
                .expect("initial accuracy is a probability");
        let probabilities = value_probabilities(
            &snapshot.dataset,
            &accuracies,
            None,
            &VoteConfig::new(self.config.params),
        );
        (accuracies, probabilities)
    }

    /// Number of detection rounds run so far.
    pub fn rounds(&self) -> usize {
        self.round
    }

    /// Per-round pass statistics of the underlying incremental detector
    /// (empty until the first delta-driven round).
    pub fn round_stats(&self) -> &[IncrementalRoundStats] {
        self.detector.round_stats()
    }

    /// The underlying incremental detector.
    pub fn detector(&self) -> &IncrementalDetector {
        &self.detector
    }

    /// Resets the pipeline to its initial state.
    pub fn reset(&mut self) {
        self.detector.reset();
        self.round = 0;
        self.last_epoch = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClaimStore;

    #[test]
    fn observe_runs_warmup_then_delta_rounds() {
        let mut store = ClaimStore::new();
        for (s, d, v) in [
            ("S0", "NJ", "Trenton"),
            ("S1", "NJ", "Trenton"),
            ("S2", "NJ", "Newark"),
            ("S0", "AZ", "Phoenix"),
            ("S1", "AZ", "Phoenix"),
        ] {
            store.ingest(s, d, v);
        }
        let mut live = LiveDetector::new();
        let snap1 = store.snapshot();
        let r1 = live.observe(&snap1);
        assert_eq!(r1.algorithm, "INCREMENTAL");
        assert_eq!(live.rounds(), 1);
        assert!(live.round_stats().is_empty(), "first round is a warm-up");

        store.ingest("S2", "AZ", "Phoenix");
        let snap2 = store.snapshot();
        let _r2 = live.observe(&snap2);
        assert_eq!(live.rounds(), 2);
        let stats = live.round_stats().last().copied().unwrap();
        assert!(stats.delta_recomputed > 0, "second round is delta-driven");

        live.reset();
        assert_eq!(live.rounds(), 0);
        assert!(live.round_stats().is_empty());
    }

    #[test]
    fn empty_delta_on_grown_id_space_is_safe() {
        // A source can be interned before its first claim arrives; the next
        // snapshot then has a grown id space but an empty delta. The delta
        // round must pad its old-state bookkeeping rather than index out of
        // bounds.
        let mut store = ClaimStore::new();
        store.ingest("S0", "D0", "x");
        store.ingest("S1", "D0", "x");
        let mut live = LiveDetector::new();
        let _ = live.observe(&store.snapshot());
        store.source("announced-but-silent");
        let snap = store.snapshot();
        assert!(snap.delta.as_ref().is_some_and(|d| d.is_empty()));
        assert_eq!(snap.dataset.num_sources(), 3);
        let result = live.observe(&snap);
        assert_eq!(result.algorithm, "INCREMENTAL");
        // The silent source can now start claiming.
        store.ingest("announced-but-silent", "D0", "x");
        let result = live.observe(&store.snapshot());
        assert!(result.pairs_considered > 0);
    }

    #[test]
    #[should_panic(expected = "observed consecutively")]
    fn observe_rejects_out_of_order_snapshots() {
        let mut store = ClaimStore::new();
        store.ingest("S0", "D0", "x");
        let snap1 = store.snapshot();
        store.ingest("S1", "D0", "x");
        let snap2 = store.snapshot();
        let mut live = LiveDetector::new();
        let _ = live.observe(&snap2);
        let _ = live.observe(&snap1);
    }

    #[test]
    #[should_panic(expected = "observed consecutively")]
    fn observe_rejects_skipped_snapshots() {
        let mut store = ClaimStore::new();
        store.ingest("S0", "D0", "x");
        let snap1 = store.snapshot();
        let mut live = LiveDetector::new();
        let _ = live.observe(&snap1);
        store.ingest("S1", "D0", "x");
        let _skipped = store.snapshot(); // drains the tracker — must be observed
        store.ingest("S2", "D0", "x");
        let snap3 = store.snapshot();
        let _ = live.observe(&snap3);
    }
}
