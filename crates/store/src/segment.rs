//! The two segment kinds of the claim store: in-memory **growing** segments
//! that absorb ingest, and immutable **sealed** segments frozen into the
//! dense sorted representation the detection algorithms consume.
//!
//! The design follows the growing/sealed split of search-engine segment
//! stores: writes always land in the single growing segment (hash-map
//! backed, duplicate/update tolerant); sealing freezes it into sorted
//! per-source claim lists; compaction merges sealed segments newest-wins.
//! Claims are never deleted — re-claiming an item overwrites the value.

use copydet_model::{ItemId, SourceId, ValueId};
use std::collections::HashMap;
use std::sync::Arc;

/// The mutable ingest segment: a per-source `item → value` map.
///
/// Duplicate claims for the same `(source, item)` overwrite in place (the
/// count is tracked), exactly like
/// [`DatasetBuilder`](copydet_model::DatasetBuilder) ingest.
#[derive(Debug, Default, Clone)]
pub struct GrowingSegment {
    /// `claims[s]` = claims of source `s` since this segment was opened.
    /// Indexed by the store's global dense source ids; sources that have not
    /// written into this segment have empty maps.
    claims: Vec<HashMap<ItemId, ValueId>>,
    num_claims: usize,
    overwrites: usize,
}

impl GrowingSegment {
    /// Opens an empty growing segment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or overwrites) a claim, returning the value it replaced
    /// *within this segment*, if any.
    pub fn insert(&mut self, source: SourceId, item: ItemId, value: ValueId) -> Option<ValueId> {
        if source.index() >= self.claims.len() {
            self.claims.resize_with(source.index() + 1, HashMap::new);
        }
        let old = self.claims[source.index()].insert(item, value);
        match old {
            Some(_) => self.overwrites += 1,
            None => self.num_claims += 1,
        }
        old
    }

    /// The value this segment holds for `(source, item)`, if any.
    pub fn get(&self, source: SourceId, item: ItemId) -> Option<ValueId> {
        self.claims.get(source.index())?.get(&item).copied()
    }

    /// Number of distinct `(source, item)` claims in the segment.
    pub fn num_claims(&self) -> usize {
        self.num_claims
    }

    /// Number of in-segment overwrites absorbed so far.
    pub fn overwrites(&self) -> usize {
        self.overwrites
    }

    /// Returns `true` if nothing has been ingested since the segment opened.
    pub fn is_empty(&self) -> bool {
        self.num_claims == 0
    }

    /// The segment's claims of `source`, sorted by item (empty if the source
    /// has not written into this segment). Used by the O(delta) snapshot path
    /// to re-merge a single touched source without freezing the whole
    /// segment.
    pub fn sorted_claims_of(&self, source: SourceId) -> Vec<(ItemId, ValueId)> {
        self.claims.get(source.index()).map(sorted_list).unwrap_or_default()
    }

    /// Freezes the segment into an immutable [`SealedSegment`].
    pub fn freeze(self) -> SealedSegment {
        self.freeze_ref()
    }

    /// A sealed view of the segment's current contents, without consuming
    /// (or cloning the hash maps of) the segment.
    ///
    /// This keeps the first (full-assembly) `snapshot()` cheap: the claim
    /// pairs are copied directly into sorted lists, while the growing segment
    /// stays open for further ingest.
    pub fn freeze_ref(&self) -> SealedSegment {
        let claims: Vec<(SourceId, Vec<(ItemId, ValueId)>)> = self
            .claims
            .iter()
            .enumerate()
            .filter(|(_, map)| !map.is_empty())
            .map(|(s, map)| (SourceId::from_index(s), sorted_list(map)))
            .collect();
        SealedSegment::from_parts(claims, self.num_claims)
    }
}

/// The single map → item-sorted-claim-list normalization shared by
/// [`GrowingSegment::freeze`], [`GrowingSegment::freeze_ref`] and
/// [`GrowingSegment::sorted_claims_of`].
fn sorted_list(map: &HashMap<ItemId, ValueId>) -> Vec<(ItemId, ValueId)> {
    let mut list: Vec<(ItemId, ValueId)> = map.iter().map(|(&d, &v)| (d, v)).collect();
    list.sort_unstable_by_key(|&(d, _)| d);
    list
}

/// An immutable segment: per-source claim lists sorted by item, listed in
/// increasing source id (only sources with claims appear).
///
/// The claim storage sits behind a shared [`Arc`]: cloning a sealed segment
/// is a reference-count bump, so store snapshots (and store clones) alias
/// sealed data instead of materializing it. Compaction builds *new* merged
/// segments and never mutates existing ones — a handle taken before a
/// compaction keeps observing exactly the claims it was taken over.
#[derive(Debug, Clone)]
pub struct SealedSegment {
    inner: Arc<SealedInner>,
}

#[derive(Debug)]
struct SealedInner {
    claims: Vec<(SourceId, Vec<(ItemId, ValueId)>)>,
    num_claims: usize,
}

impl SealedSegment {
    /// Assembles a segment from validated parts (sources strictly increasing,
    /// items strictly increasing per source). Crate-internal: used by
    /// [`GrowingSegment::freeze`], segment merging, and the on-disk decoder.
    pub(crate) fn from_parts(
        claims: Vec<(SourceId, Vec<(ItemId, ValueId)>)>,
        num_claims: usize,
    ) -> Self {
        Self { inner: Arc::new(SealedInner { claims, num_claims }) }
    }

    /// Number of claims in the segment.
    pub fn num_claims(&self) -> usize {
        self.inner.num_claims
    }

    /// Number of sources with at least one claim in the segment.
    pub fn num_sources(&self) -> usize {
        self.inner.claims.len()
    }

    /// Returns `true` if both handles alias the same sealed storage.
    pub fn ptr_eq(&self, other: &SealedSegment) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// The segment's claim list for `source`, sorted by item.
    pub fn claims_of(&self, source: SourceId) -> &[(ItemId, ValueId)] {
        self.inner
            .claims
            .binary_search_by_key(&source, |&(s, _)| s)
            .map(|i| self.inner.claims[i].1.as_slice())
            .unwrap_or(&[])
    }

    /// The value this segment holds for `(source, item)`, if any.
    pub fn get(&self, source: SourceId, item: ItemId) -> Option<ValueId> {
        let list = self.claims_of(source);
        list.binary_search_by_key(&item, |&(d, _)| d).ok().map(|i| list[i].1)
    }

    /// Iterates over `(source, claims)` in increasing source id.
    pub fn per_source(&self) -> impl Iterator<Item = (SourceId, &[(ItemId, ValueId)])> + '_ {
        self.inner.claims.iter().map(|(s, list)| (*s, list.as_slice()))
    }

    /// Merges two sealed segments into one; where both hold a claim for the
    /// same `(source, item)`, `newer` wins. The inputs are untouched (any
    /// snapshot aliasing them keeps its view).
    pub fn merge(older: &SealedSegment, newer: &SealedSegment) -> SealedSegment {
        let (oc, nc) = (&older.inner.claims, &newer.inner.claims);
        let mut claims: Vec<(SourceId, Vec<(ItemId, ValueId)>)> = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < oc.len() || j < nc.len() {
            let take_older = match (oc.get(i), nc.get(j)) {
                (Some((a, _)), Some((b, _))) => a < b,
                (Some(_), None) => true,
                _ => false,
            };
            if take_older {
                claims.push(oc[i].clone());
                i += 1;
            } else if i < oc.len() && oc[i].0 == nc[j].0 {
                claims.push((nc[j].0, merge_sorted(&oc[i].1, &nc[j].1)));
                i += 1;
                j += 1;
            } else {
                claims.push(nc[j].clone());
                j += 1;
            }
        }
        let num_claims = claims.iter().map(|(_, l)| l.len()).sum();
        SealedSegment::from_parts(claims, num_claims)
    }
}

/// Merges two item-sorted claim lists; entries of `newer` win on collision.
pub(crate) fn merge_sorted(
    older: &[(ItemId, ValueId)],
    newer: &[(ItemId, ValueId)],
) -> Vec<(ItemId, ValueId)> {
    let mut out = Vec::with_capacity(older.len() + newer.len());
    let (mut i, mut j) = (0, 0);
    while i < older.len() && j < newer.len() {
        match older[i].0.cmp(&newer[j].0) {
            std::cmp::Ordering::Less => {
                out.push(older[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(newer[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(newer[j]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&older[i..]);
    out.extend_from_slice(&newer[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> SourceId {
        SourceId::new(i)
    }
    fn d(i: u32) -> ItemId {
        ItemId::new(i)
    }
    fn v(i: u32) -> ValueId {
        ValueId::new(i)
    }

    #[test]
    fn growing_insert_overwrite_and_freeze() {
        let mut g = GrowingSegment::new();
        assert!(g.is_empty());
        assert_eq!(g.insert(s(1), d(2), v(0)), None);
        assert_eq!(g.insert(s(1), d(0), v(1)), None);
        assert_eq!(g.insert(s(1), d(2), v(2)), Some(v(0)));
        assert_eq!(g.insert(s(3), d(1), v(1)), None);
        assert_eq!(g.num_claims(), 3);
        assert_eq!(g.overwrites(), 1);
        assert_eq!(g.get(s(1), d(2)), Some(v(2)));
        assert_eq!(g.get(s(0), d(0)), None);
        assert_eq!(g.get(s(9), d(0)), None);

        let sealed = g.freeze();
        assert_eq!(sealed.num_claims(), 3);
        assert_eq!(sealed.num_sources(), 2);
        assert_eq!(sealed.claims_of(s(1)), &[(d(0), v(1)), (d(2), v(2))]);
        assert_eq!(sealed.get(s(3), d(1)), Some(v(1)));
        assert_eq!(sealed.get(s(0), d(0)), None);
        assert_eq!(sealed.get(s(1), d(1)), None);
    }

    #[test]
    fn freeze_ref_matches_freeze_and_keeps_segment_open() {
        let mut g = GrowingSegment::new();
        g.insert(s(2), d(1), v(0));
        g.insert(s(0), d(3), v(1));
        g.insert(s(0), d(0), v(2));
        let view = g.freeze_ref();
        // The segment stays usable after the view is taken.
        g.insert(s(1), d(0), v(3));
        assert_eq!(g.num_claims(), 4);
        let frozen = g.freeze();
        assert_eq!(view.num_claims(), 3);
        assert_eq!(view.claims_of(s(0)), &[(d(0), v(2)), (d(3), v(1))]);
        assert_eq!(view.get(s(2), d(1)), Some(v(0)));
        assert_eq!(view.get(s(1), d(0)), None, "taken before s1's claim");
        assert_eq!(frozen.get(s(1), d(0)), Some(v(3)));
    }

    #[test]
    fn sealed_merge_is_newest_wins() {
        let mut a = GrowingSegment::new();
        a.insert(s(0), d(0), v(0));
        a.insert(s(0), d(1), v(1));
        a.insert(s(2), d(0), v(2));
        let mut b = GrowingSegment::new();
        b.insert(s(0), d(1), v(3)); // overwrites a's claim
        b.insert(s(1), d(0), v(4)); // new source in between
        b.insert(s(2), d(2), v(5)); // extends s2
        let merged = SealedSegment::merge(&a.freeze(), &b.freeze());
        assert_eq!(merged.num_claims(), 5);
        assert_eq!(merged.get(s(0), d(1)), Some(v(3)), "newer value wins");
        assert_eq!(merged.get(s(0), d(0)), Some(v(0)));
        assert_eq!(merged.get(s(1), d(0)), Some(v(4)));
        assert_eq!(merged.claims_of(s(2)), &[(d(0), v(2)), (d(2), v(5))]);
        let order: Vec<SourceId> = merged.per_source().map(|(s, _)| s).collect();
        assert_eq!(order, vec![s(0), s(1), s(2)]);
    }

    #[test]
    fn sealed_clones_alias_storage() {
        let mut g = GrowingSegment::new();
        g.insert(s(0), d(0), v(0));
        g.insert(s(1), d(1), v(1));
        let sealed = g.freeze();
        let alias = sealed.clone();
        assert!(alias.ptr_eq(&sealed), "cloning a sealed segment copies no claims");
        // Merging produces a fresh segment; the inputs keep their identity.
        let merged = SealedSegment::merge(&sealed, &alias);
        assert!(!merged.ptr_eq(&sealed));
        assert_eq!(merged.num_claims(), 2);
        assert_eq!(sealed.num_claims(), 2);
    }

    #[test]
    fn growing_sorted_claims_of_single_source() {
        let mut g = GrowingSegment::new();
        g.insert(s(1), d(2), v(0));
        g.insert(s(1), d(0), v(1));
        g.insert(s(3), d(1), v(2));
        assert_eq!(g.sorted_claims_of(s(1)), vec![(d(0), v(1)), (d(2), v(0))]);
        assert_eq!(g.sorted_claims_of(s(3)), vec![(d(1), v(2))]);
        assert!(g.sorted_claims_of(s(0)).is_empty());
        assert!(g.sorted_claims_of(s(9)).is_empty(), "beyond the segment's source range");
    }

    #[test]
    fn merge_sorted_handles_disjoint_and_overlap() {
        let older = vec![(d(0), v(0)), (d(2), v(1))];
        let newer = vec![(d(1), v(2)), (d(2), v(3)), (d(4), v(4))];
        let m = merge_sorted(&older, &newer);
        assert_eq!(m, vec![(d(0), v(0)), (d(1), v(2)), (d(2), v(3)), (d(4), v(4))]);
        assert_eq!(merge_sorted(&[], &newer), newer);
        assert_eq!(merge_sorted(&older, &[]), older);
    }
}
