//! Concurrent use of the claim store: a cloneable shared handle so ingest,
//! snapshotting and segment maintenance can run from different threads.
//!
//! The locking story is deliberately simple — one mutex around the store —
//! because the zero-copy snapshot rework makes every critical section short:
//! ingest is O(1) amortized, `snapshot()` is O(delta) and hands out a
//! [`Dataset`] that *aliases* the shared immutable storage. The expensive
//! work (a detection round over a snapshot) happens entirely **outside** the
//! lock, so writers keep streaming into the growing segment while a reader
//! detects against an earlier snapshot, and a background thread can seal and
//! compact in between (sealed segments are immutable and `Arc`-shared, so a
//! snapshot held across a compaction keeps its exact view).
//!
//! ```
//! use copydet_store::{LiveDetector, SharedClaimStore};
//!
//! let store = SharedClaimStore::new();
//! std::thread::scope(|scope| {
//!     let writer = store.clone();
//!     scope.spawn(move || {
//!         for i in 0..100 {
//!             writer.ingest(&format!("S{}", i % 7), &format!("D{}", i % 13), "x");
//!         }
//!     });
//!     let maintainer = store.clone();
//!     scope.spawn(move || {
//!         maintainer.maintenance_tick(32, 4);
//!     });
//!     let mut live = LiveDetector::new();
//!     let _decisions = live.observe_shared(&store); // detection outside the lock
//! });
//! ```

use crate::error::StoreIoError;
use crate::snapshot::StoreSnapshot;
use crate::stats::StoreStats;
use crate::store::{ClaimStore, StoreConfig};
use copydet_model::sync::{RankedMutex, RankedMutexGuard};
use copydet_model::Claim;
use copydet_obs::event::field;
use copydet_obs::{emit, slow_op_exceeded, Severity, Span};
use std::path::Path;
use std::sync::Arc;

/// Lock rank of the per-store mutex; see `DESIGN.md` §8. Ranks above this
/// one (the frontend connection registry) may be taken while it is held;
/// the shard registry (rank 10) must already be released.
const CLAIM_STORE_RANK: u32 = 20;

/// A cloneable, thread-safe handle to a [`ClaimStore`].
///
/// Clones share the same underlying store. Each method takes the lock for
/// the duration of one store operation only; anything expensive a caller
/// does with the *result* (detection over a snapshot, index construction)
/// runs unlocked thanks to the snapshot's shared-immutable storage.
#[derive(Debug, Clone)]
pub struct SharedClaimStore {
    // lock-rank: 20 (store.claim_store.shard)
    inner: Arc<RankedMutex<ClaimStore>>,
}

impl Default for SharedClaimStore {
    fn default() -> Self {
        Self::from_store(ClaimStore::default())
    }
}

impl SharedClaimStore {
    /// Creates an empty shared store with manual sealing/compaction.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty shared store with the given configuration.
    pub fn with_config(config: StoreConfig) -> Self {
        Self::from_store(ClaimStore::with_config(config))
    }

    /// Wraps an existing store (e.g. one pre-loaded single-threaded).
    pub fn from_store(store: ClaimStore) -> Self {
        // lock-rank: 20 (store.claim_store.shard)
        Self {
            inner: Arc::new(RankedMutex::new(CLAIM_STORE_RANK, "store.claim_store.shard", store)),
        }
    }

    /// Opens (creating or recovering) a **durable** shared store in `dir`
    /// with the default configuration; see [`ClaimStore::open`].
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, StoreIoError> {
        ClaimStore::open(dir).map(Self::from_store)
    }

    /// Opens (creating or recovering) a durable shared store with the given
    /// configuration; see [`ClaimStore::open_with_config`].
    pub fn open_with_config(
        dir: impl AsRef<Path>,
        config: StoreConfig,
    ) -> Result<Self, StoreIoError> {
        ClaimStore::open_with_config(dir, config).map(Self::from_store)
    }

    /// Locks the store for a sequence of operations that must be atomic
    /// (e.g. snapshot + `build_index` against the same epoch).
    ///
    /// # Panics
    /// Panics if a previous holder panicked while holding the lock, or (in
    /// debug builds) if the acquisition violates the lock-rank order of
    /// `DESIGN.md` §8.
    pub fn lock(&self) -> RankedMutexGuard<'_, ClaimStore> {
        self.inner.lock()
    }

    /// Ingests one claim (see [`ClaimStore::ingest`]).
    pub fn ingest(&self, source: &str, item: &str, value: &str) -> Claim {
        self.lock().ingest(source, item, value)
    }

    /// Takes a consistent snapshot (see [`ClaimStore::snapshot`]). The lock
    /// is held only for the O(delta) patch assembly; the returned snapshot
    /// aliases shared immutable storage and stays valid — and unchanged —
    /// while other threads keep ingesting, sealing or compacting.
    pub fn snapshot(&self) -> StoreSnapshot {
        self.lock().snapshot()
    }

    /// Seals the growing segment (see [`ClaimStore::seal`]).
    pub fn seal(&self) {
        self.lock().seal();
    }

    /// Compacts the sealed segments (see [`ClaimStore::compact`]).
    pub fn compact(&self) {
        self.lock().compact();
    }

    /// One background-maintenance step: seals the growing segment once it
    /// holds at least `seal_at` claims, then compacts once more than
    /// `max_segments` sealed segments exist — and, on a durable store,
    /// fsyncs any write-ahead-log frames still awaiting a flush, so
    /// background sealing doubles as background flushing. Returns `true` if
    /// it did any of the three.
    ///
    /// This is the loop body for a maintenance thread (spawned, like
    /// `detect::parallel`, inside a [`std::thread::scope`]): writers stream
    /// with a plain manual-mode config while sealing/compaction/fsync cost
    /// is paid off the ingest path. Each tick takes the store lock, so a
    /// maintenance loop should sleep or back off when the tick returns
    /// `false` rather than spin, to avoid contending with writers for
    /// nothing. Snapshots held by readers are unaffected — compaction
    /// builds new segments and never mutates shared ones. A flush failure
    /// is recorded as the store's sticky [`StoreIoError`]; poll
    /// [`io_error`](Self::io_error) to observe it.
    pub fn maintenance_tick(&self, seal_at: usize, max_segments: usize) -> bool {
        let span = Span::start();
        let mut store = self.lock();
        let mut acted = false;
        if store.stats().growing_claims >= seal_at.max(1) {
            store.seal();
            acted = true;
        }
        if store.stats().sealed_segments > max_segments.max(1) {
            store.compact();
            acted = true;
        }
        if store.wal_needs_sync() {
            // The error (if any) is sticky in the store; background
            // maintenance has no channel to report it and does not need one.
            let _ = store.sync();
            acted = true;
        }
        drop(store);
        let nanos = span.elapsed_nanos();
        if acted && slow_op_exceeded(nanos) {
            emit(
                Severity::Warn,
                "store",
                "maintenance.slow_tick",
                vec![field::u64("nanos", nanos)],
            );
        }
        acted
    }

    /// Flushes and fsyncs the write-ahead log (see [`ClaimStore::sync`]).
    pub fn sync(&self) -> Result<(), StoreIoError> {
        self.lock().sync()
    }

    /// The first persistence failure, if any (see
    /// [`ClaimStore::io_error`]).
    pub fn io_error(&self) -> Option<StoreIoError> {
        self.lock().io_error().cloned()
    }

    /// Summary statistics of the store.
    pub fn stats(&self) -> StoreStats {
        self.lock().stats()
    }

    /// Number of distinct live `(source, item)` claims.
    pub fn num_claims(&self) -> usize {
        self.lock().num_claims()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_one_store() {
        let store = SharedClaimStore::new();
        let other = store.clone();
        store.ingest("S0", "D0", "x");
        other.ingest("S1", "D0", "x");
        assert_eq!(store.num_claims(), 2);
        let snap = other.snapshot();
        assert_eq!(snap.dataset.num_sources(), 2);
    }

    #[test]
    fn maintenance_tick_seals_and_compacts() {
        let store = SharedClaimStore::new();
        for i in 0..6 {
            store.ingest(&format!("S{i}"), "D0", "x");
            assert!(store.maintenance_tick(2, 1) || store.stats().growing_claims < 2);
        }
        let stats = store.stats();
        assert!(stats.sealed_segments <= 2, "compaction bounds the segment count");
        assert_eq!(stats.live_claims, 6);
        assert!(!store.maintenance_tick(1000, 1000), "nothing due");
    }

    #[test]
    fn snapshot_survives_concurrent_ingest_and_maintenance() {
        let store = SharedClaimStore::new();
        for i in 0..8 {
            store.ingest(&format!("S{i}"), &format!("D{}", i % 3), &format!("v{i}"));
        }
        let snap = store.snapshot();
        let frozen: Vec<(String, String, String)> = snap
            .dataset
            .claim_refs()
            .map(|c| (c.source.to_owned(), c.item.to_owned(), c.value.to_owned()))
            .collect();
        std::thread::scope(|scope| {
            let writer = store.clone();
            scope.spawn(move || {
                for i in 0..50 {
                    writer.ingest(&format!("W{}", i % 5), &format!("D{}", i % 3), "y");
                }
            });
            let maintainer = store.clone();
            scope.spawn(move || {
                for _ in 0..10 {
                    maintainer.maintenance_tick(8, 2);
                }
            });
        });
        let after: Vec<(String, String, String)> = snap
            .dataset
            .claim_refs()
            .map(|c| (c.source.to_owned(), c.item.to_owned(), c.value.to_owned()))
            .collect();
        assert_eq!(frozen, after, "a held snapshot never observes later mutation");
        assert!(store.num_claims() > snap.dataset.num_claims());
    }
}
