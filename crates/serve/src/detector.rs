//! Fan-out detection rounds over a [`ShardedStore`] and the cross-shard
//! merge into global copy decisions.

use crate::shard::{ShardMaps, ShardedStore};
use copydet_bayes::{CopyDecision, SourceAccuracies, ValueProbabilities};
use copydet_detect::{
    collect_shard_evidence, fold_pair_runs, merge_shard_rounds_parallel, topk, DetectError,
    DetectionResult, PairOutcome, SharedItemObservation, TopKResult,
};
use copydet_fusion::{vote_group_probabilities, VoteConfig};
use copydet_model::codec::usize_to_u64;
use copydet_model::{Dataset, ItemValueGroup, SourceId, SourcePair};
use copydet_nra::SortedList;
use copydet_obs::event::field;
use copydet_obs::{
    emit, registry, slow_op_exceeded, trace_fields, trace_ring, Counter, Histogram,
    RoundTraceBuilder, Severity, Span,
};
use copydet_store::LiveConfig;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// Sharded detection rounds completed in this process.
fn rounds_total() -> &'static Arc<Counter> {
    static COUNTER: OnceLock<Arc<Counter>> = OnceLock::new();
    COUNTER.get_or_init(|| registry().counter("copydet_serve_rounds_total"))
}

/// Wall time of whole sharded detection rounds.
fn round_nanos() -> &'static Arc<Histogram> {
    static HIST: OnceLock<Arc<Histogram>> = OnceLock::new();
    HIST.get_or_init(|| registry().histogram("copydet_serve_round_nanos"))
}

/// Top-k queries answered in this process.
fn topk_queries_total() -> &'static Arc<Counter> {
    static COUNTER: OnceLock<Arc<Counter>> = OnceLock::new();
    COUNTER.get_or_init(|| registry().counter("copydet_serve_topk_queries_total"))
}

/// Per-query wall time of top-k queries.
fn topk_query_nanos() -> &'static Arc<Histogram> {
    static HIST: OnceLock<Arc<Histogram>> = OnceLock::new();
    HIST.get_or_init(|| registry().histogram("copydet_serve_topk_query_nanos"))
}

/// Candidate pairs ruled out by the upper bound alone (never evaluated).
fn topk_candidates_pruned() -> &'static Arc<Counter> {
    static COUNTER: OnceLock<Arc<Counter>> = OnceLock::new();
    COUNTER.get_or_init(|| registry().counter("copydet_serve_topk_candidates_pruned_total"))
}

/// Candidate pairs whose exact evidence was materialized for a top-k query.
fn topk_pairs_evaluated() -> &'static Arc<Counter> {
    static COUNTER: OnceLock<Arc<Counter>> = OnceLock::new();
    COUNTER.get_or_init(|| registry().counter("copydet_serve_topk_pairs_evaluated_total"))
}

/// Runs copy detection over an item-partitioned store: one evidence scan per
/// shard, fanned out across threads, then an exact merge.
///
/// Each round:
///
/// 1. **Capture** — every shard's snapshot and shared-item counts are taken
///    together under that shard's lock
///    ([`ShardedStore::capture_shards`]); everything after runs without any
///    store lock, so writers keep streaming while the round computes.
/// 2. **Fan-out** — per shard, in a [`std::thread::scope`]: the round state
///    is bootstrapped like
///    [`LiveDetector::prepare`](copydet_store::LiveDetector::prepare)
///    (uniform accuracies over a self-contained
///    [`OwnedRoundInput`](copydet_detect::OwnedRoundInput) dataset handle),
///    except that the value vote runs with each item's groups ordered by
///    **global** value id (see below) — voting locally first and redoing it
///    would double the bootstrap cost for a result that gets discarded.
///    Then the shard's overlap evidence is collected — only pairs the
///    shard's counts say share an item are visited.
/// 3. **Merge** — per-shard evidence is folded into global pairwise scores
///    in global item order and the posterior of Eq. 2 decides
///    ([`merge_shard_rounds_parallel`]). Pairs are partitioned by a stable
///    hash across merge workers (see
///    [`with_merge_parallelism`](Self::with_merge_parallelism)); the
///    parallel merge is bit-identical to the sequential one at every
///    worker count.
///
/// Shards are item-disjoint, so the merged result is **bit-identical** to
/// running the exact PAIRWISE baseline on a single store fed the same
/// stream — not merely equal in decisions, equal in every score and
/// posterior bit. Two orderings make that work: per-pair observations fold
/// in global item-id order, and each item's vote normalization sums its
/// value groups in global value-id order (shard-local interning orders both
/// differently, and floating-point addition is order-sensitive). The
/// equivalence proptest in `tests/shard_equivalence.rs` asserts exactly
/// this against `pairwise_detection`.
#[derive(Debug, Default)]
pub struct ShardedDetector {
    config: LiveConfig,
    rounds: usize,
    merge_parallelism: usize,
}

impl ShardedDetector {
    /// A detector with the default [`LiveConfig`].
    pub fn new() -> Self {
        Self::with_config(LiveConfig::default())
    }

    /// A detector with a custom configuration (`params` and
    /// `initial_accuracy` drive the bootstrap; the incremental settings are
    /// unused — every sharded round is exact).
    pub fn with_config(config: LiveConfig) -> Self {
        Self { config, rounds: 0, merge_parallelism: 0 }
    }

    /// Sets the number of cross-shard merge workers. `0` (the default)
    /// auto-selects: the `COPYDET_MERGE_THREADS` environment variable if set
    /// to a positive integer, else [`std::thread::available_parallelism`].
    /// The merge result is bit-identical at every setting — this knob trades
    /// wall time only.
    pub fn with_merge_parallelism(mut self, workers: usize) -> Self {
        self.merge_parallelism = workers;
        self
    }

    /// The merge worker count a round would use right now (resolves the
    /// auto setting; see [`with_merge_parallelism`](Self::with_merge_parallelism)).
    pub fn merge_parallelism(&self) -> usize {
        if self.merge_parallelism > 0 {
            return self.merge_parallelism;
        }
        if let Some(n) = std::env::var("COPYDET_MERGE_THREADS")
            .ok()
            .and_then(|raw| raw.trim().parse::<usize>().ok())
            .filter(|n| *n > 0)
        {
            return n;
        }
        std::thread::available_parallelism().map_or(1, usize::from)
    }

    /// Number of detection rounds run so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// One detection round over the store's current state. Snapshots are
    /// captured per shard (each under its own lock); the scans and the
    /// merge run entirely unlocked.
    ///
    /// # Errors
    /// [`DetectError::ShardEvidenceMismatch`] if a shard's counts disagree
    /// with its snapshot — impossible for captures taken by this method
    /// (each shard's pair is captured under one lock), so an error here
    /// indicates store corruption; the round fails instead of panicking the
    /// serving thread.
    pub fn detect_round(&mut self, store: &ShardedStore) -> Result<DetectionResult, DetectError> {
        let trace = RoundTraceBuilder::new("sharded_round");
        let capture_span = Span::start();
        let (captures, capture_nanos) = store.capture_shards_traced();
        let capture_total = capture_span.elapsed_nanos();
        self.detect_traced(store, &captures, trace, Some((capture_total, &capture_nanos)))
    }

    /// One detection round over an explicit capture (from
    /// [`ShardedStore::capture_shards`]). Exposed so equivalence and stress
    /// tests can run the round and an independent baseline over the *same*
    /// frozen state while writers keep mutating the store. The round's trace
    /// has no `capture` stages (the capture happened outside this call).
    ///
    /// # Errors
    /// [`DetectError::ShardEvidenceMismatch`] if a capture's counts disagree
    /// with its snapshot — e.g. a counts handle captured at a different time
    /// than the snapshot it is paired with.
    pub fn detect_captured(
        &mut self,
        store: &ShardedStore,
        captures: &[(
            copydet_store::StoreSnapshot,
            std::sync::Arc<copydet_index::SharedItemCounts>,
        )],
    ) -> Result<DetectionResult, DetectError> {
        let trace = RoundTraceBuilder::new("sharded_round");
        self.detect_traced(store, captures, trace, None)
    }

    /// Answers "who are the `k` most likely copiers of `source`?" without a
    /// global round.
    ///
    /// Candidate pairs come from each shard's incrementally maintained
    /// shared-item counts, ordered by an admissible evidence upper bound and
    /// pruned through Fagin's NRA ([`topk::topk_with_pruning`]); only
    /// surviving pairs are scored exactly, through the *identical* per-shard
    /// walk and shard-order fold as [`detect_round`](Self::detect_round) —
    /// the ranked answer is bit-identical to the top-k extracted from a full
    /// round (ascending posterior, ties by ascending pair id), while
    /// evaluating a fraction of the pairs.
    ///
    /// # Errors
    /// [`DetectError::UnknownSourceName`] if the fleet has never seen
    /// `source` — a typed error, not an empty result, so the serving layer
    /// can answer with an ERR frame.
    pub fn detect_topk(
        &self,
        store: &ShardedStore,
        source: &str,
        k: usize,
    ) -> Result<TopKResult, DetectError> {
        let target = store
            .global_source_id(source)
            .ok_or_else(|| DetectError::UnknownSourceName { name: source.to_owned() })?;
        self.detect_topk_target(store, Some(target), k)
    }

    /// The `k` most suspicious pairs fleet-wide, by the same pruned query
    /// path as [`detect_topk`](Self::detect_topk) with no source filter.
    pub fn detect_topk_fleet(
        &self,
        store: &ShardedStore,
        k: usize,
    ) -> Result<TopKResult, DetectError> {
        self.detect_topk_target(store, None, k)
    }

    /// The shared top-k query body: capture, candidate lists from counts
    /// alone, NRA pruning, exact evaluation of survivors. Emits a
    /// `topk_query` trace and the per-query latency/pruning metrics.
    fn detect_topk_target(
        &self,
        store: &ShardedStore,
        target: Option<SourceId>,
        k: usize,
    ) -> Result<TopKResult, DetectError> {
        let mut trace = RoundTraceBuilder::new("topk_query");
        let query_span = Span::start();
        let capture_span = Span::start();
        let (captures, capture_nanos) = store.capture_shards_traced();
        trace.stage("capture", capture_span.elapsed_nanos());
        for (i, nanos) in capture_nanos.iter().enumerate() {
            trace.stage(&format!("shard{i}.capture"), *nanos);
        }
        let prepare_span = Span::start();
        let maps: Vec<ShardMaps> =
            captures.iter().map(|(snapshot, _)| store.maps_for(snapshot)).collect();
        let accuracies =
            SourceAccuracies::uniform(store.num_sources(), self.config.initial_accuracy)
                .expect("initial accuracy is a probability");
        let vote_config = VoteConfig::new(self.config.params);
        let initial_accuracy = self.config.initial_accuracy;
        let params = self.config.params;
        trace.stage("prepare", prepare_span.elapsed_nanos());

        // Candidate lists: one per shard, straight from the shared-item
        // counts — no claim data is touched before the pruning loop asks
        // for an exact score. `local_pairs` remembers each shard's local
        // ids so the evaluator can find the pair's claim lists again.
        let lists_span = Span::start();
        let mut local_pairs: Vec<HashMap<SourcePair, (SourceId, SourceId)>> =
            Vec::with_capacity(captures.len());
        let lists: Vec<SortedList<SourcePair>> = captures
            .iter()
            .zip(&maps)
            .map(|((_, counts), map)| {
                let mut locals = HashMap::new();
                let entries: Vec<(SourcePair, u32)> = counts
                    .iter_nonzero()
                    .map(|(pair, count)| {
                        let global = SourcePair::new(
                            map.ids.sources[pair.first().index()],
                            map.ids.sources[pair.second().index()],
                        );
                        locals.insert(global, (pair.first(), pair.second()));
                        (global, count)
                    })
                    .collect();
                local_pairs.push(locals);
                topk::shard_candidate_list(entries, target, |p| {
                    topk::pair_score_upper_bound(
                        accuracies.get(p.first()),
                        accuracies.get(p.second()),
                        &params,
                    )
                })
            })
            .collect();
        trace.stage("lists", lists_span.elapsed_nanos());

        // Exact evaluator for NRA survivors: the identical per-shard
        // two-cursor walk as `collect_shard_evidence` and the identical
        // shard-order fold as the round merge, so every returned outcome
        // is bit-identical to the full round's. Each shard's vote bootstrap
        // runs lazily, on the first pair evaluated against it.
        let eval_span = Span::start();
        let mut probabilities: Vec<Option<ValueProbabilities>> = vec![None; captures.len()];
        let result = topk::topk_with_pruning(lists, k, &params, |pair| {
            let a_first = accuracies.get(pair.first());
            let a_second = accuracies.get(pair.second());
            let mut runs: copydet_detect::PairRuns = Vec::new();
            for (i, ((snapshot, _), map)) in captures.iter().zip(&maps).enumerate() {
                let Some(&(l1, l2)) = local_pairs[i].get(&pair) else { continue };
                let probs = probabilities[i].get_or_insert_with(|| {
                    let shard_accuracies =
                        SourceAccuracies::uniform(snapshot.dataset.num_sources(), initial_accuracy)
                            .expect("initial accuracy is a probability");
                    globally_ordered_vote(&snapshot.dataset, &shard_accuracies, map, &vote_config)
                });
                let claims1 = snapshot.dataset.claims_of(l1);
                let claims2 = snapshot.dataset.claims_of(l2);
                let mut observations = Vec::new();
                let (mut ci, mut cj) = (0, 0);
                while ci < claims1.len() && cj < claims2.len() {
                    let (d1, v1) = claims1[ci];
                    let (d2, v2) = claims2[cj];
                    match d1.cmp(&d2) {
                        std::cmp::Ordering::Less => ci += 1,
                        std::cmp::Ordering::Greater => cj += 1,
                        std::cmp::Ordering::Equal => {
                            let same_value_probability = (v1 == v2).then(|| probs.get(d1, v1));
                            observations.push(SharedItemObservation {
                                item: map.ids.items[d1.index()],
                                same_value_probability,
                            });
                            ci += 1;
                            cj += 1;
                        }
                    }
                }
                if !observations.is_empty() {
                    runs.push(observations);
                }
            }
            let evidence = fold_pair_runs(runs, a_first, a_second, &params);
            let posterior = evidence.posterior_independence(&params);
            PairOutcome {
                decision: CopyDecision::from_posterior(posterior),
                posterior: Some(posterior),
                c_to: evidence.c_to,
                c_from: evidence.c_from,
            }
        });
        trace.stage_count("query", eval_span.elapsed_nanos(), result.stats.evaluated);
        let finished = trace.finish();
        topk_queries_total().inc();
        topk_query_nanos().record(query_span.elapsed_nanos());
        topk_pairs_evaluated().add(result.stats.evaluated);
        topk_candidates_pruned().add(result.stats.pruned);
        if slow_op_exceeded(finished.total_nanos) {
            emit(Severity::Warn, "detect", "topk.slow", trace_fields(&finished));
        }
        emit(
            Severity::Debug,
            "detect",
            "topk.finish",
            vec![
                field::u64("k", usize_to_u64(k)),
                field::u64("evaluated", result.stats.evaluated),
                field::u64("pruned", result.stats.pruned),
                field::u64("nanos", finished.total_nanos),
            ],
        );
        trace_ring().push(finished);
        Ok(result)
    }

    /// The round body shared by [`detect_round`](Self::detect_round) and
    /// [`detect_captured`](Self::detect_captured): prepare, fan-out, merge —
    /// recording each stage into `trace`, which is pushed into the global
    /// [`trace_ring`] before returning.
    fn detect_traced(
        &mut self,
        store: &ShardedStore,
        captures: &[(
            copydet_store::StoreSnapshot,
            std::sync::Arc<copydet_index::SharedItemCounts>,
        )],
        mut trace: RoundTraceBuilder,
        capture: Option<(u64, &[u64])>,
    ) -> Result<DetectionResult, DetectError> {
        if let Some((total, per_shard)) = capture {
            trace.stage("capture", total);
            for (i, nanos) in per_shard.iter().enumerate() {
                trace.stage(&format!("shard{i}.capture"), *nanos);
            }
        }
        let prepare_span = Span::start();
        let maps: Vec<ShardMaps> =
            captures.iter().map(|(snapshot, _)| store.maps_for(snapshot)).collect();
        // Sized after the maps are built, so every mapped id is covered.
        let accuracies =
            SourceAccuracies::uniform(store.num_sources(), self.config.initial_accuracy)
                .expect("initial accuracy is a probability");
        let vote_config = VoteConfig::new(self.config.params);
        let initial_accuracy = self.config.initial_accuracy;
        let params = self.config.params;
        trace.stage("prepare", prepare_span.elapsed_nanos());
        let fanout_span = Span::start();
        type ScanResult = (Result<copydet_detect::ShardRoundEvidence, DetectError>, u64);
        let scans: Vec<ScanResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = captures
                .iter()
                .zip(&maps)
                .map(|((snapshot, counts), map)| {
                    let vote_config = &vote_config;
                    scope.spawn(move || {
                        // The same bootstrap `LiveDetector::prepare` builds,
                        // assembled directly so the vote is computed once —
                        // in global value order (prepare's locally-ordered
                        // vote would just be discarded).
                        let scan_span = Span::start();
                        let shard_accuracies = SourceAccuracies::uniform(
                            snapshot.dataset.num_sources(),
                            initial_accuracy,
                        )
                        .expect("initial accuracy is a probability");
                        let probabilities = globally_ordered_vote(
                            &snapshot.dataset,
                            &shard_accuracies,
                            map,
                            vote_config,
                        );
                        let input = copydet_detect::OwnedRoundInput {
                            dataset: snapshot.dataset.clone(),
                            accuracies: shard_accuracies,
                            probabilities,
                            params,
                            delta: None,
                        };
                        let evidence =
                            collect_shard_evidence(&input.as_round_input(), counts, &map.ids);
                        (evidence, scan_span.elapsed_nanos())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().expect("shard evidence scan panicked"))
                .collect()
        });
        trace.stage("fanout", fanout_span.elapsed_nanos());
        let mut evidence = Vec::with_capacity(scans.len());
        for (i, (shard_evidence, nanos)) in scans.into_iter().enumerate() {
            let shard_evidence = shard_evidence?;
            let observations = usize_to_u64(shard_evidence.num_observations());
            trace.stage_count(&format!("shard{i}.scan"), nanos, observations);
            evidence.push(shard_evidence);
        }
        self.rounds += 1;
        let workers = self.merge_parallelism();
        let (result, timings, reports) =
            merge_shard_rounds_parallel(evidence, &accuracies, self.config.params, workers);
        trace.stage("merge.collect", timings.collect_nanos);
        trace.stage("merge.fold", timings.fold_nanos);
        trace.stage_count("merge.vote", timings.vote_nanos, timings.pairs);
        // Named like the `shard<i>.<stage>` spans (not under the `merge.`
        // prefix) so prefix sums over `merge.` keep tiling the merge wall
        // time — worker wall times overlap the fold/vote stages.
        for (w, report) in reports.iter().enumerate() {
            trace.stage_count(&format!("worker{w}.merge"), report.wall_nanos, report.pairs);
        }
        let finished = trace.finish();
        rounds_total().inc();
        round_nanos().record(finished.total_nanos);
        if slow_op_exceeded(finished.total_nanos) {
            emit(Severity::Warn, "detect", "round.slow", trace_fields(&finished));
        }
        emit(
            Severity::Debug,
            "detect",
            "round.finish",
            vec![field::u64("pairs", timings.pairs), field::u64("nanos", finished.total_nanos)],
        );
        trace_ring().push(finished);
        Ok(result)
    }
}

/// The vote bootstrap over one shard's snapshot, with each item's value
/// groups voted in **global value-id order**.
///
/// The vote normalizes an item's group weights by summing them in sequence;
/// a single global store iterates groups in global value-id order, while a
/// shard's local ids can order the same groups differently (a value string's
/// local id depends on which *other* items the shard saw first). Reordering
/// by global id before the fold makes the probabilities — and everything
/// downstream of them — bit-identical to the single-store run.
fn globally_ordered_vote(
    dataset: &Dataset,
    accuracies: &SourceAccuracies,
    map: &ShardMaps,
    config: &VoteConfig,
) -> ValueProbabilities {
    let mut probabilities = ValueProbabilities::new(dataset.num_items());
    for item in dataset.items() {
        let groups = dataset.values_of_item(item);
        if groups.is_empty() {
            continue;
        }
        let mut ordered: Vec<&ItemValueGroup> = groups.iter().collect();
        ordered.sort_by_key(|g| map.values[g.value.index()]);
        let probs = vote_group_probabilities(&ordered, accuracies, None, config);
        for (group, p) in ordered.iter().zip(probs) {
            probabilities.set(group.item, group.value, p).expect("vote probability is clamped");
        }
    }
    probabilities
}

#[cfg(test)]
mod tests {
    use super::*;
    use copydet_bayes::CopyParams;
    use copydet_detect::{pairwise_detection, RoundInput};
    use copydet_fusion::value_probabilities;
    use copydet_model::{DatasetBuilder, SourcePair};

    /// A small planted-copier stream: S0 and S3 share distinctive false
    /// values on every item, the others vote independently.
    fn stream() -> Vec<(String, String, String)> {
        let mut claims = Vec::new();
        for j in 0..12 {
            for k in 0..5 {
                let value = match k {
                    0 | 3 => format!("false-{j}"),
                    _ => format!("true-{j}"),
                };
                claims.push((format!("S{k}"), format!("D{j}"), value));
            }
        }
        claims
    }

    fn baseline(claims: &[(String, String, String)]) -> DetectionResult {
        let mut b = DatasetBuilder::new();
        for (s, d, v) in claims {
            b.add_claim(s, d, v);
        }
        let ds = b.build();
        let params = CopyParams::paper_defaults();
        let accuracies = SourceAccuracies::uniform(ds.num_sources(), 0.8).unwrap();
        let probabilities = value_probabilities(&ds, &accuracies, None, &VoteConfig::new(params));
        pairwise_detection(&RoundInput::new(&ds, &accuracies, &probabilities, params))
    }

    #[test]
    fn sharded_round_is_bit_identical_to_pairwise_for_1_2_4_shards() {
        let claims = stream();
        let expected = baseline(&claims);
        for shards in [1usize, 2, 4] {
            let store = ShardedStore::new(shards);
            store.ingest_batch(claims.iter().map(|(s, d, v)| (s.as_str(), d.as_str(), v.as_str())));
            let mut detector = ShardedDetector::new();
            let got = detector.detect_round(&store).expect("consistent capture");
            assert_eq!(detector.rounds(), 1);
            assert_eq!(got.outcomes.len(), expected.outcomes.len(), "{shards} shard(s)");
            for (pair, outcome) in &expected.outcomes {
                assert_eq!(
                    got.outcomes.get(pair),
                    Some(outcome),
                    "{shards} shard(s): pair {pair} diverged bitwise"
                );
            }
            // The planted pair is caught.
            let copying: Vec<SourcePair> = got.copying_pairs().collect();
            assert!(!copying.is_empty(), "{shards} shard(s): planted copiers detected");
        }
    }

    /// The merge-parallelism knob changes wall time only: every worker
    /// count returns the identical round result.
    #[test]
    fn merge_parallelism_is_observable_and_bit_stable() {
        let claims = stream();
        let store = ShardedStore::new(2);
        store.ingest_batch(claims.iter().map(|(s, d, v)| (s.as_str(), d.as_str(), v.as_str())));
        let baseline = ShardedDetector::new()
            .with_merge_parallelism(1)
            .detect_round(&store)
            .expect("consistent capture");
        for workers in [2usize, 4, 8] {
            let mut detector = ShardedDetector::new().with_merge_parallelism(workers);
            assert_eq!(detector.merge_parallelism(), workers);
            let got = detector.detect_round(&store).expect("consistent capture");
            assert_eq!(got.outcomes, baseline.outcomes, "{workers} merge workers");
        }
    }

    /// Extracts the expected top-k from a full round: pairs containing
    /// `target` (or all pairs), ascending posterior, ties by pair id.
    fn extract_topk(
        result: &DetectionResult,
        target: Option<copydet_model::SourceId>,
        k: usize,
    ) -> Vec<(SourcePair, copydet_detect::PairOutcome)> {
        let mut ranked: Vec<(SourcePair, copydet_detect::PairOutcome)> = result
            .outcomes
            .iter()
            .filter(|(pair, _)| target.is_none_or(|t| pair.first() == t || pair.second() == t))
            .map(|(pair, outcome)| (*pair, *outcome))
            .collect();
        ranked.sort_by(|a, b| {
            a.1.posterior
                .unwrap_or(1.0)
                .total_cmp(&b.1.posterior.unwrap_or(1.0))
                .then_with(|| a.0.cmp(&b.0))
        });
        ranked.truncate(k);
        ranked
    }

    #[test]
    fn topk_matches_full_round_extraction_bitwise() {
        let claims = stream();
        for shards in [1usize, 2, 4] {
            let store = ShardedStore::new(shards);
            store.ingest_batch(claims.iter().map(|(s, d, v)| (s.as_str(), d.as_str(), v.as_str())));
            let full = ShardedDetector::new().detect_round(&store).expect("consistent capture");
            let detector = ShardedDetector::new();
            let target = store.global_source_id("S0").expect("S0 was ingested");
            for k in [1usize, 3, 100] {
                let got = detector.detect_topk(&store, "S0", k).expect("known source");
                let expected = extract_topk(&full, Some(target), k);
                assert_eq!(got.ranked, expected, "{shards} shard(s), k={k}");
                // The per-source query never considers pairs outside the
                // target's candidate set.
                assert!(got.stats.evaluated <= got.stats.candidates, "{shards} shard(s), k={k}");
                assert!(
                    (got.stats.candidates as usize) < full.outcomes.len(),
                    "{shards} shard(s), k={k}: candidate set must be a strict subset"
                );
            }
            let fleet = detector.detect_topk_fleet(&store, 4).expect("fleet query");
            assert_eq!(fleet.ranked, extract_topk(&full, None, 4), "{shards} shard(s) fleet");
        }
    }

    #[test]
    fn topk_unknown_source_is_a_typed_error() {
        let store = ShardedStore::new(2);
        store.ingest_batch([("S0", "D0", "v"), ("S1", "D0", "v")]);
        let err = ShardedDetector::new()
            .detect_topk(&store, "nobody", 3)
            .expect_err("unknown source must not return an empty result");
        assert!(
            matches!(&err, DetectError::UnknownSourceName { name } if name == "nobody"),
            "unexpected error: {err:?}"
        );
    }

    /// A counts handle captured at a different time than the snapshot it is
    /// paired with fails the round with a typed error instead of killing the
    /// round thread ([`DetectError::ShardEvidenceMismatch`]).
    #[test]
    fn stale_counts_fail_the_round_with_a_typed_error() {
        let claims = stream();
        let store = ShardedStore::new(1);
        store.ingest_batch(claims.iter().map(|(s, d, v)| (s.as_str(), d.as_str(), v.as_str())));
        let stale = store.capture_shards();
        // More overlapping claims: the shared-item counts move, the stale
        // counts handle does not.
        store.ingest_batch([("S0", "D100", "w"), ("S1", "D100", "w")]);
        let fresh = store.capture_shards();
        let mixed: Vec<_> = fresh
            .iter()
            .zip(&stale)
            .map(|((snapshot, _), (_, counts))| (snapshot.clone(), counts.clone()))
            .collect();
        let err = ShardedDetector::new()
            .detect_captured(&store, &mixed)
            .expect_err("stale counts must surface as a typed error");
        assert!(
            matches!(err, copydet_detect::DetectError::ShardEvidenceMismatch { .. }),
            "unexpected error: {err:?}"
        );
    }
}
