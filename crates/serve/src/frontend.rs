//! The serving frontend: a std-only TCP request loop speaking a small
//! length-prefixed binary protocol, plus the matching client.
//!
//! ## Wire protocol
//!
//! Every message is one checksummed frame from
//! [`copydet_model::codec`] (`[kind: u8][len: u32][payload][crc32]`, see
//! [`codec::encode_wire_frame`]). Requests:
//!
//! | kind | request | payload |
//! |------|---------|---------|
//! | `0x01` | INGEST | `u32 n`, then `n × (str source, str item, str value)` |
//! | `0x02` | STATS | empty |
//! | `0x03` | DETECT | empty |
//! | `0x04` | SHUTDOWN | empty |
//! | `0x05` | METRICS | empty |
//! | `0x06` | TRACE | `u32 n` (most recent traces wanted; `0` = all) |
//! | `0x07` | DETECT_TOPK | `u8 mode` (`0` = per-source, `1` = fleet-wide), `u32 k`, then `str source` when `mode == 0` |
//! | `0x08` | HEALTH | empty |
//! | `0x09` | EVENTS | `u32 n` (most recent events wanted; `0` = all), `u8 min_severity` tag, `str component` (empty = any) |
//!
//! Responses are `0x80` (OK, payload per request kind) or `0x81` (error,
//! `str` message). Strings are the codec's length-prefixed UTF-8, bounded
//! by [`codec::MAX_STR_LEN`]; whole frames are bounded by
//! [`codec::MAX_WIRE_FRAME_LEN`], so a hostile peer can neither drive an
//! allocation nor wedge the reader.
//!
//! Frame payloads are **attacker-controlled bytes**: every decode in this
//! module is total — typed [`ProtocolError`]s become `0x81` responses and
//! the connection keeps serving; nothing on the request path may panic.
//! `copydet-audit` enforces this (no-panic + lossy-cast lints cover this
//! module).
//!
//! ## Threading
//!
//! One accept thread, one handler thread per connection. Each INGEST batch
//! goes through [`ShardedStore::ingest_batch`], which splits the batch by
//! item partition and applies each shard's slice under a single shard-lock
//! acquisition — the per-shard batching that lets many concurrent clients
//! stream without convoying on one mutex. DETECT runs a full
//! [`ShardedDetector`] round (fan-out scan + merge) outside every store
//! lock. The connection registry is the highest-ranked lock in the process
//! (see `DESIGN.md` §8): handlers touch it only while holding no store
//! lock, and [`RankedMutex`] enforces that order in debug builds.

use crate::detector::ShardedDetector;
use crate::shard::ShardedStore;
use copydet_model::codec::{self, u32_to_usize, usize_to_u64, CodecError, Reader};
use copydet_model::sync::RankedMutex;
use copydet_obs::event::field;
use copydet_obs::{
    emit, evaluate_process_health, event_ring, publish_lock_metrics, registry,
    set_default_event_capacity, set_default_trace_capacity, set_slow_op_threshold,
    slow_op_exceeded, trace_ring, Counter, Event, FieldValue, Gauge, HealthReason,
    HealthReasonCode, HealthThresholds, HealthVerdict, Histogram, RoundTrace, Severity, Span,
    TraceStage,
};
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// Request kind: ingest a claim batch.
pub const REQ_INGEST: u8 = 0x01;
/// Request kind: fleet statistics.
pub const REQ_STATS: u8 = 0x02;
/// Request kind: run a detection round.
pub const REQ_DETECT: u8 = 0x03;
/// Request kind: stop the server.
pub const REQ_SHUTDOWN: u8 = 0x04;
/// Request kind: metrics-registry text exposition.
pub const REQ_METRICS: u8 = 0x05;
/// Request kind: recent round traces.
pub const REQ_TRACE: u8 = 0x06;
/// Request kind: pruned top-k copier query (per-source or fleet-wide).
pub const REQ_DETECT_TOPK: u8 = 0x07;
/// Request kind: typed health verdict.
pub const REQ_HEALTH: u8 = 0x08;
/// Request kind: recent flight-recorder events.
pub const REQ_EVENTS: u8 = 0x09;
/// Response kind: success.
pub const RESP_OK: u8 = 0x80;
/// Response kind: failure (payload is the message).
pub const RESP_ERR: u8 = 0x81;

/// Verb names, indexed by [`verb_index`]; also the `verb` label of the
/// `copydet_frontend_*` registry metrics.
const VERBS: [&str; 9] = [
    "INGEST",
    "STATS",
    "DETECT",
    "SHUTDOWN",
    "METRICS",
    "TRACE",
    "DETECT_TOPK",
    "HEALTH",
    "EVENTS",
];

/// Dense verb index of a request kind (`None` for unknown kinds).
fn verb_index(kind: u8) -> Option<usize> {
    match kind {
        REQ_INGEST => Some(0),
        REQ_STATS => Some(1),
        REQ_DETECT => Some(2),
        REQ_SHUTDOWN => Some(3),
        REQ_METRICS => Some(4),
        REQ_TRACE => Some(5),
        REQ_DETECT_TOPK => Some(6),
        REQ_HEALTH => Some(7),
        REQ_EVENTS => Some(8),
        _ => None,
    }
}

/// The verb name of a request kind, for event fields.
fn verb_name(kind: u8) -> &'static str {
    verb_index(kind).and_then(|i| VERBS.get(i).copied()).unwrap_or("UNKNOWN")
}

/// Per-verb request counters in the process-global registry, indexed like
/// [`VERBS`].
fn request_counters() -> &'static [Arc<Counter>; 9] {
    static COUNTERS: OnceLock<[Arc<Counter>; 9]> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        std::array::from_fn(|i| {
            let verb = VERBS.get(i).copied().unwrap_or("UNKNOWN");
            registry().counter(&format!("copydet_frontend_requests_total{{verb=\"{verb}\"}}"))
        })
    })
}

/// Per-verb request-latency histograms, indexed like [`VERBS`].
fn request_nanos() -> &'static [Arc<Histogram>; 9] {
    static HISTOGRAMS: OnceLock<[Arc<Histogram>; 9]> = OnceLock::new();
    HISTOGRAMS.get_or_init(|| {
        std::array::from_fn(|i| {
            let verb = VERBS.get(i).copied().unwrap_or("UNKNOWN");
            registry().histogram(&format!("copydet_frontend_request_nanos{{verb=\"{verb}\"}}"))
        })
    })
}

/// Connections currently being served, across every frontend in the
/// process.
fn connections_live() -> &'static Arc<Gauge> {
    static GAUGE: OnceLock<Arc<Gauge>> = OnceLock::new();
    GAUGE.get_or_init(|| registry().gauge("copydet_frontend_connections_live"))
}

/// Connections ever accepted, across every frontend in the process.
fn connections_total() -> &'static Arc<Counter> {
    static COUNTER: OnceLock<Arc<Counter>> = OnceLock::new();
    COUNTER.get_or_init(|| registry().counter("copydet_frontend_connections_total"))
}

/// Requests currently being dispatched, across every frontend in the
/// process — the saturation gauge `HEALTH` readers correlate with the
/// per-rank lock-wait gauges.
fn inflight_requests() -> &'static Arc<Gauge> {
    static GAUGE: OnceLock<Arc<Gauge>> = OnceLock::new();
    GAUGE.get_or_init(|| registry().gauge("copydet_frontend_inflight_requests"))
}

/// RAII handle for the in-flight gauge: covers every dispatch exit path
/// (response written, I/O error, SHUTDOWN break).
struct InflightRequest;

impl InflightRequest {
    fn start() -> Self {
        inflight_requests().inc();
        Self
    }
}

impl Drop for InflightRequest {
    fn drop(&mut self) {
        inflight_requests().dec();
    }
}

/// Records one served request into the global registry (count + latency).
fn record_request(kind: u8, span: &Span) {
    if let Some(i) = verb_index(kind) {
        if let Some(counter) = request_counters().get(i) {
            counter.inc();
        }
        if let Some(histogram) = request_nanos().get(i) {
            histogram.record(span.elapsed_nanos());
        }
    }
}

/// RAII handle for the live-connection gauge: increments on open, and the
/// `Drop` decrement covers every handler exit path (EOF, error, shutdown).
struct LiveConnection;

impl LiveConnection {
    fn open() -> Self {
        connections_total().inc();
        connections_live().inc();
        emit(Severity::Info, "serve", "conn.open", Vec::new());
        Self
    }
}

impl Drop for LiveConnection {
    fn drop(&mut self) {
        connections_live().dec();
        emit(Severity::Info, "serve", "conn.close", Vec::new());
    }
}

/// Per-server request accounting reported in the `STATS` trailer: uptime
/// plus one count per verb.
///
/// The process-global registry carries the same numbers as
/// `copydet_frontend_requests_total{verb=...}`, but summed over **every**
/// frontend the process ever ran; this per-[`serve`] instance keeps one
/// server's `STATS` honest when many servers share a process (as tests do).
#[derive(Debug)]
struct FrontendStats {
    started: Instant,
    verbs: [AtomicU64; 9],
}

impl FrontendStats {
    fn new() -> Self {
        Self { started: Instant::now(), verbs: std::array::from_fn(|_| AtomicU64::new(0)) }
    }

    /// Counts one request of `kind` (unknown kinds are not counted).
    fn count(&self, kind: u8) {
        if let Some(counter) = verb_index(kind).and_then(|i| self.verbs.get(i)) {
            counter.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn uptime_micros(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    fn counts(&self) -> WireRequestCounts {
        let get = |i: usize| self.verbs.get(i).map_or(0, |c| c.load(Ordering::Relaxed));
        WireRequestCounts {
            ingest: get(0),
            stats: get(1),
            detect: get(2),
            shutdown: get(3),
            metrics: get(4),
            trace: get(5),
            detect_topk: get(6),
            health: get(7),
            events: get(8),
        }
    }
}

/// A request the server refuses with a `0x81` response instead of serving.
///
/// Every variant is a *recoverable* per-request failure: the handler writes
/// the message back and keeps the connection alive. Nothing here panics —
/// frame payloads are untrusted input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// A request payload failed to decode.
    BadPayload {
        /// The request being decoded (e.g. `"INGEST"`).
        request: &'static str,
        /// The codec failure underneath.
        source: CodecError,
    },
    /// Bytes remained after a payload's declared content.
    TrailingBytes {
        /// The request being decoded.
        request: &'static str,
        /// Undeclared bytes left over.
        trailing: usize,
        /// Entries the payload declared.
        declared: u32,
    },
    /// The request kind byte is not part of the protocol.
    UnknownKind {
        /// The offending kind byte.
        kind: u8,
    },
    /// A response outgrew a wire-protocol limit.
    ResponseTooLarge {
        /// The response being built (e.g. `"DETECT"`).
        request: &'static str,
        /// The oversized length.
        len: usize,
        /// The limit it exceeded.
        limit: usize,
        /// Entries the response was carrying.
        entries: usize,
    },
    /// Response encoding failed (a string over the codec bound).
    Encode {
        /// The response being built.
        request: &'static str,
        /// The codec failure underneath.
        source: CodecError,
    },
    /// Detection reported a source id the name registry cannot resolve —
    /// an internal inconsistency reported to the client, never a panic.
    UnknownSource {
        /// The unresolvable dense source index.
        index: usize,
    },
    /// A `DETECT_TOPK` request named a source the fleet has never seen —
    /// a typed refusal, never a silently empty result.
    UnknownSourceName {
        /// The name the request asked about.
        name: String,
    },
    /// A `DETECT_TOPK` request used a mode byte the protocol does not
    /// define.
    UnknownTopKMode {
        /// The offending mode byte.
        mode: u8,
    },
    /// An `EVENTS` request used a severity tag the protocol does not
    /// define.
    UnknownSeverity {
        /// The offending severity tag.
        tag: u8,
    },
    /// The detection round itself failed (e.g. a shard's counts disagreed
    /// with its snapshot). Carries the rendered
    /// [`DetectError`](copydet_detect::DetectError) — a recoverable
    /// per-request failure, not a dead round thread.
    Detect {
        /// The rendered detection error.
        message: String,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::BadPayload { request, source } => {
                write!(f, "bad {request} payload: {source}")
            }
            ProtocolError::TrailingBytes { request, trailing, declared } => {
                write!(
                    f,
                    "bad {request} payload: {trailing} trailing byte(s) after the declared \
                     {declared} entr(y/ies)"
                )
            }
            ProtocolError::UnknownKind { kind } => write!(f, "unknown request kind {kind:#04x}"),
            ProtocolError::ResponseTooLarge { request, len, limit, entries } => write!(
                f,
                "{request} response of {len} bytes exceeds the {limit}-byte frame limit \
                 ({entries} entries); run detection in-process for results this large"
            ),
            ProtocolError::Encode { request, source } => {
                write!(f, "{request} encoding failed: {source}")
            }
            ProtocolError::UnknownSource { index } => {
                write!(f, "internal error: source index {index} has no registered name")
            }
            ProtocolError::UnknownSourceName { name } => {
                write!(f, "unknown source name {name:?}")
            }
            ProtocolError::UnknownTopKMode { mode } => {
                write!(f, "unknown DETECT_TOPK mode {mode:#04x} (0 = per-source, 1 = fleet-wide)")
            }
            ProtocolError::UnknownSeverity { tag } => {
                write!(f, "unknown EVENTS severity tag {tag} (0 = debug .. 3 = error)")
            }
            ProtocolError::Detect { message } => {
                write!(f, "DETECT round failed: {message}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

fn invalid(e: CodecError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

/// Writes one frame to a stream.
fn write_frame(stream: &mut TcpStream, kind: u8, payload: &[u8]) -> io::Result<()> {
    let frame = codec::encode_wire_frame(kind, payload).map_err(invalid)?;
    stream.write_all(&frame)
}

/// Reads one frame from a stream; `Ok(None)` on a clean EOF before the
/// first header byte, or on an idle timeout before the first header byte
/// when the stream has a read timeout set ([`FrontendConfig::idle_timeout`])
/// — a silent peer is reaped like a cleanly closed one. An EOF or timeout
/// *inside* a header or body is a torn frame and surfaces as an error like
/// any other truncation.
fn read_frame(stream: &mut TcpStream) -> io::Result<Option<(u8, Vec<u8>)>> {
    let mut header = [0u8; codec::WIRE_HEADER_LEN];
    {
        // The first byte decides clean-close vs torn frame, so it is read
        // on its own: read_exact cannot tell "0 bytes then EOF" from
        // "3 bytes then EOF".
        let (first, rest) = header.split_at_mut(1);
        match stream.read(first) {
            Ok(0) => return Ok(None),
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => return read_frame(stream),
            // A timed-out wait between frames (WouldBlock on Unix,
            // TimedOut on Windows) is the idle-connection signal. Only the
            // server arms read timeouts, so this branch never fires for the
            // client half of this module.
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                emit(Severity::Info, "serve", "conn.idle_timeout", Vec::new());
                return Ok(None);
            }
            Err(e) => return Err(e),
        }
        stream.read_exact(rest)?;
    }
    // The header alone bounds the body; the body is validated in place
    // against the header (kind, declared length, checksum) with no
    // header+body reassembly copy.
    let body_len = codec::wire_frame_body_len(&header).map_err(invalid)?;
    let mut body = vec![0u8; body_len];
    stream.read_exact(&mut body)?;
    let (kind, payload) = codec::decode_wire_parts(&header, &body).map_err(invalid)?;
    Ok(Some((kind, payload.to_vec())))
}

/// Per-shard statistics as reported over the wire.
///
/// Counts are `u64` on the wire: the server's in-memory counts are `usize`
/// and the protocol must not narrow them (lossy-cast audit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireShardStats {
    /// Snapshots taken by the shard.
    pub epoch: u64,
    /// Live `(source, item)` claims in the shard.
    pub live_claims: u64,
    /// Sources known to the shard.
    pub num_sources: u64,
    /// Items routed to the shard.
    pub num_items: u64,
    /// Distinct values in the shard.
    pub num_values: u64,
    /// Sealed segments in the shard.
    pub sealed_segments: u64,
    /// Claims still in the shard's growing segment.
    pub growing_claims: u64,
    /// `true` if the shard persists to disk.
    pub durable: bool,
}

/// Fleet-wide statistics as reported over the wire: per-shard counters plus
/// the serving process's request accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireFleetStats {
    /// Per-shard counters, one entry per shard.
    pub shards: Vec<WireShardStats>,
    /// Microseconds since the server started.
    pub uptime_micros: u64,
    /// Requests served per verb since the server started (the `STATS`
    /// request carrying this response included).
    pub requests: WireRequestCounts,
}

/// Per-verb request counts since the server started.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireRequestCounts {
    /// `INGEST` requests served.
    pub ingest: u64,
    /// `STATS` requests served.
    pub stats: u64,
    /// `DETECT` requests served.
    pub detect: u64,
    /// `SHUTDOWN` requests served.
    pub shutdown: u64,
    /// `METRICS` requests served.
    pub metrics: u64,
    /// `TRACE` requests served.
    pub trace: u64,
    /// `DETECT_TOPK` requests served.
    pub detect_topk: u64,
    /// `HEALTH` requests served.
    pub health: u64,
    /// `EVENTS` requests served.
    pub events: u64,
}

/// One copying pair as reported over the wire (source names, since the
/// client has no id space).
#[derive(Debug, Clone, PartialEq)]
pub struct WireCopyingPair {
    /// First source of the pair (smaller global id).
    pub first: String,
    /// Second source of the pair.
    pub second: String,
    /// Posterior probability of independence.
    pub posterior: f64,
}

/// A detection round's result as reported over the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireDetection {
    /// Pairs for which evidence was materialized.
    pub pairs_considered: u64,
    /// Pairs decided as copying.
    pub copying: Vec<WireCopyingPair>,
}

/// A pruned top-k query's answer as reported over the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireTopK {
    /// Candidate pairs the shared-item indexes proposed for this query.
    pub candidates: u64,
    /// Candidates whose exact evidence was materialized.
    pub evaluated: u64,
    /// Candidates ruled out by the upper bound alone.
    pub pruned: u64,
    /// At most `k` pairs, most suspicious first (ascending posterior of
    /// independence, ties by global pair id).
    pub ranked: Vec<WireCopyingPair>,
}

/// The registry of live connections: a socket handle to interrupt each
/// blocked reader with, plus the handler thread to join. Highest rank in
/// the process — it is taken while no store lock is held, and never the
/// other way around.
// lock-rank: 30 (serve.frontend.connections)
type Connections = Arc<RankedMutex<Vec<(TcpStream, JoinHandle<()>)>>>;

/// Rank of the connection registry lock (see `DESIGN.md` §8).
const CONNECTIONS_RANK: u32 = 30;

fn new_connections() -> Connections {
    // lock-rank: 30 (serve.frontend.connections)
    Arc::new(RankedMutex::new(CONNECTIONS_RANK, "serve.frontend.connections", Vec::new()))
}

/// A running frontend: bound address plus the accept thread.
///
/// The server stops when [`shutdown`](Self::shutdown) is called or a client
/// sends `SHUTDOWN`; `shutdown` additionally closes every open connection
/// and joins its handler thread, so when it returns **no** thread still
/// holds a clone of the store — on a durable fleet the shard directory
/// locks are free to reopen. Dropping the handle without `shutdown` leaves
/// the accept thread running (detached) — tests and the demo always shut
/// down explicitly.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    connections: Connections,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Returns `true` once the server has been asked to stop.
    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Stops accepting connections, closes every open connection, and joins
    /// the accept and handler threads. When this returns, no server thread
    /// holds a reference to the store.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // A throwaway connection unblocks the accept loop so it can observe
        // the stop flag.
        let _ = TcpStream::connect(wake_addr(self.addr));
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        // Interrupt handlers blocked in a read, then wait for each to drop
        // its store clone.
        let connections = std::mem::take(&mut *self.connections.lock());
        for (stream, handle) in connections {
            let _ = stream.shutdown(std::net::Shutdown::Both);
            let _ = handle.join();
        }
    }
}

/// Serves a [`ShardedStore`] on `addr` (`127.0.0.1:0` picks a free port).
///
/// Returns once the listener is bound; the accept loop runs on its own
/// thread and every connection gets a handler thread (registered so
/// [`ServerHandle::shutdown`] can close and join it). All request handling
/// is std-only (no async runtime): the workload is lock-amortized batch
/// ingest plus occasional detection rounds, where a thread per connection
/// is the simplest correct concurrency model.
pub fn serve(store: ShardedStore, addr: impl ToSocketAddrs) -> io::Result<ServerHandle> {
    serve_with_config(store, addr, FrontendConfig::default())
}

/// Serving knobs for [`serve_with_config`]. All settings trade wall time or
/// resource use only — none changes a single bit of any response.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrontendConfig {
    /// Cross-shard merge workers per DETECT round. `0` (the default)
    /// auto-selects: the `COPYDET_MERGE_THREADS` environment variable if
    /// set, else [`std::thread::available_parallelism`]. See
    /// [`ShardedDetector::with_merge_parallelism`].
    pub merge_parallelism: usize,
    /// How long a connection may sit idle *between* frames before its
    /// handler closes it. `None` (the default) waits forever — the
    /// pre-timeout behavior, where a client that connects and goes silent
    /// pins a handler thread until shutdown. Mid-frame timeouts remain
    /// errors: only silence before a frame's first byte is "idle".
    pub idle_timeout: Option<std::time::Duration>,
    /// Requests, rounds or maintenance ticks slower than this are promoted
    /// to `Warn` flight-recorder events carrying the round's stage
    /// breakdown. `None` (the default) leaves the `COPYDET_SLOW_OP_MS`
    /// environment setting in force (absent ⇒ slow-op capture disabled).
    pub slow_op_threshold: Option<std::time::Duration>,
    /// Capacity of the global round-trace ring, applied at server startup
    /// (`0`, the default, keeps `COPYDET_TRACE_CAPACITY` / the built-in
    /// default). First use of the ring wins — start the server before
    /// tracing anything if this knob matters.
    pub trace_capacity: usize,
    /// Capacity of the global flight-recorder event ring, applied at server
    /// startup (`0`, the default, keeps `COPYDET_EVENT_CAPACITY` / the
    /// built-in default). First use wins, like `trace_capacity`.
    pub event_capacity: usize,
}

/// [`serve`] with explicit [`FrontendConfig`] knobs.
pub fn serve_with_config(
    store: ShardedStore,
    addr: impl ToSocketAddrs,
    config: FrontendConfig,
) -> io::Result<ServerHandle> {
    // Observability knobs first: ring capacities only matter before the
    // rings' first use, and the slow-op threshold should cover the very
    // first request.
    if config.trace_capacity > 0 {
        set_default_trace_capacity(config.trace_capacity);
    }
    if config.event_capacity > 0 {
        set_default_event_capacity(config.event_capacity);
    }
    if config.slow_op_threshold.is_some() {
        // `None` deliberately leaves COPYDET_SLOW_OP_MS in force.
        set_slow_op_threshold(config.slow_op_threshold);
    }
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let connections = new_connections();
    let frontend_stats = Arc::new(FrontendStats::new());
    let accept_stop = Arc::clone(&stop);
    let accept_connections = Arc::clone(&connections);
    let accept_thread = std::thread::spawn(move || {
        for connection in listener.incoming() {
            if accept_stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = connection else { continue };
            // A handler blocked in `read` observes idleness through the OS
            // read timeout; `read_frame` turns a pre-frame timeout into a
            // clean close. Failure to arm the timeout is not fatal — the
            // connection just keeps the old wait-forever behavior.
            if config.idle_timeout.is_some() {
                let _ = stream.set_read_timeout(config.idle_timeout);
            }
            let store = store.clone();
            let stats = Arc::clone(&frontend_stats);
            let stop = Arc::clone(&accept_stop);
            let server_addr = addr;
            let handler_connections = Arc::clone(&accept_connections);
            let Ok(interrupt) = stream.try_clone() else { continue };
            let handler = std::thread::spawn(move || {
                let _ = handle_connection(
                    stream,
                    store,
                    stats,
                    stop,
                    server_addr,
                    handler_connections,
                    config,
                );
            });
            let mut registry = accept_connections.lock();
            // Reap finished handlers so a long-lived server's registry holds
            // only live connections.
            registry.retain(|(_, handle)| !handle.is_finished());
            registry.push((interrupt, handler));
        }
    });
    Ok(ServerHandle { addr, stop, accept_thread: Some(accept_thread), connections })
}

/// Serves one connection until EOF, error, or SHUTDOWN.
fn handle_connection(
    mut stream: TcpStream,
    store: ShardedStore,
    stats: Arc<FrontendStats>,
    stop: Arc<AtomicBool>,
    server_addr: SocketAddr,
    connections: Connections,
    config: FrontendConfig,
) -> io::Result<()> {
    let _live = LiveConnection::open();
    let result =
        serve_connection(&mut stream, &store, &stats, &stop, server_addr, &connections, config);
    // Dropping `stream` alone does not close the socket: the accept loop
    // holds a `try_clone` dup in the connection registry (for SHUTDOWN
    // interruption), so the peer would never see a FIN. An explicit
    // half-duplex shutdown closes the connection regardless of dups — this
    // is what makes an idle-timeout reap observable to the silent client.
    let _ = stream.shutdown(std::net::Shutdown::Both);
    result
}

/// The per-connection request loop; see [`handle_connection`] for the
/// socket-close contract wrapped around it.
fn serve_connection(
    stream: &mut TcpStream,
    store: &ShardedStore,
    stats: &FrontendStats,
    stop: &AtomicBool,
    server_addr: SocketAddr,
    connections: &Connections,
    config: FrontendConfig,
) -> io::Result<()> {
    while let Some((kind, payload)) = read_frame(stream)? {
        let span = Span::start();
        let _inflight = InflightRequest::start();
        // Counted before dispatch so a STATS response includes the request
        // that asked for it.
        stats.count(kind);
        let response = match kind {
            REQ_INGEST => handle_ingest(store, &payload),
            REQ_STATS => Ok(handle_stats(store, stats)),
            REQ_DETECT => handle_detect(store, &payload, config),
            REQ_DETECT_TOPK => handle_detect_topk(store, &payload, config),
            REQ_METRICS => handle_metrics(),
            REQ_TRACE => handle_trace(&payload),
            REQ_HEALTH => handle_health(store, &payload),
            REQ_EVENTS => handle_events(&payload),
            REQ_SHUTDOWN => {
                stop.store(true, Ordering::SeqCst);
                write_frame(stream, RESP_OK, &[])?;
                record_request(kind, &span);
                // Unblock the accept loop so it observes the flag.
                let _ = TcpStream::connect(wake_addr(server_addr));
                // A wire SHUTDOWN quiesces the whole server, not just this
                // connection: close every *other* registered connection so
                // their handlers exit and release their store clones (this
                // one's response is already written; skipping it keeps the
                // OK from being discarded by an abortive close).
                let own = stream.peer_addr().ok();
                let registry = connections.lock();
                for (other, _) in registry.iter() {
                    if own.is_none() || other.peer_addr().ok() != own {
                        let _ = other.shutdown(std::net::Shutdown::Both);
                    }
                }
                break;
            }
            other => Err(ProtocolError::UnknownKind { kind: other }),
        };
        let ok = response.is_ok();
        match response {
            Ok(out) => write_frame(stream, RESP_OK, &out)?,
            Err(e) => {
                // Every ProtocolError (bad payloads, unknown kinds, failed
                // DETECT rounds) lands in the flight recorder before the
                // 0x81 frame goes out.
                emit(
                    Severity::Warn,
                    "serve",
                    "request.error",
                    vec![field::str("verb", verb_name(kind)), field::str("detail", &e.to_string())],
                );
                write_error(stream, &e.to_string())?;
            }
        }
        record_request(kind, &span);
        let nanos = span.elapsed_nanos();
        if slow_op_exceeded(nanos) {
            emit(
                Severity::Warn,
                "serve",
                "request.slow",
                vec![field::str("verb", verb_name(kind)), field::u64("nanos", nanos)],
            );
        }
        // Per-request outcome at Debug: suppressed in one atomic load
        // unless COPYDET_LOG=debug asks for the firehose.
        emit(
            Severity::Debug,
            "serve",
            "request",
            vec![
                field::str("verb", verb_name(kind)),
                field::u64("ok", u64::from(ok)),
                field::u64("nanos", nanos),
            ],
        );
    }
    Ok(())
}

/// INGEST: decode the batch, apply it, answer with the accepted count.
fn handle_ingest(store: &ShardedStore, payload: &[u8]) -> Result<Vec<u8>, ProtocolError> {
    let claims = decode_ingest(payload)?;
    // The response carries the batch's own accepted count — a fleet-wide
    // total would re-acquire every shard mutex right after the batch
    // released them, doubling cross-shard lock traffic for a number that is
    // stale the moment it is read (STATS reports live totals).
    let accepted =
        store.ingest_batch(claims.iter().map(|(s, d, v)| (s.as_str(), d.as_str(), v.as_str())));
    let mut out = Vec::new();
    codec::put_u64(&mut out, usize_to_u64(accepted));
    Ok(out)
}

/// STATS: per-shard counters, all widened to `u64` on the wire, followed by
/// the server's uptime and per-verb request counts.
fn handle_stats(store: &ShardedStore, frontend: &FrontendStats) -> Vec<u8> {
    let mut out = Vec::new();
    let stats = store.shard_stats();
    // Shard counts are configuration-sized (far below 2^32); saturating
    // here keeps the encoder total without a panic path.
    codec::put_u32(&mut out, u32::try_from(stats.len()).unwrap_or(u32::MAX));
    for s in stats {
        codec::put_u64(&mut out, s.epoch);
        codec::put_u64(&mut out, usize_to_u64(s.live_claims));
        codec::put_u64(&mut out, usize_to_u64(s.num_sources));
        codec::put_u64(&mut out, usize_to_u64(s.num_items));
        codec::put_u64(&mut out, usize_to_u64(s.num_values));
        codec::put_u64(&mut out, usize_to_u64(s.sealed_segments));
        codec::put_u64(&mut out, usize_to_u64(s.growing_claims));
        codec::put_u8(&mut out, u8::from(s.durable));
    }
    codec::put_u64(&mut out, frontend.uptime_micros());
    let counts = frontend.counts();
    for count in [
        counts.ingest,
        counts.stats,
        counts.detect,
        counts.shutdown,
        counts.metrics,
        counts.trace,
        counts.detect_topk,
        counts.health,
        counts.events,
    ] {
        codec::put_u64(&mut out, count);
    }
    out
}

/// METRICS: the process-global registry in Prometheus-style text
/// exposition, as one wire string.
fn handle_metrics() -> Result<Vec<u8>, ProtocolError> {
    const REQUEST: &str = "METRICS";
    // Lock-contention probes are pull-model: refresh their gauges so the
    // exposition below carries current counts.
    publish_lock_metrics();
    let text = registry().render_text();
    let mut out = Vec::new();
    codec::put_str(&mut out, &text)
        .map_err(|source| ProtocolError::Encode { request: REQUEST, source })?;
    Ok(out)
}

/// TRACE: the most recent `n` round traces from the global ring, newest
/// first (`n == 0` means every retained trace).
fn handle_trace(payload: &[u8]) -> Result<Vec<u8>, ProtocolError> {
    const REQUEST: &str = "TRACE";
    let bad = |source| ProtocolError::BadPayload { request: REQUEST, source };
    let mut r = Reader::new(payload);
    let declared = r.u32().map_err(bad)?;
    if !r.is_empty() {
        return Err(ProtocolError::TrailingBytes {
            request: REQUEST,
            trailing: r.remaining(),
            declared,
        });
    }
    let traces = trace_ring().recent(u32_to_usize(declared));
    let mut out = Vec::new();
    // The ring is capacity-bounded far below 2^32, so this never saturates.
    codec::put_u32(&mut out, u32::try_from(traces.len()).unwrap_or(u32::MAX));
    let encode = |out: &mut Vec<u8>, s: &str| {
        codec::put_str(out, s).map_err(|source| ProtocolError::Encode { request: REQUEST, source })
    };
    for trace in &traces {
        codec::put_u64(&mut out, trace.sequence);
        encode(&mut out, &trace.label)?;
        codec::put_u64(&mut out, trace.total_nanos);
        let stages =
            u32::try_from(trace.stages.len()).map_err(|_| ProtocolError::ResponseTooLarge {
                request: REQUEST,
                len: trace.stages.len(),
                limit: u32_to_usize(u32::MAX),
                entries: trace.stages.len(),
            })?;
        codec::put_u32(&mut out, stages);
        for stage in &trace.stages {
            encode(&mut out, &stage.name)?;
            codec::put_u64(&mut out, stage.nanos);
            codec::put_u64(&mut out, stage.count);
        }
    }
    if usize_to_u64(out.len()) > u64::from(codec::MAX_WIRE_FRAME_LEN) {
        return Err(ProtocolError::ResponseTooLarge {
            request: REQUEST,
            len: out.len(),
            limit: u32_to_usize(codec::MAX_WIRE_FRAME_LEN),
            entries: traces.len(),
        });
    }
    Ok(out)
}

/// HEALTH: compose the sticky-store check (only the serve layer can see the
/// store) with the process-wide rules of
/// [`evaluate_process_health`], and encode the verdict: `u8 ok`, `u32 n`,
/// then `n × (u8 reason tag, str detail)`.
fn handle_health(store: &ShardedStore, payload: &[u8]) -> Result<Vec<u8>, ProtocolError> {
    const REQUEST: &str = "HEALTH";
    if !payload.is_empty() {
        return Err(ProtocolError::TrailingBytes {
            request: REQUEST,
            trailing: payload.len(),
            declared: 0,
        });
    }
    let mut reasons = Vec::new();
    if let Some(e) = store.io_error() {
        reasons
            .push(HealthReason { code: HealthReasonCode::StickyStoreError, detail: e.to_string() });
    }
    reasons.extend(evaluate_process_health(&HealthThresholds::default()));
    let verdict = HealthVerdict::from_reasons(reasons);
    let mut out = Vec::new();
    codec::put_u8(&mut out, u8::from(verdict.ok));
    // At most one reason per code: far below 2^32.
    codec::put_u32(&mut out, u32::try_from(verdict.reasons.len()).unwrap_or(u32::MAX));
    for reason in &verdict.reasons {
        codec::put_u8(&mut out, reason.code.tag());
        codec::put_str(&mut out, &reason.detail)
            .map_err(|source| ProtocolError::Encode { request: REQUEST, source })?;
    }
    Ok(out)
}

/// EVENTS: the most recent `n` flight-recorder events at `min_severity` or
/// above (optionally from one component), newest first. Encoded per event:
/// seq, wall_ms, severity tag, component, name, then the typed fields
/// (`0` = u64, `1` = i64 as little-endian bits, `2` = f64 bits, `3` = str).
fn handle_events(payload: &[u8]) -> Result<Vec<u8>, ProtocolError> {
    const REQUEST: &str = "EVENTS";
    let bad = |source| ProtocolError::BadPayload { request: REQUEST, source };
    let mut r = Reader::new(payload);
    let declared = r.u32().map_err(bad)?;
    let severity_tag = r.u8().map_err(bad)?;
    let component = r.string().map_err(bad)?;
    if !r.is_empty() {
        return Err(ProtocolError::TrailingBytes {
            request: REQUEST,
            trailing: r.remaining(),
            declared,
        });
    }
    let min_severity = Severity::from_tag(severity_tag)
        .ok_or(ProtocolError::UnknownSeverity { tag: severity_tag })?;
    let events = event_ring().recent_filtered(u32_to_usize(declared), min_severity, &component);
    let mut out = Vec::new();
    // The ring is capacity-bounded far below 2^32, so this never saturates.
    codec::put_u32(&mut out, u32::try_from(events.len()).unwrap_or(u32::MAX));
    let encode = |out: &mut Vec<u8>, s: &str| {
        codec::put_str(out, s).map_err(|source| ProtocolError::Encode { request: REQUEST, source })
    };
    for event in &events {
        codec::put_u64(&mut out, event.seq);
        codec::put_u64(&mut out, event.wall_ms);
        codec::put_u8(&mut out, event.severity.tag());
        encode(&mut out, &event.component)?;
        encode(&mut out, &event.name)?;
        let fields =
            u32::try_from(event.fields.len()).map_err(|_| ProtocolError::ResponseTooLarge {
                request: REQUEST,
                len: event.fields.len(),
                limit: u32_to_usize(u32::MAX),
                entries: event.fields.len(),
            })?;
        codec::put_u32(&mut out, fields);
        for (key, value) in &event.fields {
            encode(&mut out, key)?;
            match value {
                FieldValue::U64(v) => {
                    codec::put_u8(&mut out, 0);
                    codec::put_u64(&mut out, *v);
                }
                FieldValue::I64(v) => {
                    codec::put_u8(&mut out, 1);
                    // Bit-transport, not a cast: the lossy-cast audit covers
                    // this module.
                    codec::put_u64(&mut out, u64::from_le_bytes(v.to_le_bytes()));
                }
                FieldValue::F64(v) => {
                    codec::put_u8(&mut out, 2);
                    codec::put_u64(&mut out, v.to_bits());
                }
                FieldValue::Str(v) => {
                    codec::put_u8(&mut out, 3);
                    encode(&mut out, v)?;
                }
            }
        }
    }
    if usize_to_u64(out.len()) > u64::from(codec::MAX_WIRE_FRAME_LEN) {
        return Err(ProtocolError::ResponseTooLarge {
            request: REQUEST,
            len: out.len(),
            limit: u32_to_usize(codec::MAX_WIRE_FRAME_LEN),
            entries: events.len(),
        });
    }
    Ok(out)
}

/// DETECT: run a sharded round and encode the copying pairs by name.
fn handle_detect(
    store: &ShardedStore,
    payload: &[u8],
    config: FrontendConfig,
) -> Result<Vec<u8>, ProtocolError> {
    const REQUEST: &str = "DETECT";
    // DETECT declares an empty payload; stray bytes mean a confused (or
    // hostile) peer and are refused, not silently dropped.
    if !payload.is_empty() {
        return Err(ProtocolError::TrailingBytes {
            request: REQUEST,
            trailing: payload.len(),
            declared: 0,
        });
    }
    let result = ShardedDetector::new()
        .with_merge_parallelism(config.merge_parallelism)
        .detect_round(store)
        .map_err(|e| ProtocolError::Detect { message: e.to_string() })?;
    // Pair ids live in the global registry's id space; the read-locked name
    // list resolves them in O(sources) without stalling concurrent ingest
    // batches.
    let names = store.global_source_names();
    let mut out = Vec::new();
    codec::put_u64(&mut out, usize_to_u64(result.pairs_considered));
    let mut copying: Vec<_> =
        result.outcomes.iter().filter(|(_, o)| o.decision.is_copying()).collect();
    copying.sort_by_key(|(pair, _)| **pair);
    let declared = u32::try_from(copying.len()).map_err(|_| ProtocolError::ResponseTooLarge {
        request: REQUEST,
        len: copying.len(),
        limit: u32_to_usize(u32::MAX),
        entries: copying.len(),
    })?;
    codec::put_u32(&mut out, declared);
    for (pair, outcome) in &copying {
        // Detection ran over a registry snapshot at least as old as `names`
        // — a miss is an internal inconsistency, reported, never indexed.
        let resolve = |index: usize| {
            names.get(index).map(String::as_str).ok_or(ProtocolError::UnknownSource { index })
        };
        let encode = |out: &mut Vec<u8>, s: &str| {
            codec::put_str(out, s)
                .map_err(|source| ProtocolError::Encode { request: REQUEST, source })
        };
        encode(&mut out, resolve(pair.first().index())?)?;
        encode(&mut out, resolve(pair.second().index())?)?;
        codec::put_u64(&mut out, outcome.posterior.unwrap_or(0.0).to_bits());
    }
    // The response size is data-dependent (every copying pair carries two
    // names): an over-limit payload must be a typed protocol error, not a
    // killed handler thread.
    if usize_to_u64(out.len()) > u64::from(codec::MAX_WIRE_FRAME_LEN) {
        return Err(ProtocolError::ResponseTooLarge {
            request: REQUEST,
            len: out.len(),
            limit: u32_to_usize(codec::MAX_WIRE_FRAME_LEN),
            entries: copying.len(),
        });
    }
    Ok(out)
}

/// DETECT_TOPK: run a pruned top-k query (per-source or fleet-wide) and
/// encode the ranked pairs by name, most suspicious first, with the query's
/// pruning counters.
fn handle_detect_topk(
    store: &ShardedStore,
    payload: &[u8],
    config: FrontendConfig,
) -> Result<Vec<u8>, ProtocolError> {
    const REQUEST: &str = "DETECT_TOPK";
    let bad = |source| ProtocolError::BadPayload { request: REQUEST, source };
    let mut r = Reader::new(payload);
    let mode = r.u8().map_err(bad)?;
    let k = r.u32().map_err(bad)?;
    let source = match mode {
        0 => Some(r.string().map_err(bad)?),
        1 => None,
        other => return Err(ProtocolError::UnknownTopKMode { mode: other }),
    };
    if !r.is_empty() {
        return Err(ProtocolError::TrailingBytes {
            request: REQUEST,
            trailing: r.remaining(),
            declared: k,
        });
    }
    let detector = ShardedDetector::new().with_merge_parallelism(config.merge_parallelism);
    let result = match &source {
        Some(name) => detector.detect_topk(store, name, u32_to_usize(k)),
        None => detector.detect_topk_fleet(store, u32_to_usize(k)),
    }
    .map_err(|e| match e {
        copydet_detect::DetectError::UnknownSourceName { name } => {
            ProtocolError::UnknownSourceName { name }
        }
        other => ProtocolError::Detect { message: other.to_string() },
    })?;
    let names = store.global_source_names();
    let mut out = Vec::new();
    codec::put_u64(&mut out, result.stats.candidates);
    codec::put_u64(&mut out, result.stats.evaluated);
    codec::put_u64(&mut out, result.stats.pruned);
    let declared =
        u32::try_from(result.ranked.len()).map_err(|_| ProtocolError::ResponseTooLarge {
            request: REQUEST,
            len: result.ranked.len(),
            limit: u32_to_usize(u32::MAX),
            entries: result.ranked.len(),
        })?;
    codec::put_u32(&mut out, declared);
    for (pair, outcome) in &result.ranked {
        let resolve = |index: usize| {
            names.get(index).map(String::as_str).ok_or(ProtocolError::UnknownSource { index })
        };
        let encode = |out: &mut Vec<u8>, s: &str| {
            codec::put_str(out, s)
                .map_err(|source| ProtocolError::Encode { request: REQUEST, source })
        };
        encode(&mut out, resolve(pair.first().index())?)?;
        encode(&mut out, resolve(pair.second().index())?)?;
        codec::put_u64(&mut out, outcome.posterior.unwrap_or(1.0).to_bits());
    }
    if usize_to_u64(out.len()) > u64::from(codec::MAX_WIRE_FRAME_LEN) {
        return Err(ProtocolError::ResponseTooLarge {
            request: REQUEST,
            len: out.len(),
            limit: u32_to_usize(codec::MAX_WIRE_FRAME_LEN),
            entries: result.ranked.len(),
        });
    }
    Ok(out)
}

/// The address a throwaway self-connection should dial to unblock the
/// accept loop: the listener's own address, except that a wildcard bind
/// (`0.0.0.0` / `::`) is not connectable on every platform, so it is
/// rewritten to the matching loopback.
fn wake_addr(mut addr: SocketAddr) -> SocketAddr {
    if addr.ip().is_unspecified() {
        addr.set_ip(match addr {
            SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
            SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
        });
    }
    addr
}

fn write_error(stream: &mut TcpStream, message: &str) -> io::Result<()> {
    let mut out = Vec::new();
    codec::put_str(&mut out, message).map_err(invalid)?;
    write_frame(stream, RESP_ERR, &out)
}

fn decode_ingest(payload: &[u8]) -> Result<Vec<(String, String, String)>, ProtocolError> {
    const REQUEST: &str = "INGEST";
    let bad = |source| ProtocolError::BadPayload { request: REQUEST, source };
    let mut r = Reader::new(payload);
    let declared = r.u32().map_err(bad)?;
    let n = u32_to_usize(declared);
    let mut claims = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let mut field = || r.string().map_err(bad);
        claims.push((field()?, field()?, field()?));
    }
    if !r.is_empty() {
        return Err(ProtocolError::TrailingBytes {
            request: REQUEST,
            trailing: r.remaining(),
            declared,
        });
    }
    Ok(claims)
}

/// A blocking client for the serving frontend.
///
/// One request in flight at a time (the protocol is strictly
/// request/response per connection); open more clients for concurrency.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a frontend.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Ok(Self { stream: TcpStream::connect(addr)? })
    }

    fn request(&mut self, kind: u8, payload: &[u8]) -> io::Result<Vec<u8>> {
        write_frame(&mut self.stream, kind, payload)?;
        match read_frame(&mut self.stream)? {
            Some((RESP_OK, payload)) => Ok(payload),
            Some((RESP_ERR, payload)) => {
                let message = Reader::new(&payload).string().map_err(invalid)?;
                Err(io::Error::other(format!("server error: {message}")))
            }
            Some((kind, _)) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected response kind {kind:#04x}"),
            )),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before the response",
            )),
        }
    }

    /// Ingests a batch of claims; returns the number of claims the server
    /// accepted from this batch (use [`stats`](Self::stats) for fleet
    /// totals).
    pub fn ingest(&mut self, claims: &[(&str, &str, &str)]) -> io::Result<u64> {
        let count = u32::try_from(claims.len()).map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("a batch of {} claims exceeds the u32 wire count", claims.len()),
            )
        })?;
        let mut payload = Vec::new();
        codec::put_u32(&mut payload, count);
        for (s, d, v) in claims {
            codec::put_str(&mut payload, s).map_err(invalid)?;
            codec::put_str(&mut payload, d).map_err(invalid)?;
            codec::put_str(&mut payload, v).map_err(invalid)?;
        }
        let resp = self.request(REQ_INGEST, &payload)?;
        Reader::new(&resp).u64().map_err(invalid)
    }

    /// Fetches fleet statistics: per-shard counters plus the server's
    /// uptime and per-verb request counts.
    pub fn stats(&mut self) -> io::Result<WireFleetStats> {
        let resp = self.request(REQ_STATS, &[])?;
        let mut r = Reader::new(&resp);
        let decode = |r: &mut Reader<'_>| -> Result<WireFleetStats, CodecError> {
            let n = u32_to_usize(r.u32()?);
            let mut shards = Vec::with_capacity(n.min(1 << 12));
            for _ in 0..n {
                shards.push(WireShardStats {
                    epoch: r.u64()?,
                    live_claims: r.u64()?,
                    num_sources: r.u64()?,
                    num_items: r.u64()?,
                    num_values: r.u64()?,
                    sealed_segments: r.u64()?,
                    growing_claims: r.u64()?,
                    durable: r.u8()? != 0,
                });
            }
            let uptime_micros = r.u64()?;
            let requests = WireRequestCounts {
                ingest: r.u64()?,
                stats: r.u64()?,
                detect: r.u64()?,
                shutdown: r.u64()?,
                metrics: r.u64()?,
                trace: r.u64()?,
                detect_topk: r.u64()?,
                health: r.u64()?,
                events: r.u64()?,
            };
            Ok(WireFleetStats { shards, uptime_micros, requests })
        };
        decode(&mut r).map_err(invalid)
    }

    /// Fetches the server process's metrics registry in Prometheus-style
    /// text exposition.
    pub fn metrics(&mut self) -> io::Result<String> {
        let resp = self.request(REQ_METRICS, &[])?;
        Reader::new(&resp).string().map_err(invalid)
    }

    /// Fetches the server process's most recent `n` round traces, newest
    /// first (`0` means every retained trace).
    pub fn trace(&mut self, n: u32) -> io::Result<Vec<RoundTrace>> {
        let mut payload = Vec::new();
        codec::put_u32(&mut payload, n);
        let resp = self.request(REQ_TRACE, &payload)?;
        let mut r = Reader::new(&resp);
        let decode = |r: &mut Reader<'_>| -> Result<Vec<RoundTrace>, CodecError> {
            let count = u32_to_usize(r.u32()?);
            let mut traces = Vec::with_capacity(count.min(1 << 10));
            for _ in 0..count {
                let sequence = r.u64()?;
                let label = r.string()?;
                let total_nanos = r.u64()?;
                let num_stages = u32_to_usize(r.u32()?);
                let mut stages = Vec::with_capacity(num_stages.min(1 << 10));
                for _ in 0..num_stages {
                    stages.push(TraceStage { name: r.string()?, nanos: r.u64()?, count: r.u64()? });
                }
                traces.push(RoundTrace { label, sequence, total_nanos, stages });
            }
            Ok(traces)
        };
        decode(&mut r).map_err(invalid)
    }

    /// Runs a detection round on the server and returns the copying pairs
    /// (by source name, ordered by global pair id).
    pub fn detect(&mut self) -> io::Result<WireDetection> {
        let resp = self.request(REQ_DETECT, &[])?;
        let mut r = Reader::new(&resp);
        let decode = |r: &mut Reader<'_>| -> Result<WireDetection, CodecError> {
            let pairs_considered = r.u64()?;
            let n = u32_to_usize(r.u32()?);
            let mut copying = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                copying.push(WireCopyingPair {
                    first: r.string()?,
                    second: r.string()?,
                    posterior: f64::from_bits(r.u64()?),
                });
            }
            Ok(WireDetection { pairs_considered, copying })
        };
        decode(&mut r).map_err(invalid)
    }

    /// Runs a pruned top-k query on the server: the `k` most likely copiers
    /// of `source` (`Some`), or the `k` most suspicious pairs fleet-wide
    /// (`None`). The ranked answer is bit-identical to the top-k of a full
    /// [`detect`](Self::detect) round; the counters say how much of the
    /// fleet's pair universe the query actually evaluated.
    pub fn detect_topk(&mut self, source: Option<&str>, k: u32) -> io::Result<WireTopK> {
        let mut payload = Vec::new();
        match source {
            Some(name) => {
                codec::put_u8(&mut payload, 0);
                codec::put_u32(&mut payload, k);
                codec::put_str(&mut payload, name).map_err(invalid)?;
            }
            None => {
                codec::put_u8(&mut payload, 1);
                codec::put_u32(&mut payload, k);
            }
        }
        let resp = self.request(REQ_DETECT_TOPK, &payload)?;
        let mut r = Reader::new(&resp);
        let decode = |r: &mut Reader<'_>| -> Result<WireTopK, CodecError> {
            let candidates = r.u64()?;
            let evaluated = r.u64()?;
            let pruned = r.u64()?;
            let n = u32_to_usize(r.u32()?);
            let mut ranked = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                ranked.push(WireCopyingPair {
                    first: r.string()?,
                    second: r.string()?,
                    posterior: f64::from_bits(r.u64()?),
                });
            }
            Ok(WireTopK { candidates, evaluated, pruned, ranked })
        };
        decode(&mut r).map_err(invalid)
    }

    /// Fetches the server's typed health verdict: `ok`, or degraded with
    /// one [`HealthReason`] per observed problem (sticky store errors, WAL
    /// fsync over budget, merge starvation, connection saturation).
    pub fn health(&mut self) -> io::Result<HealthVerdict> {
        let resp = self.request(REQ_HEALTH, &[])?;
        let mut r = Reader::new(&resp);
        let ok = r.u8().map_err(invalid)? != 0;
        let n = u32_to_usize(r.u32().map_err(invalid)?);
        let mut reasons = Vec::with_capacity(n.min(1 << 8));
        for _ in 0..n {
            let tag = r.u8().map_err(invalid)?;
            let code = HealthReasonCode::from_tag(tag).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown health reason tag {tag}"),
                )
            })?;
            reasons.push(HealthReason { code, detail: r.string().map_err(invalid)? });
        }
        Ok(HealthVerdict { ok, reasons })
    }

    /// Fetches the server's most recent `n` flight-recorder events at
    /// `min_severity` or above, newest first (`n == 0` means every retained
    /// event; an empty `component` matches every component).
    pub fn events(
        &mut self,
        n: u32,
        min_severity: Severity,
        component: &str,
    ) -> io::Result<Vec<Event>> {
        let mut payload = Vec::new();
        codec::put_u32(&mut payload, n);
        codec::put_u8(&mut payload, min_severity.tag());
        codec::put_str(&mut payload, component).map_err(invalid)?;
        let resp = self.request(REQ_EVENTS, &payload)?;
        let mut r = Reader::new(&resp);
        let decode = |r: &mut Reader<'_>| -> Result<Option<Vec<Event>>, CodecError> {
            let count = u32_to_usize(r.u32()?);
            let mut events = Vec::with_capacity(count.min(1 << 10));
            for _ in 0..count {
                let seq = r.u64()?;
                let wall_ms = r.u64()?;
                let Some(severity) = Severity::from_tag(r.u8()?) else { return Ok(None) };
                let component = r.string()?;
                let name = r.string()?;
                let num_fields = u32_to_usize(r.u32()?);
                let mut fields = Vec::with_capacity(num_fields.min(1 << 10));
                for _ in 0..num_fields {
                    let key = r.string()?;
                    let value = match r.u8()? {
                        0 => FieldValue::U64(r.u64()?),
                        1 => FieldValue::I64(i64::from_le_bytes(r.u64()?.to_le_bytes())),
                        2 => FieldValue::F64(f64::from_bits(r.u64()?)),
                        3 => FieldValue::Str(r.string()?),
                        _ => return Ok(None),
                    };
                    fields.push((key, value));
                }
                events.push(Event { seq, wall_ms, severity, component, name, fields });
            }
            Ok(Some(events))
        };
        match decode(&mut r) {
            Ok(Some(events)) => Ok(events),
            Ok(None) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "EVENTS response used an unknown severity or field tag",
            )),
            Err(e) => Err(invalid(e)),
        }
    }

    /// Asks the server to stop accepting connections.
    pub fn shutdown(&mut self) -> io::Result<()> {
        self.request(REQ_SHUTDOWN, &[]).map(|_| ())
    }
}
