//! The serving frontend: a std-only TCP request loop speaking a small
//! length-prefixed binary protocol, plus the matching client.
//!
//! ## Wire protocol
//!
//! Every message is one checksummed frame from
//! [`copydet_model::codec`] (`[kind: u8][len: u32][payload][crc32]`, see
//! [`codec::encode_wire_frame`]). Requests:
//!
//! | kind | request | payload |
//! |------|---------|---------|
//! | `0x01` | INGEST | `u32 n`, then `n × (str source, str item, str value)` |
//! | `0x02` | STATS | empty |
//! | `0x03` | DETECT | empty |
//! | `0x04` | SHUTDOWN | empty |
//!
//! Responses are `0x80` (OK, payload per request kind) or `0x81` (error,
//! `str` message). Strings are the codec's length-prefixed UTF-8, bounded
//! by [`codec::MAX_STR_LEN`]; whole frames are bounded by
//! [`codec::MAX_WIRE_FRAME_LEN`], so a hostile peer can neither drive an
//! allocation nor wedge the reader.
//!
//! ## Threading
//!
//! One accept thread, one handler thread per connection. Each INGEST batch
//! goes through [`ShardedStore::ingest_batch`], which splits the batch by
//! item partition and applies each shard's slice under a single shard-lock
//! acquisition — the per-shard batching that lets many concurrent clients
//! stream without convoying on one mutex. DETECT runs a full
//! [`ShardedDetector`] round (fan-out scan + merge) outside every store
//! lock.

use crate::detector::ShardedDetector;
use crate::shard::ShardedStore;
use copydet_model::codec::{self, CodecError, Reader};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Request kind: ingest a claim batch.
pub const REQ_INGEST: u8 = 0x01;
/// Request kind: fleet statistics.
pub const REQ_STATS: u8 = 0x02;
/// Request kind: run a detection round.
pub const REQ_DETECT: u8 = 0x03;
/// Request kind: stop the server.
pub const REQ_SHUTDOWN: u8 = 0x04;
/// Response kind: success.
pub const RESP_OK: u8 = 0x80;
/// Response kind: failure (payload is the message).
pub const RESP_ERR: u8 = 0x81;

fn invalid(e: CodecError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

/// Writes one frame to a stream.
fn write_frame(stream: &mut TcpStream, kind: u8, payload: &[u8]) -> io::Result<()> {
    stream.write_all(&codec::encode_wire_frame(kind, payload))
}

/// Reads one frame from a stream; `Ok(None)` on a clean EOF before the
/// first header byte. An EOF *inside* a header or body is a torn frame and
/// surfaces as `UnexpectedEof` like any other truncation.
fn read_frame(stream: &mut TcpStream) -> io::Result<Option<(u8, Vec<u8>)>> {
    let mut header = [0u8; codec::WIRE_HEADER_LEN];
    // The first byte decides clean-close vs torn frame, so it is read on
    // its own: read_exact cannot tell "0 bytes then EOF" from "3 bytes
    // then EOF".
    match stream.read(&mut header[..1]) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) if e.kind() == io::ErrorKind::Interrupted => return read_frame(stream),
        Err(e) => return Err(e),
    }
    stream.read_exact(&mut header[1..])?;
    let body_len = codec::wire_frame_body_len(&header).map_err(invalid)?;
    let mut frame = Vec::with_capacity(codec::WIRE_HEADER_LEN + body_len);
    frame.extend_from_slice(&header);
    frame.resize(codec::WIRE_HEADER_LEN + body_len, 0);
    stream.read_exact(&mut frame[codec::WIRE_HEADER_LEN..])?;
    let (kind, payload) = codec::decode_wire_frame(&frame).map_err(invalid)?;
    Ok(Some((kind, payload.to_vec())))
}

/// Per-shard statistics as reported over the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireShardStats {
    /// Snapshots taken by the shard.
    pub epoch: u64,
    /// Live `(source, item)` claims in the shard.
    pub live_claims: u64,
    /// Sources known to the shard.
    pub num_sources: u32,
    /// Items routed to the shard.
    pub num_items: u32,
    /// Distinct values in the shard.
    pub num_values: u32,
    /// Sealed segments in the shard.
    pub sealed_segments: u32,
    /// Claims still in the shard's growing segment.
    pub growing_claims: u64,
    /// `true` if the shard persists to disk.
    pub durable: bool,
}

/// One copying pair as reported over the wire (source names, since the
/// client has no id space).
#[derive(Debug, Clone, PartialEq)]
pub struct WireCopyingPair {
    /// First source of the pair (smaller global id).
    pub first: String,
    /// Second source of the pair.
    pub second: String,
    /// Posterior probability of independence.
    pub posterior: f64,
}

/// A detection round's result as reported over the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireDetection {
    /// Pairs for which evidence was materialized.
    pub pairs_considered: u64,
    /// Pairs decided as copying.
    pub copying: Vec<WireCopyingPair>,
}

/// The registry of live connections: a socket handle to interrupt each
/// blocked reader with, plus the handler thread to join.
type Connections = Arc<Mutex<Vec<(TcpStream, JoinHandle<()>)>>>;

/// A running frontend: bound address plus the accept thread.
///
/// The server stops when [`shutdown`](Self::shutdown) is called or a client
/// sends `SHUTDOWN`; `shutdown` additionally closes every open connection
/// and joins its handler thread, so when it returns **no** thread still
/// holds a clone of the store — on a durable fleet the shard directory
/// locks are free to reopen. Dropping the handle without `shutdown` leaves
/// the accept thread running (detached) — tests and the demo always shut
/// down explicitly.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    connections: Connections,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Returns `true` once the server has been asked to stop.
    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Stops accepting connections, closes every open connection, and joins
    /// the accept and handler threads. When this returns, no server thread
    /// holds a reference to the store.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // A throwaway connection unblocks the accept loop so it can observe
        // the stop flag.
        let _ = TcpStream::connect(wake_addr(self.addr));
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        // Interrupt handlers blocked in a read, then wait for each to drop
        // its store clone.
        let connections = std::mem::take(&mut *self.connections.lock().expect("registry poisoned"));
        for (stream, handle) in connections {
            let _ = stream.shutdown(std::net::Shutdown::Both);
            let _ = handle.join();
        }
    }
}

/// Serves a [`ShardedStore`] on `addr` (`127.0.0.1:0` picks a free port).
///
/// Returns once the listener is bound; the accept loop runs on its own
/// thread and every connection gets a handler thread (registered so
/// [`ServerHandle::shutdown`] can close and join it). All request handling
/// is std-only (no async runtime): the workload is lock-amortized batch
/// ingest plus occasional detection rounds, where a thread per connection
/// is the simplest correct concurrency model.
pub fn serve(store: ShardedStore, addr: impl ToSocketAddrs) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let connections: Connections = Arc::new(Mutex::new(Vec::new()));
    let accept_stop = Arc::clone(&stop);
    let accept_connections = Arc::clone(&connections);
    let accept_thread = std::thread::spawn(move || {
        for connection in listener.incoming() {
            if accept_stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = connection else { continue };
            let store = store.clone();
            let stop = Arc::clone(&accept_stop);
            let server_addr = addr;
            let handler_connections = Arc::clone(&accept_connections);
            let Ok(interrupt) = stream.try_clone() else { continue };
            let handler = std::thread::spawn(move || {
                let _ = handle_connection(stream, store, stop, server_addr, handler_connections);
            });
            let mut registry = accept_connections.lock().expect("registry poisoned");
            // Reap finished handlers so a long-lived server's registry holds
            // only live connections.
            registry.retain(|(_, handle)| !handle.is_finished());
            registry.push((interrupt, handler));
        }
    });
    Ok(ServerHandle { addr, stop, accept_thread: Some(accept_thread), connections })
}

/// Serves one connection until EOF, error, or SHUTDOWN.
fn handle_connection(
    mut stream: TcpStream,
    store: ShardedStore,
    stop: Arc<AtomicBool>,
    server_addr: SocketAddr,
    connections: Connections,
) -> io::Result<()> {
    while let Some((kind, payload)) = read_frame(&mut stream)? {
        match kind {
            REQ_INGEST => match decode_ingest(&payload) {
                Ok(claims) => {
                    // The response carries the batch's own accepted count —
                    // a fleet-wide total would re-acquire every shard mutex
                    // right after the batch released them, doubling
                    // cross-shard lock traffic for a number that is stale
                    // the moment it is read (STATS reports live totals).
                    let accepted = store.ingest_batch(
                        claims.iter().map(|(s, d, v)| (s.as_str(), d.as_str(), v.as_str())),
                    );
                    let mut out = Vec::new();
                    codec::put_u64(&mut out, accepted as u64);
                    write_frame(&mut stream, RESP_OK, &out)?;
                }
                Err(e) => {
                    write_error(&mut stream, &format!("bad INGEST payload: {e}"))?;
                }
            },
            REQ_STATS => {
                let mut out = Vec::new();
                let stats = store.shard_stats();
                codec::put_u32(&mut out, stats.len() as u32);
                for s in stats {
                    codec::put_u64(&mut out, s.epoch);
                    codec::put_u64(&mut out, s.live_claims as u64);
                    codec::put_u32(&mut out, s.num_sources as u32);
                    codec::put_u32(&mut out, s.num_items as u32);
                    codec::put_u32(&mut out, s.num_values as u32);
                    codec::put_u32(&mut out, s.sealed_segments as u32);
                    codec::put_u64(&mut out, s.growing_claims as u64);
                    codec::put_u8(&mut out, u8::from(s.durable));
                }
                write_frame(&mut stream, RESP_OK, &out)?;
            }
            REQ_DETECT => {
                let result = ShardedDetector::new().detect_round(&store);
                // Pair ids live in the global registry's id space; the
                // read-locked name list resolves them in O(sources) without
                // stalling concurrent ingest batches.
                let names = store.global_source_names();
                let mut out = Vec::new();
                codec::put_u64(&mut out, result.pairs_considered as u64);
                let mut copying: Vec<_> =
                    result.outcomes.iter().filter(|(_, o)| o.decision.is_copying()).collect();
                copying.sort_by_key(|(pair, _)| **pair);
                codec::put_u32(&mut out, copying.len() as u32);
                let mut encode = || -> Result<(), CodecError> {
                    for (pair, outcome) in &copying {
                        codec::put_str(&mut out, &names[pair.first().index()])?;
                        codec::put_str(&mut out, &names[pair.second().index()])?;
                        codec::put_u64(&mut out, outcome.posterior.unwrap_or(0.0).to_bits());
                    }
                    Ok(())
                };
                match encode() {
                    // The response size is data-dependent (every copying
                    // pair carries two names): an over-limit payload must be
                    // a typed protocol error, not the encode_wire_frame
                    // assertion killing the handler thread.
                    Ok(()) if out.len() as u64 <= codec::MAX_WIRE_FRAME_LEN as u64 => {
                        write_frame(&mut stream, RESP_OK, &out)?
                    }
                    Ok(()) => write_error(
                        &mut stream,
                        &format!(
                            "DETECT response of {} bytes exceeds the {}-byte frame limit ({} \
                             copying pairs); run detection in-process for results this large",
                            out.len(),
                            codec::MAX_WIRE_FRAME_LEN,
                            copying.len()
                        ),
                    )?,
                    Err(e) => write_error(&mut stream, &format!("DETECT encoding failed: {e}"))?,
                }
            }
            REQ_SHUTDOWN => {
                stop.store(true, Ordering::SeqCst);
                write_frame(&mut stream, RESP_OK, &[])?;
                // Unblock the accept loop so it observes the flag.
                let _ = TcpStream::connect(wake_addr(server_addr));
                // A wire SHUTDOWN quiesces the whole server, not just this
                // connection: close every *other* registered connection so
                // their handlers exit and release their store clones (this
                // one's response is already written; skipping it keeps the
                // OK from being discarded by an abortive close).
                let own = stream.peer_addr().ok();
                let registry = connections.lock().expect("registry poisoned");
                for (other, _) in registry.iter() {
                    if own.is_none() || other.peer_addr().ok() != own {
                        let _ = other.shutdown(std::net::Shutdown::Both);
                    }
                }
                break;
            }
            other => {
                write_error(&mut stream, &format!("unknown request kind {other:#04x}"))?;
            }
        }
    }
    Ok(())
}

/// The address a throwaway self-connection should dial to unblock the
/// accept loop: the listener's own address, except that a wildcard bind
/// (`0.0.0.0` / `::`) is not connectable on every platform, so it is
/// rewritten to the matching loopback.
fn wake_addr(mut addr: SocketAddr) -> SocketAddr {
    if addr.ip().is_unspecified() {
        addr.set_ip(match addr {
            SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
            SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
        });
    }
    addr
}

fn write_error(stream: &mut TcpStream, message: &str) -> io::Result<()> {
    let mut out = Vec::new();
    codec::put_str(&mut out, message).map_err(invalid)?;
    write_frame(stream, RESP_ERR, &out)
}

fn decode_ingest(payload: &[u8]) -> Result<Vec<(String, String, String)>, String> {
    let mut r = Reader::new(payload);
    let n = r.u32().map_err(|e| e.to_string())? as usize;
    let mut claims = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let mut field = || r.string().map_err(|e| e.to_string());
        claims.push((field()?, field()?, field()?));
    }
    if !r.is_empty() {
        return Err(format!("{} trailing byte(s) after the declared {n} claim(s)", r.remaining()));
    }
    Ok(claims)
}

/// A blocking client for the serving frontend.
///
/// One request in flight at a time (the protocol is strictly
/// request/response per connection); open more clients for concurrency.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a frontend.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Ok(Self { stream: TcpStream::connect(addr)? })
    }

    fn request(&mut self, kind: u8, payload: &[u8]) -> io::Result<Vec<u8>> {
        write_frame(&mut self.stream, kind, payload)?;
        match read_frame(&mut self.stream)? {
            Some((RESP_OK, payload)) => Ok(payload),
            Some((RESP_ERR, payload)) => {
                let message = Reader::new(&payload).string().map_err(invalid)?;
                Err(io::Error::other(format!("server error: {message}")))
            }
            Some((kind, _)) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected response kind {kind:#04x}"),
            )),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before the response",
            )),
        }
    }

    /// Ingests a batch of claims; returns the number of claims the server
    /// accepted from this batch (use [`stats`](Self::stats) for fleet
    /// totals).
    pub fn ingest(&mut self, claims: &[(&str, &str, &str)]) -> io::Result<u64> {
        let mut payload = Vec::new();
        codec::put_u32(&mut payload, claims.len() as u32);
        for (s, d, v) in claims {
            codec::put_str(&mut payload, s).map_err(invalid)?;
            codec::put_str(&mut payload, d).map_err(invalid)?;
            codec::put_str(&mut payload, v).map_err(invalid)?;
        }
        let resp = self.request(REQ_INGEST, &payload)?;
        Reader::new(&resp).u64().map_err(invalid)
    }

    /// Fetches per-shard statistics.
    pub fn stats(&mut self) -> io::Result<Vec<WireShardStats>> {
        let resp = self.request(REQ_STATS, &[])?;
        let mut r = Reader::new(&resp);
        let decode = |r: &mut Reader<'_>| -> Result<Vec<WireShardStats>, CodecError> {
            let n = r.u32()? as usize;
            let mut shards = Vec::with_capacity(n.min(1 << 12));
            for _ in 0..n {
                shards.push(WireShardStats {
                    epoch: r.u64()?,
                    live_claims: r.u64()?,
                    num_sources: r.u32()?,
                    num_items: r.u32()?,
                    num_values: r.u32()?,
                    sealed_segments: r.u32()?,
                    growing_claims: r.u64()?,
                    durable: r.u8()? != 0,
                });
            }
            Ok(shards)
        };
        decode(&mut r).map_err(invalid)
    }

    /// Runs a detection round on the server and returns the copying pairs
    /// (by source name, ordered by global pair id).
    pub fn detect(&mut self) -> io::Result<WireDetection> {
        let resp = self.request(REQ_DETECT, &[])?;
        let mut r = Reader::new(&resp);
        let decode = |r: &mut Reader<'_>| -> Result<WireDetection, CodecError> {
            let pairs_considered = r.u64()?;
            let n = r.u32()? as usize;
            let mut copying = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                copying.push(WireCopyingPair {
                    first: r.string()?,
                    second: r.string()?,
                    posterior: f64::from_bits(r.u64()?),
                });
            }
            Ok(WireDetection { pairs_considered, copying })
        };
        decode(&mut r).map_err(invalid)
    }

    /// Asks the server to stop accepting connections.
    pub fn shutdown(&mut self) -> io::Result<()> {
        self.request(REQ_SHUTDOWN, &[]).map(|_| ())
    }
}
