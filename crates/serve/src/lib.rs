//! # copydet-serve
//!
//! The sharded serving engine of the copydetect stack: the layer that takes
//! the single-process claim store of `copydet-store` past one mutex and one
//! inverted index, toward the paper's stated goal — copy detection that
//! keeps up with web-scale corpora ("Scaling up Copy Detection", Li et al.,
//! ICDE 2015) — using the standard partition/merge recipe of scaled clone
//! and similarity detectors (SourcererCC and friends): partition the
//! corpus, run per-partition indexes, merge candidate evidence.
//!
//! * **[`ShardedStore`]** — hash-partitions **data items** across N
//!   [`SharedClaimStore`](copydet_store::SharedClaimStore) shards (stable
//!   FNV-1a on the item name, pinned in the durable layout). Every claim
//!   about one item lands on one shard, so shards are item-disjoint; each
//!   has its own mutex, WAL, segments and directory, and recovery is
//!   per-shard. A global name registry reconciles the id spaces.
//! * **[`Router`]** — splits incoming claim batches by item partition and
//!   applies each shard's slice under a single shard-lock acquisition, so
//!   concurrent writers amortize lock traffic instead of convoying.
//! * **[`ShardedDetector`]** — fans a detection round out across shards in
//!   a `std::thread::scope` (snapshot + evidence scan per shard, candidate
//!   pairs pruned by each shard's incrementally-maintained shared-item
//!   counts) and merges the per-shard overlap evidence into global pairwise
//!   decisions. Item-disjointness makes the merge *exact*: results are
//!   **bit-identical** to the PAIRWISE baseline on a single store fed the
//!   same stream (property-tested in `tests/shard_equivalence.rs`).
//! * **[`frontend`]** — a std-only `TcpListener` request loop speaking a
//!   checksummed length-prefixed protocol built on
//!   [`copydet_model::codec`]: INGEST batch / STATS / DETECT round /
//!   DETECT_TOPK pruned top-k query / SHUTDOWN / METRICS exposition /
//!   TRACE (recent round traces) / HEALTH (process health verdict) /
//!   EVENTS (flight-recorder tail), plus the matching blocking
//!   [`Client`](frontend::Client).
//!
//! ```
//! use copydet_serve::{ShardedDetector, ShardedStore};
//!
//! let store = ShardedStore::new(4);
//! store.ingest_batch([
//!     ("alice", "NJ", "Trenton"),
//!     ("bob", "NJ", "Trenton"),
//!     ("carol", "NJ", "Newark"),
//!     ("alice", "AZ", "Phoenix"),
//!     ("bob", "AZ", "Phoenix"),
//! ]);
//! let mut detector = ShardedDetector::new();
//! let result = detector.detect_round(&store).expect("capture is consistent");
//! assert_eq!(result.algorithm, "SHARDED");
//! ```
//!
//! See `DESIGN.md` §7 for the partitioning invariant, the merge-correctness
//! argument and the wire-protocol frame layout.

#![forbid(unsafe_code)]
#![deny(unused_must_use)]
#![warn(missing_docs)]

mod detector;
#[warn(clippy::cast_possible_truncation, clippy::indexing_slicing)]
pub mod frontend;
#[warn(clippy::cast_possible_truncation, clippy::indexing_slicing)]
mod registry_log;
mod shard;

pub use detector::ShardedDetector;
pub use shard::{fnv1a64, partition_of, Router, ShardMaps, ShardedStore};

// Re-exported so serve users can name the store/detect/obs types without
// direct dependencies.
pub use copydet_detect::{DetectionResult, TopKResult, TopKStats};
pub use copydet_obs::{
    Event, FieldValue, HealthReason, HealthReasonCode, HealthVerdict, RoundTrace, Severity,
    TraceStage,
};
pub use copydet_store::{LiveConfig, StoreConfig, StoreIoError, StoreStats};
