//! The `REGISTRY` file: an append-only arrival-order log of the global name
//! registry, kept next to the `SHARDS` pin in a durable fleet root.
//!
//! PR 5's shard-major registry recovery rebuilds deterministic global ids on
//! restart, but not necessarily the *original arrival order* — and the
//! cross-shard merge folds floating-point evidence in global id order, so a
//! reordered registry can move the last ulp of a posterior. Persisting the
//! arrival order makes restarts **bit-stable**: a reopened fleet replays
//! this log before looking at any shard, so every name gets its original
//! global id back and DETECT responses are byte-identical across restarts
//! (asserted in `tests/registry_restart.rs`).
//!
//! ## Record format
//!
//! ```text
//! [kind: u8][len: u32 LE][name: len UTF-8 bytes][crc32(kind..name): u32 LE]
//! ```
//!
//! `kind` tags the table (0 = source, 1 = item, 2 = value). The trailing
//! CRC makes a torn tail detectable: replay keeps the longest intact record
//! prefix and truncates the rest (a crash happened mid-append; the names a
//! torn record carried cannot have reached any shard WAL, because appends
//! are fsynced under the registry lock *before* the batch touches a shard)
//! and re-appends from there. Records are not individually addressable
//! after a bad one (boundaries are data-dependent), so a checksum failure
//! anywhere ends the intact prefix; names lost that way are re-interned
//! shard-major by the open-time rebuild — detection stays exact, only the
//! pre-crash arrival order degrades. A structurally intact record with an
//! *unknown kind*, by contrast, is unambiguous corruption and refuses the
//! open.
//!
//! The log is written under the existing rank-10 registry write lock — no
//! new lock, no rank-table change: batches that only reference known names
//! (the steady state) never take the write lock and never touch the log.

use copydet_model::codec::{self, crc32_ieee, CodecError, Reader};
use copydet_store::StoreIoError;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Name of the registry log inside a durable sharded-store root.
pub(crate) const REGISTRY_FILE: &str = "REGISTRY";

/// Byte bound on the `REGISTRY` log (1 GiB). The log holds every distinct
/// name once (~tens of bytes each); a file near this bound is corruption,
/// rejected before any allocation.
const MAX_REGISTRY_LOG_LEN: u64 = 1 << 30;

/// Which global table a logged name belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum NameKind {
    /// A source name.
    Source,
    /// A data-item name.
    Item,
    /// A value string.
    Value,
}

impl NameKind {
    fn tag(self) -> u8 {
        match self {
            NameKind::Source => 0,
            NameKind::Item => 1,
            NameKind::Value => 2,
        }
    }

    fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(NameKind::Source),
            1 => Some(NameKind::Item),
            2 => Some(NameKind::Value),
            _ => None,
        }
    }
}

/// An open handle on the arrival-order log, appending records durably.
#[derive(Debug)]
pub(crate) struct RegistryLog {
    path: PathBuf,
    file: std::fs::File,
}

impl RegistryLog {
    /// Opens (creating if absent) the `REGISTRY` log under `root` and
    /// replays the longest intact record prefix, truncating anything after
    /// it (a torn tail from a crashed append). An intact record with an
    /// unknown kind is [`StoreIoError::Corrupt`].
    pub(crate) fn open_and_replay(
        root: &Path,
    ) -> Result<(Self, Vec<(NameKind, String)>), StoreIoError> {
        let path = root.join(REGISTRY_FILE);
        let bytes = copydet_store::read_bounded(&path, MAX_REGISTRY_LOG_LEN)?.unwrap_or_default();
        let (records, intact_len) = Self::parse(&path, &bytes)?;
        let file = std::fs::OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&path)
            .map_err(|e| StoreIoError::io(&path, &e))?;
        if intact_len < bytes.len() {
            // Drop the torn tail so the next append starts on a record
            // boundary. (Append position follows the new length.)
            file.set_len(codec::usize_to_u64(intact_len))
                .map_err(|e| StoreIoError::io(&path, &e))?;
            file.sync_data().map_err(|e| StoreIoError::io(&path, &e))?;
        }
        Ok((Self { path, file }, records))
    }

    /// Parses `bytes` into records, returning them plus the byte length of
    /// the intact prefix (shorter than `bytes.len()` only for a torn tail).
    fn parse(path: &Path, bytes: &[u8]) -> Result<(Vec<(NameKind, String)>, usize), StoreIoError> {
        let mut reader = Reader::new(bytes);
        let mut records = Vec::new();
        while !reader.is_empty() {
            let start = reader.pos();
            let parsed = (|r: &mut Reader<'_>| -> Result<(u8, String), CodecError> {
                let tag = r.u8()?;
                let name = r.string()?;
                let body_end = r.pos();
                let stored = r.u32()?;
                let computed = bytes
                    .get(start..body_end)
                    .map(crc32_ieee)
                    .ok_or(CodecError::Truncated { needed: body_end, have: bytes.len() })?;
                if stored != computed {
                    // Reported as a truncation so a torn final record is
                    // healed; mid-file it is rejected below either way.
                    return Err(CodecError::Truncated { needed: 4, have: 0 });
                }
                Ok((tag, name))
            })(&mut reader);
            match parsed {
                Ok((tag, name)) => {
                    let kind = NameKind::from_tag(tag).ok_or_else(|| StoreIoError::Corrupt {
                        path: path.to_path_buf(),
                        detail: format!(
                            "registry log record at offset {start} has unknown kind {tag:#04x}"
                        ),
                    })?;
                    records.push((kind, name));
                }
                // An unreadable record that reaches the end of the file is a
                // torn tail from a crashed append: truncate and move on.
                Err(_) => return Ok((records, start)),
            }
        }
        Ok((records, bytes.len()))
    }

    /// Appends `records` and fsyncs. Called under the registry write lock,
    /// *before* the batch that introduced these names reaches any shard —
    /// so a crash can never leave durable claims whose names are missing
    /// from the log. New names are rare in the steady state, so the
    /// per-append fsync is off the hot path.
    pub(crate) fn append(&mut self, records: &[(NameKind, String)]) -> Result<(), StoreIoError> {
        if records.is_empty() {
            return Ok(());
        }
        let mut out = Vec::new();
        for (kind, name) in records {
            let start = out.len();
            codec::put_u8(&mut out, kind.tag());
            codec::put_str(&mut out, name).map_err(|e| StoreIoError::Corrupt {
                path: self.path.clone(),
                detail: format!("unloggable registry name: {e}"),
            })?;
            let crc = out.get(start..).map(crc32_ieee).unwrap_or_default();
            codec::put_u32(&mut out, crc);
        }
        self.file.write_all(&out).map_err(|e| StoreIoError::io(&self.path, &e))?;
        self.file.sync_data().map_err(|e| StoreIoError::io(&self.path, &e))
    }
}

#[cfg(test)]
mod tests {
    // Tests build corrupt byte images by hand; a panic here is a test
    // failure, not a serving-path hazard.
    #![allow(clippy::indexing_slicing)]

    use super::*;

    fn scratch(label: &str) -> PathBuf {
        let root = std::env::temp_dir()
            .join(format!("copydet_registry_log_{label}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("create scratch dir");
        root
    }

    #[test]
    fn roundtrip_preserves_arrival_order() {
        let root = scratch("roundtrip");
        let records = vec![
            (NameKind::Item, "NJ".to_owned()),
            (NameKind::Source, "alice".to_owned()),
            (NameKind::Value, "Trenton".to_owned()),
            (NameKind::Source, "bob".to_owned()),
        ];
        {
            let (mut log, replayed) = RegistryLog::open_and_replay(&root).expect("open fresh");
            assert!(replayed.is_empty());
            log.append(&records).expect("append");
        }
        let (_, replayed) = RegistryLog::open_and_replay(&root).expect("reopen");
        assert_eq!(replayed, records);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let root = scratch("torn");
        {
            let (mut log, _) = RegistryLog::open_and_replay(&root).expect("open fresh");
            log.append(&[(NameKind::Source, "alice".to_owned())]).expect("append");
        }
        // Simulate a crash mid-append: half a record at the tail.
        let path = root.join(REGISTRY_FILE);
        let mut bytes = std::fs::read(&path).expect("read log");
        let intact = bytes.len();
        bytes.extend_from_slice(&[NameKind::Item.tag(), 200, 0, 0]);
        std::fs::write(&path, &bytes).expect("write torn log");

        let (mut log, replayed) = RegistryLog::open_and_replay(&root).expect("heal torn tail");
        assert_eq!(replayed, vec![(NameKind::Source, "alice".to_owned())]);
        log.append(&[(NameKind::Item, "NJ".to_owned())]).expect("append after heal");
        drop(log);
        assert!(std::fs::metadata(&path).expect("stat").len() > codec::usize_to_u64(intact));
        let (_, replayed) = RegistryLog::open_and_replay(&root).expect("reopen");
        assert_eq!(
            replayed,
            vec![(NameKind::Source, "alice".to_owned()), (NameKind::Item, "NJ".to_owned())]
        );
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn unknown_kind_mid_file_refuses_the_open() {
        let root = scratch("badkind");
        let path = root.join(REGISTRY_FILE);
        // A structurally valid record (good CRC) with an unassigned kind,
        // followed by a valid one: not a torn tail, refused.
        let mut bytes = Vec::new();
        let start = bytes.len();
        codec::put_u8(&mut bytes, 9);
        codec::put_str(&mut bytes, "ghost").expect("short name");
        let crc = crc32_ieee(&bytes[start..]);
        codec::put_u32(&mut bytes, crc);
        let start = bytes.len();
        codec::put_u8(&mut bytes, 0);
        codec::put_str(&mut bytes, "alice").expect("short name");
        let crc = crc32_ieee(&bytes[start..]);
        codec::put_u32(&mut bytes, crc);
        std::fs::write(&path, &bytes).expect("write log");

        let err = RegistryLog::open_and_replay(&root).expect_err("unknown kind is corruption");
        assert!(matches!(err, StoreIoError::Corrupt { .. }), "unexpected error: {err:?}");
        let _ = std::fs::remove_dir_all(&root);
    }
}
