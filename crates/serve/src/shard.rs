//! The sharded store: item-partitioned [`SharedClaimStore`] shards behind a
//! global name registry, plus the [`Router`] that batches claims per shard.

use crate::registry_log::{NameKind, RegistryLog};
use copydet_index::SharedItemCounts;
use copydet_model::codec::usize_to_u64;
use copydet_model::sync::RankedRwLock;
use copydet_model::{ItemId, NameTable, SourceId, SourcePair};
use copydet_obs::event::field;
use copydet_obs::{emit, Severity, Span};
use copydet_store::{
    read_bounded_text, SharedClaimStore, StoreConfig, StoreIoError, StoreSnapshot, StoreStats,
};
use std::path::Path;
use std::sync::Arc;

/// FNV-1a 64-bit hash — the partitioning hash of the sharded store.
///
/// Deliberately *not* `DefaultHasher`: the item → shard assignment is part
/// of the durable layout (each shard persists its own directory), so it must
/// be stable across processes, architectures and Rust versions.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// The shard an item name lands on, out of `num_shards`.
pub fn partition_of(item: &str, num_shards: usize) -> usize {
    (fnv1a64(item.as_bytes()) % num_shards as u64) as usize
}

/// Name of the shard-count file inside a durable sharded-store root.
const SHARDS_FILE: &str = "SHARDS";

/// Byte bound on the `SHARDS` pin file: it holds one decimal count, so
/// anything larger is corruption — rejected before it is read, not parsed.
const MAX_SHARDS_FILE_LEN: u64 = 64;

/// Rank of the global name-registry lock — the **lowest** in the process
/// (see `DESIGN.md` §8): it is acquired before any shard mutex and released
/// before shard work begins.
const GLOBAL_REGISTRY_RANK: u32 = 10;

// lock-rank: 10 (serve.shard.global_registry)
fn new_global_registry() -> Arc<RankedRwLock<GlobalTables>> {
    Arc::new(RankedRwLock::new(
        GLOBAL_REGISTRY_RANK,
        "serve.shard.global_registry",
        GlobalTables::default(),
    ))
}

/// The global name registry: every source, item and value name seen by the
/// router, interned in arrival order.
///
/// Shards intern independently (each is a self-contained [`ClaimStore`]
/// with dense local ids); the registry provides the *global* id space the
/// cross-shard merge ranks by. Because names are interned here before the
/// claim reaches its shard, a fresh single store fed the same claim stream
/// assigns identical ids — the property the bit-identical shard-equivalence
/// tests rest on.
///
/// Durable fleets additionally log every first-seen name to the `REGISTRY`
/// file ([`RegistryLog`]) under this same write lock, so a restart replays
/// the exact arrival order and reassigns identical global ids — which is
/// what makes DETECT responses byte-identical across restarts.
#[derive(Debug, Default)]
struct GlobalTables {
    sources: NameTable,
    items: NameTable,
    values: NameTable,
    /// Arrival-order log of a durable fleet; `None` for in-memory stores.
    log: Option<RegistryLog>,
    /// Names interned since the last [`flush_log`](Self::flush_log), in
    /// arrival order, awaiting one batched durable append.
    pending: Vec<(NameKind, String)>,
    /// First log-append failure, sticky — surfaced via
    /// [`ShardedStore::io_error`] like any shard persistence failure.
    log_error: Option<StoreIoError>,
}

impl GlobalTables {
    /// Interns `name` into the table `kind` selects, buffering it for the
    /// log if it is new and a [`RegistryLog`] is attached. The caller must
    /// [`flush_log`](Self::flush_log) before releasing the write lock.
    fn intern_logged(&mut self, kind: NameKind, name: &str) -> usize {
        let table = match kind {
            NameKind::Source => &mut self.sources,
            NameKind::Item => &mut self.items,
            NameKind::Value => &mut self.values,
        };
        let before = table.len();
        let id = table.intern(name);
        let is_new = table.len() > before;
        if is_new && self.log.is_some() {
            self.pending.push((kind, name.to_owned()));
        }
        id
    }

    /// Durably appends (one write + fsync) everything
    /// [`intern_logged`](Self::intern_logged) buffered. A failure is
    /// recorded sticky (first failure wins), never panicked: the in-memory
    /// registry stays usable, the durability loss is reported through
    /// [`ShardedStore::io_error`].
    fn flush_log(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.pending);
        if let Some(log) = &mut self.log {
            if let Err(e) = log.append(&pending) {
                if self.log_error.is_none() {
                    // Emitting at rank 60 while holding the rank-10 registry
                    // write lock is in rank order.
                    emit(
                        Severity::Error,
                        "serve",
                        "registry_log.broken",
                        vec![field::str("detail", &e.to_string())],
                    );
                }
                self.log_error.get_or_insert(e);
            }
        }
    }
}

/// Local-to-global id translation for one shard snapshot, extending the
/// detect-layer [`ShardIdMap`](copydet_detect::ShardIdMap) with the value
/// map the globally-ordered vote needs.
#[derive(Debug, Clone, Default)]
pub struct ShardMaps {
    /// Source and item translation (the merge-layer input).
    pub ids: copydet_detect::ShardIdMap,
    /// Global value index of each local value id.
    pub values: Vec<usize>,
}

/// A store hash-partitioned by **data item** across N [`SharedClaimStore`]
/// shards.
///
/// Every claim for one item lands on the same shard (items are routed by a
/// stable FNV-1a hash of the item name), so shards are item-disjoint: each
/// shard's inverted index, shared-item counts and per-pair evidence cover a
/// disjoint slice of the item space, and cross-shard detection is an exact
/// merge (see `copydet_detect::merge_shard_rounds`). Sources are *not*
/// partitioned — one source's claims spread over many shards — which is
/// what the global name registry reconciles.
///
/// Handles are cheap clones sharing the shards and the registry. Each shard
/// has its own mutex, so writers touching different shards proceed in
/// parallel; the global registry is read-mostly — a batch whose names are
/// all already registered (the steady state) only takes the shared read
/// lock, so name bookkeeping does not serialize concurrent writers.
///
/// A sharded store is in-memory ([`new`](Self::new)) or durable
/// ([`open`](Self::open)): durable shards live in `shard-000/`, `shard-001/`,
/// … under one root, each with its own WAL, segments and manifest, so shard
/// recovery is independent — one shard's directory can be restarted or
/// repaired without touching the others.
#[derive(Debug, Clone)]
pub struct ShardedStore {
    shards: Arc<Vec<SharedClaimStore>>,
    /// Read-mostly: batches whose names are all already registered (the
    /// steady state of a serving workload) take only the shared read lock,
    /// so concurrent writers contend on their shard mutexes, not here.
    // lock-rank: 10 (serve.shard.global_registry)
    global: Arc<RankedRwLock<GlobalTables>>,
}

impl ShardedStore {
    /// Creates an in-memory sharded store with manual maintenance.
    ///
    /// # Panics
    /// Panics if `num_shards` is zero.
    pub fn new(num_shards: usize) -> Self {
        Self::with_config(num_shards, StoreConfig::default())
    }

    /// Creates an in-memory sharded store; every shard gets `config`.
    ///
    /// # Panics
    /// Panics if `num_shards` is zero.
    pub fn with_config(num_shards: usize, config: StoreConfig) -> Self {
        assert!(num_shards > 0, "a sharded store needs at least one shard");
        let shards = (0..num_shards).map(|_| SharedClaimStore::with_config(config)).collect();
        Self { shards: Arc::new(shards), global: new_global_registry() }
    }

    /// Opens (creating or recovering) a **durable** sharded store under
    /// `root` with the default per-shard configuration.
    pub fn open(root: impl AsRef<Path>, num_shards: usize) -> Result<Self, StoreIoError> {
        Self::open_with_config(root, num_shards, StoreConfig::default())
    }

    /// Opens (creating or recovering) a durable sharded store: shard `i`
    /// lives in `root/shard-00i`, each with its own WAL and manifest. The
    /// shard count is pinned in a `SHARDS` file — reopening with a
    /// different count is refused, because the item partitioning (and hence
    /// which shard holds which claims) depends on it.
    ///
    /// On recovery the global name registry replays the `REGISTRY`
    /// arrival-order log first (see [`crate::registry_log`]), so every name
    /// gets its pre-restart global id back and detection results — down to
    /// the last-ulp floating-point rounding of every posterior — are
    /// **byte-identical** across restarts. Names present in some shard but
    /// missing from the log (a root from before the log existed, or a log
    /// tail lost to a crash) are then re-interned shard-major and appended,
    /// repairing the log for subsequent restarts.
    ///
    /// # Errors
    /// Any shard's [`StoreIoError`] propagates, as does a shard-count
    /// mismatch or an unreadable `REGISTRY` log (both reported as
    /// [`StoreIoError::Corrupt`]).
    pub fn open_with_config(
        root: impl AsRef<Path>,
        num_shards: usize,
        config: StoreConfig,
    ) -> Result<Self, StoreIoError> {
        assert!(num_shards > 0, "a sharded store needs at least one shard");
        let root = root.as_ref();
        std::fs::create_dir_all(root).map_err(|e| StoreIoError::io(root, &e))?;
        Self::pin_shard_count(root, num_shards)?;
        let (log, replayed) = RegistryLog::open_and_replay(root)?;
        let mut shards = Vec::with_capacity(num_shards);
        for i in 0..num_shards {
            shards.push(SharedClaimStore::open_with_config(
                root.join(format!("shard-{i:03}")),
                config,
            )?);
        }
        let store = Self { shards: Arc::new(shards), global: new_global_registry() };
        {
            // Replay the arrival order before looking at any shard: these
            // records are already durable, so they intern without re-logging.
            let mut global = store.global.write();
            for (kind, name) in &replayed {
                let table = match kind {
                    NameKind::Source => &mut global.sources,
                    NameKind::Item => &mut global.items,
                    NameKind::Value => &mut global.values,
                };
                table.intern(name);
            }
            global.log = Some(log);
        }
        store.rebuild_global_registry()?;
        if !replayed.is_empty() {
            emit(
                Severity::Info,
                "serve",
                "fleet.recovered",
                vec![
                    field::u64("shards", usize_to_u64(store.shards.len())),
                    field::u64("replayed_names", usize_to_u64(replayed.len())),
                ],
            );
        }
        Ok(store)
    }

    /// Validates the `SHARDS` pin against `num_shards`, creating it if the
    /// root is fresh.
    ///
    /// Creation is both **atomic** (a crash can never leave a torn pin: the
    /// bytes are written and fsynced to a process-unique temp file first)
    /// and **exclusive** (publishing via `hard_link`, which fails if the
    /// pin already exists — two processes racing to create the same fresh
    /// root cannot overwrite each other's count; the loser re-reads and
    /// validates like any reopen).
    ///
    /// The pin is read through [`read_bounded_text`]: an oversized or
    /// non-UTF-8 `SHARDS` file is reported as [`StoreIoError::Corrupt`]
    /// instead of being slurped or panicking a conversion.
    fn pin_shard_count(root: &Path, num_shards: usize) -> Result<(), StoreIoError> {
        let shards_path = root.join(SHARDS_FILE);
        let validate = |contents: String| -> Result<(), StoreIoError> {
            let found: usize = contents.trim().parse().map_err(|_| StoreIoError::Corrupt {
                path: shards_path.clone(),
                detail: format!("unparsable shard count {contents:?}"),
            })?;
            if found != num_shards {
                return Err(StoreIoError::Corrupt {
                    path: shards_path.clone(),
                    detail: format!(
                        "store was created with {found} shard(s), opened with {num_shards}: the \
                         item partitioning depends on the count, so it cannot change"
                    ),
                });
            }
            Ok(())
        };
        if let Some(contents) = read_bounded_text(&shards_path, MAX_SHARDS_FILE_LEN)? {
            return validate(contents);
        }
        let tmp = root.join(format!("{SHARDS_FILE}.{}.tmp", std::process::id()));
        let io_err = |e: &std::io::Error| StoreIoError::io(&tmp, e);
        let mut file = std::fs::File::create(&tmp).map_err(|e| io_err(&e))?;
        std::io::Write::write_all(&mut file, format!("{num_shards}\n").as_bytes())
            .map_err(|e| io_err(&e))?;
        file.sync_all().map_err(|e| io_err(&e))?;
        drop(file);
        let published = match std::fs::hard_link(&tmp, &shards_path) {
            Ok(()) => true,
            // Lost the creation race: somebody else's pin is authoritative.
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => false,
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                return Err(StoreIoError::io(&shards_path, &e));
            }
        };
        let _ = std::fs::remove_file(&tmp);
        if published {
            if let Ok(dir) = std::fs::File::open(root) {
                let _ = dir.sync_all();
            }
            Ok(())
        } else {
            let contents =
                read_bounded_text(&shards_path, MAX_SHARDS_FILE_LEN)?.ok_or_else(|| {
                    StoreIoError::Corrupt {
                        path: shards_path.clone(),
                        detail: "pin vanished after a lost creation race".to_owned(),
                    }
                })?;
            validate(contents)
        }
    }

    /// Re-interns every recovered shard's names into the global registry,
    /// shard-major. Used at open, after the `REGISTRY` replay: the steady
    /// state re-interns existing names (no-ops); anything genuinely new
    /// means the log is behind the shards (a legacy root, or a tail lost to
    /// a crash) and gets appended so the *next* restart replays it.
    ///
    /// # Errors
    /// The log append's [`StoreIoError`], if the repair could not be made
    /// durable.
    fn rebuild_global_registry(&self) -> Result<(), StoreIoError> {
        let mut global = self.global.write();
        for shard in self.shards.iter() {
            let snapshot = shard.snapshot();
            let ds = &snapshot.dataset;
            for s in ds.sources() {
                global.intern_logged(NameKind::Source, ds.source_name(s));
            }
            for d in ds.items() {
                global.intern_logged(NameKind::Item, ds.item_name(d));
            }
            for (_, v) in ds.values_interner().iter() {
                global.intern_logged(NameKind::Value, v);
            }
        }
        global.flush_log();
        match global.log_error.take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard handles, in shard order.
    pub fn shards(&self) -> &[SharedClaimStore] {
        &self.shards
    }

    /// The shard an item name is routed to.
    pub fn shard_of_item(&self, item: &str) -> usize {
        partition_of(item, self.shards.len())
    }

    /// Distinct source names seen across all shards.
    pub fn num_sources(&self) -> usize {
        self.global.read().sources.len()
    }

    /// Source names in global id order (index `i` names global source `i`).
    /// A clone taken under the registry's shared read lock — the resolution
    /// path for detection results, whose pair ids live in the global space.
    pub fn global_source_names(&self) -> Vec<String> {
        self.global.read().sources.names().to_vec()
    }

    /// Resolves a source name to its global id, if the fleet has seen it.
    /// The lookup for per-source queries (`detect_topk`), taken under the
    /// registry's shared read lock.
    pub fn global_source_id(&self, name: &str) -> Option<SourceId> {
        self.global.read().sources.get(name).map(SourceId::from_index)
    }

    /// Distinct item names seen across all shards.
    pub fn num_items(&self) -> usize {
        self.global.read().items.len()
    }

    /// Ingests one claim, routing it by item partition.
    pub fn ingest(&self, source: &str, item: &str, value: &str) {
        self.ingest_batch([(source, item, value)]);
    }

    /// Ingests a batch of claims: names are interned into the global
    /// registry in arrival order (one registry lock for the whole batch),
    /// the batch is split by item partition, and each shard's slice is
    /// applied under **one** shard-lock acquisition — the amortization that
    /// lets many concurrent client batches stream without convoying on a
    /// single store mutex. Returns the number of claims ingested.
    pub fn ingest_batch<'a>(
        &self,
        claims: impl IntoIterator<Item = (&'a str, &'a str, &'a str)>,
    ) -> usize {
        let claims: Vec<(&str, &str, &str)> = claims.into_iter().collect();
        if claims.is_empty() {
            return 0;
        }
        // Registry fast path: a batch whose names are all known (the steady
        // state — vocabularies grow sublinearly in traffic) verifies that
        // under the shared read lock and skips the exclusive one entirely.
        let all_known = {
            let global = self.global.read();
            claims.iter().all(|&(s, d, v)| {
                global.sources.get(s).is_some()
                    && global.items.get(d).is_some()
                    && global.values.get(v).is_some()
            })
        };
        if !all_known {
            let mut global = self.global.write();
            for &(s, d, v) in &claims {
                global.intern_logged(NameKind::Source, s);
                global.intern_logged(NameKind::Item, d);
                global.intern_logged(NameKind::Value, v);
            }
            // Made durable before the batch reaches any shard WAL, so a
            // crash can never leave durable claims whose names are missing
            // from the arrival-order log.
            global.flush_log();
        }
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (idx, &(_, d, _)) in claims.iter().enumerate() {
            by_shard[partition_of(d, self.shards.len())].push(idx);
        }
        for (shard, indices) in self.shards.iter().zip(by_shard) {
            if indices.is_empty() {
                continue;
            }
            let mut guard = shard.lock();
            for idx in indices {
                let (s, d, v) = claims[idx];
                guard.ingest(s, d, v);
            }
        }
        claims.len()
    }

    /// Captures every shard's current state for a detection round: the
    /// snapshot and the incrementally-maintained shared-item counts, taken
    /// together under each shard's lock so they are mutually consistent.
    ///
    /// Shards are captured one after another, so the fleet-wide view is a
    /// union of per-shard-consistent snapshots (not a global atomic cut);
    /// because shards are item-disjoint, that union is itself a dataset
    /// some valid interleaving of the ingest stream produces.
    pub fn capture_shards(&self) -> Vec<(StoreSnapshot, Arc<SharedItemCounts>)> {
        self.capture_shards_traced().0
    }

    /// [`capture_shards`](Self::capture_shards) plus the wall time each
    /// shard's capture took (lock wait + snapshot + counts handle clone), in
    /// nanoseconds, indexed like the captures. Feeds the `shard<i>.capture`
    /// stages of the round trace.
    pub fn capture_shards_traced(&self) -> (Vec<(StoreSnapshot, Arc<SharedItemCounts>)>, Vec<u64>) {
        let mut nanos = Vec::with_capacity(self.shards.len());
        let captures = self
            .shards
            .iter()
            .map(|shard| {
                let span = Span::start();
                let mut guard = shard.lock();
                let snapshot = guard.snapshot();
                let counts = Arc::clone(guard.shared_item_counts_handle());
                drop(guard);
                nanos.push(span.elapsed_nanos());
                (snapshot, counts)
            })
            .collect();
        (captures, nanos)
    }

    /// Builds the local→global id maps for a shard snapshot. Names not yet
    /// in the registry (impossible through the router, possible for a store
    /// assembled by hand) are interned on the fly.
    ///
    /// Names that reached a shard went through the registry first, so the
    /// steady state resolves everything under the shared **read** lock —
    /// detection rounds do not stall concurrent ingest batches; the
    /// exclusive lock is taken only if some name is genuinely missing.
    pub fn maps_for(&self, snapshot: &StoreSnapshot) -> ShardMaps {
        let ds = &snapshot.dataset;
        {
            let global = self.global.read();
            let sources: Option<Vec<SourceId>> = ds
                .sources()
                .map(|s| global.sources.get(ds.source_name(s)).map(SourceId::from_index))
                .collect();
            let items: Option<Vec<ItemId>> = ds
                .items()
                .map(|d| global.items.get(ds.item_name(d)).map(ItemId::from_index))
                .collect();
            let values: Option<Vec<usize>> =
                ds.values_interner().iter().map(|(_, v)| global.values.get(v)).collect();
            if let (Some(sources), Some(items), Some(values)) = (sources, items, values) {
                return ShardMaps { ids: copydet_detect::ShardIdMap { sources, items }, values };
            }
        }
        let mut global = self.global.write();
        let maps = ShardMaps {
            ids: copydet_detect::ShardIdMap {
                sources: ds
                    .sources()
                    .map(|s| {
                        SourceId::from_index(
                            global.intern_logged(NameKind::Source, ds.source_name(s)),
                        )
                    })
                    .collect(),
                items: ds
                    .items()
                    .map(|d| {
                        ItemId::from_index(global.intern_logged(NameKind::Item, ds.item_name(d)))
                    })
                    .collect(),
            },
            values: ds
                .values_interner()
                .iter()
                .map(|(_, v)| global.intern_logged(NameKind::Value, v))
                .collect(),
        };
        global.flush_log();
        maps
    }

    /// Merges every shard's incrementally-maintained shared-item counts into
    /// one table over the **global** source id space. Shards are
    /// item-disjoint, so the per-pair sums equal a from-scratch
    /// [`SharedItemCounts::build`] over the union dataset — property-tested
    /// in `tests/shard_equivalence.rs`.
    pub fn merged_shared_item_counts(&self) -> SharedItemCounts {
        let captures = self.capture_shards();
        let maps: Vec<ShardMaps> = captures.iter().map(|(snap, _)| self.maps_for(snap)).collect();
        let empty = copydet_model::DatasetBuilder::new().build();
        let mut merged = SharedItemCounts::build(&empty);
        merged.grow(self.num_sources());
        for ((_, counts), map) in captures.iter().zip(&maps) {
            for (pair, n) in counts.iter_nonzero() {
                let global = SourcePair::new(
                    map.ids.sources[pair.first().index()],
                    map.ids.sources[pair.second().index()],
                );
                merged.increment(global, n);
            }
        }
        merged
    }

    /// One background-maintenance step across the fleet: every shard gets a
    /// [`SharedClaimStore::maintenance_tick`]. Returns `true` if any shard
    /// acted.
    pub fn maintenance_tick(&self, seal_at: usize, max_segments: usize) -> bool {
        let mut acted = false;
        for shard in self.shards.iter() {
            acted |= shard.maintenance_tick(seal_at, max_segments);
        }
        acted
    }

    /// Flushes and fsyncs every shard's write-ahead log; the first failure
    /// wins.
    pub fn sync(&self) -> Result<(), StoreIoError> {
        for shard in self.shards.iter() {
            shard.sync()?;
        }
        Ok(())
    }

    /// The first persistence failure of the fleet, if any: a registry-log
    /// append failure (the arrival order could not be made durable) wins
    /// over shard failures, since it happened first in the ingest path.
    pub fn io_error(&self) -> Option<StoreIoError> {
        if let Some(e) = self.global.read().log_error.clone() {
            return Some(e);
        }
        self.shards.iter().find_map(SharedClaimStore::io_error)
    }

    /// Per-shard summary statistics, in shard order.
    pub fn shard_stats(&self) -> Vec<StoreStats> {
        self.shards.iter().map(SharedClaimStore::stats).collect()
    }

    /// Fleet-wide statistics (see [`StoreStats::merged`]; `num_sources`
    /// there counts per-shard vocabularies — use
    /// [`num_sources`](Self::num_sources) for the global distinct count).
    pub fn stats(&self) -> StoreStats {
        StoreStats::merged(self.shard_stats())
    }

    /// Total distinct live `(source, item)` claims across the fleet.
    pub fn num_claims(&self) -> usize {
        self.shards.iter().map(SharedClaimStore::num_claims).sum()
    }
}

/// Splits an incoming claim stream into per-shard batches — the batching
/// convenience for **in-process** producers that emit one claim at a time.
///
/// Callers push claims in arrival order; [`flush`](Router::flush) interns
/// the whole buffer into the global registry under one lock, splits it by
/// item partition, and applies each shard's slice under a single shard-lock
/// acquisition. Pushes auto-flush once `flush_at` claims are buffered. (The
/// TCP frontend gets the same amortization without a router: each wire
/// INGEST request is already a batch and goes straight through
/// [`ShardedStore::ingest_batch`].)
#[derive(Debug)]
pub struct Router {
    store: ShardedStore,
    buffer: Vec<(String, String, String)>,
    flush_at: usize,
}

impl Router {
    /// A router over `store` that auto-flushes every `flush_at` claims.
    ///
    /// # Panics
    /// Panics if `flush_at` is zero.
    pub fn new(store: ShardedStore, flush_at: usize) -> Self {
        assert!(flush_at > 0, "a router must buffer at least one claim");
        Self { store, buffer: Vec::with_capacity(flush_at), flush_at }
    }

    /// Buffers one claim, auto-flushing at the batch size. Returns the
    /// number of claims flushed (0 while buffering).
    pub fn push(&mut self, source: &str, item: &str, value: &str) -> usize {
        self.buffer.push((source.to_owned(), item.to_owned(), value.to_owned()));
        if self.buffer.len() >= self.flush_at {
            self.flush()
        } else {
            0
        }
    }

    /// Ingests everything buffered (order-preserving) and returns how many
    /// claims were flushed.
    pub fn flush(&mut self) -> usize {
        if self.buffer.is_empty() {
            return 0;
        }
        let batch = std::mem::take(&mut self.buffer);
        self.store.ingest_batch(batch.iter().map(|(s, d, v)| (s.as_str(), d.as_str(), v.as_str())))
    }

    /// Claims currently buffered.
    pub fn pending(&self) -> usize {
        self.buffer.len()
    }
}

impl Drop for Router {
    /// Routers never silently drop buffered claims.
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitioning_is_stable_and_total() {
        // Pinned values: the hash is part of the durable layout.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        for n in 1..6 {
            for item in ["NJ", "AZ", "首都", ""] {
                assert!(partition_of(item, n) < n);
            }
        }
        assert_eq!(partition_of("anything", 1), 0);
    }

    #[test]
    fn batches_split_by_item_and_count_claims() {
        let store = ShardedStore::new(3);
        let n = store.ingest_batch([
            ("S0", "D0", "x"),
            ("S0", "D1", "y"),
            ("S1", "D0", "x"),
            ("S1", "D2", "z"),
        ]);
        assert_eq!(n, 4);
        assert_eq!(store.num_claims(), 4);
        assert_eq!(store.num_sources(), 2);
        assert_eq!(store.num_items(), 3);
        // All claims of one item live on one shard.
        let shard = store.shard_of_item("D0");
        let snap = store.shards()[shard].snapshot();
        assert_eq!(
            snap.dataset.item_by_name("D0").map(|d| snap.dataset.item_provider_count(d)),
            Some(2)
        );
        // And the fleet totals add up.
        assert_eq!(store.stats().live_claims, 4);
    }

    #[test]
    fn router_buffers_flushes_and_never_drops() {
        let store = ShardedStore::new(2);
        let mut router = Router::new(store.clone(), 3);
        assert_eq!(router.push("S0", "D0", "x"), 0);
        assert_eq!(router.push("S1", "D1", "y"), 0);
        assert_eq!(router.pending(), 2);
        assert_eq!(router.push("S2", "D2", "z"), 3, "auto-flush at the batch size");
        assert_eq!(router.pending(), 0);
        router.push("S3", "D3", "w");
        drop(router); // drop flushes the remainder
        assert_eq!(store.num_claims(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        let _ = ShardedStore::new(0);
    }

    #[test]
    fn merged_counts_match_a_cold_build_over_the_union() {
        let store = ShardedStore::new(3);
        let claims = [
            ("S0", "D0", "x"),
            ("S1", "D0", "x"),
            ("S0", "D1", "y"),
            ("S1", "D1", "z"),
            ("S2", "D2", "q"),
            ("S0", "D2", "q"),
        ];
        store.ingest_batch(claims);
        let mut b = copydet_model::DatasetBuilder::new();
        for (s, d, v) in claims {
            b.add_claim(s, d, v);
        }
        let cold = SharedItemCounts::build(&b.build());
        let merged = store.merged_shared_item_counts();
        assert_eq!(merged.num_sharing_pairs(), cold.num_sharing_pairs());
        for (pair, n) in cold.iter_nonzero() {
            assert_eq!(merged.get(pair), n, "pair {pair}");
        }
    }
}
