//! Flight-recorder acceptance over the wire: slow rounds land in `EVENTS`
//! with their stage breakdown, lock-contention gauges reach `METRICS`
//! under concurrent load, and `HEALTH` flips from ok to degraded once a
//! shard store records a sticky I/O error.

use copydet_serve::frontend::{self, Client, FrontendConfig};
use copydet_serve::{HealthReasonCode, Severity, ShardedStore, StoreConfig};
use std::time::Duration;

const SOURCES: usize = 48;
const ITEMS: usize = 256;

/// Every source claims every item, so all `48·47/2` pairs share all 256
/// items — a round heavy enough to be measurably slow. Sources 0 and 1
/// share distinctive values (a planted copier pair).
fn heavy_corpus() -> Vec<(String, String, String)> {
    let mut claims = Vec::with_capacity(SOURCES * ITEMS);
    for s in 0..SOURCES {
        for j in 0..ITEMS {
            let value = match s {
                0 | 1 => format!("planted-{j}"),
                _ => format!("v{}", (s + j) % 7),
            };
            claims.push((format!("S{s}"), format!("D{j}"), value));
        }
    }
    claims
}

fn ingest_all(client: &mut Client, claims: &[(String, String, String)]) {
    for batch in claims.chunks(4096) {
        let borrowed: Vec<(&str, &str, &str)> =
            batch.iter().map(|(s, d, v)| (s.as_str(), d.as_str(), v.as_str())).collect();
        client.ingest(&borrowed).expect("ingest");
    }
}

/// With the slow-op threshold at zero every operation is "slow": the DETECT
/// round must surface in `EVENTS` as a `Warn`-severity `round.slow` record
/// carrying the round's full per-stage breakdown, and the request itself as
/// a `request.slow` record naming the verb.
#[test]
fn slow_round_lands_in_events_with_stage_breakdown() {
    let store = ShardedStore::new(1);
    let config =
        FrontendConfig { slow_op_threshold: Some(Duration::ZERO), ..FrontendConfig::default() };
    let server = frontend::serve_with_config(store, "127.0.0.1:0", config).expect("bind loopback");
    let mut client = Client::connect(server.addr()).expect("connect");
    ingest_all(&mut client, &heavy_corpus());
    client.detect().expect("detect");

    let detect_events = client.events(0, Severity::Warn, "detect").expect("events");
    let slow = detect_events
        .iter()
        .find(|e| e.name == "round.slow")
        .expect("a zero threshold promotes the round to a slow-op event");
    assert_eq!(slow.severity, Severity::Warn);
    assert!(slow.field("total_nanos").is_some(), "slow event carries the wall time: {slow:?}");
    for stage in ["stage.shard0.scan", "stage.merge."] {
        assert!(
            slow.fields.iter().any(|(k, _)| k.starts_with(stage)),
            "slow event carries the {stage}* breakdown: {slow:?}"
        );
    }

    let serve_events = client.events(0, Severity::Warn, "serve").expect("events");
    assert!(
        serve_events.iter().any(|e| e.name == "request.slow"
            && matches!(e.field("verb"), Some(v) if v.to_string() == "DETECT")),
        "the DETECT request itself is over the zero threshold: {serve_events:?}"
    );

    // The filters are honored on the server side.
    assert!(client.events(0, Severity::Error, "").expect("events").len() <= detect_events.len());
    let one = client.events(1, Severity::Debug, "").expect("events");
    assert_eq!(one.len(), 1, "n=1 returns exactly the newest event");

    client.shutdown().expect("shutdown");
    server.shutdown();
}

/// Concurrent ingest across connections exercises the registry (rank 10),
/// shard-store (rank 20) and connection-registry (rank 30) locks; the
/// contention probes must surface as labelled gauges in `METRICS`.
#[test]
fn lock_metrics_cover_the_serving_ranks_under_contention() {
    let store = ShardedStore::new(2);
    let server = frontend::serve(store, "127.0.0.1:0").expect("bind loopback");
    std::thread::scope(|scope| {
        for t in 0..4 {
            let addr = server.addr();
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for i in 0..50 {
                    let source = format!("T{t}-S{i}");
                    let item = format!("D{}", i % 16);
                    let batch = [(source.as_str(), item.as_str(), "x")];
                    client.ingest(&batch).expect("ingest");
                }
            });
        }
    });

    let mut client = Client::connect(server.addr()).expect("connect");
    let metrics = client.metrics().expect("metrics");
    for rank in ["10", "20", "30"] {
        for gauge in
            ["copydet_lock_acquisitions", "copydet_lock_contended", "copydet_lock_wait_nanos"]
        {
            let needle = format!("{gauge}{{rank=\"{rank}\"");
            assert!(metrics.contains(&needle), "{needle} missing from exposition:\n{metrics}");
        }
    }

    client.shutdown().expect("shutdown");
    server.shutdown();
}

/// A healthy durable fleet answers `HEALTH` ok; after its shard directory
/// is destroyed under it, the next commit records a sticky store error and
/// the verdict flips to degraded with a `sticky_store_error` reason. The
/// saturation rule is then tripped through its environment knob.
#[test]
fn health_flips_from_ok_to_degraded() {
    // Hermetic budgets: a slow CI fsync must not degrade the ok phase.
    std::env::set_var("COPYDET_WAL_FSYNC_BUDGET_MS", "600000");
    std::env::remove_var("COPYDET_CONN_LIMIT");

    let root = std::env::temp_dir().join(format!("copydet_flight_rec_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let config = StoreConfig { seal_threshold: Some(32), ..StoreConfig::default() };
    let store = ShardedStore::open_with_config(&root, 1, config).expect("open durable fleet");
    let server = frontend::serve(store, "127.0.0.1:0").expect("bind loopback");
    let mut client = Client::connect(server.addr()).expect("connect");

    let batch = [("S0", "D0", "x")];
    client.ingest(&batch).expect("ingest");
    let verdict = client.health().expect("health");
    assert!(verdict.ok, "fresh fleet is healthy, got {:?}", verdict.reasons);

    // Replace the shard directory with a regular file: the WAL handle stays
    // writable (the fd survives the unlink), but the next seal commit has to
    // create segment files inside `shard-000` and fails with ENOTDIR — a
    // sticky error even when the test runs as root, which ignores plain
    // permission bits.
    let shard_dir = root.join("shard-000");
    std::fs::remove_dir_all(&shard_dir).expect("remove shard dir");
    std::fs::write(&shard_dir, b"not a directory").expect("plant file");

    // Cross the seal threshold; ingest keeps succeeding or starts erroring
    // depending on where the commit lands, so outcomes are not asserted.
    for i in 0..64 {
        let source = format!("S{i}");
        let batch = [(source.as_str(), "D1", "y")];
        let _ = client.ingest(&batch);
    }

    let verdict = client.health().expect("health");
    assert!(!verdict.ok, "a sticky store error must degrade the verdict");
    assert!(
        verdict.reasons.iter().any(|r| r.code == HealthReasonCode::StickyStoreError),
        "degradation is typed sticky_store_error: {:?}",
        verdict.reasons
    );
    assert!(
        !verdict.reasons.first().expect("nonempty").detail.is_empty(),
        "the reason carries the error detail"
    );

    // Saturation through the env knob: with a limit of 1 this very client
    // already saturates the frontend.
    std::env::set_var("COPYDET_CONN_LIMIT", "1");
    let saturated = client.health().expect("health");
    assert!(
        saturated.reasons.iter().any(|r| r.code == HealthReasonCode::ConnectionSaturation),
        "a limit of one live connection saturates: {:?}",
        saturated.reasons
    );
    std::env::remove_var("COPYDET_CONN_LIMIT");

    client.shutdown().expect("shutdown");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}
