//! Top-k query equivalence: for arbitrary claim streams and 1..=4 shards,
//! [`ShardedDetector::detect_topk`] must return **bit-identical** results
//! to extracting the top-k from a full [`detect_round`] — same pairs, same
//! posterior bits, same order — while evaluating strictly fewer pairs than
//! the full round considers (the whole point of the pruned query path).
//!
//! Every generated corpus plants one universal item claimed identically by
//! at least three sources, so the full round always materializes more pairs
//! than any single source can participate in — making "strictly fewer
//! evaluations" a meaningful bound rather than a vacuous one.
//!
//! `COPYDET_TOPK_CASES` scales the proptest case count for the dedicated
//! release-mode CI step.

use copydet_detect::{DetectionResult, PairOutcome};
use copydet_model::{SourceId, SourcePair};
use copydet_serve::{ShardedDetector, ShardedStore};
use proptest::prelude::*;

type Op = (u8, u8, u8);

/// Ingests `ops` plus the universal shared item that guarantees S0, S1 and
/// S2 exist and every source pair shares at least one item.
fn build_store(ops: &[Op], shards: usize) -> ShardedStore {
    let store = ShardedStore::new(shards);
    let mut claims: Vec<(String, String, String)> = ops
        .iter()
        .map(|op| (format!("S{}", op.0), format!("D{}", op.1), format!("v{}", op.2)))
        .collect();
    let mut sources: Vec<String> = claims.iter().map(|(s, _, _)| s.clone()).collect();
    sources.extend(["S0".to_owned(), "S1".to_owned(), "S2".to_owned()]);
    sources.sort();
    sources.dedup();
    for source in sources {
        claims.push((source, "UNIVERSAL".to_owned(), "shared".to_owned()));
    }
    store.ingest_batch(claims.iter().map(|(s, d, v)| (s.as_str(), d.as_str(), v.as_str())));
    store
}

/// The reference ranking: filter the full round's materialized pairs to the
/// target (when per-source), order by ascending posterior (most suspicious
/// first) with ties broken by pair id, truncate to `k`. This is the exact
/// semantics `detect_topk` must reproduce without the full round.
fn extract_topk(
    full: &DetectionResult,
    target: Option<SourceId>,
    k: usize,
) -> Vec<(SourcePair, PairOutcome)> {
    let mut ranked: Vec<(SourcePair, PairOutcome)> = full
        .outcomes
        .iter()
        .filter(|(pair, _)| match target {
            Some(t) => pair.first() == t || pair.second() == t,
            None => true,
        })
        .map(|(pair, outcome)| (*pair, *outcome))
        .collect();
    ranked.sort_by(|a, b| {
        a.1.posterior
            .unwrap_or(1.0)
            .total_cmp(&b.1.posterior.unwrap_or(1.0))
            .then_with(|| a.0.cmp(&b.0))
    });
    ranked.truncate(k);
    ranked
}

fn assert_topk_equivalence(ops: &[Op], shards: usize, k: usize) {
    let store = build_store(ops, shards);
    let mut detector = ShardedDetector::new();
    let full = detector.detect_round(&store).expect("consistent capture");

    // Per-source: top-k copiers of S0, bit-identical to the full round.
    let target = store.global_source_id("S0").expect("S0 is always planted");
    let got = detector.detect_topk(&store, "S0", k).expect("consistent capture");
    let expected = extract_topk(&full, Some(target), k);
    assert_eq!(
        got.ranked, expected,
        "{shards} shard(s), k={k}: per-source ranking diverged from the full round"
    );
    // The query's pair universe is the pairs containing S0 — strictly
    // smaller than the full round's pair set whenever a pair not touching
    // S0 exists, which the universal item guarantees (S1, S2 share it).
    assert!(
        (got.stats.evaluated as usize) < full.pairs_considered,
        "{shards} shard(s), k={k}: evaluated {} of {} pairs — no pruning happened",
        got.stats.evaluated,
        full.pairs_considered
    );
    assert!(got.stats.evaluated <= got.stats.candidates);
    assert_eq!(
        got.stats.evaluated + got.stats.pruned,
        got.stats.candidates,
        "every candidate is either evaluated or pruned"
    );

    // Fleet-wide: same contract against the unfiltered extraction.
    let got = detector.detect_topk_fleet(&store, k).expect("consistent capture");
    let expected = extract_topk(&full, None, k);
    assert_eq!(
        got.ranked, expected,
        "{shards} shard(s), k={k}: fleet-wide ranking diverged from the full round"
    );
    assert!(got.stats.evaluated <= got.stats.candidates);
}

#[test]
fn fixed_skewed_corpus_matches_across_shard_counts_and_k() {
    // A skewed corpus: S0/S1 agree on false values everywhere (the planted
    // copier pair), the rest mostly disagree.
    let mut ops: Vec<Op> = Vec::new();
    for item in 0..12 {
        ops.push((0, item, 200));
        ops.push((1, item, 200));
        ops.push((2, item, item));
        ops.push((3, item, item));
        ops.push((4, item, 100 + item));
    }
    for shards in 1..=4 {
        for k in [1, 5, usize::MAX] {
            assert_topk_equivalence(&ops, shards, k);
        }
    }
}

fn cases() -> u32 {
    std::env::var("COPYDET_TOPK_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Arbitrary streams, shard counts and k: the pruned top-k query is
    /// bit-identical to full-round extraction and strictly cheaper.
    #[test]
    fn arbitrary_streams_match_full_round_extraction(
        ops in prop::collection::vec((0u8..8, 0u8..10, 0u8..4), 0..60),
        shards in 1usize..=4,
        k in prop_oneof![Just(1usize), Just(5usize), Just(usize::MAX)],
    ) {
        assert_topk_equivalence(&ops, shards, k);
    }
}
