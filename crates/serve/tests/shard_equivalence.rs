//! Shard-merge equivalence: for arbitrary claim streams, arbitrary batch
//! splits and 1..=4 shards, a [`ShardedDetector`] round over the
//! [`ShardedStore`] must be **bit-identical** to the exact PAIRWISE
//! baseline over a single `DatasetBuilder` build of the same stream — every
//! materialized pair, every directional score, every posterior, bit for
//! bit — and the merged shared-item counts must equal a cold build.
//!
//! `COPYDET_SHARD_CASES` scales the proptest case count for the dedicated
//! release-mode CI step.

use copydet_bayes::{CopyParams, SourceAccuracies};
use copydet_detect::{pairwise_detection, DetectionResult, RoundInput};
use copydet_fusion::{value_probabilities, VoteConfig};
use copydet_index::SharedItemCounts;
use copydet_model::{Dataset, DatasetBuilder};
use copydet_serve::{Router, ShardedDetector, ShardedStore};
use proptest::prelude::*;

type Op = (u8, u8, u8);

fn claim_strings(op: &Op) -> (String, String, String) {
    (format!("S{}", op.0), format!("D{}", op.1), format!("v{}", op.2))
}

fn builder_dataset(ops: &[Op]) -> Dataset {
    let mut b = DatasetBuilder::new();
    for op in ops {
        let (s, d, v) = claim_strings(op);
        b.add_claim(&s, &d, &v);
    }
    b.build()
}

/// The exact single-store baseline with the live pipeline's bootstrap state
/// (uniform 0.8 accuracies, vote probabilities).
fn baseline(ops: &[Op]) -> DetectionResult {
    let ds = builder_dataset(ops);
    let params = CopyParams::paper_defaults();
    let accuracies = SourceAccuracies::uniform(ds.num_sources(), 0.8).unwrap();
    let probabilities = value_probabilities(&ds, &accuracies, None, &VoteConfig::new(params));
    pairwise_detection(&RoundInput::new(&ds, &accuracies, &probabilities, params))
}

/// Feeds `ops` into a sharded store through a router with the given batch
/// size (exercising arbitrary batch splits), runs one sharded round, and
/// asserts bit-identity against the baseline plus counts equivalence.
fn assert_equivalence(ops: &[Op], shards: usize, batch: usize) {
    let store = ShardedStore::new(shards);
    let mut router = Router::new(store.clone(), batch.max(1));
    for op in ops {
        let (s, d, v) = claim_strings(op);
        router.push(&s, &d, &v);
    }
    router.flush();

    let expected = baseline(ops);
    let got = ShardedDetector::new().detect_round(&store);
    assert_eq!(
        got.outcomes.len(),
        expected.outcomes.len(),
        "{shards} shard(s), batch {batch}: pair sets differ"
    );
    for (pair, outcome) in &expected.outcomes {
        assert_eq!(
            got.outcomes.get(pair),
            Some(outcome),
            "{shards} shard(s), batch {batch}: pair {pair} diverged from PAIRWISE bitwise"
        );
    }
    assert_eq!(got.counter.score_updates, expected.counter.score_updates);
    assert_eq!(got.counter.pair_finalizations, expected.counter.pair_finalizations);
    assert_eq!(got.shared_values_examined, expected.shared_values_examined);

    // The merged shared-item counts equal a cold build over the union.
    let cold = SharedItemCounts::build(&builder_dataset(ops));
    let merged = store.merged_shared_item_counts();
    assert_eq!(merged.num_sharing_pairs(), cold.num_sharing_pairs());
    for (pair, n) in cold.iter_nonzero() {
        assert_eq!(merged.get(pair), n, "pair {pair}");
    }
}

#[test]
fn fixed_stream_with_overwrites_is_equivalent_across_shard_counts() {
    // Includes overwrites (S0/D0 twice), a value shared across items, and a
    // source appearing on every shard.
    let ops: Vec<Op> = vec![
        (0, 0, 0),
        (1, 0, 0),
        (2, 0, 1),
        (0, 1, 2),
        (1, 1, 2),
        (0, 0, 3), // overwrite
        (3, 2, 0),
        (0, 2, 0),
        (2, 3, 1),
        (3, 3, 1),
        (1, 4, 4),
        (0, 4, 4),
    ];
    for shards in 1..=4 {
        assert_equivalence(&ops, shards, 3);
    }
}

#[test]
fn single_claim_and_empty_streams_are_fine() {
    assert_equivalence(&[], 3, 1);
    assert_equivalence(&[(0, 0, 0)], 3, 1);
}

fn cases() -> u32 {
    std::env::var("COPYDET_SHARD_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Arbitrary streams, shard counts and batch splits: the sharded round
    /// is bit-identical to the single-store PAIRWISE baseline.
    #[test]
    fn arbitrary_streams_are_bit_identical(
        ops in prop::collection::vec((0u8..8, 0u8..10, 0u8..4), 0..80),
        shards in 1usize..=4,
        batch in 1usize..=16,
    ) {
        assert_equivalence(&ops, shards, batch);
    }

    /// The same through per-claim `ingest` (no router batching) with
    /// auto-sealing shard maintenance mixed in.
    #[test]
    fn unbatched_ingest_with_maintenance_is_bit_identical(
        ops in prop::collection::vec((0u8..6, 0u8..8, 0u8..3), 1..48),
        shards in 2usize..=4,
    ) {
        let store = ShardedStore::new(shards);
        for (i, op) in ops.iter().enumerate() {
            let (s, d, v) = claim_strings(op);
            store.ingest(&s, &d, &v);
            if i % 7 == 6 {
                store.maintenance_tick(4, 2);
            }
        }
        let expected = baseline(&ops);
        let got = ShardedDetector::new().detect_round(&store);
        prop_assert_eq!(got.outcomes.len(), expected.outcomes.len());
        for (pair, outcome) in &expected.outcomes {
            prop_assert_eq!(got.outcomes.get(pair), Some(outcome), "pair {} diverged", pair);
        }
    }
}
