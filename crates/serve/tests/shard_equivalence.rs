//! Shard-merge equivalence: for arbitrary claim streams, arbitrary batch
//! splits and 1..=4 shards, a [`ShardedDetector`] round over the
//! [`ShardedStore`] must be **bit-identical** to the exact PAIRWISE
//! baseline over a single `DatasetBuilder` build of the same stream — every
//! materialized pair, every directional score, every posterior, bit for
//! bit — and the merged shared-item counts must equal a cold build.
//!
//! `COPYDET_SHARD_CASES` scales the proptest case count for the dedicated
//! release-mode CI step.

use copydet_bayes::{CopyParams, SourceAccuracies};
use copydet_detect::{
    collect_shard_evidence, merge_shard_rounds_parallel, merge_shard_rounds_timed,
    pairwise_detection, DetectionResult, RoundInput, ShardRoundEvidence,
};
use copydet_fusion::{value_probabilities, VoteConfig};
use copydet_index::SharedItemCounts;
use copydet_model::{Dataset, DatasetBuilder, SourceId, SourcePair};
use copydet_serve::{LiveConfig, Router, ShardedDetector, ShardedStore};
use proptest::prelude::*;

type Op = (u8, u8, u8);

fn claim_strings(op: &Op) -> (String, String, String) {
    (format!("S{}", op.0), format!("D{}", op.1), format!("v{}", op.2))
}

fn builder_dataset(ops: &[Op]) -> Dataset {
    let mut b = DatasetBuilder::new();
    for op in ops {
        let (s, d, v) = claim_strings(op);
        b.add_claim(&s, &d, &v);
    }
    b.build()
}

/// The exact single-store baseline with the live pipeline's bootstrap state
/// (uniform 0.8 accuracies, vote probabilities).
fn baseline(ops: &[Op]) -> DetectionResult {
    let ds = builder_dataset(ops);
    let params = CopyParams::paper_defaults();
    let accuracies = SourceAccuracies::uniform(ds.num_sources(), 0.8).unwrap();
    let probabilities = value_probabilities(&ds, &accuracies, None, &VoteConfig::new(params));
    pairwise_detection(&RoundInput::new(&ds, &accuracies, &probabilities, params))
}

/// Feeds `ops` into a sharded store through a router with the given batch
/// size (exercising arbitrary batch splits), runs one sharded round, and
/// asserts bit-identity against the baseline plus counts equivalence.
fn assert_equivalence(ops: &[Op], shards: usize, batch: usize) {
    let store = ShardedStore::new(shards);
    let mut router = Router::new(store.clone(), batch.max(1));
    for op in ops {
        let (s, d, v) = claim_strings(op);
        router.push(&s, &d, &v);
    }
    router.flush();

    let expected = baseline(ops);
    let got = ShardedDetector::new().detect_round(&store).expect("consistent capture");
    assert_eq!(
        got.outcomes.len(),
        expected.outcomes.len(),
        "{shards} shard(s), batch {batch}: pair sets differ"
    );
    for (pair, outcome) in &expected.outcomes {
        assert_eq!(
            got.outcomes.get(pair),
            Some(outcome),
            "{shards} shard(s), batch {batch}: pair {pair} diverged from PAIRWISE bitwise"
        );
    }
    assert_eq!(got.counter.score_updates, expected.counter.score_updates);
    assert_eq!(got.counter.pair_finalizations, expected.counter.pair_finalizations);
    assert_eq!(got.shared_values_examined, expected.shared_values_examined);

    // The merged shared-item counts equal a cold build over the union.
    let cold = SharedItemCounts::build(&builder_dataset(ops));
    let merged = store.merged_shared_item_counts();
    assert_eq!(merged.num_sharing_pairs(), cold.num_sharing_pairs());
    for (pair, n) in cold.iter_nonzero() {
        assert_eq!(merged.get(pair), n, "pair {pair}");
    }
}

#[test]
fn fixed_stream_with_overwrites_is_equivalent_across_shard_counts() {
    // Includes overwrites (S0/D0 twice), a value shared across items, and a
    // source appearing on every shard.
    let ops: Vec<Op> = vec![
        (0, 0, 0),
        (1, 0, 0),
        (2, 0, 1),
        (0, 1, 2),
        (1, 1, 2),
        (0, 0, 3), // overwrite
        (3, 2, 0),
        (0, 2, 0),
        (2, 3, 1),
        (3, 3, 1),
        (1, 4, 4),
        (0, 4, 4),
    ];
    for shards in 1..=4 {
        assert_equivalence(&ops, shards, 3);
    }
}

#[test]
fn single_claim_and_empty_streams_are_fine() {
    assert_equivalence(&[], 3, 1);
    assert_equivalence(&[(0, 0, 0)], 3, 1);
}

fn cases() -> u32 {
    std::env::var("COPYDET_SHARD_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Arbitrary streams, shard counts and batch splits: the sharded round
    /// is bit-identical to the single-store PAIRWISE baseline.
    #[test]
    fn arbitrary_streams_are_bit_identical(
        ops in prop::collection::vec((0u8..8, 0u8..10, 0u8..4), 0..80),
        shards in 1usize..=4,
        batch in 1usize..=16,
    ) {
        assert_equivalence(&ops, shards, batch);
    }

    /// The parallel cross-shard merge is bit-identical to the sequential
    /// one — outcomes, counters and timing totals — for every worker count
    /// 1..=8 over 1..=4 shards, including the pruning of hand-injected
    /// pairs whose merged evidence is empty in every shard (the one shape
    /// `collect_shard_evidence` itself never emits).
    #[test]
    fn parallel_merge_is_bit_identical_to_sequential(
        ops in prop::collection::vec((0u8..8, 0u8..10, 0u8..4), 1..80),
        shards in 1usize..=4,
        inject_empty in any::<bool>(),
    ) {
        let store = ShardedStore::new(shards);
        for op in &ops {
            let (s, d, v) = claim_strings(op);
            store.ingest(&s, &d, &v);
        }
        let captures = store.capture_shards();
        let maps: Vec<_> = captures.iter().map(|(s, _)| store.maps_for(s)).collect();
        let live = copydet_store::LiveDetector::with_config(LiveConfig::default());
        let mut evidence: Vec<ShardRoundEvidence> = Vec::new();
        for ((snapshot, counts), map) in captures.iter().zip(&maps) {
            let input = live.prepare(snapshot);
            evidence.push(
                collect_shard_evidence(&input.as_round_input(), counts, &map.ids)
                    .expect("consistent capture"),
            );
        }
        if inject_empty {
            // A pair no real evidence mentions, empty in *every* round: the
            // merge must prune it — identically at every worker count.
            let n = store.num_sources();
            let ghost = SourcePair::new(SourceId::from_index(n), SourceId::from_index(n + 1));
            for round in &mut evidence {
                round.pairs.insert(ghost, Vec::new());
            }
        }

        let accuracies = SourceAccuracies::uniform(store.num_sources(), 0.8).unwrap();
        let params = CopyParams::paper_defaults();
        let (sequential, seq_timings) =
            merge_shard_rounds_timed(evidence.clone(), &accuracies, params);
        prop_assert_eq!(seq_timings.pruned_pairs, u64::from(inject_empty));
        for threads in 1usize..=8 {
            let (parallel, timings, reports) =
                merge_shard_rounds_parallel(evidence.clone(), &accuracies, params, threads);
            prop_assert_eq!(
                &parallel.outcomes, &sequential.outcomes,
                "{} shard(s), {} merge thread(s): outcomes diverged", shards, threads
            );
            prop_assert_eq!(parallel.counter.score_updates, sequential.counter.score_updates);
            prop_assert_eq!(
                parallel.counter.pair_finalizations,
                sequential.counter.pair_finalizations
            );
            prop_assert_eq!(parallel.shared_values_examined, sequential.shared_values_examined);
            prop_assert_eq!(parallel.pairs_considered, sequential.pairs_considered);
            prop_assert_eq!(timings.pairs, seq_timings.pairs);
            prop_assert_eq!(timings.pruned_pairs, seq_timings.pruned_pairs);
            let pair_sum: u64 = reports.iter().map(|r| r.pairs).sum();
            let pruned_sum: u64 = reports.iter().map(|r| r.pruned_pairs).sum();
            prop_assert_eq!(pair_sum, timings.pairs, "{} thread(s)", threads);
            prop_assert_eq!(pruned_sum, timings.pruned_pairs, "{} thread(s)", threads);
        }
    }

    /// The same through per-claim `ingest` (no router batching) with
    /// auto-sealing shard maintenance mixed in.
    #[test]
    fn unbatched_ingest_with_maintenance_is_bit_identical(
        ops in prop::collection::vec((0u8..6, 0u8..8, 0u8..3), 1..48),
        shards in 2usize..=4,
    ) {
        let store = ShardedStore::new(shards);
        for (i, op) in ops.iter().enumerate() {
            let (s, d, v) = claim_strings(op);
            store.ingest(&s, &d, &v);
            if i % 7 == 6 {
                store.maintenance_tick(4, 2);
            }
        }
        let expected = baseline(&ops);
        let got = ShardedDetector::new().detect_round(&store).expect("consistent capture");
        prop_assert_eq!(got.outcomes.len(), expected.outcomes.len());
        for (pair, outcome) in &expected.outcomes {
            prop_assert_eq!(got.outcomes.get(pair), Some(outcome), "pair {} diverged", pair);
        }
    }
}
