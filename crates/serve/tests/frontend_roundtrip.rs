//! Frontend round-trips: a real server on a loopback socket, driven by the
//! codec client — batch ingest, stats, a detection round, concurrent
//! clients, protocol errors, and shutdown.

use copydet_serve::frontend::{self, Client};
use copydet_serve::{ShardedDetector, ShardedStore};
use std::io::Write;
use std::net::TcpStream;

/// A small corpus with one obvious copier pair (mirror/shadow share false
/// values on every item).
fn corpus() -> Vec<(String, String, String)> {
    let mut claims = Vec::new();
    for j in 0..10 {
        for name in ["alice", "bob", "carol"] {
            claims.push((name.to_owned(), format!("D{j}"), format!("true-{j}")));
        }
        for name in ["mirror", "shadow"] {
            claims.push((name.to_owned(), format!("D{j}"), format!("false-{j}")));
        }
    }
    claims
}

#[test]
fn ingest_stats_detect_shutdown_roundtrip() {
    let store = ShardedStore::new(3);
    let server = frontend::serve(store.clone(), "127.0.0.1:0").expect("bind loopback");
    let addr = server.addr();

    let mut client = Client::connect(addr).expect("connect");
    let claims = corpus();
    let borrowed: Vec<(&str, &str, &str)> =
        claims.iter().map(|(s, d, v)| (s.as_str(), d.as_str(), v.as_str())).collect();
    let total = client.ingest(&borrowed).expect("ingest");
    assert_eq!(total, claims.len() as u64, "every (source, item) slot is distinct");
    assert_eq!(store.num_claims(), claims.len());

    // Stats reflect the fleet: three shards, items spread across them, and
    // the request accounting covers the traffic so far (one INGEST, one
    // STATS — the in-flight request counts itself).
    let stats = client.stats().expect("stats");
    assert_eq!(stats.shards.len(), 3);
    let live: u64 = stats.shards.iter().map(|s| s.live_claims).sum();
    assert_eq!(live, claims.len() as u64);
    assert!(stats.shards.iter().all(|s| !s.durable), "in-memory fleet");
    assert_eq!(stats.requests.ingest, 1);
    assert_eq!(stats.requests.stats, 1);
    assert_eq!(stats.requests.detect, 0);

    // A detection round over the wire equals an in-process sharded round.
    let detection = client.detect().expect("detect");
    let expected = ShardedDetector::new().detect_round(&store).expect("consistent capture");
    assert_eq!(detection.pairs_considered, expected.pairs_considered as u64);
    assert_eq!(detection.copying.len(), expected.num_copying_pairs());
    let planted = detection
        .copying
        .iter()
        .find(|p| (p.first.as_str(), p.second.as_str()) == ("mirror", "shadow"))
        .expect("the planted copier pair comes back by name");
    assert!(planted.posterior < 1e-6, "shared distinctive false values are decisive");
    assert!(detection.copying.iter().all(|p| p.posterior <= 0.5));

    client.shutdown().expect("shutdown");
    server.shutdown();
    assert!(
        Client::connect(addr).is_err() || {
            // The OS may accept a queued connection briefly; a request on it
            // must fail either way once the server is down.
            let mut late = Client::connect(addr).unwrap();
            late.stats().is_err()
        }
    );
}

#[test]
fn concurrent_clients_amortize_into_one_consistent_store() {
    let store = ShardedStore::new(4);
    let server = frontend::serve(store.clone(), "127.0.0.1:0").expect("bind loopback");
    let addr = server.addr();

    const CLIENTS: usize = 4;
    const ITEMS: usize = 25;
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                // Two batches per client, interleaving with the others.
                for half in 0..2 {
                    let claims: Vec<(String, String, String)> = (0..ITEMS)
                        .filter(|j| j % 2 == half)
                        .map(|j| (format!("client{c}"), format!("D{j}"), format!("v{j}")))
                        .collect();
                    let borrowed: Vec<(&str, &str, &str)> = claims
                        .iter()
                        .map(|(s, d, v)| (s.as_str(), d.as_str(), v.as_str()))
                        .collect();
                    client.ingest(&borrowed).expect("ingest");
                }
            });
        }
    });
    assert_eq!(store.num_claims(), CLIENTS * ITEMS);
    assert_eq!(store.num_sources(), CLIENTS);
    assert_eq!(store.num_items(), ITEMS);

    let mut client = Client::connect(addr).expect("connect");
    client.shutdown().expect("shutdown");
    server.shutdown();
}

/// Reads one checksummed frame straight off a raw socket (what the typed
/// [`Client`] does internally), returning `(kind, payload)`.
fn read_raw_frame(stream: &mut TcpStream) -> (u8, Vec<u8>) {
    use copydet_model::codec;
    use std::io::Read;
    let mut header = [0u8; codec::WIRE_HEADER_LEN];
    stream.read_exact(&mut header).expect("frame header");
    let body_len = codec::wire_frame_body_len(&header).expect("sane header");
    let mut body = vec![0u8; body_len];
    stream.read_exact(&mut body).expect("frame body");
    let (kind, payload) = codec::decode_wire_parts(&header, &body).expect("checksummed frame");
    (kind, payload.to_vec())
}

fn error_message(payload: &[u8]) -> String {
    copydet_model::codec::Reader::new(payload).string().expect("error response carries a string")
}

#[test]
fn metrics_and_trace_roundtrip() {
    let store = ShardedStore::new(2);
    let server = frontend::serve(store, "127.0.0.1:0").expect("bind loopback");
    let addr = server.addr();
    let mut client = Client::connect(addr).expect("connect");
    let claims = corpus();
    let borrowed: Vec<(&str, &str, &str)> =
        claims.iter().map(|(s, d, v)| (s.as_str(), d.as_str(), v.as_str())).collect();
    client.ingest(&borrowed).expect("ingest");
    client.detect().expect("detect");

    // METRICS: the text exposition covers the round that just ran and the
    // frontend's own per-verb accounting (the registry is process-global,
    // so only presence and shape are asserted, never exact values).
    let metrics = client.metrics().expect("metrics");
    assert!(metrics.contains("# TYPE copydet_serve_round_nanos histogram"), "got:\n{metrics}");
    assert!(metrics.contains("copydet_serve_rounds_total"), "got:\n{metrics}");
    assert!(
        metrics.contains("copydet_frontend_requests_total{verb=\"DETECT\"}"),
        "got:\n{metrics}"
    );
    assert!(metrics.contains("copydet_frontend_connections_live"), "got:\n{metrics}");

    // TRACE: the DETECT round pushed a trace whose stages decompose it.
    let traces = client.trace(1).expect("trace");
    assert_eq!(traces.len(), 1);
    let trace = traces.first().expect("one trace");
    assert_eq!(trace.label, "sharded_round");
    assert!(trace.sequence >= 1, "ring-assigned sequence");
    assert!(trace.total_nanos > 0);
    assert!(trace.stage_nanos("capture").is_some(), "stages: {:?}", trace.stages);
    assert!(trace.stage_nanos("shard0.scan").is_some(), "stages: {:?}", trace.stages);
    assert!(trace.stage_nanos("merge.fold").is_some(), "stages: {:?}", trace.stages);

    client.shutdown().expect("shutdown");
    server.shutdown();
}

#[test]
fn malformed_trace_request_is_a_typed_error_not_fatal() {
    let store = ShardedStore::new(2);
    let server = frontend::serve(store, "127.0.0.1:0").expect("bind loopback");
    let addr = server.addr();

    // A TRACE payload with bytes after the declared count is refused with a
    // typed error naming the request — and the connection keeps serving.
    let mut bad = Vec::new();
    copydet_model::codec::put_u32(&mut bad, 1);
    bad.push(0xAB);
    let mut raw = TcpStream::connect(addr).expect("raw connect");
    raw.write_all(
        &copydet_model::codec::encode_wire_frame(frontend::REQ_TRACE, &bad).expect("tiny frame"),
    )
    .unwrap();
    let (kind, payload) = read_raw_frame(&mut raw);
    assert_eq!(kind, frontend::RESP_ERR);
    let message = error_message(&payload);
    assert!(message.contains("TRACE"), "names the request: {message}");
    assert!(message.contains("trailing"), "names the defect: {message}");
    // The same connection still serves a well-formed TRACE.
    raw.write_all(
        &copydet_model::codec::encode_wire_frame(frontend::REQ_TRACE, &{
            let mut ok = Vec::new();
            copydet_model::codec::put_u32(&mut ok, 0);
            ok
        })
        .expect("tiny frame"),
    )
    .unwrap();
    let (kind, _) = read_raw_frame(&mut raw);
    assert_eq!(kind, frontend::RESP_OK, "connection survives the malformed frame");

    let mut client = Client::connect(addr).expect("connect");
    client.shutdown().expect("shutdown");
    server.shutdown();
}

#[test]
fn topk_roundtrip_matches_in_process_query_bitwise() {
    let store = ShardedStore::new(3);
    let server = frontend::serve(store.clone(), "127.0.0.1:0").expect("bind loopback");
    let addr = server.addr();
    let mut client = Client::connect(addr).expect("connect");
    let claims = corpus();
    let borrowed: Vec<(&str, &str, &str)> =
        claims.iter().map(|(s, d, v)| (s.as_str(), d.as_str(), v.as_str())).collect();
    client.ingest(&borrowed).expect("ingest");

    // Per-source: the two most likely copiers of "mirror".
    let topk = client.detect_topk(Some("mirror"), 2).expect("detect_topk");
    let expected = ShardedDetector::new().detect_topk(&store, "mirror", 2).expect("in-process");
    assert_eq!(topk.candidates, expected.stats.candidates);
    assert_eq!(topk.evaluated, expected.stats.evaluated);
    assert_eq!(topk.pruned, expected.stats.pruned);
    assert_eq!(topk.ranked.len(), expected.ranked.len());
    for (wire, (pair, outcome)) in topk.ranked.iter().zip(&expected.ranked) {
        // Posteriors cross the wire as raw bits: bit-identical, not close.
        assert_eq!(wire.posterior.to_bits(), outcome.posterior.unwrap().to_bits());
        let _ = pair;
    }
    let best = topk.ranked.first().expect("mirror has copiers");
    assert_eq!((best.first.as_str(), best.second.as_str()), ("mirror", "shadow"));
    assert!(best.posterior < 1e-6, "planted pair is decisive");
    // The per-source candidate set is a strict subset of the fleet's pairs.
    let full = client.detect().expect("detect");
    assert!(topk.candidates < full.pairs_considered, "query must not pay for a full round");

    // Fleet-wide: the most suspicious pair overall is the planted one.
    let fleet = client.detect_topk(None, 1).expect("fleet detect_topk");
    let best = fleet.ranked.first().expect("fleet has a most suspicious pair");
    assert_eq!((best.first.as_str(), best.second.as_str()), ("mirror", "shadow"));

    // The new verb is accounted in STATS like every other.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.requests.detect_topk, 2);
    assert_eq!(stats.requests.detect, 1);

    client.shutdown().expect("shutdown");
    server.shutdown();
}

#[test]
fn malformed_topk_and_detect_requests_are_typed_errors_not_fatal() {
    let store = ShardedStore::new(2);
    let server = frontend::serve(store, "127.0.0.1:0").expect("bind loopback");
    let addr = server.addr();
    let mut client = Client::connect(addr).expect("connect");
    client.ingest(&[("alice", "D0", "v"), ("bob", "D0", "v")]).expect("ingest");

    // An unknown source name comes back as a typed error naming the source,
    // not as an empty result.
    let err = client.detect_topk(Some("nobody"), 3).expect_err("unknown source");
    let message = err.to_string();
    assert!(message.contains("unknown source name"), "names the defect: {message}");
    assert!(message.contains("nobody"), "names the source: {message}");
    // The same connection keeps serving.
    let ok = client.detect_topk(Some("alice"), 3).expect("known source after the error");
    assert_eq!(ok.ranked.len(), 1, "alice shares D0 with bob only");

    // A mode byte outside the protocol is refused by name.
    let mut bad = Vec::new();
    copydet_model::codec::put_u8(&mut bad, 9);
    copydet_model::codec::put_u32(&mut bad, 1);
    let mut raw = TcpStream::connect(addr).expect("raw connect");
    raw.write_all(
        &copydet_model::codec::encode_wire_frame(frontend::REQ_DETECT_TOPK, &bad)
            .expect("tiny frame"),
    )
    .unwrap();
    let (kind, payload) = read_raw_frame(&mut raw);
    assert_eq!(kind, frontend::RESP_ERR);
    let message = error_message(&payload);
    assert!(message.contains("DETECT_TOPK mode"), "names the defect: {message}");

    // Trailing bytes after a well-formed DETECT_TOPK payload are refused.
    let mut bad = Vec::new();
    copydet_model::codec::put_u8(&mut bad, 1);
    copydet_model::codec::put_u32(&mut bad, 1);
    bad.push(0xCD);
    raw.write_all(
        &copydet_model::codec::encode_wire_frame(frontend::REQ_DETECT_TOPK, &bad)
            .expect("tiny frame"),
    )
    .unwrap();
    let (kind, payload) = read_raw_frame(&mut raw);
    assert_eq!(kind, frontend::RESP_ERR);
    let message = error_message(&payload);
    assert!(message.contains("DETECT_TOPK"), "names the request: {message}");
    assert!(message.contains("trailing"), "names the defect: {message}");

    // DETECT declares an empty payload; stray bytes are refused, and the
    // connection keeps serving afterwards.
    raw.write_all(
        &copydet_model::codec::encode_wire_frame(frontend::REQ_DETECT, &[0xEF])
            .expect("tiny frame"),
    )
    .unwrap();
    let (kind, payload) = read_raw_frame(&mut raw);
    assert_eq!(kind, frontend::RESP_ERR);
    let message = error_message(&payload);
    assert!(message.contains("DETECT"), "names the request: {message}");
    assert!(message.contains("trailing"), "names the defect: {message}");
    raw.write_all(
        &copydet_model::codec::encode_wire_frame(frontend::REQ_STATS, &[]).expect("tiny frame"),
    )
    .unwrap();
    let (kind, _) = read_raw_frame(&mut raw);
    assert_eq!(kind, frontend::RESP_OK, "connection survives the malformed frames");

    client.shutdown().expect("shutdown");
    server.shutdown();
}

#[test]
fn idle_connection_is_reaped_while_server_keeps_serving() {
    use std::io::Read;
    use std::time::Duration;
    let store = ShardedStore::new(2);
    let config = frontend::FrontendConfig {
        idle_timeout: Some(Duration::from_millis(300)),
        ..Default::default()
    };
    let server = frontend::serve_with_config(store, "127.0.0.1:0", config).expect("bind loopback");
    let addr = server.addr();

    // A client that connects and goes silent: its handler observes the idle
    // timeout and closes the connection cleanly (the pre-fix behavior
    // pinned a handler thread forever).
    let mut silent = TcpStream::connect(addr).expect("silent connect");
    silent.set_read_timeout(Some(Duration::from_secs(30))).expect("client-side guard");
    let mut buf = [0u8; 1];
    let n = silent.read(&mut buf).expect("server closes the idle connection cleanly");
    assert_eq!(n, 0, "clean close (FIN), not a torn frame");

    // The server is still accepting and serving after the reap.
    let mut client = Client::connect(addr).expect("connect after the reap");
    let stats = client.stats().expect("stats after the reap");
    assert_eq!(stats.shards.len(), 2);
    client.shutdown().expect("shutdown");
    server.shutdown();
}

#[test]
fn protocol_errors_are_reported_not_fatal() {
    let store = ShardedStore::new(2);
    let server = frontend::serve(store, "127.0.0.1:0").expect("bind loopback");
    let addr = server.addr();

    // An unknown request kind gets a typed error response naming the kind,
    // and the connection keeps serving.
    let mut client = Client::connect(addr).expect("connect");
    {
        let mut raw = TcpStream::connect(addr).expect("raw connect");
        raw.write_all(&copydet_model::codec::encode_wire_frame(0x7F, &[]).expect("tiny frame"))
            .unwrap();
        let (kind, payload) = read_raw_frame(&mut raw);
        assert_eq!(kind, frontend::RESP_ERR);
        let message = error_message(&payload);
        assert!(message.contains("unknown request kind"), "got: {message}");
        assert!(message.contains("0x7f"), "names the offending kind: {message}");
    }
    // A malformed INGEST payload (declared two claims, carries none) comes
    // back as a typed decode error — on a connection that then keeps
    // serving well-formed requests.
    let mut bad = Vec::new();
    copydet_model::codec::put_u32(&mut bad, 2);
    let raw_frame =
        copydet_model::codec::encode_wire_frame(frontend::REQ_INGEST, &bad).expect("tiny frame");
    let mut raw = TcpStream::connect(addr).expect("raw connect");
    raw.write_all(&raw_frame).unwrap();
    let (kind, payload) = read_raw_frame(&mut raw);
    assert_eq!(kind, frontend::RESP_ERR);
    let message = error_message(&payload);
    assert!(message.contains("INGEST"), "names the request: {message}");
    // The same malformed-frame connection still serves a valid request.
    raw.write_all(
        &copydet_model::codec::encode_wire_frame(frontend::REQ_STATS, &[]).expect("tiny frame"),
    )
    .unwrap();
    let (kind, _) = read_raw_frame(&mut raw);
    assert_eq!(kind, frontend::RESP_OK, "connection survives the malformed frame");
    // And so does every other connection.
    let stats = client.stats().expect("stats still served");
    assert_eq!(stats.shards.len(), 2);

    client.shutdown().expect("shutdown");
    server.shutdown();
}
