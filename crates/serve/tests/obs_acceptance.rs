//! Observability acceptance over the wire: a TCP-driven detection round's
//! TRACE decomposes its wall time, and METRICS carries the store-layer and
//! incremental-detector instrumentation.

use copydet_bayes::{CopyParams, SourceAccuracies, ValueProbabilities};
use copydet_detect::{CopyDetector, IncrementalDetector, RoundInput};
use copydet_model::DatasetBuilder;
use copydet_serve::frontend::{self, Client};
use copydet_serve::ShardedStore;

const SOURCES: usize = 48;
const ITEMS: usize = 256;

/// Every source claims every item, so all `48·47/2` pairs share all 256
/// items — a round heavy enough that the evidence scan and the merge, not
/// the bookkeeping around them, dominate the wall time. Sources 0 and 1
/// share distinctive values (a planted copier pair).
fn heavy_corpus() -> Vec<(String, String, String)> {
    let mut claims = Vec::with_capacity(SOURCES * ITEMS);
    for s in 0..SOURCES {
        for j in 0..ITEMS {
            let value = match s {
                0 | 1 => format!("planted-{j}"),
                _ => format!("v{}", (s + j) % 7),
            };
            claims.push((format!("S{s}"), format!("D{j}"), value));
        }
    }
    claims
}

fn ingest_all(client: &mut Client, claims: &[(String, String, String)]) {
    for batch in claims.chunks(4096) {
        let borrowed: Vec<(&str, &str, &str)> =
            batch.iter().map(|(s, d, v)| (s.as_str(), d.as_str(), v.as_str())).collect();
        client.ingest(&borrowed).expect("ingest");
    }
}

/// On a 1-shard fleet the per-shard stages (capture + evidence scan) and
/// the merge stages tile the round: their TRACE durations must account for
/// at least 90% of the round's wall time (prepare and thread-spawn glue get
/// the rest).
#[test]
fn tcp_round_trace_decomposes_wall_time() {
    let store = ShardedStore::new(1);
    let server = frontend::serve(store, "127.0.0.1:0").expect("bind loopback");
    let mut client = Client::connect(server.addr()).expect("connect");
    ingest_all(&mut client, &heavy_corpus());
    client.detect().expect("detect");

    let traces = client.trace(1).expect("trace");
    let trace = traces.first().expect("the DETECT round left a trace");
    assert_eq!(trace.label, "sharded_round");
    assert!(trace.stage_nanos("shard0.scan").is_some(), "per-shard scan stage recorded");
    let shard = trace.stage_sum_nanos("shard0.");
    let merge = trace.stage_sum_nanos("merge.");
    let sum = shard.saturating_add(merge);
    assert!(sum <= trace.total_nanos, "disjoint sub-intervals cannot exceed the round");
    let ratio = sum as f64 / trace.total_nanos as f64;
    assert!(
        ratio >= 0.9,
        "shard + merge stages = {sum} ns are only {:.1}% of the {} ns round; stages: {:?}",
        100.0 * ratio,
        trace.total_nanos,
        trace.stages
    );

    client.shutdown().expect("shutdown");
    server.shutdown();
}

/// First value of metric `name` in a text exposition (skipping `# TYPE`
/// lines, which never start with the bare metric name).
fn metric_value(text: &str, name: &str) -> u64 {
    text.lines()
        .find(|line| line.starts_with(name))
        .and_then(|line| line.split_whitespace().nth(1))
        .and_then(|value| value.parse().ok())
        .unwrap_or_else(|| panic!("metric {name} missing from exposition:\n{text}"))
}

/// A durable fleet's WAL appends and an in-process incremental detector
/// both land in the process-global registry the METRICS verb exposes.
#[test]
fn metrics_include_wal_and_incremental_instrumentation() {
    let root = std::env::temp_dir().join(format!("copydet_obs_acceptance_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let store = ShardedStore::open(&root, 1).expect("open durable fleet");
    let server = frontend::serve(store, "127.0.0.1:0").expect("bind loopback");
    let mut client = Client::connect(server.addr()).expect("connect");
    let claims: Vec<(String, String, String)> = (0..200)
        .map(|i| (format!("S{}", i % 4), format!("D{}", i / 4), format!("v{}", i % 3)))
        .collect();
    ingest_all(&mut client, &claims);

    // Incremental rounds run in-process (sharded serving rounds are always
    // exact); the pass counters land in the same process-global registry.
    let mut b = DatasetBuilder::new();
    for j in 0..12 {
        for s in 0..4 {
            let value = if s < 2 { format!("shared-{j}") } else { format!("own-{s}-{j}") };
            b.add_claim(&format!("I{s}"), &format!("item-{j}"), &value);
        }
    }
    let ds = b.build();
    let accuracies = SourceAccuracies::uniform(ds.num_sources(), 0.8).expect("probability");
    let probabilities = ValueProbabilities::uniform_over_dataset(&ds, 0.4).expect("probability");
    let params = CopyParams::paper_defaults();
    let input = RoundInput::new(&ds, &accuracies, &probabilities, params);
    let mut incremental = IncrementalDetector::new();
    let _ = incremental.detect_round(&input, 1);
    let _ = incremental.detect_round(&input, 2);
    // Round 3 is past warm-up: the incremental maintenance runs and counts.
    let _ = incremental.detect_round(&input, 3);

    let metrics = client.metrics().expect("metrics");
    assert!(
        metrics.contains("# TYPE copydet_store_wal_append_nanos histogram"),
        "WAL append latency histogram missing:\n{metrics}"
    );
    assert!(metric_value(&metrics, "copydet_store_wal_append_nanos_count") >= 1);
    let considered = metric_value(&metrics, "copydet_incremental_pairs_considered_total");
    let recomputed = metric_value(&metrics, "copydet_incremental_pairs_recomputed_total");
    assert!(considered >= 1, "the incremental round maintained at least one pair");
    assert!(recomputed <= considered, "recomputed pairs are a subset of considered pairs");

    client.shutdown().expect("shutdown");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}
