//! Ingest-while-detecting stress over the sharded store, mirroring the
//! single-store suite in `tests/concurrency.rs`.
//!
//! N writer threads stream deterministic claim sets (one planted copier
//! pair per writer) through [`ShardedStore::ingest_batch`] while a detector
//! loops fan-out rounds on the live fleet and a maintenance thread seals
//! and compacts every shard. Each round runs over an explicit capture
//! ([`ShardedStore::capture_shards`]) so the exact PAIRWISE baseline can be
//! computed over a `DatasetBuilder` rebuild of the *same* frozen state —
//! the item-disjoint union of per-shard consistent snapshots is itself a
//! dataset some valid interleaving of the stream produces, so the baseline
//! is well-defined for whatever timing the scheduler gives us. Decisions
//! are compared by source-name pairs (the rebuild has its own id space).

use copydet_bayes::CopyParams;
use copydet_detect::{pairwise_detection, RoundInput};
use copydet_fusion::{value_probabilities, VoteConfig};
use copydet_index::SharedItemCounts;
use copydet_model::{DatasetBuilder, SourceId};
use copydet_serve::{ShardedDetector, ShardedStore};
use copydet_store::StoreSnapshot;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const SHARDS: usize = 4;
const WRITERS: usize = 4;
const SOURCES_PER_WRITER: usize = 6;
const ITEMS: usize = 40;
const CLAIMS_PER_WRITER: usize = 600;
const BATCH: usize = 32;

type Capture = (StoreSnapshot, Arc<SharedItemCounts>);
type NamePairs = BTreeSet<(String, String)>;

/// Writer `w`'s deterministic claim stream (same layout as the single-store
/// stress test): writer-local sources, global items, one planted copier
/// pair per writer (sources 0 and 5 share writer-specific false values).
fn claim_stream(w: usize) -> Vec<(String, String, String)> {
    (0..CLAIMS_PER_WRITER)
        .map(|i| {
            let k = i % SOURCES_PER_WRITER;
            let j = (i / SOURCES_PER_WRITER) % ITEMS;
            let value = match k {
                0 | 5 => format!("f{w}-{j}"),
                4 => format!("n{w}-{k}-{j}"),
                _ => format!("t{j}"),
            };
            (format!("w{w}-S{k}"), format!("D{j}"), value)
        })
        .collect()
}

fn ordered(a: String, b: String) -> (String, String) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// The exact from-scratch baseline over a capture's union dataset.
fn baseline_decisions(captures: &[Capture]) -> (NamePairs, usize) {
    let mut b = DatasetBuilder::new();
    let mut claims = 0usize;
    for (snapshot, _) in captures {
        for c in snapshot.dataset.claim_refs() {
            b.add_claim(c.source, c.item, c.value);
            claims += 1;
        }
    }
    let ds = b.build();
    let params = CopyParams::paper_defaults();
    let accuracies = copydet_bayes::SourceAccuracies::uniform(ds.num_sources(), 0.8).unwrap();
    let probabilities = value_probabilities(&ds, &accuracies, None, &VoteConfig::new(params));
    let exact = pairwise_detection(&RoundInput::new(&ds, &accuracies, &probabilities, params));
    let pairs = exact
        .copying_pairs()
        .map(|p| {
            ordered(ds.source_name(p.first()).to_owned(), ds.source_name(p.second()).to_owned())
        })
        .collect();
    (pairs, claims)
}

/// Global-id → source-name resolution for a capture.
fn source_names(store: &ShardedStore, captures: &[Capture]) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for (snapshot, _) in captures {
        let maps = store.maps_for(snapshot);
        for (local, global) in maps.ids.sources.iter().enumerate() {
            let idx = global.index();
            if idx >= names.len() {
                names.resize(idx + 1, String::new());
            }
            if names[idx].is_empty() {
                names[idx] = snapshot.dataset.source_name(SourceId::from_index(local)).to_owned();
            }
        }
    }
    names
}

#[test]
fn ingest_while_detecting_matches_from_scratch_baselines() {
    let store = ShardedStore::new(SHARDS);
    let stop_maintenance = AtomicBool::new(false);
    let mut observed: Vec<(Vec<Capture>, NamePairs)> = Vec::new();

    std::thread::scope(|scope| {
        let writers: Vec<_> = (0..WRITERS)
            .map(|w| {
                let handle = store.clone();
                scope.spawn(move || {
                    let stream = claim_stream(w);
                    for chunk in stream.chunks(BATCH) {
                        handle.ingest_batch(
                            chunk.iter().map(|(s, d, v)| (s.as_str(), d.as_str(), v.as_str())),
                        );
                    }
                })
            })
            .collect();
        let maintainer = store.clone();
        let stop = &stop_maintenance;
        scope.spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                maintainer.maintenance_tick(256, 3);
                std::thread::yield_now();
            }
        });

        // The detector loop: capture the fleet, run the fan-out round over
        // that capture (entirely outside the shard locks, so writers keep
        // streaming), and remember the capture for the baseline comparison.
        let mut detector = ShardedDetector::new();
        loop {
            let writers_done = writers.iter().all(|h| h.is_finished());
            let captures = store.capture_shards();
            let result = detector.detect_captured(&store, &captures).expect("consistent capture");
            assert_eq!(result.algorithm, "SHARDED");
            let names = source_names(&store, &captures);
            let pairs = result
                .copying_pairs()
                .map(|p| {
                    ordered(names[p.first().index()].clone(), names[p.second().index()].clone())
                })
                .collect();
            observed.push((captures, pairs));
            if writers_done {
                break;
            }
        }
        stop_maintenance.store(true, Ordering::Relaxed);
    });

    // The final capture covers every distinct (source, item) slot.
    let (last_captures, final_pairs) = observed.last().expect("at least one round ran");
    let total: usize = last_captures.iter().map(|(s, _)| s.dataset.num_claims()).sum();
    assert_eq!(total, WRITERS * SOURCES_PER_WRITER * ITEMS);

    // Every round's decisions equal the exact from-scratch baseline over
    // that round's own capture — regardless of interleaving.
    for (round, (captures, pairs)) in observed.iter().enumerate() {
        let (expected, claims) = baseline_decisions(captures);
        assert_eq!(
            pairs, &expected,
            "round {round} ({claims} claims) diverged from the from-scratch baseline"
        );
    }

    // Every writer's planted copier pair is caught in the final round.
    for w in 0..WRITERS {
        let pair = (format!("w{w}-S0"), format!("w{w}-S5"));
        assert!(final_pairs.contains(&pair), "writer {w}'s planted pair must be detected");
    }
}

/// Mid-stream rounds over a store that keeps moving: each round is
/// self-consistent (every reported pair resolves to known sources) and the
/// fleet's claim accounting adds up afterwards.
#[test]
fn concurrent_rounds_are_self_consistent() {
    let store = ShardedStore::new(3);
    std::thread::scope(|scope| {
        let writer = store.clone();
        scope.spawn(move || {
            for (s, d, v) in claim_stream(0) {
                writer.ingest(&s, &d, &v);
            }
        });
        let mut detector = ShardedDetector::new();
        for _ in 0..5 {
            let result = detector.detect_round(&store).expect("consistent capture");
            let num_sources = store.num_sources();
            for pair in result.outcomes.keys() {
                assert!(pair.second().index() < num_sources, "pair ids stay in the registry");
            }
        }
        assert_eq!(detector.rounds(), 5);
    });
    assert_eq!(store.num_claims(), SOURCES_PER_WRITER * ITEMS);
    let stats = store.stats();
    assert_eq!(stats.live_claims, SOURCES_PER_WRITER * ITEMS);
}

/// All three ranked locks of `DESIGN.md` §8 under one stress run: the
/// global registry (rank 10) and shard stores (rank 20) via concurrent
/// batched ingest, maintenance and fan-out detection, plus the frontend
/// connection registry (rank 30) via TCP clients hammering the same fleet.
///
/// In debug builds (which is how `cargo test` runs) every
/// `RankedMutex`/`RankedRwLock` acquisition is checked against the
/// thread's held-rank stack and panics on an ordering violation — so this
/// test's assertion is largely that it *finishes*: any interleaving that
/// acquires out of rank order aborts the run.
#[test]
fn lock_ranks_hold_under_stress() {
    use copydet_serve::frontend::{self, Client};

    let store = ShardedStore::new(SHARDS);
    let server = frontend::serve(store.clone(), "127.0.0.1:0").expect("bind loopback");
    let addr = server.addr();

    std::thread::scope(|scope| {
        // TCP writers: registry + shard + connection locks from the
        // frontend's connection threads.
        for w in 0..2 {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let stream = claim_stream(w);
                for chunk in stream.chunks(BATCH) {
                    let batch: Vec<(&str, &str, &str)> = chunk
                        .iter()
                        .map(|(s, d, v)| (s.as_str(), d.as_str(), v.as_str()))
                        .collect();
                    client.ingest(&batch).expect("ingest batch");
                }
                let _ = client.stats().expect("stats");
            });
        }
        // Direct writers + maintenance + detection on the same fleet.
        let direct = store.clone();
        scope.spawn(move || {
            for (s, d, v) in claim_stream(2) {
                direct.ingest(&s, &d, &v);
            }
        });
        let maintainer = store.clone();
        scope.spawn(move || {
            for _ in 0..200 {
                maintainer.maintenance_tick(128, 3);
                std::thread::yield_now();
            }
        });
        let mut detector = ShardedDetector::new();
        for _ in 0..4 {
            let result = detector.detect_round(&store).expect("consistent capture");
            assert_eq!(result.algorithm, "SHARDED");
        }
    });

    let mut client = Client::connect(addr).expect("connect for shutdown");
    client.shutdown().expect("shutdown");
    server.shutdown();

    // Every lock taken during the run was released in rank order; this
    // thread ends the test holding none.
    assert_eq!(copydet_model::sync::max_held_rank(), None);
    assert_eq!(store.num_claims(), 3 * SOURCES_PER_WRITER * ITEMS);
}
