//! Bit-stable fleet restarts: the `REGISTRY` arrival-order log gives a
//! reopened fleet the exact global id assignment of the original process,
//! so detection output — every posterior, down to the last ulp — and the
//! DETECT wire responses built from it are byte-identical across restarts.

use copydet_serve::frontend::{self, Client};
use copydet_serve::{ShardedDetector, ShardedStore};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

struct Scratch(PathBuf);

impl Scratch {
    fn new(label: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "copydet_registry_restart_{label}_{}_{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Self(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A planted-copier corpus (S0 and S3 share distinctive false values) whose
/// *arrival order* is deliberately scrambled: names first appear in an
/// order no shard-major recovery walk reproduces, so this stream
/// distinguishes arrival-order replay from the PR 5 shard-major rebuild.
fn scrambled_corpus() -> Vec<(String, String, String)> {
    let mut claims = Vec::new();
    for j in 0..12 {
        for k in 0..5 {
            let value = if k == 0 || k == 3 { format!("false-{j}") } else { format!("true-{j}") };
            claims.push((format!("S{k}"), format!("D{j}"), value));
        }
    }
    // A fixed permutation with stride 7 (coprime to 60): sources, items and
    // values all first appear "out of order" relative to any per-shard walk.
    let n = claims.len();
    (0..n).map(|i| claims[(i * 7) % n].clone()).collect()
}

fn ingest_in_batches(store: &ShardedStore, claims: &[(String, String, String)]) {
    for batch in claims.chunks(7) {
        store.ingest_batch(batch.iter().map(|(s, d, v)| (s.as_str(), d.as_str(), v.as_str())));
    }
}

/// The bits that must survive a restart unchanged: every outcome's decision
/// and the raw bit patterns of its three floats, keyed by the pair's global
/// ids (which themselves only match if the registry order was preserved).
fn outcome_bits(result: &copydet_serve::DetectionResult) -> Vec<(String, String, u64, u64, u64)> {
    let mut rows: Vec<_> = result
        .outcomes
        .iter()
        .map(|(pair, o)| {
            (
                pair.to_string(),
                format!("{:?}", o.decision),
                o.posterior.unwrap_or(0.0).to_bits(),
                o.c_to.to_bits(),
                o.c_from.to_bits(),
            )
        })
        .collect();
    rows.sort();
    rows
}

#[test]
fn restart_replays_arrival_order_and_detection_is_bit_identical() {
    let scratch = Scratch::new("bits");
    let claims = scrambled_corpus();

    let (names_before, bits_before) = {
        let store = ShardedStore::open(&scratch.0, 3).expect("open fresh");
        ingest_in_batches(&store, &claims);
        store.sync().expect("flush every shard's WAL");
        assert!(store.io_error().is_none(), "registry log and shards are healthy");
        let result = ShardedDetector::new().detect_round(&store).expect("consistent capture");
        assert!(result.num_copying_pairs() >= 1, "the planted pair is caught");
        (store.global_source_names(), outcome_bits(&result))
    };
    assert!(scratch.0.join("REGISTRY").exists(), "the arrival-order log was written");

    let recovered = ShardedStore::open(&scratch.0, 3).expect("reopen");
    assert_eq!(
        recovered.global_source_names(),
        names_before,
        "the registry replays in arrival order, not shard-major"
    );
    let result = ShardedDetector::new().detect_round(&recovered).expect("consistent capture");
    assert_eq!(
        outcome_bits(&result),
        bits_before,
        "every posterior and score survives the restart bit for bit"
    );

    // And again: a second restart replays the log the first one wrote.
    drop(recovered);
    let again = ShardedStore::open(&scratch.0, 3).expect("second reopen");
    assert_eq!(again.global_source_names(), names_before);
}

/// A root from before the log existed (simulated by deleting `REGISTRY`)
/// still opens: the rebuild falls back to the deterministic shard-major
/// order — which genuinely differs from arrival order for this stream —
/// and *appends it to the log*, so every restart after the first is
/// bit-stable again.
#[test]
fn legacy_root_without_registry_log_is_repaired_on_open() {
    let scratch = Scratch::new("legacy");
    let claims = scrambled_corpus();
    let arrival = {
        let store = ShardedStore::open(&scratch.0, 3).expect("open fresh");
        ingest_in_batches(&store, &claims);
        store.sync().expect("flush");
        store.global_source_names()
    };
    std::fs::remove_file(scratch.0.join("REGISTRY")).expect("simulate a pre-log root");

    let repaired = {
        let store = ShardedStore::open(&scratch.0, 3).expect("legacy roots still open");
        assert!(store.io_error().is_none(), "the repair append succeeded");
        store.global_source_names()
    };
    // Shard-major recovery is a *different* order for this scrambled stream
    // — which is exactly why the arrival-order log exists.
    assert_ne!(repaired, arrival, "this stream distinguishes the two recovery orders");
    assert!(scratch.0.join("REGISTRY").exists(), "the log was rewritten");

    // From here on restarts are bit-stable again: the repaired order
    // replays identically.
    let store = ShardedStore::open(&scratch.0, 3).expect("reopen repaired root");
    assert_eq!(store.global_source_names(), repaired);
}

#[test]
fn detect_wire_responses_are_byte_identical_across_restarts() {
    let scratch = Scratch::new("wire");
    let claims = scrambled_corpus();

    let first = {
        let store = ShardedStore::open(&scratch.0, 3).expect("open fresh");
        ingest_in_batches(&store, &claims);
        store.sync().expect("flush");
        let server = frontend::serve(store, "127.0.0.1:0").expect("bind");
        let mut client = Client::connect(server.addr()).expect("connect");
        let detection = client.detect().expect("detect");
        client.shutdown().expect("shutdown");
        server.shutdown();
        detection
    };
    assert!(!first.copying.is_empty(), "the planted pair comes back over the wire");

    let store = ShardedStore::open(&scratch.0, 3).expect("reopen");
    let server = frontend::serve(store, "127.0.0.1:0").expect("rebind");
    let mut client = Client::connect(server.addr()).expect("reconnect");
    let second = client.detect().expect("detect after restart");
    client.shutdown().expect("shutdown");
    server.shutdown();

    // Field-for-field equality, with posteriors compared as raw bits: the
    // DETECT payload is a deterministic encoding of exactly these fields,
    // so this is byte-identity of the response.
    assert_eq!(second.pairs_considered, first.pairs_considered);
    assert_eq!(second.copying.len(), first.copying.len());
    for (a, b) in first.copying.iter().zip(&second.copying) {
        assert_eq!((a.first.as_str(), a.second.as_str()), (b.first.as_str(), b.second.as_str()));
        assert_eq!(a.posterior.to_bits(), b.posterior.to_bits(), "pair {}→{}", a.first, a.second);
    }
}
