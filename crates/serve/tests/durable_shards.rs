//! Durability of the sharded store: per-shard directories recover
//! independently, the shard count is pinned, and a recovered fleet detects
//! the same copiers.

use copydet_serve::{ShardedDetector, ShardedStore, StoreIoError};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

struct Scratch(PathBuf);

impl Scratch {
    fn new(label: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "copydet_serve_test_{label}_{}_{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Self(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn corpus() -> Vec<(String, String, String)> {
    let mut claims = Vec::new();
    for j in 0..12 {
        for k in 0..5 {
            let value = if k == 0 || k == 3 { format!("false-{j}") } else { format!("true-{j}") };
            claims.push((format!("S{k}"), format!("D{j}"), value));
        }
    }
    claims
}

#[test]
fn restart_recovers_every_shard_and_detection_agrees() {
    let scratch = Scratch::new("restart");
    let claims = corpus();
    let before = {
        let store = ShardedStore::open(&scratch.0, 3).expect("open fresh");
        store.ingest_batch(claims.iter().map(|(s, d, v)| (s.as_str(), d.as_str(), v.as_str())));
        store.sync().expect("flush every shard's WAL");
        assert!(store.stats().durable);
        assert!(store.io_error().is_none());
        let result = ShardedDetector::new().detect_round(&store).expect("consistent capture");
        assert!(result.num_copying_pairs() >= 1);
        (store.num_claims(), result.num_copying_pairs())
    }; // all shard handles dropped: directory locks release, WALs flush

    // Shard directories exist, one per shard, each a self-contained store.
    for i in 0..3 {
        assert!(scratch.0.join(format!("shard-{i:03}")).join("wal.log").exists());
    }

    let recovered = ShardedStore::open(&scratch.0, 3).expect("reopen");
    assert_eq!(recovered.num_claims(), before.0);
    let result = ShardedDetector::new().detect_round(&recovered).expect("consistent capture");
    assert_eq!(
        result.num_copying_pairs(),
        before.1,
        "a recovered fleet reaches the same decisions"
    );
}

#[test]
fn shard_count_is_pinned() {
    let scratch = Scratch::new("pin");
    drop(ShardedStore::open(&scratch.0, 2).expect("create with 2"));
    match ShardedStore::open(&scratch.0, 4) {
        Err(StoreIoError::Corrupt { detail, .. }) => {
            assert!(detail.contains("2 shard(s)"), "unexpected detail: {detail}");
        }
        other => panic!("expected a shard-count mismatch, got {other:?}"),
    }
    // The original count still opens.
    drop(ShardedStore::open(&scratch.0, 2).expect("reopen with 2"));
}

#[test]
fn one_shard_directory_recovers_alone() {
    // Restarting a single shard's directory (as the serve_demo does) is
    // just a SharedClaimStore recovery — prove the layout supports it by
    // reopening one shard dir directly while the others stay untouched.
    let scratch = Scratch::new("singleshard");
    let claims = corpus();
    {
        let store = ShardedStore::open(&scratch.0, 2).expect("open fresh");
        store.ingest_batch(claims.iter().map(|(s, d, v)| (s.as_str(), d.as_str(), v.as_str())));
        store.sync().expect("flush");
    }
    let shard0 = copydet_store::SharedClaimStore::open(scratch.0.join("shard-000"))
        .expect("a shard dir is a self-contained store");
    assert!(shard0.num_claims() > 0, "the hash spreads 12 items over 2 shards");
}

#[test]
fn oversized_or_binary_shards_pin_is_a_typed_error() {
    let scratch = Scratch::new("badpin");
    drop(ShardedStore::open(&scratch.0, 2).expect("create with 2"));

    // A pin grown past its 64-byte control-file bound is rejected before
    // it is slurped or parsed.
    std::fs::write(scratch.0.join("SHARDS"), vec![b'9'; 4096]).expect("overwrite pin");
    match ShardedStore::open(&scratch.0, 2) {
        Err(StoreIoError::Corrupt { path, detail }) => {
            assert!(path.ends_with("SHARDS"), "blames the pin: {}", path.display());
            assert!(detail.contains("64-byte bound"), "unexpected detail: {detail}");
        }
        other => panic!("expected Corrupt for an oversized pin, got {other:?}"),
    }

    // A non-UTF-8 pin is corruption too, not a panic in the parser.
    std::fs::write(scratch.0.join("SHARDS"), [0xFF, 0xFE, 0xFD]).expect("overwrite pin");
    match ShardedStore::open(&scratch.0, 2) {
        Err(StoreIoError::Corrupt { detail, .. }) => {
            assert!(detail.contains("not UTF-8"), "unexpected detail: {detail}");
        }
        other => panic!("expected Corrupt for a binary pin, got {other:?}"),
    }

    // Restoring a sane pin makes the fleet open again.
    std::fs::write(scratch.0.join("SHARDS"), "2\n").expect("restore pin");
    drop(ShardedStore::open(&scratch.0, 2).expect("reopen with a repaired pin"));
}
