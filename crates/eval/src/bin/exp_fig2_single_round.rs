//! Driver for Figure 2 (single-round algorithms: computations and time).

fn main() {
    let config = copydet_eval::ExperimentConfig::from_env();
    for table in copydet_eval::experiments::single_round::run(&config) {
        println!("{table}");
    }
}
