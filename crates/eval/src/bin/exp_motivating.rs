//! Driver for the motivating-example tables (Tables I–IV worked examples).

fn main() {
    for table in copydet_eval::experiments::motivating::run() {
        println!("{table}");
    }
}
