//! Driver for Figure 3 (entry processing orders).

fn main() {
    let config = copydet_eval::ExperimentConfig::from_env();
    for table in copydet_eval::experiments::ordering::run(&config) {
        println!("{table}");
    }
}
