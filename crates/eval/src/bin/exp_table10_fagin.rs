//! Driver for Table X (time ratios vs FAGININPUT).

fn main() {
    let config = copydet_eval::ExperimentConfig::from_env();
    println!("{}", copydet_eval::experiments::fagin::run(&config));
}
