//! Driver for Table VIII (INCREMENTAL vs HYBRID per round, pass shares).

fn main() {
    let config = copydet_eval::ExperimentConfig::from_env();
    println!("{}", copydet_eval::experiments::incremental::run(&config));
}
