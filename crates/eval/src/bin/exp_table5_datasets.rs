//! Driver for Table V (dataset overview).

fn main() {
    let config = copydet_eval::ExperimentConfig::from_env();
    println!("{}", copydet_eval::experiments::datasets::run(&config));
}
