//! Driver for Table IX (sampling strategies).

fn main() {
    let config = copydet_eval::ExperimentConfig::from_env();
    println!("{}", copydet_eval::experiments::sampling::run(&config));
}
