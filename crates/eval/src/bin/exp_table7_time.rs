//! Driver for Table VII (execution time and improvements).

fn main() {
    let config = copydet_eval::ExperimentConfig::from_env();
    println!("{}", copydet_eval::experiments::timing::run(&config));
}
