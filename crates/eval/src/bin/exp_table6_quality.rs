//! Driver for Table VI (copy-detection and truth-discovery quality).

fn main() {
    let config = copydet_eval::ExperimentConfig::from_env();
    for table in copydet_eval::experiments::quality::run(&config) {
        println!("{table}");
    }
}
