//! # copydet-eval
//!
//! The evaluation harness: quality metrics, timing comparisons, paper-style
//! table rendering, and one driver per table/figure of the paper's
//! evaluation (Section VI).
//!
//! The harness is organized around three pieces:
//!
//! * [`Method`] — the named configurations the paper compares (PAIRWISE,
//!   SAMPLE1, SAMPLE2, INDEX, BOUND, BOUND+, HYBRID, INCREMENTAL,
//!   SCALESAMPLE, FAGININPUT), each of which can build a fresh
//!   [`copydet_detect::CopyDetector`];
//! * [`metrics`] — copy-detection precision/recall/F-measure against a
//!   reference method (the paper compares against PAIRWISE), fusion
//!   accuracy against a gold standard, fusion difference, and accuracy
//!   variance;
//! * [`experiments`] — one function per table/figure that assembles
//!   workloads from `copydet-synth` presets, runs the relevant methods, and
//!   renders a [`TextTable`] in the same shape as the paper's table.
//!
//! The experiment drivers are also exposed as binaries (`exp_table6_quality`
//! etc., see `src/bin/`) so every number in EXPERIMENTS.md can be
//! regenerated from the command line.

#![forbid(unsafe_code)]
#![deny(unused_must_use)]
#![warn(missing_docs)]

mod config;
pub mod experiments;
mod methods;
pub mod metrics;
mod runner;
mod table;

pub use config::ExperimentConfig;
pub use methods::Method;
pub use runner::{run_fusion, run_single_round, FusionRun};
pub use table::TextTable;
