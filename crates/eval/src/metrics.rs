//! Quality metrics: copy-detection precision/recall/F-measure and the
//! truth-finding measures of Section VI-A.

use copydet_bayes::SourceAccuracies;
use copydet_model::{ItemId, SourcePair, ValueId};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Precision / recall / F-measure of a set of predicted copying pairs
/// against a reference set.
///
/// The paper measures every scalable method against PAIRWISE: *precision* is
/// the fraction of the method's copying pairs that PAIRWISE also outputs,
/// *recall* the fraction of PAIRWISE's copying pairs the method outputs.
/// The same structure is reused against the planted gold standard of the
/// synthetic workloads.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CopyDetectionQuality {
    /// Fraction of predicted copying pairs present in the reference.
    pub precision: f64,
    /// Fraction of reference copying pairs that were predicted.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f_measure: f64,
    /// Number of predicted copying pairs.
    pub predicted: usize,
    /// Number of reference copying pairs.
    pub reference: usize,
}

impl CopyDetectionQuality {
    /// Computes the quality of `predicted` against `reference`.
    ///
    /// Edge cases follow the usual conventions: if both sets are empty,
    /// precision = recall = F = 1 (the method is exactly right); if only the
    /// prediction is empty, recall = 0; if only the reference is empty,
    /// precision = 0.
    pub fn compare(predicted: &HashSet<SourcePair>, reference: &HashSet<SourcePair>) -> Self {
        let intersection = predicted.intersection(reference).count();
        let precision = if predicted.is_empty() {
            if reference.is_empty() {
                1.0
            } else {
                0.0
            }
        } else {
            intersection as f64 / predicted.len() as f64
        };
        let recall = if reference.is_empty() {
            if predicted.is_empty() {
                1.0
            } else {
                0.0
            }
        } else {
            intersection as f64 / reference.len() as f64
        };
        let f_measure = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        Self {
            precision,
            recall,
            f_measure,
            predicted: predicted.len(),
            reference: reference.len(),
        }
    }
}

/// Fraction of items on which two fusion results disagree (the paper's
/// "fusion difference"), evaluated over the union of items either result
/// answered.
pub fn fusion_difference(a: &HashMap<ItemId, ValueId>, b: &HashMap<ItemId, ValueId>) -> f64 {
    let items: HashSet<ItemId> = a.keys().chain(b.keys()).copied().collect();
    if items.is_empty() {
        return 0.0;
    }
    let different = items.iter().filter(|item| a.get(item) != b.get(item)).count();
    different as f64 / items.len() as f64
}

/// Mean absolute difference between two accuracy tables (the paper's
/// "accuracy variance" between a method's source accuracies and PAIRWISE's).
pub fn accuracy_variance(a: &SourceAccuracies, b: &SourceAccuracies) -> f64 {
    a.mean_abs_diff(b)
}

/// Fraction of gold-standard items on which a fusion result names the true
/// value (the paper's "fusion accuracy").
pub fn fusion_accuracy(
    truths: &HashMap<ItemId, ValueId>,
    gold: &HashMap<ItemId, ValueId>,
    sample: Option<&[ItemId]>,
) -> f64 {
    let items: Vec<ItemId> = match sample {
        Some(items) => items.to_vec(),
        None => gold.keys().copied().collect(),
    };
    if items.is_empty() {
        return 0.0;
    }
    let correct =
        items.iter().filter(|item| truths.get(item).copied() == gold.get(item).copied()).count();
    correct as f64 / items.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use copydet_model::SourceId;

    fn pair(a: u32, b: u32) -> SourcePair {
        SourcePair::new(SourceId::new(a), SourceId::new(b))
    }

    #[test]
    fn precision_recall_f() {
        let reference: HashSet<_> = [pair(0, 1), pair(2, 3), pair(4, 5)].into_iter().collect();
        let predicted: HashSet<_> = [pair(0, 1), pair(2, 3), pair(6, 7)].into_iter().collect();
        let q = CopyDetectionQuality::compare(&predicted, &reference);
        assert!((q.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((q.recall - 2.0 / 3.0).abs() < 1e-12);
        assert!((q.f_measure - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(q.predicted, 3);
        assert_eq!(q.reference, 3);
    }

    #[test]
    fn empty_sets_edge_cases() {
        let empty = HashSet::new();
        let some: HashSet<_> = [pair(0, 1)].into_iter().collect();
        let both_empty = CopyDetectionQuality::compare(&empty, &empty);
        assert_eq!(both_empty.precision, 1.0);
        assert_eq!(both_empty.recall, 1.0);
        let nothing_predicted = CopyDetectionQuality::compare(&empty, &some);
        assert_eq!(nothing_predicted.recall, 0.0);
        assert_eq!(nothing_predicted.f_measure, 0.0);
        let nothing_real = CopyDetectionQuality::compare(&some, &empty);
        assert_eq!(nothing_real.precision, 0.0);
    }

    #[test]
    fn fusion_difference_counts_disagreements() {
        let a: HashMap<_, _> =
            [(ItemId::new(0), ValueId::new(0)), (ItemId::new(1), ValueId::new(1))]
                .into_iter()
                .collect();
        let mut b = a.clone();
        assert_eq!(fusion_difference(&a, &b), 0.0);
        b.insert(ItemId::new(1), ValueId::new(9));
        assert!((fusion_difference(&a, &b) - 0.5).abs() < 1e-12);
        // Items answered by only one side count as disagreements.
        b.insert(ItemId::new(2), ValueId::new(2));
        assert!((fusion_difference(&a, &b) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(fusion_difference(&HashMap::new(), &HashMap::new()), 0.0);
    }

    #[test]
    fn fusion_accuracy_over_sample() {
        let gold: HashMap<_, _> = [
            (ItemId::new(0), ValueId::new(0)),
            (ItemId::new(1), ValueId::new(1)),
            (ItemId::new(2), ValueId::new(2)),
        ]
        .into_iter()
        .collect();
        let truths: HashMap<_, _> =
            [(ItemId::new(0), ValueId::new(0)), (ItemId::new(1), ValueId::new(5))]
                .into_iter()
                .collect();
        assert!((fusion_accuracy(&truths, &gold, None) - 1.0 / 3.0).abs() < 1e-12);
        let sample = [ItemId::new(0), ItemId::new(1)];
        assert!((fusion_accuracy(&truths, &gold, Some(&sample)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn accuracy_variance_is_mean_abs_diff() {
        let a = SourceAccuracies::from_vec(vec![0.9, 0.5]).unwrap();
        let b = SourceAccuracies::from_vec(vec![0.8, 0.5]).unwrap();
        assert!((accuracy_variance(&a, &b) - 0.05).abs() < 1e-9);
    }
}
