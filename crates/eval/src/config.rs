//! Scale configuration shared by every experiment driver.

use serde::{Deserialize, Serialize};

/// How large the synthetic workloads are, as a fraction of the paper's
/// dataset sizes.
///
/// The defaults keep every experiment comfortably below a minute on a
/// laptop; the scales actually used for the numbers in EXPERIMENTS.md are
/// recorded there. Scales can be overridden from the environment
/// (`COPYDET_BOOK_SCALE`, `COPYDET_STOCK_SCALE`, `COPYDET_SEED`) so the
/// drivers can be rerun at larger sizes without recompiling.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Scale factor for the Book-CS / Book-full presets.
    pub book_scale: f64,
    /// Scale factor for the Stock-1day / Stock-2wk presets.
    pub stock_scale: f64,
    /// Seed for the synthetic generators and sampling.
    pub seed: u64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self { book_scale: 0.08, stock_scale: 0.015, seed: 20150301 }
    }
}

impl ExperimentConfig {
    /// A configuration small enough for unit tests.
    pub fn tiny() -> Self {
        Self { book_scale: 0.03, stock_scale: 0.004, seed: 7 }
    }

    /// Reads the configuration from the environment, falling back to the
    /// defaults for anything unset or malformed.
    pub fn from_env() -> Self {
        let mut config = Self::default();
        if let Ok(v) = std::env::var("COPYDET_BOOK_SCALE") {
            if let Ok(parsed) = v.parse::<f64>() {
                if parsed > 0.0 && parsed <= 1.0 {
                    config.book_scale = parsed;
                }
            }
        }
        if let Ok(v) = std::env::var("COPYDET_STOCK_SCALE") {
            if let Ok(parsed) = v.parse::<f64>() {
                if parsed > 0.0 && parsed <= 1.0 {
                    config.stock_scale = parsed;
                }
            }
        }
        if let Ok(v) = std::env::var("COPYDET_SEED") {
            if let Ok(parsed) = v.parse::<u64>() {
                config.seed = parsed;
            }
        }
        config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ExperimentConfig::default();
        assert!(c.book_scale > 0.0 && c.book_scale <= 1.0);
        assert!(c.stock_scale > 0.0 && c.stock_scale <= 1.0);
        let t = ExperimentConfig::tiny();
        assert!(t.book_scale <= c.book_scale);
    }
}
