//! Plain-text table rendering for experiment reports.

use serde::{Deserialize, Serialize};

/// A simple column-aligned text table (also renderable as Markdown), used by
/// every experiment driver to print paper-style tables.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates an empty table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells are rendered empty, extra cells are kept.
    pub fn add_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The rows added so far.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table as GitHub-flavoured Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            let mut cells = row.clone();
            cells.resize(self.headers.len(), String::new());
            out.push_str(&format!("| {} |\n", cells.join(" | ")));
        }
        out
    }

    fn column_widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(cell.len());
                } else {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        widths
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let widths = self.column_widths();
        writeln!(f, "{}", self.title)?;
        let header: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:width$}", h, width = widths.get(i).copied().unwrap_or(0)))
            .collect();
        writeln!(f, "  {}", header.join("  "))?;
        writeln!(
            f,
            "  {}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1))
        )?;
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(c.len()))
                })
                .collect();
            writeln!(f, "  {}", cells.join("  "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_text_and_markdown() {
        let mut t = TextTable::new("Demo", &["Method", "Time (s)"]);
        t.add_row(vec!["PAIRWISE".into(), "321".into()]);
        t.add_row(vec!["INDEX".into(), "1.6".into()]);
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.title(), "Demo");
        let text = t.to_string();
        assert!(text.contains("PAIRWISE"));
        assert!(text.contains("Time (s)"));
        let md = t.to_markdown();
        assert!(md.starts_with("### Demo"));
        assert!(md.contains("| PAIRWISE | 321 |"));
        assert_eq!(t.rows().len(), 2);
    }

    #[test]
    fn short_rows_are_padded_in_markdown() {
        let mut t = TextTable::new("Pad", &["a", "b", "c"]);
        t.add_row(vec!["1".into()]);
        let md = t.to_markdown();
        assert!(md.contains("| 1 |  |  |"));
    }
}
