//! The named method configurations the paper compares (Section VI-A,
//! "Implementation").

use copydet_detect::{
    BoundDetector, CopyDetector, FaginInputDetector, HybridDetector, IncrementalDetector,
    IndexDetector, PairwiseDetector, SampledDetector, SamplingStrategy,
};
use serde::{Deserialize, Serialize};

/// A copy-detection method as configured for the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    /// Exhaustive pairwise detection (the state of the art the paper speeds
    /// up).
    Pairwise,
    /// PAIRWISE over a naive random item sample (1% of the items on
    /// Stock-2wk, 10% elsewhere).
    Sample1,
    /// PAIRWISE over a cell-fraction sample (65% of the cells on Book-CS,
    /// 24% on Book-full; same as SAMPLE1 on the Stock datasets).
    Sample2,
    /// The INDEX algorithm (Section III).
    Index,
    /// The BOUND algorithm (Section IV-A).
    Bound,
    /// The BOUND+ algorithm (Section IV-B).
    BoundPlus,
    /// The HYBRID algorithm (Section IV, threshold 16).
    Hybrid,
    /// The INCREMENTAL algorithm (Section V; HYBRID for the first two
    /// rounds).
    Incremental,
    /// INCREMENTAL over a coverage-aware sample (≥ 4 items per source).
    ScaleSample,
    /// Generation of the input lists for Fagin's NRA (Section II-B).
    FaginInput,
}

impl Method {
    /// The method's display name, matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Pairwise => "PAIRWISE",
            Method::Sample1 => "SAMPLE1",
            Method::Sample2 => "SAMPLE2",
            Method::Index => "INDEX",
            Method::Bound => "BOUND",
            Method::BoundPlus => "BOUND+",
            Method::Hybrid => "HYBRID",
            Method::Incremental => "INCREMENTAL",
            Method::ScaleSample => "SCALESAMPLE",
            Method::FaginInput => "FAGININPUT",
        }
    }

    /// Every method.
    pub fn all() -> [Method; 10] {
        [
            Method::Pairwise,
            Method::Sample1,
            Method::Sample2,
            Method::Index,
            Method::Bound,
            Method::BoundPlus,
            Method::Hybrid,
            Method::Incremental,
            Method::ScaleSample,
            Method::FaginInput,
        ]
    }

    /// The methods in the order of Tables VI / VII.
    pub fn table7_order() -> [Method; 7] {
        [
            Method::Pairwise,
            Method::Sample1,
            Method::Sample2,
            Method::Index,
            Method::Hybrid,
            Method::Incremental,
            Method::ScaleSample,
        ]
    }

    /// The single-round algorithms of Figure 2.
    pub fn figure2_order() -> [Method; 4] {
        [Method::Index, Method::Bound, Method::BoundPlus, Method::Hybrid]
    }

    /// Item-sampling rate the paper uses for this dataset (1% of the items
    /// for Stock-2wk, 10% elsewhere).
    pub fn item_sampling_rate(dataset_name: &str) -> f64 {
        if dataset_name.contains("2wk") {
            0.01
        } else {
            0.1
        }
    }

    /// Cell-fraction sampling rate for SAMPLE2 (65% on Book-CS, 24% on
    /// Book-full; the Stock datasets fall back to item sampling).
    pub fn cell_sampling_fraction(dataset_name: &str) -> Option<f64> {
        if dataset_name.contains("book-cs") {
            Some(0.65)
        } else if dataset_name.contains("book-full") {
            Some(0.24)
        } else {
            None
        }
    }

    /// Builds a fresh detector configured for the given dataset.
    pub fn build_detector(&self, dataset_name: &str, seed: u64) -> Box<dyn CopyDetector> {
        let item_rate = Self::item_sampling_rate(dataset_name);
        match self {
            Method::Pairwise => Box::new(PairwiseDetector::new()),
            Method::Sample1 => Box::new(SampledDetector::new(
                SamplingStrategy::ByItem { rate: item_rate },
                seed,
                PairwiseDetector::new(),
                "SAMPLE1",
            )),
            Method::Sample2 => {
                let strategy = match Self::cell_sampling_fraction(dataset_name) {
                    Some(cell_fraction) => SamplingStrategy::ByCell { cell_fraction },
                    None => SamplingStrategy::ByItem { rate: item_rate },
                };
                Box::new(SampledDetector::new(strategy, seed, PairwiseDetector::new(), "SAMPLE2"))
            }
            Method::Index => Box::new(IndexDetector::new()),
            Method::Bound => Box::new(BoundDetector::eager()),
            Method::BoundPlus => Box::new(BoundDetector::lazy()),
            Method::Hybrid => Box::new(HybridDetector::new()),
            Method::Incremental => Box::new(IncrementalDetector::new()),
            Method::ScaleSample => Box::new(SampledDetector::new(
                SamplingStrategy::scale_sample(item_rate),
                seed,
                IncrementalDetector::new(),
                "SCALESAMPLE",
            )),
            Method::FaginInput => Box::new(FaginInputDetector::new()),
        }
    }
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_orders() {
        assert_eq!(Method::Pairwise.name(), "PAIRWISE");
        assert_eq!(Method::BoundPlus.to_string(), "BOUND+");
        assert_eq!(Method::all().len(), 10);
        assert_eq!(Method::table7_order()[0], Method::Pairwise);
        assert_eq!(Method::figure2_order().len(), 4);
    }

    #[test]
    fn sampling_rates_follow_the_paper() {
        assert_eq!(Method::item_sampling_rate("stock-2wk"), 0.01);
        assert_eq!(Method::item_sampling_rate("stock-1day"), 0.1);
        assert_eq!(Method::item_sampling_rate("book-cs"), 0.1);
        assert_eq!(Method::cell_sampling_fraction("book-cs"), Some(0.65));
        assert_eq!(Method::cell_sampling_fraction("book-full"), Some(0.24));
        assert_eq!(Method::cell_sampling_fraction("stock-1day"), None);
    }

    #[test]
    fn every_method_builds_a_detector() {
        for method in Method::all() {
            let detector = method.build_detector("book-cs", 1);
            assert!(!detector.name().is_empty());
        }
        // Sampled detectors carry the method name.
        let d = Method::ScaleSample.build_detector("stock-1day", 1);
        assert_eq!(d.name(), "SCALESAMPLE");
        let d = Method::Sample2.build_detector("stock-1day", 1);
        assert_eq!(d.name(), "SAMPLE2");
    }
}
