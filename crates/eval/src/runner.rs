//! Running a method end-to-end (inside the iterative fusion loop) or for a
//! single detection round, with timing.

use crate::methods::Method;
use copydet_bayes::{CopyParams, SourceAccuracies, ValueProbabilities};
use copydet_detect::{CopyDetector, DetectionResult, RoundInput};
use copydet_fusion::{AccuCopy, FusionConfig, FusionOutcome};
use copydet_synth::SyntheticDataset;
use std::time::{Duration, Instant};

/// The outcome of running one method through the full iterative fusion
/// process on one dataset.
pub struct FusionRun {
    /// The method that was run.
    pub method: Method,
    /// Dataset name.
    pub dataset: String,
    /// The fusion outcome (truths, accuracies, per-round stats).
    pub outcome: FusionOutcome,
    /// Total copy-detection time summed over rounds.
    pub detection_time: Duration,
    /// Total copy-detection computations summed over rounds.
    pub detection_computations: u64,
    /// Wall-clock time of the whole fusion run.
    pub total_time: Duration,
}

/// Runs `method` inside the iterative fusion loop on `synth`.
pub fn run_fusion(
    synth: &SyntheticDataset,
    method: Method,
    params: CopyParams,
    seed: u64,
) -> FusionRun {
    let detector = method.build_detector(&synth.name, seed);
    let config = FusionConfig { params, ..FusionConfig::default() };
    let mut process = AccuCopy::new(config, DynDetector(detector));
    let start = Instant::now();
    let outcome = process.run(&synth.dataset).expect("synthetic datasets are non-empty");
    let total_time = start.elapsed();
    FusionRun {
        method,
        dataset: synth.name.clone(),
        detection_time: outcome.total_detection_time(),
        detection_computations: outcome.total_detection_computations(),
        outcome,
        total_time,
    }
}

/// Runs a single detection round of `method` against a fixed accuracy /
/// probability state (uniform accuracies, voting-based probabilities), as
/// the single-round comparisons of Figure 2 / Figure 3 require.
pub fn run_single_round(
    synth: &SyntheticDataset,
    detector: &mut dyn CopyDetector,
    params: CopyParams,
) -> DetectionResult {
    let accuracies = SourceAccuracies::uniform(synth.dataset.num_sources(), 0.8)
        .expect("0.8 is a valid accuracy");
    let probabilities = bootstrap_probabilities(synth, &accuracies, params);
    let input = RoundInput::new(&synth.dataset, &accuracies, &probabilities, params);
    detector.detect_round(&input, 1)
}

/// The bootstrap value probabilities used for single-round experiments:
/// accuracy-weighted voting without copy discounting.
pub fn bootstrap_probabilities(
    synth: &SyntheticDataset,
    accuracies: &SourceAccuracies,
    params: CopyParams,
) -> ValueProbabilities {
    copydet_fusion::value_probabilities(
        &synth.dataset,
        accuracies,
        None,
        &copydet_fusion::VoteConfig::new(params),
    )
}

/// A boxed detector adapter so `AccuCopy` (generic over `D: CopyDetector`)
/// can drive trait objects produced by [`Method::build_detector`].
struct DynDetector(Box<dyn CopyDetector>);

impl CopyDetector for DynDetector {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn detect_round(&mut self, input: &RoundInput<'_>, round: usize) -> DetectionResult {
        self.0.detect_round(input, round)
    }
    fn reset(&mut self) {
        self.0.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copydet_synth::SynthConfig;

    fn small_dataset() -> SyntheticDataset {
        copydet_synth::generate("small", &SynthConfig::small(3))
    }

    #[test]
    fn run_fusion_produces_truths_and_timing() {
        let synth = small_dataset();
        let run = run_fusion(&synth, Method::Index, CopyParams::paper_defaults(), 1);
        assert_eq!(run.method, Method::Index);
        assert_eq!(run.dataset, "small");
        assert!(!run.outcome.truths.is_empty());
        assert!(run.detection_computations > 0);
        assert!(run.total_time >= run.detection_time);
        // With decent source accuracies the fusion recovers most truths.
        let accuracy = synth.gold.fusion_accuracy(&run.outcome.truths, None);
        assert!(accuracy > 0.6, "fusion accuracy {accuracy} unexpectedly low");
    }

    #[test]
    fn single_round_runner_detects_planted_copying() {
        let synth = small_dataset();
        let mut detector = Method::Hybrid.build_detector(&synth.name, 1);
        let result = run_single_round(&synth, detector.as_mut(), CopyParams::paper_defaults());
        let planted = synth.gold.copying_pairs();
        let found: std::collections::HashSet<_> = result.copying_pairs().collect();
        // At least half of the planted pairs are already visible in a single
        // bootstrap round (the full loop finds them all).
        let hit = planted.iter().filter(|p| found.contains(p)).count();
        assert!(hit * 2 >= planted.len(), "only {hit} of {} planted pairs found", planted.len());
    }
}
