//! The worked examples of Sections II–V on the motivating dataset
//! (Tables I–IV).

use crate::TextTable;
use copydet_bayes::{CopyParams, SourceAccuracies, ValueProbabilities};
use copydet_detect::{
    bound_detection, hybrid_detection, index_detection, pairwise_detection, RoundInput,
};
use copydet_fusion::{AccuCopy, FusionConfig};
use copydet_index::InvertedIndex;
use copydet_model::motivating_example;

/// Reproduces Table III: the inverted index of the motivating example with
/// its probabilities, contribution scores and providers.
pub fn table_iii_index() -> TextTable {
    let ex = motivating_example();
    let accuracies = SourceAccuracies::from_vec(ex.accuracies.clone()).expect("valid accuracies");
    let probabilities =
        ValueProbabilities::from_table(ex.probability_table()).expect("valid probabilities");
    let params = CopyParams::paper_defaults();
    let index = InvertedIndex::build(&ex.dataset, &accuracies, &probabilities, &params);

    let mut table = TextTable::new(
        "Table III — inverted index for the motivating example",
        &["Value", "Pr", "Score", "Providers", "In Ē"],
    );
    for (idx, entry) in index.entries().iter().enumerate() {
        let providers: Vec<String> =
            entry.providers.iter().map(|&s| ex.dataset.source_name(s).to_string()).collect();
        table.add_row(vec![
            format!("{}.{}", ex.dataset.item_name(entry.item), ex.dataset.value_str(entry.value)),
            format!("{:.2}", entry.probability),
            format!("{:.2}", entry.score),
            providers.join(","),
            if index.in_ebar(idx) { "yes".into() } else { "".into() },
        ]);
    }
    table
}

/// Reproduces Table II: per-round source accuracies of the iterative fusion
/// process (for the first five sources, as in the paper).
pub fn table_ii_rounds() -> TextTable {
    let ex = motivating_example();
    let mut process =
        AccuCopy::new(FusionConfig::default(), copydet_detect::PairwiseDetector::new());
    let outcome = process.run(&ex.dataset).expect("motivating example is non-empty");
    let mut table = TextTable::new(
        "Table II — source accuracy per round (S0–S4)",
        &["Source", "Rnd 1", "Rnd 2", "Rnd 3", "Rnd 4", "Rnd 5"],
    );
    for s in 0..5usize {
        let mut row = vec![format!("S{s}")];
        for round in 0..5 {
            let cell = outcome
                .round_stats
                .get(round)
                .map(|r| format!("{:.2}", r.accuracies[s]))
                .unwrap_or_else(|| format!("{:.2}", outcome.accuracies.as_slice()[s]));
            row.push(cell);
        }
        table.add_row(row);
    }
    table
}

/// Reproduces the efficiency accounting of Examples 3.6 and 4.2: pairs,
/// shared values and computations of PAIRWISE / INDEX / BOUND / HYBRID on
/// the motivating example.
pub fn example_efficiency() -> TextTable {
    let ex = motivating_example();
    let accuracies = SourceAccuracies::from_vec(ex.accuracies.clone()).expect("valid accuracies");
    let probabilities =
        ValueProbabilities::from_table(ex.probability_table()).expect("valid probabilities");
    let params = CopyParams::paper_defaults();
    let input = RoundInput::new(&ex.dataset, &accuracies, &probabilities, params);

    let results = [
        pairwise_detection(&input),
        index_detection(&input),
        bound_detection(&input, false),
        bound_detection(&input, true),
        hybrid_detection(&input, 16),
    ];
    let mut table = TextTable::new(
        "Examples 3.6 / 4.2 — single-round efficiency on the motivating example",
        &["Method", "Pairs", "Shared values", "Computations", "Copying pairs"],
    );
    for r in &results {
        table.add_row(vec![
            r.algorithm.clone(),
            r.pairs_considered.to_string(),
            r.shared_values_examined.to_string(),
            r.computations().to_string(),
            r.num_copying_pairs().to_string(),
        ]);
    }
    table
}

/// All motivating-example tables, in presentation order.
pub fn run() -> Vec<TextTable> {
    vec![table_iii_index(), table_ii_rounds(), example_efficiency()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_has_13_entries_with_ebar_marked() {
        let t = table_iii_index();
        assert_eq!(t.num_rows(), 13);
        let ebar_rows = t.rows().iter().filter(|r| r[4] == "yes").count();
        assert_eq!(ebar_rows, 2);
        assert!(t.rows()[0][0].contains("AZ.Tempe"));
    }

    #[test]
    fn table_ii_tracks_five_sources() {
        let t = table_ii_rounds();
        assert_eq!(t.num_rows(), 5);
        assert_eq!(t.rows()[0][0], "S0");
    }

    #[test]
    fn efficiency_table_shows_index_beats_pairwise() {
        let t = example_efficiency();
        assert_eq!(t.num_rows(), 5);
        let computations: Vec<u64> = t.rows().iter().map(|r| r[3].parse().unwrap()).collect();
        // INDEX (row 1) does fewer computations than PAIRWISE (row 0).
        assert!(computations[1] < computations[0]);
        // Every method finds the 6 planted copying pairs.
        for row in t.rows() {
            assert_eq!(row[4], "6");
        }
        assert_eq!(run().len(), 3);
    }
}
