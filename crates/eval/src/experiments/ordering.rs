//! Figure 3 — the effect of the entry processing order (Random, ByProvider,
//! ByContribution) on BOUND and HYBRID.

use crate::experiments::workloads;
use crate::runner::run_single_round;
use crate::{ExperimentConfig, TextTable};
use copydet_bayes::CopyParams;
use copydet_detect::{BoundDetector, HybridDetector};
use copydet_index::EntryOrdering;

/// The orderings compared in Figure 3.
fn orderings(seed: u64) -> [(&'static str, EntryOrdering); 3] {
    [
        ("RANDOM", EntryOrdering::Random { seed }),
        ("BYPROVIDER", EntryOrdering::ByProvider),
        ("BYCONTRIBUTION", EntryOrdering::ByContribution),
    ]
}

/// One measured point: single-round computations for an ordering under an
/// algorithm. The paper plots time ratios; computation ratios are reported
/// alongside because they are deterministic and scale-independent.
#[derive(Debug, Clone)]
pub struct OrderingPoint {
    /// "BOUND" or "HYBRID".
    pub algorithm: &'static str,
    /// Ordering name.
    pub ordering: &'static str,
    /// Dataset name.
    pub dataset: String,
    /// Computations in a single bootstrap round.
    pub computations: u64,
    /// Detection seconds in a single bootstrap round.
    pub seconds: f64,
}

/// Measures every Figure 3 point.
pub fn measure(config: &ExperimentConfig) -> Vec<OrderingPoint> {
    let params = CopyParams::paper_defaults();
    let mut points = Vec::new();
    for synth in workloads(config) {
        for (ordering_name, ordering) in orderings(config.seed) {
            let mut bound = BoundDetector { lazy: false, ordering };
            let result = run_single_round(&synth, &mut bound, params);
            points.push(OrderingPoint {
                algorithm: "BOUND",
                ordering: ordering_name,
                dataset: synth.name.clone(),
                computations: result.computations(),
                seconds: result.detection_time.as_secs_f64(),
            });
            let mut hybrid = HybridDetector { switch_threshold: 16, ordering };
            let result = run_single_round(&synth, &mut hybrid, params);
            points.push(OrderingPoint {
                algorithm: "HYBRID",
                ordering: ordering_name,
                dataset: synth.name.clone(),
                computations: result.computations(),
                seconds: result.detection_time.as_secs_f64(),
            });
        }
    }
    points
}

/// Renders Figure 3: per algorithm, the computation ratio of each ordering
/// relative to RANDOM.
pub fn run(config: &ExperimentConfig) -> Vec<TextTable> {
    let points = measure(config);
    let datasets: Vec<String> = {
        let mut names: Vec<String> = points.iter().map(|p| p.dataset.clone()).collect();
        names.sort();
        names.dedup();
        names
    };
    let mut tables = Vec::new();
    for algorithm in ["BOUND", "HYBRID"] {
        let mut headers = vec!["Ordering".to_string()];
        headers.extend(datasets.iter().cloned());
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut table = TextTable::new(
            format!("Figure 3 — computation ratio vs RANDOM ordering ({algorithm})"),
            &header_refs,
        );
        for (ordering_name, _) in orderings(config.seed) {
            let mut row = vec![ordering_name.to_string()];
            for dataset in &datasets {
                let get = |o: &str| {
                    points
                        .iter()
                        .find(|p| {
                            p.algorithm == algorithm && p.ordering == o && &p.dataset == dataset
                        })
                        .map(|p| p.computations as f64)
                        .unwrap_or(f64::NAN)
                };
                let random = get("RANDOM");
                let this = get(ordering_name);
                row.push(if random > 0.0 { format!("{:.2}", this / random) } else { "-".into() });
            }
            table.add_row(row);
        }
        tables.push(table);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_contribution_is_never_worse_than_random_for_bound() {
        let points = measure(&ExperimentConfig::tiny());
        // 4 datasets × 3 orderings × 2 algorithms.
        assert_eq!(points.len(), 24);
        for dataset in ["book-cs", "stock-1day", "book-full", "stock-2wk"] {
            let get = |ordering: &str| {
                points
                    .iter()
                    .find(|p| {
                        p.algorithm == "BOUND" && p.ordering == ordering && p.dataset == dataset
                    })
                    .unwrap()
                    .computations
            };
            // Processing strong evidence first lets BOUND terminate pairs
            // sooner, so it needs no more computations than a random order
            // (a small tolerance covers tie-breaking noise at tiny scale).
            let by_contribution = get("BYCONTRIBUTION") as f64;
            let random = get("RANDOM") as f64;
            assert!(
                by_contribution <= random * 1.05,
                "BYCONTRIBUTION ({by_contribution}) worse than RANDOM ({random}) on {dataset}"
            );
        }
        let tables = run(&ExperimentConfig::tiny());
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].num_rows(), 3);
    }
}
