//! Table VIII — per-round cost of INCREMENTAL relative to HYBRID, and the
//! fraction of pairs that terminate in each incremental pass.

use crate::experiments::workloads;
use crate::{ExperimentConfig, TextTable};
use copydet_bayes::CopyParams;
use copydet_detect::{HybridDetector, IncrementalDetector};
use copydet_fusion::{AccuCopy, FusionConfig, FusionOutcome};
use copydet_synth::SyntheticDataset;

/// The measurements for one workload.
#[derive(Debug, Clone)]
pub struct IncrementalMeasurement {
    /// Dataset name.
    pub dataset: String,
    /// Per-round copy-detection time of HYBRID (index 0 = round 1).
    pub hybrid_round_times: Vec<f64>,
    /// Per-round copy-detection time of INCREMENTAL.
    pub incremental_round_times: Vec<f64>,
    /// Pass-1 / pass-2 / pass-3 shares over all incremental rounds.
    pub pass_fractions: [f64; 3],
}

fn round_times(outcome: &FusionOutcome) -> Vec<f64> {
    outcome.round_stats.iter().map(|r| r.timings.copy_detection.as_secs_f64()).collect()
}

/// Measures one workload.
pub fn measure_one(synth: &SyntheticDataset, params: CopyParams) -> IncrementalMeasurement {
    let config = FusionConfig { params, ..FusionConfig::default() };

    let mut hybrid = AccuCopy::new(config, HybridDetector::new());
    let hybrid_outcome = hybrid.run(&synth.dataset).expect("non-empty dataset");

    let mut incremental = AccuCopy::new(config, IncrementalDetector::new());
    let incremental_outcome = incremental.run(&synth.dataset).expect("non-empty dataset");
    let detector = incremental.into_detector();
    let (mut p1, mut p2, mut p3) = (0usize, 0usize, 0usize);
    for s in detector.round_stats() {
        p1 += s.pass1;
        p2 += s.pass2 + s.accuracy_recomputed;
        p3 += s.pass3;
    }
    let total = (p1 + p2 + p3).max(1) as f64;

    IncrementalMeasurement {
        dataset: synth.name.clone(),
        hybrid_round_times: round_times(&hybrid_outcome),
        incremental_round_times: round_times(&incremental_outcome),
        pass_fractions: [p1 as f64 / total, p2 as f64 / total, p3 as f64 / total],
    }
}

/// Builds Table VIII: the per-round time ratio of INCREMENTAL vs HYBRID for
/// rounds 3 onwards, and the pass-termination percentages.
pub fn run(config: &ExperimentConfig) -> TextTable {
    let params = CopyParams::paper_defaults();
    let measurements: Vec<IncrementalMeasurement> =
        workloads(config).iter().map(|w| measure_one(w, params)).collect();

    let mut headers = vec!["Round / pass".to_string()];
    headers.extend(measurements.iter().map(|m| m.dataset.clone()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = TextTable::new(
        "Table VIII — INCREMENTAL vs HYBRID per round, and pass termination shares",
        &header_refs,
    );

    let max_rounds = measurements
        .iter()
        .map(|m| m.incremental_round_times.len().min(m.hybrid_round_times.len()))
        .max()
        .unwrap_or(0);
    for round in 3..=max_rounds {
        let mut row = vec![format!("Round {round}")];
        for m in &measurements {
            let ratio = match (
                m.incremental_round_times.get(round - 1),
                m.hybrid_round_times.get(round - 1),
            ) {
                (Some(&inc), Some(&hyb)) if hyb > 0.0 => format!("{:.1}%", inc / hyb * 100.0),
                _ => "-".to_string(),
            };
            row.push(ratio);
        }
        table.add_row(row);
    }
    for (idx, label) in ["Pass 1", "Pass 2", "Pass 3"].iter().enumerate() {
        let mut row = vec![label.to_string()];
        for m in &measurements {
            row.push(format!("{:.0}%", m.pass_fractions[idx] * 100.0));
        }
        table.add_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incremental_saves_time_and_terminates_mostly_in_pass_1() {
        let config = ExperimentConfig::tiny();
        let synth = copydet_synth::presets::book_cs(config.book_scale, config.seed);
        let m = measure_one(&synth, CopyParams::paper_defaults());
        // Past the warm-up, the incremental rounds perform far fewer
        // computations than HYBRID's; wall-clock at tiny scale is noisy, so
        // assert the structural property: most pairs terminate in pass 1
        // (the paper reports 86–99%).
        assert!(
            m.pass_fractions[0] > 0.5,
            "only {:.0}% of pairs terminated in pass 1",
            m.pass_fractions[0] * 100.0
        );
        assert!(m.pass_fractions.iter().sum::<f64>() > 0.99);
        // The rendered table has pass rows for all four datasets.
        let table = run(&config);
        assert!(table.num_rows() >= 3);
        let last = table.rows().last().unwrap();
        assert_eq!(last[0], "Pass 3");
    }
}
