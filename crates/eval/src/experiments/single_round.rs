//! Figure 2 — number of computations and copy-detection time of the
//! single-round algorithms (INDEX, BOUND, BOUND+, HYBRID), accumulated over
//! all rounds of the fusion loop.

use crate::experiments::workloads;
use crate::runner::run_fusion;
use crate::{ExperimentConfig, Method, TextTable};
use copydet_bayes::CopyParams;

/// One measured point of Figure 2.
#[derive(Debug, Clone)]
pub struct SingleRoundPoint {
    /// The algorithm.
    pub method: Method,
    /// Dataset name.
    pub dataset: String,
    /// Total computations across all rounds.
    pub computations: u64,
    /// Total copy-detection time across all rounds (seconds).
    pub detection_seconds: f64,
}

/// Measures every Figure 2 point.
pub fn measure(config: &ExperimentConfig) -> Vec<SingleRoundPoint> {
    let params = CopyParams::paper_defaults();
    let mut points = Vec::new();
    for synth in workloads(config) {
        for method in Method::figure2_order() {
            let run = run_fusion(&synth, method, params, config.seed);
            points.push(SingleRoundPoint {
                method,
                dataset: synth.name.clone(),
                computations: run.detection_computations,
                detection_seconds: run.detection_time.as_secs_f64(),
            });
        }
    }
    points
}

/// Renders the two panels of Figure 2 as tables (computations, then time).
pub fn run(config: &ExperimentConfig) -> Vec<TextTable> {
    let points = measure(config);
    let datasets: Vec<String> = {
        let mut names: Vec<String> = points.iter().map(|p| p.dataset.clone()).collect();
        names.dedup();
        names
    };

    let mut headers = vec!["Algorithm".to_string()];
    headers.extend(datasets.iter().cloned());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();

    let mut computations =
        TextTable::new("Figure 2 (left) — computations of single-round algorithms", &header_refs);
    let mut time = TextTable::new(
        "Figure 2 (right) — copy-detection time (s) of single-round algorithms",
        &header_refs,
    );
    for method in Method::figure2_order() {
        let mut comp_row = vec![method.name().to_string()];
        let mut time_row = vec![method.name().to_string()];
        for dataset in &datasets {
            let p = points
                .iter()
                .find(|p| p.method == method && &p.dataset == dataset)
                .expect("every point was measured");
            comp_row.push(p.computations.to_string());
            time_row.push(format!("{:.3}", p.detection_seconds));
        }
        computations.add_row(comp_row);
        time.add_row(time_row);
    }
    vec![computations, time]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_measures_four_algorithms_on_four_datasets() {
        let points = measure(&ExperimentConfig::tiny());
        assert_eq!(points.len(), 16);
        for p in &points {
            assert!(p.computations > 0, "{} did no work on {}", p.method, p.dataset);
            assert!(p.detection_seconds >= 0.0);
        }
        // The relative ordering of BOUND vs BOUND+ is an empirical result
        // (the lazy timers trade bound evaluations for later termination),
        // so the structural check here is only that each algorithm produced
        // one point per dataset and the figure renders.
        for dataset in ["book-cs", "stock-1day", "book-full", "stock-2wk"] {
            for method in Method::figure2_order() {
                assert!(
                    points.iter().any(|p| p.method == method && p.dataset == dataset),
                    "missing point for {method} on {dataset}"
                );
            }
        }
        let tables = run(&ExperimentConfig::tiny());
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].num_rows(), 4);
    }
}
