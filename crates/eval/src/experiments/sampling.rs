//! Table IX — the coverage-aware SCALESAMPLE strategy against naive
//! by-item and by-cell sampling at matched rates.

use crate::experiments::small_workloads;
use crate::metrics::CopyDetectionQuality;
use crate::runner::{run_fusion, FusionRun};
use crate::{ExperimentConfig, Method, TextTable};
use copydet_bayes::CopyParams;
use copydet_detect::{sample_items, IncrementalDetector, SampledDetector, SamplingStrategy};
use copydet_fusion::{AccuCopy, FusionConfig};
use copydet_synth::SyntheticDataset;
use std::collections::HashSet;

/// Runs one sampling strategy (with INCREMENTAL inside, as the paper does)
/// through the fusion loop and returns its copying pairs.
fn copying_with_strategy(
    synth: &SyntheticDataset,
    strategy: SamplingStrategy,
    name: &'static str,
    params: CopyParams,
    seed: u64,
) -> HashSet<copydet_model::SourcePair> {
    let detector = SampledDetector::new(strategy, seed, IncrementalDetector::new(), name);
    let config = FusionConfig { params, ..FusionConfig::default() };
    let mut process = AccuCopy::new(config, detector);
    let outcome = process.run(&synth.dataset).expect("non-empty dataset");
    outcome.final_detection.as_ref().map(|d| d.copying_pairs().collect()).unwrap_or_default()
}

/// Builds Table IX for the Book-CS-like and Stock-1day-like workloads: the
/// quality (vs the unsampled INDEX reference) of SCALESAMPLE, BYITEM and
/// BYCELL, where the naive strategies are matched to SCALESAMPLE's realized
/// item and cell rates.
pub fn run(config: &ExperimentConfig) -> TextTable {
    let params = CopyParams::paper_defaults();
    let mut table = TextTable::new(
        "Table IX — comparing sampling methods (vs unsampled INDEX)",
        &["Dataset", "Method", "Prec", "Rec", "F-msr"],
    );
    for synth in small_workloads(config) {
        // The unsampled reference.
        let reference: FusionRun = run_fusion(&synth, Method::Index, params, config.seed);
        let reference_pairs: HashSet<_> = reference
            .outcome
            .final_detection
            .as_ref()
            .map(|d| d.copying_pairs().collect())
            .unwrap_or_default();

        // SCALESAMPLE's realized rates define the matched budgets.
        let base_rate = Method::item_sampling_rate(&synth.name);
        let scale_strategy = SamplingStrategy::scale_sample(base_rate);
        let sampled =
            sample_items(&synth.dataset, scale_strategy, config.seed).expect("valid sampling rate");
        let item_rate = sampled.len() as f64 / synth.dataset.num_items() as f64;
        let covered_cells: usize =
            sampled.iter().map(|&d| synth.dataset.item_provider_count(d)).sum();
        let cell_rate = covered_cells as f64 / synth.dataset.num_claims() as f64;

        let strategies: [(&'static str, SamplingStrategy); 3] = [
            ("SCALESAMPLE", scale_strategy),
            ("BYITEM", SamplingStrategy::ByItem { rate: item_rate.clamp(1e-6, 1.0) }),
            ("BYCELL", SamplingStrategy::ByCell { cell_fraction: cell_rate.clamp(1e-6, 1.0) }),
        ];
        for (name, strategy) in strategies {
            let pairs = copying_with_strategy(&synth, strategy, name, params, config.seed);
            let quality = CopyDetectionQuality::compare(&pairs, &reference_pairs);
            table.add_row(vec![
                synth.name.clone(),
                name.to_string(),
                format!("{:.2}", quality.precision),
                format!("{:.2}", quality.recall),
                format!("{:.2}", quality.f_measure),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_table_compares_three_strategies_per_dataset() {
        let table = run(&ExperimentConfig::tiny());
        assert_eq!(table.num_rows(), 6);
        let methods: Vec<&str> = table.rows().iter().map(|r| r[1].as_str()).collect();
        assert_eq!(
            methods,
            vec!["SCALESAMPLE", "BYITEM", "BYCELL", "SCALESAMPLE", "BYITEM", "BYCELL"]
        );
        // F-measures are valid fractions.
        for row in table.rows() {
            let f: f64 = row[4].parse().unwrap();
            assert!((0.0..=1.0).contains(&f));
        }
        // On the Book-like workload (low-coverage sources), SCALESAMPLE's
        // F-measure is at least as good as plain BYITEM sampling — the
        // paper's Table IX finding.
        let scale_f: f64 = table.rows()[0][4].parse().unwrap();
        let byitem_f: f64 = table.rows()[1][4].parse().unwrap();
        assert!(
            scale_f + 1e-9 >= byitem_f * 0.8,
            "SCALESAMPLE ({scale_f}) much worse than BYITEM ({byitem_f})"
        );
    }
}
