//! Table VI — copy-detection and truth-discovery quality of the scalable
//! methods, measured against PAIRWISE and against the gold standard.

use crate::experiments::small_workloads;
use crate::metrics::{accuracy_variance, fusion_accuracy, fusion_difference, CopyDetectionQuality};
use crate::runner::run_fusion;
use crate::{ExperimentConfig, Method, TextTable};
use copydet_bayes::CopyParams;
use std::collections::HashSet;

/// Builds the Table VI quality comparison for the Book-CS-like and
/// Stock-1day-like workloads.
pub fn run(config: &ExperimentConfig) -> Vec<TextTable> {
    let params = CopyParams::paper_defaults();
    let mut tables = Vec::new();
    for synth in small_workloads(config) {
        let reference = run_fusion(&synth, Method::Pairwise, params, config.seed);
        let reference_copying: HashSet<_> = reference
            .outcome
            .final_detection
            .as_ref()
            .map(|d| d.copying_pairs().collect())
            .unwrap_or_default();
        let gold_truths = &synth.gold.true_values;

        let mut table = TextTable::new(
            format!("Table VI — quality on {} (vs PAIRWISE)", synth.name),
            &["Method", "Prec", "Rec", "F-msr", "Fusion accu", "Fusion diff", "Accu var"],
        );
        // PAIRWISE row: quality against itself is 1 by definition; report its
        // fusion accuracy against the gold standard.
        table.add_row(vec![
            "PAIRWISE".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            format!("{:.3}", fusion_accuracy(&reference.outcome.truths, gold_truths, None)),
            "-".into(),
            "-".into(),
        ]);

        for method in [
            Method::Sample1,
            Method::Sample2,
            Method::Index,
            Method::Hybrid,
            Method::Incremental,
            Method::ScaleSample,
        ] {
            let run = run_fusion(&synth, method, params, config.seed);
            let copying: HashSet<_> = run
                .outcome
                .final_detection
                .as_ref()
                .map(|d| d.copying_pairs().collect())
                .unwrap_or_default();
            let quality = CopyDetectionQuality::compare(&copying, &reference_copying);
            table.add_row(vec![
                method.name().to_string(),
                format!("{:.3}", quality.precision),
                format!("{:.3}", quality.recall),
                format!("{:.3}", quality.f_measure),
                format!("{:.3}", fusion_accuracy(&run.outcome.truths, gold_truths, None)),
                format!("{:.3}", fusion_difference(&run.outcome.truths, &reference.outcome.truths)),
                format!(
                    "{:.3}",
                    accuracy_variance(&run.outcome.accuracies, &reference.outcome.accuracies)
                ),
            ]);
        }
        tables.push(table);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_tables_have_expected_shape_and_index_is_exact() {
        let tables = run(&ExperimentConfig::tiny());
        assert_eq!(tables.len(), 2);
        for table in &tables {
            assert_eq!(table.num_rows(), 7);
            // INDEX (row 3) reproduces PAIRWISE exactly: P = R = F = 1 and
            // fusion difference 0 (Proposition 3.5 / Table VI).
            let index_row = &table.rows()[3];
            assert_eq!(index_row[0], "INDEX");
            assert_eq!(index_row[1], "1.000");
            assert_eq!(index_row[2], "1.000");
            assert_eq!(index_row[3], "1.000");
            assert_eq!(index_row[5], "0.000");
            // HYBRID and INCREMENTAL stay close to PAIRWISE (the paper
            // reports F-measure ≥ .96; we allow a slightly wider margin at
            // tiny scale).
            for row_idx in [4usize, 5] {
                let f: f64 = table.rows()[row_idx][3].parse().unwrap();
                assert!(f >= 0.8, "{} F-measure {f} too low", table.rows()[row_idx][0]);
            }
        }
    }
}
