//! Table X — execution-time ratio of HYBRID (single round) and INCREMENTAL
//! (all rounds) relative to FAGININPUT.

use crate::experiments::workloads;
use crate::runner::{run_fusion, run_single_round};
use crate::{ExperimentConfig, Method, TextTable};
use copydet_bayes::CopyParams;

/// Builds Table X: for every workload, the ratio of HYBRID's single-round
/// time to FAGININPUT's single-round time, and of INCREMENTAL's all-round
/// time to FAGININPUT's all-round time (ratios below 1 mean the paper's
/// methods are faster).
pub fn run(config: &ExperimentConfig) -> TextTable {
    let params = CopyParams::paper_defaults();
    let sets = workloads(config);

    let mut headers = vec!["Method".to_string()];
    headers.extend(sets.iter().map(|s| s.name.clone()));
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table =
        TextTable::new("Table X — execution-time ratio w.r.t. FAGININPUT", &header_refs);

    let mut hybrid_row = vec!["HYBRID (single round)".to_string()];
    let mut incremental_row = vec!["INCREMENTAL (all rounds)".to_string()];
    for synth in &sets {
        // Single round: HYBRID vs FAGININPUT, on identical bootstrap state.
        let mut hybrid = Method::Hybrid.build_detector(&synth.name, config.seed);
        let hybrid_result = run_single_round(synth, hybrid.as_mut(), params);
        let mut fagin = Method::FaginInput.build_detector(&synth.name, config.seed);
        let fagin_result = run_single_round(synth, fagin.as_mut(), params);
        let single_ratio = if fagin_result.total_time().as_secs_f64() > 0.0 {
            hybrid_result.total_time().as_secs_f64() / fagin_result.total_time().as_secs_f64()
        } else {
            f64::NAN
        };
        hybrid_row.push(format!("{:.2}", single_ratio));

        // All rounds: INCREMENTAL vs FAGININPUT inside the fusion loop.
        let incremental = run_fusion(synth, Method::Incremental, params, config.seed);
        let fagin_all = run_fusion(synth, Method::FaginInput, params, config.seed);
        let all_ratio = if fagin_all.detection_time.as_secs_f64() > 0.0 {
            incremental.detection_time.as_secs_f64() / fagin_all.detection_time.as_secs_f64()
        } else {
            f64::NAN
        };
        incremental_row.push(format!("{:.2}", all_ratio));
    }
    table.add_row(hybrid_row);
    table.add_row(incremental_row);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fagin_ratios_are_rendered_for_all_workloads() {
        let table = run(&ExperimentConfig::tiny());
        assert_eq!(table.num_rows(), 2);
        assert_eq!(table.rows()[0].len(), 5);
        // Ratios parse as positive numbers.
        for row in table.rows() {
            for cell in &row[1..] {
                let v: f64 = cell.parse().unwrap();
                assert!(v > 0.0, "ratio {cell} not positive");
            }
        }
    }
}
