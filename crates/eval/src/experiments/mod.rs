//! One driver per table / figure of the paper's evaluation (Section VI).
//!
//! Every function takes an [`ExperimentConfig`] (workload scale + seed) and
//! returns one or more [`TextTable`]s shaped like the corresponding table or
//! figure in the paper. The binaries in `src/bin/` print these tables; the
//! numbers recorded in `EXPERIMENTS.md` were produced by exactly these
//! drivers.

pub mod datasets;
pub mod fagin;
pub mod incremental;
pub mod motivating;
pub mod ordering;
pub mod quality;
pub mod sampling;
pub mod single_round;
pub mod timing;

use crate::ExperimentConfig;
use copydet_synth::SyntheticDataset;

/// The four workloads in the paper's order (Book-CS, Stock-1day, Book-full,
/// Stock-2wk) at the configured scales.
pub fn workloads(config: &ExperimentConfig) -> Vec<SyntheticDataset> {
    copydet_synth::presets::all_presets(config.book_scale, config.stock_scale, config.seed)
}

/// The two small workloads (Book-CS, Stock-1day) the paper uses for the
/// quality comparisons (Tables VI and IX).
pub fn small_workloads(config: &ExperimentConfig) -> Vec<SyntheticDataset> {
    vec![
        copydet_synth::presets::book_cs(config.book_scale, config.seed),
        copydet_synth::presets::stock_1day(config.stock_scale, config.seed + 1),
    ]
}

/// Formats a ratio as a percentage improvement string ("99.5%").
pub(crate) fn improvement(old: f64, new: f64) -> String {
    if old <= 0.0 {
        return "-".to_string();
    }
    format!("{:.1}%", (1.0 - new / old) * 100.0)
}

/// Formats a duration in seconds with millisecond resolution.
pub(crate) fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_helpers() {
        let config = ExperimentConfig::tiny();
        let all = workloads(&config);
        assert_eq!(all.len(), 4);
        let small = small_workloads(&config);
        assert_eq!(small.len(), 2);
        assert_eq!(small[0].name, "book-cs");
        assert_eq!(small[1].name, "stock-1day");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(improvement(100.0, 1.0), "99.0%");
        assert_eq!(improvement(0.0, 1.0), "-");
        assert_eq!(secs(std::time::Duration::from_millis(1500)), "1.500");
    }
}
