//! Table VII — execution time of every method on all four workloads, with
//! the paper's chained improvement percentages.

use crate::experiments::{improvement, secs, workloads};
use crate::runner::run_fusion;
use crate::{ExperimentConfig, Method, TextTable};
use copydet_bayes::CopyParams;
use std::time::Duration;

/// One measured cell of Table VII.
#[derive(Debug, Clone)]
pub struct TimingCell {
    /// Method measured.
    pub method: Method,
    /// Dataset name.
    pub dataset: String,
    /// Total copy-detection time across all fusion rounds.
    pub detection_time: Duration,
    /// Total number of detection computations.
    pub computations: u64,
}

/// Runs every Table VII method on every workload and returns the raw cells.
pub fn measure(config: &ExperimentConfig) -> Vec<TimingCell> {
    let params = CopyParams::paper_defaults();
    let mut cells = Vec::new();
    for synth in workloads(config) {
        for method in Method::table7_order() {
            let run = run_fusion(&synth, method, params, config.seed);
            cells.push(TimingCell {
                method,
                dataset: synth.name.clone(),
                detection_time: run.detection_time,
                computations: run.detection_computations,
            });
        }
    }
    cells
}

/// Builds Table VII from the measured cells: per dataset, the detection time
/// of every method and the improvement relative to the paper's comparison
/// baseline (SAMPLE1/SAMPLE2/INDEX against PAIRWISE, every later method
/// against the row above it).
pub fn render(cells: &[TimingCell]) -> TextTable {
    let datasets: Vec<String> = {
        let mut names: Vec<String> = cells.iter().map(|c| c.dataset.clone()).collect();
        names.dedup();
        names
    };
    let mut headers: Vec<String> = vec!["Method".to_string()];
    for d in &datasets {
        headers.push(format!("{d} time (s)"));
        headers.push(format!("{d} improvement"));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = TextTable::new("Table VII — execution time and improvement", &header_refs);

    let time_of = |method: Method, dataset: &str| -> f64 {
        cells
            .iter()
            .find(|c| c.method == method && c.dataset == dataset)
            .map(|c| c.detection_time.as_secs_f64())
            .unwrap_or(0.0)
    };

    let order = Method::table7_order();
    for (row_idx, method) in order.iter().enumerate() {
        let mut row = vec![method.name().to_string()];
        for dataset in &datasets {
            let time = time_of(*method, dataset);
            row.push(format!("{:.3}", time));
            let baseline = match method {
                Method::Pairwise => None,
                Method::Sample1 | Method::Sample2 | Method::Index => {
                    Some(time_of(Method::Pairwise, dataset))
                }
                _ => Some(time_of(order[row_idx - 1], dataset)),
            };
            row.push(match baseline {
                Some(b) => improvement(b, time),
                None => "-".into(),
            });
        }
        table.add_row(row);
    }
    // Total improvement row: best (last) method vs PAIRWISE.
    let mut total = vec!["Total improvement".to_string()];
    for dataset in &datasets {
        let pairwise = time_of(Method::Pairwise, dataset);
        let best = time_of(*order.last().expect("non-empty"), dataset);
        total.push(secs(Duration::from_secs_f64(best)));
        total.push(improvement(pairwise, best));
    }
    table.add_row(total);
    table
}

/// Measures and renders Table VII.
pub fn run(config: &ExperimentConfig) -> TextTable {
    render(&measure(config))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_table_shape_and_speedups() {
        let config = ExperimentConfig::tiny();
        let cells = measure(&config);
        // 7 methods × 4 datasets.
        assert_eq!(cells.len(), 28);
        let table = render(&cells);
        assert_eq!(table.num_rows(), 8); // 7 methods + total row
        assert_eq!(table.rows()[0][0], "PAIRWISE");
        assert_eq!(table.rows()[7][0], "Total improvement");

        // The headline result at any scale: INDEX and the later methods do
        // far fewer computations than PAIRWISE on every dataset.
        for dataset in ["book-cs", "stock-1day", "book-full", "stock-2wk"] {
            let comp = |m: Method| {
                cells.iter().find(|c| c.method == m && c.dataset == dataset).unwrap().computations
            };
            assert!(
                comp(Method::Index) < comp(Method::Pairwise),
                "INDEX should do fewer computations than PAIRWISE on {dataset}"
            );
            assert!(
                comp(Method::Incremental) <= comp(Method::Index),
                "INCREMENTAL should not exceed INDEX computations on {dataset}"
            );
        }
    }
}
