//! Table V — overview of the (synthetic stand-ins for the) four evaluation
//! datasets.

use crate::experiments::workloads;
use crate::{ExperimentConfig, TextTable};
use copydet_bayes::{CopyParams, SourceAccuracies, ValueProbabilities};
use copydet_index::InvertedIndex;

/// Builds the Table V overview: sources, items, distinct values and index
/// entries per dataset.
pub fn run(config: &ExperimentConfig) -> TextTable {
    let mut table = TextTable::new(
        format!(
            "Table V — overview of data sets (book scale {}, stock scale {})",
            config.book_scale, config.stock_scale
        ),
        &[
            "Dataset",
            "#Srcs",
            "#Items",
            "#Dist-values",
            "#Index-entries",
            "Avg values/item",
            "Low-coverage srcs",
        ],
    );
    for synth in workloads(config) {
        let stats = synth.dataset.stats();
        // The index-entry count mirrors the paper's definition: shared
        // (item, value) combinations. Build an index with bootstrap state to
        // confirm the two agree.
        let params = CopyParams::paper_defaults();
        let accuracies =
            SourceAccuracies::uniform(synth.dataset.num_sources(), 0.8).expect("valid accuracy");
        let probabilities = ValueProbabilities::uniform_over_dataset(&synth.dataset, 0.5)
            .expect("valid probability");
        let index = InvertedIndex::build(&synth.dataset, &accuracies, &probabilities, &params);
        assert_eq!(index.len(), stats.num_shared_item_values);
        table.add_row(vec![
            synth.name.clone(),
            stats.num_sources.to_string(),
            stats.num_items.to_string(),
            stats.num_distinct_item_values.to_string(),
            index.len().to_string(),
            format!("{:.1}", stats.avg_values_per_item),
            format!("{:.0}%", stats.frac_sources_low_coverage * 100.0),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_v_lists_four_datasets() {
        let t = run(&ExperimentConfig::tiny());
        assert_eq!(t.num_rows(), 4);
        let names: Vec<&str> = t.rows().iter().map(|r| r[0].as_str()).collect();
        assert_eq!(names, vec!["book-cs", "stock-1day", "book-full", "stock-2wk"]);
        // Stock-2wk has more items than Stock-1day; Book-full more than
        // Book-CS (the ordering property of Table V).
        let items: Vec<usize> = t.rows().iter().map(|r| r[2].parse().unwrap()).collect();
        assert!(items[3] > items[1]);
        assert!(items[2] > items[0]);
        // Every dataset produces a non-empty index.
        for row in t.rows() {
            let entries: usize = row[4].parse().unwrap();
            assert!(entries > 0);
        }
    }
}
