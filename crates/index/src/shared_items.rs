//! Shared-item counting: `l(S1, S2)`, the number of data items both sources
//! provide (regardless of whether the values agree).
//!
//! The counts are produced by a single pass over the per-item provider lists
//! (the flattened inverted index on items), the same idea as the
//! count-based set-similarity-join the paper cites: for each item, every
//! pair of its providers gets one increment. For datasets with few sources
//! (the Stock family) a dense triangular matrix is used; for datasets with
//! many, mostly non-overlapping sources (the Book family) a hash map keyed by
//! [`SourcePair`] keeps memory proportional to the number of pairs that
//! actually share something.

use copydet_model::{Dataset, SourceId, SourcePair};
use std::collections::HashMap;

/// Above this number of sources the dense triangular matrix (which needs
/// `n·(n−1)/2` counters) is abandoned in favour of a sparse map.
const DENSE_LIMIT: usize = 4096;

/// The number of shared data items for every pair of sources that shares at
/// least one item.
#[derive(Debug, Clone)]
pub struct SharedItemCounts {
    repr: Repr,
    num_sources: usize,
}

#[derive(Debug, Clone)]
enum Repr {
    /// Lower-triangular matrix: slot for pair `(i, j)` with `i < j` is
    /// `j·(j−1)/2 + i`.
    Dense(Vec<u32>),
    Sparse(HashMap<SourcePair, u32>),
}

impl SharedItemCounts {
    /// Counts shared items for every pair of sources in `ds`.
    pub fn build(ds: &Dataset) -> Self {
        let n = ds.num_sources();
        let mut counts = if n <= DENSE_LIMIT {
            Repr::Dense(vec![0u32; n * n.saturating_sub(1) / 2])
        } else {
            Repr::Sparse(HashMap::new())
        };
        // One provider list per item, merged across that item's value groups.
        let mut providers: Vec<SourceId> = Vec::new();
        for d in ds.items() {
            providers.clear();
            for group in ds.values_of_item(d) {
                providers.extend_from_slice(&group.providers);
            }
            providers.sort_unstable();
            for i in 0..providers.len() {
                for j in (i + 1)..providers.len() {
                    let pair = SourcePair::new(providers[i], providers[j]);
                    match &mut counts {
                        Repr::Dense(m) => m[dense_slot(pair)] += 1,
                        Repr::Sparse(m) => *m.entry(pair).or_insert(0) += 1,
                    }
                }
            }
        }
        Self { repr: counts, num_sources: n }
    }

    /// Grows the table to cover `num_sources` sources (keeping all existing
    /// counts). A no-op if the table already covers at least that many.
    ///
    /// The dense triangular layout (`slot(i, j) = j·(j−1)/2 + i`) is
    /// independent of the source count, so growing is a plain extension; a
    /// grown dense table that crosses the density limit switches to the
    /// sparse map.
    pub fn grow(&mut self, num_sources: usize) {
        if num_sources <= self.num_sources {
            return;
        }
        self.num_sources = num_sources;
        match &mut self.repr {
            Repr::Dense(m) if num_sources <= DENSE_LIMIT => {
                m.resize(num_sources * (num_sources - 1) / 2, 0);
            }
            Repr::Dense(m) => {
                let mut sparse = HashMap::new();
                for (slot, &c) in m.iter().enumerate() {
                    if c > 0 {
                        sparse.insert(dense_unslot(slot), c);
                    }
                }
                self.repr = Repr::Sparse(sparse);
            }
            Repr::Sparse(_) => {}
        }
    }

    /// Adds `by` to the count of `pair`.
    ///
    /// This is the maintenance hook for append-oriented stores: when a new
    /// claim for item `d` arrives from source `s`, the count of `(s, t)` is
    /// incremented for every other provider `t` of `d` — keeping the table
    /// consistent with a from-scratch [`SharedItemCounts::build`] over the
    /// grown dataset without rescanning unchanged items.
    ///
    /// # Panics
    /// Panics (in the dense representation) if the pair's sources are outside
    /// the covered range; call [`SharedItemCounts::grow`] first.
    #[inline]
    pub fn increment(&mut self, pair: SourcePair, by: u32) {
        match &mut self.repr {
            Repr::Dense(m) => m[dense_slot(pair)] += by,
            Repr::Sparse(m) => *m.entry(pair).or_insert(0) += by,
        }
    }

    /// Number of items shared by the pair (`l(S1, S2)`), zero if they share
    /// nothing.
    #[inline]
    pub fn get(&self, pair: SourcePair) -> u32 {
        match &self.repr {
            Repr::Dense(m) => m[dense_slot(pair)],
            Repr::Sparse(m) => m.get(&pair).copied().unwrap_or(0),
        }
    }

    /// Number of sources the counts were built over.
    pub fn num_sources(&self) -> usize {
        self.num_sources
    }

    /// Number of pairs with at least one shared item.
    pub fn num_sharing_pairs(&self) -> usize {
        match &self.repr {
            Repr::Dense(m) => m.iter().filter(|&&c| c > 0).count(),
            Repr::Sparse(m) => m.len(),
        }
    }

    /// Iterates over every pair with a non-zero count.
    pub fn iter_nonzero(&self) -> Box<dyn Iterator<Item = (SourcePair, u32)> + '_> {
        match &self.repr {
            Repr::Dense(m) => Box::new(
                m.iter()
                    .enumerate()
                    .filter(|&(_, &c)| c > 0)
                    .map(|(slot, &c)| (dense_unslot(slot), c)),
            ),
            Repr::Sparse(m) => Box::new(m.iter().map(|(&p, &c)| (p, c))),
        }
    }
}

#[inline]
fn dense_slot(pair: SourcePair) -> usize {
    let i = pair.first().index();
    let j = pair.second().index();
    j * (j - 1) / 2 + i
}

fn dense_unslot(slot: usize) -> SourcePair {
    // Invert j·(j−1)/2 + i: find the largest j with j·(j−1)/2 <= slot.
    let mut j = (((8 * slot + 1) as f64).sqrt() as usize).div_ceil(2);
    while j * (j - 1) / 2 > slot {
        j -= 1;
    }
    while (j + 1) * j / 2 <= slot {
        j += 1;
    }
    let i = slot - j * (j - 1) / 2;
    SourcePair::new(SourceId::from_index(i), SourceId::from_index(j))
}

#[cfg(test)]
mod tests {
    use super::*;
    use copydet_model::{motivating_example, DatasetBuilder};

    #[test]
    fn dense_slot_roundtrip() {
        for j in 1..40u32 {
            for i in 0..j {
                let pair = SourcePair::new(SourceId::new(i), SourceId::new(j));
                assert_eq!(dense_unslot(dense_slot(pair)), pair);
            }
        }
    }

    #[test]
    fn counts_match_pairwise_merge_on_motivating_example() {
        let ex = motivating_example();
        let counts = SharedItemCounts::build(&ex.dataset);
        for a in ex.dataset.sources() {
            for b in ex.dataset.sources() {
                if a >= b {
                    continue;
                }
                let expected = ex.dataset.shared_item_count(a, b) as u32;
                assert_eq!(counts.get(SourcePair::new(a, b)), expected, "pair ({a}, {b})");
            }
        }
    }

    #[test]
    fn example_3_6_pairwise_examines_181_shared_items() {
        // PAIRWISE examines every shared data item of every pair. Counting
        // per item: NJ has 9 providers (36 pairs), AZ 8 (28), NY 9 (36),
        // FL 9 (36), TX 10 (45) — 181 in total. (The paper's Example 3.6
        // quotes 183; the Table I data yields 181 — the two extra appear to
        // be a small counting slip in the paper, and every other quantity in
        // the example is reproduced exactly.)
        let ex = motivating_example();
        let counts = SharedItemCounts::build(&ex.dataset);
        let total: u32 = counts.iter_nonzero().map(|(_, c)| c).sum();
        assert_eq!(total, 181);
    }

    #[test]
    fn motivating_example_every_pair_shares_an_item() {
        // All ten sources provide TX, so every one of the 45 pairs shares at
        // least one *item* (the paper's "18 pairs share nothing" refers to
        // shared values, i.e. co-occurrence in an index entry).
        let ex = motivating_example();
        let counts = SharedItemCounts::build(&ex.dataset);
        assert_eq!(counts.num_sharing_pairs(), 45);
    }

    #[test]
    fn disjoint_sources_have_zero() {
        let mut b = DatasetBuilder::new();
        b.add_claim("A", "D0", "x");
        b.add_claim("B", "D1", "y");
        b.add_claim("C", "D0", "x");
        let ds = b.build();
        let counts = SharedItemCounts::build(&ds);
        let a = ds.source_by_name("A").unwrap();
        let b_ = ds.source_by_name("B").unwrap();
        let c = ds.source_by_name("C").unwrap();
        assert_eq!(counts.get(SourcePair::new(a, b_)), 0);
        assert_eq!(counts.get(SourcePair::new(a, c)), 1);
        assert_eq!(counts.num_sharing_pairs(), 1);
        assert_eq!(counts.num_sources(), 3);
    }

    #[test]
    fn grow_and_increment_match_rebuild() {
        // Build counts over two sources, then append a third source's claims
        // and maintain the counts incrementally.
        let mut b = DatasetBuilder::new();
        b.add_claim("A", "D0", "x");
        b.add_claim("A", "D1", "y");
        b.add_claim("B", "D0", "x");
        let ds_old = b.build();
        let mut counts = SharedItemCounts::build(&ds_old);

        let mut b = DatasetBuilder::new();
        b.add_claim("A", "D0", "x");
        b.add_claim("A", "D1", "y");
        b.add_claim("B", "D0", "x");
        b.add_claim("C", "D0", "z");
        b.add_claim("C", "D1", "y");
        let ds_new = b.build();

        counts.grow(ds_new.num_sources());
        let c = ds_new.source_by_name("C").unwrap();
        for d in ds_new.items() {
            for group in ds_new.values_of_item(d) {
                for &p in &group.providers {
                    if p != c && ds_new.value_of(c, d).is_some() {
                        counts.increment(SourcePair::new(c, p), 1);
                    }
                }
            }
        }
        let rebuilt = SharedItemCounts::build(&ds_new);
        for (pair, n) in rebuilt.iter_nonzero() {
            assert_eq!(counts.get(pair), n, "pair {pair}");
        }
        assert_eq!(counts.num_sharing_pairs(), rebuilt.num_sharing_pairs());
        assert_eq!(counts.num_sources(), 3);
    }

    #[test]
    fn iter_nonzero_matches_get() {
        let ex = motivating_example();
        let counts = SharedItemCounts::build(&ex.dataset);
        for (pair, c) in counts.iter_nonzero() {
            assert_eq!(counts.get(pair), c);
            assert!(c > 0);
        }
    }
}
