//! Construction of the inverted index (Definition 3.2) and its query
//! surface.

use crate::ebar::ebar_start;
use crate::entry::IndexEntry;
use crate::ordering::EntryOrdering;
use crate::shared_items::SharedItemCounts;
use crate::stats::IndexStats;
use copydet_bayes::max_contribution::max_contribution;
use copydet_bayes::{CopyParams, SourceAccuracies, ValueProbabilities};
use copydet_model::{Dataset, DatasetDelta, ItemId, ItemValueGroup, SourceId, SourcePair};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// The inverted index over shared values (Definition 3.2), stored in
/// decreasing contribution-score order, together with the per-pair
/// shared-item counts `l(S1, S2)` gathered at build time.
///
/// The counts table sits behind a shared [`Arc`] handle: an ingest-time
/// maintainer (`copydet-store`) hands its live table to
/// [`build_from_groups`](InvertedIndex::build_from_groups) without copying the
/// `O(|S|²)` matrix, and [`apply_claim_delta`](InvertedIndex::apply_claim_delta)
/// updates it copy-on-write so the maintainer's handle stays frozen.
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    entries: Vec<IndexEntry>,
    ebar_start: usize,
    shared: Arc<SharedItemCounts>,
    theta_ind: f64,
}

impl InvertedIndex {
    /// Builds the index for the current round's accuracy and truthfulness
    /// estimates.
    ///
    /// Index building is `O(|S|·|D|)` plus the shared-item counting pass; the
    /// paper reports it at a small fraction (≈1%) of PAIRWISE's cost.
    pub fn build(
        dataset: &Dataset,
        accuracies: &SourceAccuracies,
        probabilities: &ValueProbabilities,
        params: &CopyParams,
    ) -> Self {
        let shared = Arc::new(SharedItemCounts::build(dataset));
        Self::build_from_groups(dataset.groups(), shared, accuracies, probabilities, params)
    }

    /// Builds the index from an explicit stream of `(item, value)` groups and
    /// pre-computed shared-item counts.
    ///
    /// This is the construction path for segmented claim stores
    /// (`copydet-store`): the store merges its sealed segments into value
    /// groups and maintains the shared-item counts incrementally at ingest
    /// time, so index construction skips the `O(Σ providers²)` counting pass
    /// that dominates [`InvertedIndex::build`] on provider-dense datasets.
    /// The counts arrive as a shared handle — the maintainer's live table is
    /// aliased, not copied; a later mutation on either side detaches
    /// copy-on-write. Groups with fewer than two providers are skipped,
    /// exactly as in `build`.
    pub fn build_from_groups<'a>(
        groups: impl IntoIterator<Item = &'a ItemValueGroup>,
        shared: Arc<SharedItemCounts>,
        accuracies: &SourceAccuracies,
        probabilities: &ValueProbabilities,
        params: &CopyParams,
    ) -> Self {
        let mut entries = Vec::new();
        let mut provider_accs: Vec<f64> = Vec::new();
        for group in groups {
            if group.support() < 2 {
                continue;
            }
            provider_accs.clear();
            provider_accs.extend(group.providers.iter().map(|&s| accuracies.get(s)));
            let p = probabilities.get(group.item, group.value);
            let score = max_contribution(p, &provider_accs, params);
            entries.push(IndexEntry {
                item: group.item,
                value: group.value,
                probability: p,
                score,
                providers: group.providers.clone(),
            });
        }
        sort_entries(&mut entries);
        let theta_ind = params.thresholds().theta_ind;
        let scores: Vec<f64> = entries.iter().map(|e| e.score).collect();
        let ebar_start = ebar_start(&scores, theta_ind);
        Self { entries, ebar_start, shared, theta_ind }
    }

    /// Applies a claim delta to a live index: the entries of every touched
    /// item are rebuilt against the grown `dataset` — refreshing provider
    /// membership — scored with the caller-chosen accuracy/probability state
    /// (incremental detection passes its *old-state* snapshot, so that the
    /// probability movement of touched items later registers as an ordinary
    /// entry-score delta); the shared-item counts are updated for the added
    /// claims, and the `Ē` boundary is recomputed.
    ///
    /// `aligned_scores` is a caller-owned array parallel to
    /// [`InvertedIndex::entries`] (incremental detection keeps the previous
    /// round's entry scores there); it is permuted alongside the entries, and
    /// the slots of rebuilt entries are set to the freshly computed score so
    /// rebuilt entries never register as a *score* change — their pairs are
    /// re-examined through the returned index list instead.
    ///
    /// Returns the positions (into the updated `entries()`) of every rebuilt
    /// entry, i.e. every entry whose item the delta touched.
    ///
    /// # Panics
    /// Panics if `aligned_scores` is not entry-aligned.
    pub fn apply_claim_delta(
        &mut self,
        dataset: &Dataset,
        accuracies: &SourceAccuracies,
        probabilities: &ValueProbabilities,
        params: &CopyParams,
        delta: &DatasetDelta,
        aligned_scores: &mut Vec<f64>,
    ) -> Vec<usize> {
        assert_eq!(
            aligned_scores.len(),
            self.entries.len(),
            "aligned_scores must parallel the index entries"
        );
        // Keep untouched entries (with their aligned scores); rebuild the
        // rest from the grown dataset.
        let mut kept: Vec<(IndexEntry, f64)> = std::mem::take(&mut self.entries)
            .into_iter()
            .zip(aligned_scores.drain(..))
            .filter(|(e, _)| !delta.touches_item(e.item))
            .collect();
        let mut provider_accs: Vec<f64> = Vec::new();
        for &d in delta.touched_items() {
            for group in dataset.values_of_item(d) {
                if group.support() < 2 {
                    continue;
                }
                provider_accs.clear();
                provider_accs.extend(group.providers.iter().map(|&s| accuracies.get(s)));
                let p = probabilities.get(group.item, group.value);
                let score = max_contribution(p, &provider_accs, params);
                let entry = IndexEntry {
                    item: group.item,
                    value: group.value,
                    probability: p,
                    score,
                    providers: group.providers.clone(),
                };
                kept.push((entry, score));
            }
        }
        kept.sort_unstable_by(|(a, _), (b, _)| entry_order(a, b));
        let mut rebuilt = Vec::new();
        self.entries = Vec::with_capacity(kept.len());
        aligned_scores.reserve(kept.len());
        for (idx, (entry, aligned)) in kept.into_iter().enumerate() {
            if delta.touches_item(entry.item) {
                rebuilt.push(idx);
            }
            self.entries.push(entry);
            aligned_scores.push(aligned);
        }
        let scores: Vec<f64> = self.entries.iter().map(|e| e.score).collect();
        self.ebar_start = ebar_start(&scores, self.theta_ind);

        // Shared-item counts: every *added* claim (source, item) shares its
        // item with every other provider of that item in the grown dataset.
        // Copy-on-write: a maintainer still holding the handle passed to
        // `build_from_groups` keeps its frozen table.
        let shared = Arc::make_mut(&mut self.shared);
        shared.grow(dataset.num_sources());
        let mut added_by_item: BTreeMap<ItemId, BTreeSet<SourceId>> = BTreeMap::new();
        for change in delta.additions() {
            added_by_item.entry(change.item).or_default().insert(change.source);
        }
        for (&d, added) in &added_by_item {
            for group in dataset.values_of_item(d) {
                for &t in &group.providers {
                    for &s in added {
                        if t == s || (added.contains(&t) && t < s) {
                            continue;
                        }
                        shared.increment(SourcePair::new(s, t), 1);
                    }
                }
            }
        }
        rebuilt
    }

    /// The index entries in decreasing contribution-score order.
    pub fn entries(&self) -> &[IndexEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the index has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The position at which the low-score suffix `Ē` begins.
    pub fn ebar_start(&self) -> usize {
        self.ebar_start
    }

    /// Returns `true` if the entry at `idx` belongs to `Ē`.
    pub fn in_ebar(&self, idx: usize) -> bool {
        idx >= self.ebar_start
    }

    /// The `θind` threshold the `Ē` suffix was computed against.
    pub fn theta_ind(&self) -> f64 {
        self.theta_ind
    }

    /// `l(S1, S2)`: the number of items shared by the pair.
    pub fn shared_items(&self, pair: SourcePair) -> u32 {
        self.shared.get(pair)
    }

    /// The shared-item counts table.
    pub fn shared_item_counts(&self) -> &SharedItemCounts {
        &self.shared
    }

    /// The processing permutation for `ordering` (see
    /// [`EntryOrdering::permutation`]).
    pub fn processing_order(&self, ordering: EntryOrdering) -> Vec<u32> {
        ordering.permutation(&self.entries, self.ebar_start)
    }

    /// For a processing order, the maximum entry score among positions
    /// `i..` for every `i` (plus a trailing 0.0 for "nothing left"). Used by
    /// the bound-maintaining algorithms as `M`, the best score any unscanned
    /// entry can still have.
    ///
    /// For the by-contribution order this equals the next entry's score.
    pub fn suffix_max_scores(&self, order: &[u32]) -> Vec<f64> {
        let mut suffix = vec![0.0f64; order.len() + 1];
        for i in (0..order.len()).rev() {
            suffix[i] = suffix[i + 1].max(self.entries[order[i] as usize].score);
        }
        suffix
    }

    /// Summary statistics of the index.
    pub fn stats(&self) -> IndexStats {
        IndexStats::compute(self)
    }
}

/// The index storage order: decreasing score, ties broken by `(item, value)`
/// for determinism. Every (re)sort of the entries must use this single
/// comparator — the store/batch bit-identity guarantees depend on it.
fn entry_order(a: &IndexEntry, b: &IndexEntry) -> std::cmp::Ordering {
    b.score
        .partial_cmp(&a.score)
        .expect("contribution scores are never NaN")
        .then(a.item.cmp(&b.item))
        .then(a.value.cmp(&b.value))
}

fn sort_entries(entries: &mut [IndexEntry]) {
    entries.sort_unstable_by(entry_order);
}

#[cfg(test)]
mod tests {
    use super::*;
    use copydet_model::motivating_example;

    fn build_motivating() -> (copydet_model::MotivatingExample, InvertedIndex) {
        let ex = motivating_example();
        let accuracies = SourceAccuracies::from_vec(ex.accuracies.clone()).unwrap();
        let probabilities = ValueProbabilities::from_table(ex.probability_table()).unwrap();
        let params = CopyParams::paper_defaults();
        let index = InvertedIndex::build(&ex.dataset, &accuracies, &probabilities, &params);
        (ex, index)
    }

    /// Table III: the index for the motivating example has 13 entries
    /// (values provided by a single source — NJ.Union, AZ.Tucson,
    /// TX.Arlington — are not indexed).
    #[test]
    fn table_iii_entry_count() {
        let (_, index) = build_motivating();
        assert_eq!(index.len(), 13);
        assert!(!index.is_empty());
    }

    /// Table III: entries are ordered by decreasing score, AZ.Tempe (4.59)
    /// first, and the last two entries (score .43 each: NY.Albany and
    /// TX.Austin) form Ē.
    #[test]
    fn table_iii_order_scores_and_ebar() {
        let (ex, index) = build_motivating();
        let entries = index.entries();
        // ordered by decreasing score
        assert!(entries.windows(2).all(|w| w[0].score >= w[1].score));
        // top entry is AZ.Tempe with score 4.59
        let az = ex.dataset.item_by_name("AZ").unwrap();
        let tempe = ex.dataset.value_by_str("Tempe").unwrap();
        assert_eq!(entries[0].item, az);
        assert_eq!(entries[0].value, tempe);
        assert!((entries[0].score - 4.59).abs() < 0.01);
        // second entry NJ.Atlantic with 4.12
        let nj = ex.dataset.item_by_name("NJ").unwrap();
        let atlantic = ex.dataset.value_by_str("Atlantic").unwrap();
        assert_eq!(entries[1].item, nj);
        assert_eq!(entries[1].value, atlantic);
        assert!((entries[1].score - 4.12).abs() < 0.01);
        // Ē contains the last two entries (NY.Albany, TX.Austin; .43 each)
        assert_eq!(index.ebar_start(), 11);
        assert!(index.in_ebar(11) && index.in_ebar(12));
        assert!(!index.in_ebar(10));
        for e in &entries[11..] {
            assert!((e.score - 0.43).abs() < 0.01);
        }
    }

    /// Table III: provider sets of a few entries.
    #[test]
    fn table_iii_providers() {
        let (ex, index) = build_motivating();
        let find = |item: &str, value: &str| {
            let d = ex.dataset.item_by_name(item).unwrap();
            let v = ex.dataset.value_by_str(value).unwrap();
            index
                .entries()
                .iter()
                .find(|e| e.item == d && e.value == v)
                .unwrap_or_else(|| panic!("no entry for {item}.{value}"))
        };
        let atlantic = find("NJ", "Atlantic");
        assert_eq!(atlantic.providers, vec![SourceId::new(2), SourceId::new(3), SourceId::new(4)]);
        let trenton = find("NJ", "Trenton");
        assert_eq!(
            trenton.providers,
            vec![
                SourceId::new(0),
                SourceId::new(1),
                SourceId::new(7),
                SourceId::new(8),
                SourceId::new(9)
            ]
        );
        let dallas = find("TX", "Dallas");
        assert_eq!(dallas.providers, vec![SourceId::new(6), SourceId::new(7), SourceId::new(8)]);
        // Un-shared values have no entry.
        let nj = ex.dataset.item_by_name("NJ").unwrap();
        let union = ex.dataset.value_by_str("Union").unwrap();
        assert!(!index.entries().iter().any(|e| e.item == nj && e.value == union));
    }

    /// Example 3.6: 51 shared values are indexed in total (sum over entries
    /// of the number of pairs sharing each value... the paper counts the
    /// total number of provider-pair incidences it must examine as 51).
    #[test]
    fn example_3_6_shared_value_incidences() {
        let (_, index) = build_motivating();
        // The paper's "51 shared values" counts, for each pair of sources
        // occurring in an entry outside Ē and each entry containing both,
        // one shared value; equivalently the sum over non-Ē entries of the
        // number of provider pairs, restricted to the 26 pairs considered.
        // All pairs occurring outside Ē are exactly those 26, so this is the
        // plain sum of C(k,2) over non-Ē entries plus the shared values those
        // same pairs have inside Ē.
        let non_ebar_pairs: usize =
            index.entries()[..index.ebar_start()].iter().map(IndexEntry::num_pairs).sum();
        // Pairs outside Ē
        let mut pairs = std::collections::HashSet::new();
        for e in &index.entries()[..index.ebar_start()] {
            for i in 0..e.providers.len() {
                for j in (i + 1)..e.providers.len() {
                    pairs.insert(SourcePair::new(e.providers[i], e.providers[j]));
                }
            }
        }
        assert_eq!(pairs.len(), 26, "Example 3.6: 26 pairs occur outside Ē");
        let ebar_pairs_already_seen: usize = index.entries()[index.ebar_start()..]
            .iter()
            .map(|e| {
                let mut count = 0;
                for i in 0..e.providers.len() {
                    for j in (i + 1)..e.providers.len() {
                        if pairs.contains(&SourcePair::new(e.providers[i], e.providers[j])) {
                            count += 1;
                        }
                    }
                }
                count
            })
            .sum();
        assert_eq!(
            non_ebar_pairs + ebar_pairs_already_seen,
            51,
            "Example 3.6: INDEX examines 51 shared values"
        );
    }

    /// The shared-item counts attached to the index agree with the dataset.
    #[test]
    fn shared_item_counts_attached() {
        let (ex, index) = build_motivating();
        let s2 = SourceId::new(2);
        let s3 = SourceId::new(3);
        assert_eq!(index.shared_items(SourcePair::new(s2, s3)), 5);
        assert_eq!(
            index.shared_items(SourcePair::new(SourceId::new(0), SourceId::new(1))),
            ex.dataset.shared_item_count(SourceId::new(0), SourceId::new(1)) as u32
        );
    }

    /// Suffix maxima for the by-contribution order are the next entry's
    /// score.
    #[test]
    fn suffix_max_by_contribution() {
        let (_, index) = build_motivating();
        let order = index.processing_order(EntryOrdering::ByContribution);
        let suffix = index.suffix_max_scores(&order);
        assert_eq!(suffix.len(), index.len() + 1);
        for (i, &oi) in order.iter().enumerate() {
            assert!((suffix[i] - index.entries()[oi as usize].score).abs() < 1e-12);
        }
        assert_eq!(suffix[index.len()], 0.0);
    }

    /// Suffix maxima for an arbitrary order really are suffix maxima.
    #[test]
    fn suffix_max_random_order() {
        let (_, index) = build_motivating();
        let order = index.processing_order(EntryOrdering::Random { seed: 3 });
        let suffix = index.suffix_max_scores(&order);
        for i in 0..order.len() {
            let expected = order[i..]
                .iter()
                .map(|&oi| index.entries()[oi as usize].score)
                .fold(0.0f64, f64::max);
            assert!((suffix[i] - expected).abs() < 1e-12);
        }
    }

    /// `build_from_groups` with the dataset's own groups and counts is
    /// exactly `build`.
    #[test]
    fn build_from_groups_matches_build() {
        let ex = motivating_example();
        let accuracies = SourceAccuracies::from_vec(ex.accuracies.clone()).unwrap();
        let probabilities = ValueProbabilities::from_table(ex.probability_table()).unwrap();
        let params = CopyParams::paper_defaults();
        let direct = InvertedIndex::build(&ex.dataset, &accuracies, &probabilities, &params);
        let from_groups = InvertedIndex::build_from_groups(
            ex.dataset.groups(),
            Arc::new(SharedItemCounts::build(&ex.dataset)),
            &accuracies,
            &probabilities,
            &params,
        );
        assert_eq!(direct.entries(), from_groups.entries());
        assert_eq!(direct.ebar_start(), from_groups.ebar_start());
        for (pair, n) in direct.shared_item_counts().iter_nonzero() {
            assert_eq!(from_groups.shared_items(pair), n);
        }
    }

    /// Applying a claim delta to a live index yields the same entries, `Ē`
    /// boundary and shared counts as rebuilding from scratch on the grown
    /// dataset (with the same accuracy/probability state).
    #[test]
    fn apply_claim_delta_matches_rebuild() {
        use copydet_model::{DatasetBuilder, DatasetDelta};
        let old_claims: Vec<(&str, &str, &str)> = vec![
            ("S0", "NJ", "Trenton"),
            ("S1", "NJ", "Trenton"),
            ("S2", "NJ", "Newark"),
            ("S0", "AZ", "Phoenix"),
            ("S1", "AZ", "Phoenix"),
            ("S2", "AZ", "Tempe"),
            ("S0", "CA", "Sacramento"), // never touched by the delta
            ("S1", "CA", "Sacramento"),
        ];
        let mut extra = old_claims.clone();
        extra.extend([
            ("S2", "NJ", "Trenton"), // changed value
            ("S3", "AZ", "Phoenix"), // new source
            ("S0", "NY", "Albany"),  // new item
            ("S3", "NY", "Albany"),
        ]);
        let build_ds = |claims: &[(&str, &str, &str)]| {
            let mut b = DatasetBuilder::new();
            for (s, d, v) in claims {
                b.add_claim(s, d, v);
            }
            b.build()
        };
        let old_ds = build_ds(&old_claims);
        let new_ds = build_ds(&extra);
        let delta = DatasetDelta::between(&old_ds, &new_ds);
        let params = CopyParams::paper_defaults();
        let accuracies = SourceAccuracies::uniform(new_ds.num_sources(), 0.8).unwrap();
        let mut probabilities = ValueProbabilities::new(new_ds.num_items());
        for (i, g) in new_ds.groups().enumerate() {
            probabilities.set(g.item, g.value, 0.15 + 0.1 * (i % 8) as f64).unwrap();
        }

        let mut live = InvertedIndex::build(&old_ds, &accuracies, &probabilities, &params);
        let mut aligned: Vec<f64> = live.entries().iter().map(|e| e.score).collect();
        let rebuilt_idx = live.apply_claim_delta(
            &new_ds,
            &accuracies,
            &probabilities,
            &params,
            &delta,
            &mut aligned,
        );
        let scratch = InvertedIndex::build(&new_ds, &accuracies, &probabilities, &params);

        assert_eq!(live.entries(), scratch.entries());
        assert_eq!(live.ebar_start(), scratch.ebar_start());
        assert_eq!(aligned.len(), live.len());
        for (pair, n) in scratch.shared_item_counts().iter_nonzero() {
            assert_eq!(live.shared_items(pair), n, "shared count for {pair}");
        }
        // Every rebuilt position is a touched item; every touched item's
        // entry is reported as rebuilt.
        for (idx, e) in live.entries().iter().enumerate() {
            assert_eq!(rebuilt_idx.contains(&idx), delta.touches_item(e.item), "entry {idx}");
        }
        // Aligned scores of rebuilt entries equal the fresh scores; untouched
        // entries keep theirs.
        for &idx in &rebuilt_idx {
            assert!((aligned[idx] - live.entries()[idx].score).abs() < 1e-12);
        }
    }

    /// An empty delta leaves the index untouched.
    #[test]
    fn apply_empty_delta_is_noop() {
        let (ex, mut index) = build_motivating();
        let accuracies = SourceAccuracies::from_vec(ex.accuracies.clone()).unwrap();
        let probabilities = ValueProbabilities::from_table(ex.probability_table()).unwrap();
        let params = CopyParams::paper_defaults();
        let before = index.entries().to_vec();
        let mut aligned: Vec<f64> = before.iter().map(|e| e.score).collect();
        let rebuilt = index.apply_claim_delta(
            &ex.dataset,
            &accuracies,
            &probabilities,
            &params,
            &copydet_model::DatasetDelta::default(),
            &mut aligned,
        );
        assert!(rebuilt.is_empty());
        assert_eq!(index.entries(), before.as_slice());
    }

    /// An index built over an empty dataset is empty and harmless.
    #[test]
    fn empty_dataset_index() {
        let ds = copydet_model::DatasetBuilder::new().build();
        let acc = SourceAccuracies::uniform(0, 0.8).unwrap();
        let probs = ValueProbabilities::new(0);
        let index = InvertedIndex::build(&ds, &acc, &probs, &CopyParams::paper_defaults());
        assert!(index.is_empty());
        assert_eq!(index.ebar_start(), 0);
        assert_eq!(index.processing_order(EntryOrdering::ByContribution).len(), 0);
    }
}
