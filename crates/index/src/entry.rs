//! A single inverted-index entry (Definition 3.2).

use copydet_model::{ItemId, SourceId, ValueId};
use serde::{Deserialize, Serialize};

/// One entry of the inverted index: a value `v` of data item `D` that is
/// provided by at least two sources.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndexEntry {
    /// The data item `D_E`.
    pub item: ItemId,
    /// The value `v_E`.
    pub value: ValueId,
    /// `P(E)`: probability of `D_E.v_E` being true at the time the index was
    /// built.
    pub probability: f64,
    /// `C(E) = M̂(D_E.v_E)`: the maximum contribution sharing this value can
    /// make for any pair of its providers (Proposition 3.1).
    pub score: f64,
    /// `S̄(E)`: the sources providing `v_E` on `D_E`, sorted by id.
    pub providers: Vec<SourceId>,
}

impl IndexEntry {
    /// Number of providers of the entry's value.
    pub fn num_providers(&self) -> usize {
        self.providers.len()
    }

    /// Number of distinct source pairs within this entry — the number of
    /// pair updates scanning the entry generates.
    pub fn num_pairs(&self) -> usize {
        let k = self.providers.len();
        k * (k - 1) / 2
    }

    /// Returns `true` if `s` is one of the entry's providers.
    pub fn contains(&self, s: SourceId) -> bool {
        self.providers.binary_search(&s).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(providers: &[u32]) -> IndexEntry {
        IndexEntry {
            item: ItemId::new(0),
            value: ValueId::new(0),
            probability: 0.1,
            score: 2.0,
            providers: providers.iter().map(|&i| SourceId::new(i)).collect(),
        }
    }

    #[test]
    fn pair_counts() {
        assert_eq!(entry(&[1, 2]).num_pairs(), 1);
        assert_eq!(entry(&[1, 2, 3]).num_pairs(), 3);
        assert_eq!(entry(&[1, 2, 3, 4]).num_pairs(), 6);
        assert_eq!(entry(&[1, 2]).num_providers(), 2);
    }

    #[test]
    fn contains_uses_sorted_providers() {
        let e = entry(&[1, 4, 9]);
        assert!(e.contains(SourceId::new(4)));
        assert!(!e.contains(SourceId::new(5)));
    }
}
