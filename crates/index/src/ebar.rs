//! The `Ē` suffix: the low-score entries whose combined evidence can never
//! establish copying on its own (Section III, "Optimizing with the index").

/// Given entry scores sorted in decreasing order, returns the index at which
/// the `Ē` suffix starts: the longest suffix whose scores sum to strictly
/// less than `theta_ind = ln(β/2α)`.
///
/// Pairs of sources whose shared values all lie in `Ē` satisfy
/// `C→ < θind` and `C← < θind`, hence `Pr(S1⊥S2|Φ) > 0.5`, so they can be
/// skipped entirely.
pub fn ebar_start(sorted_scores: &[f64], theta_ind: f64) -> usize {
    let mut sum = 0.0;
    let mut start = sorted_scores.len();
    while start > 0 {
        let candidate = sum + sorted_scores[start - 1];
        if candidate < theta_ind {
            sum = candidate;
            start -= 1;
        } else {
            break;
        }
    }
    start
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_3_6_last_two_entries_form_ebar() {
        // Table III scores in decreasing order; θind = ln(.8/.2) = 1.386.
        // The paper: ".43 + .43 < ln(.8/.2) = 1.39" — the last two entries
        // form Ē.
        let scores = [4.59, 4.12, 4.05, 4.05, 3.98, 3.97, 3.97, 3.83, 1.62, 1.51, 0.84, 0.43, 0.43];
        let start = ebar_start(&scores, (0.8f64 / 0.2).ln());
        assert_eq!(start, 11);
        assert_eq!(scores.len() - start, 2);
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(ebar_start(&[], 1.0), 0);
        assert_eq!(ebar_start(&[0.5], 1.0), 0);
        assert_eq!(ebar_start(&[1.5], 1.0), 1);
    }

    #[test]
    fn all_entries_below_threshold() {
        // Suffix grows until adding the next score would reach θind.
        let scores = [0.4, 0.3, 0.2, 0.1];
        // Sum of all = 1.0 >= 1.0, so not all can be in Ē; the suffix
        // 0.3+0.2+0.1 = 0.6 < 1.0 is.
        assert_eq!(ebar_start(&scores, 1.0), 1);
        // With a generous threshold everything is prunable.
        assert_eq!(ebar_start(&scores, 1.1), 0);
    }

    #[test]
    fn suffix_sum_is_strictly_below_threshold() {
        let scores = [5.0, 2.0, 1.0, 0.9, 0.4, 0.05];
        let theta = 1.39;
        let start = ebar_start(&scores, theta);
        let suffix_sum: f64 = scores[start..].iter().sum();
        assert!(suffix_sum < theta);
        if start > 0 {
            let bigger: f64 = scores[start - 1..].iter().sum();
            assert!(bigger >= theta);
        }
    }
}
