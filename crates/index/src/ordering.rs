//! Entry processing orders (the paper's Figure 3 comparison).

use crate::entry::IndexEntry;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// The order in which index entries are scanned by the detection algorithms.
///
/// The index itself always stores entries in decreasing contribution-score
/// order (which also defines the `Ē` suffix); an `EntryOrdering` produces a
/// *processing permutation* over those entries. To keep every algorithm's
/// decisions well-defined regardless of ordering, the permutation never moves
/// an `Ē` entry ahead of a non-`Ē` entry — the paper's Step II/Step III
/// separation — it only permutes the two regions internally.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum EntryOrdering {
    /// Decreasing contribution score (the paper's proposal, BYCONTRIBUTION).
    #[default]
    ByContribution,
    /// Increasing number of providers (BYPROVIDER).
    ByProvider,
    /// A seeded random shuffle (RANDOM).
    Random {
        /// RNG seed, so experiments are reproducible.
        seed: u64,
    },
}

impl EntryOrdering {
    /// Produces the processing order: a permutation of `0..entries.len()`
    /// where all indices `< ebar_start` (entries outside `Ē`) appear before
    /// all indices `>= ebar_start`.
    pub fn permutation(&self, entries: &[IndexEntry], ebar_start: usize) -> Vec<u32> {
        let mut head: Vec<u32> = (0..ebar_start as u32).collect();
        let mut tail: Vec<u32> = (ebar_start as u32..entries.len() as u32).collect();
        match *self {
            EntryOrdering::ByContribution => {}
            EntryOrdering::ByProvider => {
                head.sort_by_key(|&i| entries[i as usize].num_providers());
                tail.sort_by_key(|&i| entries[i as usize].num_providers());
            }
            EntryOrdering::Random { seed } => {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                head.shuffle(&mut rng);
                tail.shuffle(&mut rng);
            }
        }
        head.extend_from_slice(&tail);
        head
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copydet_model::{ItemId, SourceId, ValueId};

    fn entries() -> Vec<IndexEntry> {
        (0..6)
            .map(|i| IndexEntry {
                item: ItemId::new(i),
                value: ValueId::new(i),
                probability: 0.1,
                score: 6.0 - i as f64,
                providers: (0..=(i % 3) + 1).map(SourceId::new).collect(),
            })
            .collect()
    }

    #[test]
    fn by_contribution_is_identity() {
        let e = entries();
        let p = EntryOrdering::ByContribution.permutation(&e, 4);
        assert_eq!(p, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn permutations_respect_ebar_boundary() {
        let e = entries();
        for ordering in [
            EntryOrdering::ByProvider,
            EntryOrdering::Random { seed: 7 },
            EntryOrdering::ByContribution,
        ] {
            let p = ordering.permutation(&e, 4);
            assert_eq!(p.len(), e.len());
            let mut sorted = p.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3, 4, 5], "not a permutation: {p:?}");
            assert!(p[..4].iter().all(|&i| i < 4), "Ē entry before the boundary: {p:?}");
            assert!(p[4..].iter().all(|&i| i >= 4));
        }
    }

    #[test]
    fn by_provider_orders_by_provider_count() {
        let e = entries();
        let p = EntryOrdering::ByProvider.permutation(&e, e.len());
        let counts: Vec<usize> = p.iter().map(|&i| e[i as usize].num_providers()).collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
    }

    #[test]
    fn random_is_reproducible() {
        let e = entries();
        let a = EntryOrdering::Random { seed: 42 }.permutation(&e, 3);
        let b = EntryOrdering::Random { seed: 42 }.permutation(&e, 3);
        let c = EntryOrdering::Random { seed: 43 }.permutation(&e, 3);
        assert_eq!(a, b);
        assert!(a != c || a == vec![0, 1, 2, 3, 4, 5]);
    }
}
