//! # copydet-index
//!
//! The score-ordered inverted index of *Scaling up Copy Detection*
//! (Li et al., ICDE 2015), Section III.
//!
//! The index has one entry per `(data item, value)` combination that is
//! provided by **at least two** sources. Every entry carries
//!
//! * the probability `P(D.v)` of the value being true,
//! * the contribution score `C(E) = M̂(D.v)` — the *maximum* contribution
//!   sharing this value can make to the copying likelihood of any pair of
//!   its providers (Proposition 3.1), and
//! * the list of providers.
//!
//! Entries are stored in decreasing score order, so that
//!
//! * strong evidence is encountered first, enabling the early-termination
//!   algorithms of Section IV,
//! * the score of the next unscanned entry upper-bounds the contribution of
//!   every item not yet seen for a pair (Proposition 3.4), and
//! * the low-score suffix `Ē` whose total score cannot push any pair over
//!   the no-copying threshold can be treated specially: pairs that share
//!   values only inside `Ē` are never materialized.
//!
//! The index also carries the number of *items* (not values) shared by every
//! pair of sources that shares at least one item — `l(S1, S2)` in the paper —
//! computed at build time by a set-similarity-join style counting pass
//! ([`SharedItemCounts`]).
//!
//! [`EntryOrdering`] provides the alternative processing orders
//! (by-provider-count and random) that the paper's Figure 3 compares against
//! the by-contribution order.

#![forbid(unsafe_code)]
#![deny(unused_must_use)]
#![warn(missing_docs)]

mod builder;
mod ebar;
mod entry;
mod ordering;
mod shared_items;
mod stats;

pub use builder::InvertedIndex;
pub use entry::IndexEntry;
pub use ordering::EntryOrdering;
pub use shared_items::SharedItemCounts;
pub use stats::IndexStats;
