//! Index summary statistics (the "#Index-entries" column of Table V and the
//! quantities discussed in Section VI-B).

use crate::builder::InvertedIndex;
use serde::{Deserialize, Serialize};

/// Summary statistics of an [`InvertedIndex`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndexStats {
    /// Number of index entries (shared `(item, value)` combinations).
    pub num_entries: usize,
    /// Number of entries in the low-score suffix `Ē`.
    pub num_ebar_entries: usize,
    /// Number of source pairs that share at least one data item.
    pub num_sharing_pairs: usize,
    /// Number of source pairs that co-occur in at least one index entry,
    /// i.e. share at least one value.
    pub num_value_sharing_pairs: usize,
    /// Total number of provider incidences across entries (the amount of
    /// provider-list data the index holds).
    pub total_providers: usize,
    /// Total number of provider pairs across entries — an upper bound on the
    /// pair updates a full index scan performs.
    pub total_provider_pairs: usize,
    /// Largest provider list of any entry.
    pub max_providers_per_entry: usize,
    /// Highest entry score.
    pub max_score: f64,
    /// Lowest entry score.
    pub min_score: f64,
}

impl IndexStats {
    /// Computes statistics for `index`.
    pub fn compute(index: &InvertedIndex) -> Self {
        let entries = index.entries();
        let mut value_sharing_pairs = std::collections::HashSet::new();
        for e in entries {
            for i in 0..e.providers.len() {
                for j in (i + 1)..e.providers.len() {
                    value_sharing_pairs
                        .insert(copydet_model::SourcePair::new(e.providers[i], e.providers[j]));
                }
            }
        }
        IndexStats {
            num_entries: entries.len(),
            num_ebar_entries: entries.len() - index.ebar_start(),
            num_sharing_pairs: index.shared_item_counts().num_sharing_pairs(),
            num_value_sharing_pairs: value_sharing_pairs.len(),
            total_providers: entries.iter().map(|e| e.num_providers()).sum(),
            total_provider_pairs: entries.iter().map(|e| e.num_pairs()).sum(),
            max_providers_per_entry: entries.iter().map(|e| e.num_providers()).max().unwrap_or(0),
            max_score: entries.first().map(|e| e.score).unwrap_or(0.0),
            min_score: entries.last().map(|e| e.score).unwrap_or(0.0),
        }
    }
}

impl std::fmt::Display for IndexStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "entries:              {}", self.num_entries)?;
        writeln!(f, "entries in Ē:         {}", self.num_ebar_entries)?;
        writeln!(f, "pairs sharing items:  {}", self.num_sharing_pairs)?;
        writeln!(f, "pairs sharing values: {}", self.num_value_sharing_pairs)?;
        writeln!(f, "provider incidences:  {}", self.total_providers)?;
        writeln!(f, "provider pairs:       {}", self.total_provider_pairs)?;
        write!(f, "score range:          [{:.3}, {:.3}]", self.min_score, self.max_score)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copydet_bayes::{CopyParams, SourceAccuracies, ValueProbabilities};
    use copydet_model::motivating_example;

    #[test]
    fn stats_on_motivating_example() {
        let ex = motivating_example();
        let accuracies = SourceAccuracies::from_vec(ex.accuracies.clone()).unwrap();
        let probabilities = ValueProbabilities::from_table(ex.probability_table()).unwrap();
        let index = InvertedIndex::build(
            &ex.dataset,
            &accuracies,
            &probabilities,
            &CopyParams::paper_defaults(),
        );
        let stats = index.stats();
        assert_eq!(stats.num_entries, 13);
        assert_eq!(stats.num_ebar_entries, 2);
        // Every pair shares at least the TX item; 27 pairs share a value
        // (45 total pairs minus the 18 that share no value, Section II-B).
        assert_eq!(stats.num_sharing_pairs, 45);
        assert_eq!(stats.num_value_sharing_pairs, 27);
        assert!(stats.max_score > stats.min_score);
        assert!((stats.max_score - 4.59).abs() < 0.01);
        assert_eq!(stats.max_providers_per_entry, 5);
        let text = stats.to_string();
        assert!(text.contains("entries:"));
    }
}
