//! Property-based tests for the inverted index: the structural invariants
//! the detection algorithms rely on (Propositions 3.4 and the Ē soundness
//! argument) must hold for arbitrary datasets.

use copydet_bayes::{CopyParams, SourceAccuracies, ValueProbabilities};
use copydet_index::{EntryOrdering, InvertedIndex};
use copydet_model::{DatasetBuilder, SourcePair};
use proptest::prelude::*;
use std::collections::HashSet;

fn claims_strategy() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    prop::collection::vec((0u8..10, 0u8..12, 0u8..5), 1..150)
}

fn accuracy_vec(n: usize) -> Vec<f64> {
    (0..n).map(|i| 0.05 + 0.9 * (i as f64 / n.max(1) as f64)).collect()
}

fn build_index(claims: &[(u8, u8, u8)]) -> (copydet_model::Dataset, InvertedIndex, CopyParams) {
    let mut b = DatasetBuilder::new();
    for (s, d, v) in claims {
        b.add_claim(&format!("S{s}"), &format!("D{d}"), &format!("v{v}"));
    }
    let ds = b.build();
    let params = CopyParams::paper_defaults();
    let acc = SourceAccuracies::from_vec(accuracy_vec(ds.num_sources())).unwrap();
    let probs = ValueProbabilities::uniform_over_dataset(&ds, 0.3).unwrap();
    let index = InvertedIndex::build(&ds, &acc, &probs, &params);
    (ds, index, params)
}

proptest! {
    /// Every entry has at least two providers, providers are sorted and
    /// disjoint across entries of the same item, and entry scores are
    /// positive and sorted in decreasing order.
    #[test]
    fn entry_structure_invariants(claims in claims_strategy()) {
        let (_, index, _) = build_index(&claims);
        let entries = index.entries();
        prop_assert!(entries.windows(2).all(|w| w[0].score >= w[1].score));
        let mut per_item_providers: std::collections::HashMap<_, HashSet<_>> = Default::default();
        for e in entries {
            prop_assert!(e.num_providers() >= 2);
            prop_assert!(e.score > 0.0);
            prop_assert!(e.providers.windows(2).all(|w| w[0] < w[1]));
            let set = per_item_providers.entry(e.item).or_default();
            for &p in &e.providers {
                prop_assert!(set.insert(p), "provider in two entries of one item");
            }
        }
    }

    /// The index contains exactly the `(item, value)` groups with support
    /// ≥ 2 from the dataset.
    #[test]
    fn index_covers_exactly_shared_groups(claims in claims_strategy()) {
        let (ds, index, _) = build_index(&claims);
        let expected: HashSet<_> = ds
            .groups()
            .filter(|g| g.support() >= 2)
            .map(|g| (g.item, g.value))
            .collect();
        let actual: HashSet<_> = index.entries().iter().map(|e| (e.item, e.value)).collect();
        prop_assert_eq!(expected, actual);
    }

    /// Ē soundness: the total score of the Ē suffix is below θind, so a pair
    /// whose shared values all fall in Ē can never reach the no-copying
    /// threshold, let alone the copying one.
    #[test]
    fn ebar_suffix_total_is_below_theta_ind(claims in claims_strategy()) {
        let (_, index, _) = build_index(&claims);
        let suffix_sum: f64 = index.entries()[index.ebar_start()..].iter().map(|e| e.score).sum();
        prop_assert!(suffix_sum < index.theta_ind());
    }

    /// Proposition 3.4 (third bullet): the entry score upper-bounds the
    /// contribution any pair of its providers can obtain from that item, for
    /// any accuracies the sources actually have.
    #[test]
    fn entry_score_bounds_pair_contributions(claims in claims_strategy()) {
        let (ds, index, params) = build_index(&claims);
        let acc = SourceAccuracies::from_vec(accuracy_vec(ds.num_sources())).unwrap();
        for e in index.entries() {
            for (i, &a) in e.providers.iter().enumerate() {
                for &b in &e.providers[i + 1..] {
                    let (to, from) = copydet_bayes::contribution::same_value_scores_both(
                        e.probability,
                        acc.get(a),
                        acc.get(b),
                        &params,
                    );
                    prop_assert!(to <= e.score + 1e-9);
                    prop_assert!(from <= e.score + 1e-9);
                }
            }
        }
    }

    /// Shared-item counts attached to the index agree with direct pairwise
    /// merging of claim lists.
    #[test]
    fn shared_item_counts_agree_with_dataset(claims in claims_strategy()) {
        let (ds, index, _) = build_index(&claims);
        let sources: Vec<_> = ds.sources().collect();
        for (i, &a) in sources.iter().enumerate() {
            for &b in &sources[i + 1..] {
                prop_assert_eq!(
                    index.shared_items(SourcePair::new(a, b)) as usize,
                    ds.shared_item_count(a, b)
                );
            }
        }
    }

    /// Processing orders are permutations that keep Ē entries last, and
    /// suffix maxima really bound the remaining entries' scores.
    #[test]
    fn processing_orders_and_suffix_maxima(claims in claims_strategy(), seed in 0u64..1000) {
        let (_, index, _) = build_index(&claims);
        for ordering in [
            EntryOrdering::ByContribution,
            EntryOrdering::ByProvider,
            EntryOrdering::Random { seed },
        ] {
            let order = index.processing_order(ordering);
            prop_assert_eq!(order.len(), index.len());
            let mut sorted = order.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..index.len() as u32).collect::<Vec<_>>());
            let boundary = index.ebar_start();
            prop_assert!(order[..boundary].iter().all(|&i| (i as usize) < boundary));
            let suffix = index.suffix_max_scores(&order);
            for (i, &oi) in order.iter().enumerate() {
                prop_assert!(index.entries()[oi as usize].score <= suffix[i] + 1e-12);
            }
        }
    }
}
