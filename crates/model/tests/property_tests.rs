//! Property-based tests for the dataset model: the invariants that every
//! downstream algorithm relies on must hold for arbitrary claim sets.

use copydet_model::{DatasetBuilder, ItemId};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

/// Strategy producing arbitrary claim triples over small name universes so
/// collisions (shared items, conflicting values, duplicate claims) are
/// frequent.
fn claims_strategy() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    prop::collection::vec((0u8..12, 0u8..10, 0u8..6), 0..120)
}

proptest! {
    /// A source never appears in two value groups of the same item, and the
    /// union of the groups' providers equals the set of sources claiming the
    /// item.
    #[test]
    fn provider_groups_partition_item_providers(claims in claims_strategy()) {
        let mut b = DatasetBuilder::new();
        for (s, d, v) in &claims {
            b.add_claim(&format!("S{s}"), &format!("D{d}"), &format!("v{v}"));
        }
        let ds = b.build();
        for d in ds.items() {
            let mut seen = HashSet::new();
            for group in ds.values_of_item(d) {
                for &p in &group.providers {
                    prop_assert!(seen.insert(p), "source {p} appears in two groups of item {d}");
                }
            }
            let claiming: HashSet<_> = ds
                .sources()
                .filter(|&s| ds.value_of(s, d).is_some())
                .collect();
            prop_assert_eq!(seen, claiming);
        }
    }

    /// The last claim wins: after building, a source's value for an item is
    /// the value of the last inserted claim for that (source, item).
    #[test]
    fn last_claim_wins(claims in claims_strategy()) {
        let mut b = DatasetBuilder::new();
        let mut expected: HashMap<(String, String), String> = HashMap::new();
        for (s, d, v) in &claims {
            let (s, d, v) = (format!("S{s}"), format!("D{d}"), format!("v{v}"));
            b.add_claim(&s, &d, &v);
            expected.insert((s, d), v);
        }
        let ds = b.build();
        prop_assert_eq!(ds.num_claims(), expected.len());
        for ((s, d), v) in &expected {
            let sid = ds.source_by_name(s).unwrap();
            let did = ds.item_by_name(d).unwrap();
            let vid = ds.value_of(sid, did).unwrap();
            prop_assert_eq!(ds.value_str(vid), v.as_str());
        }
    }

    /// Shared item / shared value counts are symmetric and consistent:
    /// shared values ≤ shared items ≤ min coverage.
    #[test]
    fn sharing_counts_are_consistent(claims in claims_strategy()) {
        let mut b = DatasetBuilder::new();
        for (s, d, v) in &claims {
            b.add_claim(&format!("S{s}"), &format!("D{d}"), &format!("v{v}"));
        }
        let ds = b.build();
        let sources: Vec<_> = ds.sources().collect();
        for (i, &a) in sources.iter().enumerate() {
            for &b_ in &sources[i + 1..] {
                let items = ds.shared_item_count(a, b_);
                let values = ds.shared_value_count(a, b_);
                prop_assert_eq!(items, ds.shared_item_count(b_, a));
                prop_assert_eq!(values, ds.shared_value_count(b_, a));
                prop_assert!(values <= items);
                prop_assert!(items <= ds.coverage(a).min(ds.coverage(b_)));
            }
        }
    }

    /// TSV round-trip preserves every claim.
    #[test]
    fn tsv_roundtrip(claims in claims_strategy()) {
        let mut b = DatasetBuilder::new();
        for (s, d, v) in &claims {
            b.add_claim(&format!("S{s}"), &format!("D{d}"), &format!("v{v}"));
        }
        let ds = b.build();
        let text = copydet_model::tsv::dataset_to_string(&ds).unwrap();
        let back = copydet_model::tsv::parse_dataset(&text).unwrap();
        prop_assert_eq!(back.num_claims(), ds.num_claims());
        for c in ds.claim_refs() {
            let s = back.source_by_name(c.source).unwrap();
            let d = back.item_by_name(c.item).unwrap();
            let v = back.value_of(s, d).unwrap();
            prop_assert_eq!(back.value_str(v), c.value);
        }
    }

    /// Feeding arbitrary text to the TSV parser returns `Ok` or a typed
    /// parse error — never a panic. (Adversarial-input coverage for the
    /// import path.)
    #[test]
    fn tsv_parse_tolerates_arbitrary_text(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = copydet_model::tsv::parse_dataset(&text);
    }

    /// Structured adversarial lines — random fields joined by random
    /// separators — parse or fail cleanly, and every `Ok` dataset re-serializes
    /// (or is refused as unrepresentable), closing the loop.
    #[test]
    fn tsv_parse_tolerates_adversarial_lines(
        lines in prop::collection::vec(
            prop::collection::vec((0u8..8, 0u8..5), 0..7),
            0..12,
        )
    ) {
        const FIELDS: [&str; 8] = ["S", "", "#x", "a b", "é雪", "v\u{0}w", "-", "0"];
        const SEPS: [&str; 5] = ["\t", "", " ", "\t\t", "#"];
        let text: String = lines
            .iter()
            .map(|line| {
                line.iter().map(|&(f, s)| {
                    format!("{}{}", FIELDS[f as usize], SEPS[s as usize])
                }).collect::<String>() + "\n"
            })
            .collect();
        if let Ok(ds) = copydet_model::tsv::parse_dataset(&text) {
            match copydet_model::tsv::dataset_to_string(&ds) {
                Ok(out) => {
                    let back = copydet_model::tsv::parse_dataset(&out).unwrap();
                    prop_assert_eq!(back.num_claims(), ds.num_claims());
                }
                Err(e) => prop_assert!(
                    matches!(e, copydet_model::ModelError::Unrepresentable { .. }),
                    "unexpected error {:?}", e
                ),
            }
        }
    }

    /// The TSV writer either round-trips a dataset *exactly* (same claim
    /// multiset) or refuses with `Unrepresentable` — it never emits a file
    /// that parses back to different claims. Names mix ASCII, `#`, spaces,
    /// tabs, newlines and non-ASCII, so both arms are exercised.
    #[test]
    fn tsv_write_roundtrips_exactly_or_refuses(
        claims in prop::collection::vec((0u8..10, 0u8..10, 0u8..10), 0..30)
    ) {
        const NAMES: [&str; 10] =
            ["S0", "source b", "#lead", "x#y", "é", "雪国", "tab\there", "nl\nhere", "", "S9"];
        let mut b = DatasetBuilder::new();
        for &(s, d, v) in &claims {
            b.add_claim(NAMES[s as usize], NAMES[d as usize], NAMES[v as usize]);
        }
        let ds = b.build();
        match copydet_model::tsv::dataset_to_string(&ds) {
            Ok(text) => {
                let back = copydet_model::tsv::parse_dataset(&text).unwrap();
                let claims_of = |ds: &copydet_model::Dataset| {
                    let mut v: Vec<(String, String, String)> = ds
                        .claim_refs()
                        .map(|c| (c.source.to_owned(), c.item.to_owned(), c.value.to_owned()))
                        .collect();
                    v.sort();
                    v
                };
                prop_assert_eq!(claims_of(&back), claims_of(&ds));
            }
            Err(copydet_model::ModelError::Unrepresentable { what }) => {
                // Refusal must be justified: some claim really is unwritable.
                let offending = ds.claim_refs().any(|c| {
                    c.source.starts_with('#')
                        || c.source.is_empty()
                        || c.item.is_empty()
                        || [c.source, c.item, c.value]
                            .iter()
                            .any(|f| f.contains(['\t', '\n', '\r']))
                });
                prop_assert!(offending, "refused {:?} but every claim is writable", what);
            }
            Err(other) => prop_assert!(false, "unexpected error {:?}", other),
        }
    }

    /// `decode(encode(x)) == x` for the binary claim codec over arbitrary
    /// ids, and for strings over an alphabet heavy in non-ASCII.
    #[test]
    fn codec_roundtrip(
        ids in prop::collection::vec((any::<u32>(), any::<u32>(), any::<u32>()), 0..20),
        strings in prop::collection::vec(
            prop::collection::vec(0u8..8, 0..10),
            0..10,
        )
    ) {
        use copydet_model::codec;
        const ALPHABET: [char; 8] = ['a', '\t', '#', 'é', 'ß', '雪', '\u{1F600}', '\u{0}'];
        let strings: Vec<String> = strings
            .into_iter()
            .map(|cs| cs.into_iter().map(|i| ALPHABET[i as usize]).collect())
            .collect();

        let mut out = Vec::new();
        for &(s, d, v) in &ids {
            codec::put_claim(&mut out, &copydet_model::Claim::new(
                copydet_model::SourceId::new(s),
                copydet_model::ItemId::new(d),
                copydet_model::ValueId::new(v),
            ));
        }
        for s in &strings {
            codec::put_str(&mut out, s).unwrap();
        }
        let mut r = codec::Reader::new(&out);
        for &(s, d, v) in &ids {
            let c = r.claim().unwrap();
            prop_assert_eq!((c.source.raw(), c.item.raw(), c.value.raw()), (s, d, v));
        }
        for s in &strings {
            prop_assert_eq!(r.str_ref().unwrap(), s.as_str());
        }
        prop_assert!(r.is_empty());
    }

    /// The codec reader never panics on arbitrary bytes (`encode(decode(x))
    /// == x` in the other direction: whatever *does* decode re-encodes to
    /// the bytes it was decoded from).
    #[test]
    fn codec_reader_tolerates_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        use copydet_model::codec;
        let mut r = codec::Reader::new(&bytes);
        let _ = r.u8();
        let _ = r.u32();
        let _ = r.u64();
        if let Ok(s) = codec::Reader::new(&bytes).str_ref() {
            // Re-encoding a decoded string reproduces the consumed bytes.
            let mut out = Vec::new();
            codec::put_str(&mut out, s).unwrap();
            prop_assert_eq!(&out[..], &bytes[..out.len()]);
        }
        if let Ok(c) = codec::Reader::new(&bytes).claim() {
            let mut out = Vec::new();
            codec::put_claim(&mut out, &c);
            prop_assert_eq!(&out[..], &bytes[..12]);
        }
    }

    /// Projection onto a random item subset keeps exactly the claims of those
    /// items and keeps identifiers stable.
    #[test]
    fn projection_is_exact(claims in claims_strategy(), keep_mask in prop::collection::vec(any::<bool>(), 10)) {
        let mut b = DatasetBuilder::new();
        for (s, d, v) in &claims {
            b.add_claim(&format!("S{s}"), &format!("D{d}"), &format!("v{v}"));
        }
        let ds = b.build();
        let keep: HashSet<ItemId> = ds
            .items()
            .filter(|d| keep_mask.get(d.index()).copied().unwrap_or(false))
            .collect();
        let proj = ds.project_items(&keep);
        prop_assert_eq!(proj.num_sources(), ds.num_sources());
        prop_assert_eq!(proj.num_items(), ds.num_items());
        let expected: usize = ds
            .claims_iter()
            .filter(|c| keep.contains(&c.item))
            .count();
        prop_assert_eq!(proj.num_claims(), expected);
        for s in ds.sources() {
            for d in ds.items() {
                let expected = if keep.contains(&d) { ds.value_of(s, d) } else { None };
                prop_assert_eq!(proj.value_of(s, d), expected);
            }
        }
    }
}
