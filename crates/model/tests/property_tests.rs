//! Property-based tests for the dataset model: the invariants that every
//! downstream algorithm relies on must hold for arbitrary claim sets.

use copydet_model::{DatasetBuilder, ItemId};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

/// Strategy producing arbitrary claim triples over small name universes so
/// collisions (shared items, conflicting values, duplicate claims) are
/// frequent.
fn claims_strategy() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    prop::collection::vec((0u8..12, 0u8..10, 0u8..6), 0..120)
}

proptest! {
    /// A source never appears in two value groups of the same item, and the
    /// union of the groups' providers equals the set of sources claiming the
    /// item.
    #[test]
    fn provider_groups_partition_item_providers(claims in claims_strategy()) {
        let mut b = DatasetBuilder::new();
        for (s, d, v) in &claims {
            b.add_claim(&format!("S{s}"), &format!("D{d}"), &format!("v{v}"));
        }
        let ds = b.build();
        for d in ds.items() {
            let mut seen = HashSet::new();
            for group in ds.values_of_item(d) {
                for &p in &group.providers {
                    prop_assert!(seen.insert(p), "source {p} appears in two groups of item {d}");
                }
            }
            let claiming: HashSet<_> = ds
                .sources()
                .filter(|&s| ds.value_of(s, d).is_some())
                .collect();
            prop_assert_eq!(seen, claiming);
        }
    }

    /// The last claim wins: after building, a source's value for an item is
    /// the value of the last inserted claim for that (source, item).
    #[test]
    fn last_claim_wins(claims in claims_strategy()) {
        let mut b = DatasetBuilder::new();
        let mut expected: HashMap<(String, String), String> = HashMap::new();
        for (s, d, v) in &claims {
            let (s, d, v) = (format!("S{s}"), format!("D{d}"), format!("v{v}"));
            b.add_claim(&s, &d, &v);
            expected.insert((s, d), v);
        }
        let ds = b.build();
        prop_assert_eq!(ds.num_claims(), expected.len());
        for ((s, d), v) in &expected {
            let sid = ds.source_by_name(s).unwrap();
            let did = ds.item_by_name(d).unwrap();
            let vid = ds.value_of(sid, did).unwrap();
            prop_assert_eq!(ds.value_str(vid), v.as_str());
        }
    }

    /// Shared item / shared value counts are symmetric and consistent:
    /// shared values ≤ shared items ≤ min coverage.
    #[test]
    fn sharing_counts_are_consistent(claims in claims_strategy()) {
        let mut b = DatasetBuilder::new();
        for (s, d, v) in &claims {
            b.add_claim(&format!("S{s}"), &format!("D{d}"), &format!("v{v}"));
        }
        let ds = b.build();
        let sources: Vec<_> = ds.sources().collect();
        for (i, &a) in sources.iter().enumerate() {
            for &b_ in &sources[i + 1..] {
                let items = ds.shared_item_count(a, b_);
                let values = ds.shared_value_count(a, b_);
                prop_assert_eq!(items, ds.shared_item_count(b_, a));
                prop_assert_eq!(values, ds.shared_value_count(b_, a));
                prop_assert!(values <= items);
                prop_assert!(items <= ds.coverage(a).min(ds.coverage(b_)));
            }
        }
    }

    /// TSV round-trip preserves every claim.
    #[test]
    fn tsv_roundtrip(claims in claims_strategy()) {
        let mut b = DatasetBuilder::new();
        for (s, d, v) in &claims {
            b.add_claim(&format!("S{s}"), &format!("D{d}"), &format!("v{v}"));
        }
        let ds = b.build();
        let text = copydet_model::tsv::dataset_to_string(&ds);
        let back = copydet_model::tsv::parse_dataset(&text).unwrap();
        prop_assert_eq!(back.num_claims(), ds.num_claims());
        for c in ds.claim_refs() {
            let s = back.source_by_name(c.source).unwrap();
            let d = back.item_by_name(c.item).unwrap();
            let v = back.value_of(s, d).unwrap();
            prop_assert_eq!(back.value_str(v), c.value);
        }
    }

    /// Projection onto a random item subset keeps exactly the claims of those
    /// items and keeps identifiers stable.
    #[test]
    fn projection_is_exact(claims in claims_strategy(), keep_mask in prop::collection::vec(any::<bool>(), 10)) {
        let mut b = DatasetBuilder::new();
        for (s, d, v) in &claims {
            b.add_claim(&format!("S{s}"), &format!("D{d}"), &format!("v{v}"));
        }
        let ds = b.build();
        let keep: HashSet<ItemId> = ds
            .items()
            .filter(|d| keep_mask.get(d.index()).copied().unwrap_or(false))
            .collect();
        let proj = ds.project_items(&keep);
        prop_assert_eq!(proj.num_sources(), ds.num_sources());
        prop_assert_eq!(proj.num_items(), ds.num_items());
        let expected: usize = ds
            .claims_iter()
            .filter(|c| keep.contains(&c.item))
            .count();
        prop_assert_eq!(proj.num_claims(), expected);
        for s in ds.sources() {
            for d in ds.items() {
                let expected = if keep.contains(&d) { ds.value_of(s, d) } else { None };
                prop_assert_eq!(proj.value_of(s, d), expected);
            }
        }
    }
}
