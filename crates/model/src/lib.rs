//! # copydet-model
//!
//! The structured-data model shared by every crate in the `copydetect`
//! workspace.
//!
//! The model follows the formulation of *Scaling up Copy Detection*
//! (Li et al., ICDE 2015): a domain of **data items** (e.g. "the capital of
//! New Jersey", "the closing price of AAPL on 2011-07-07"), a set of **data
//! sources** each providing values for a subset of the items, and the
//! resulting table of **claims** (source, item, value). Schema mapping and
//! entity resolution are assumed to have already been performed, so a data
//! item is identified across sources by name.
//!
//! The central type is [`Dataset`], an immutable, densely-indexed snapshot of
//! all claims that supports the access patterns the detection algorithms
//! need:
//!
//! * per-source claim lists (sorted by item) — used by PAIRWISE,
//! * per-item value groups with their provider lists — used to build the
//!   inverted index,
//! * membership queries (`value_of`, `shares_item`) — used by bound
//!   maintenance.
//!
//! Datasets are constructed through [`DatasetBuilder`] (string-based, order
//! insensitive, duplicate tolerant) or deserialized from the simple TSV
//! format in [`tsv`].
//!
//! ```
//! use copydet_model::DatasetBuilder;
//!
//! let mut b = DatasetBuilder::new();
//! b.add_claim("S1", "NJ", "Trenton");
//! b.add_claim("S2", "NJ", "Atlantic City");
//! b.add_claim("S2", "AZ", "Phoenix");
//! let ds = b.build();
//! assert_eq!(ds.num_sources(), 2);
//! assert_eq!(ds.num_items(), 2);
//! ```

#![forbid(unsafe_code)]
#![deny(unused_must_use)]
#![warn(missing_docs)]

mod builder;
#[warn(clippy::cast_possible_truncation, clippy::indexing_slicing)]
pub mod codec;
mod dataset;
mod delta;
mod error;
mod ids;
mod interner;
mod motivating;
mod names;
mod observation;
mod stats;
pub mod sync;
pub mod tsv;

pub use builder::DatasetBuilder;
pub use dataset::{Dataset, ItemValueGroup};
pub use delta::{ClaimChange, DatasetDelta};
pub use error::ModelError;
pub use ids::{ItemId, SourceId, SourcePair, ValueId};
pub use interner::Interner;
pub use motivating::{motivating_example, MotivatingExample};
pub use names::NameTable;
pub use observation::{Claim, ClaimRef};
pub use stats::DatasetStats;
