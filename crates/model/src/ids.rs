//! Dense, newtyped identifiers for sources, data items and values.
//!
//! All identifiers are allocated densely starting from zero by
//! [`DatasetBuilder`](crate::DatasetBuilder), so per-source / per-item state
//! can live in plain `Vec`s indexed by `id.index()` on hot paths instead of
//! hash maps.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(u32);

        impl $name {
            /// Creates an identifier from a dense index.
            #[inline]
            pub const fn new(index: u32) -> Self {
                Self(index)
            }

            /// Creates an identifier from a `usize` index.
            ///
            /// # Panics
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                Self(u32::try_from(index).expect("id index overflows u32"))
            }

            /// Returns the dense index as `usize`, suitable for `Vec` indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns the raw `u32` value.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            #[inline]
            fn from(v: u32) -> Self {
                Self(v)
            }
        }
    };
}

define_id!(
    /// Identifier of a data source (a website, a book store, a feed, …).
    SourceId,
    "S"
);
define_id!(
    /// Identifier of a data item (one attribute of one real-world entity).
    ItemId,
    "D"
);
define_id!(
    /// Identifier of a distinct (interned) value string.
    ValueId,
    "V"
);

/// An unordered pair of distinct sources, stored in canonical order
/// (`first < second`).
///
/// Copy detection reasons about pairs of sources; using a canonical
/// representation lets pair state be keyed consistently regardless of the
/// order in which the two sources were encountered. Note that the *copying
/// direction* (`S1 → S2` vs `S1 ← S2`) is tracked separately by the
/// detection algorithms: `SourcePair` only identifies which two sources are
/// being compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SourcePair {
    first: SourceId,
    second: SourceId,
}

impl SourcePair {
    /// Creates a canonical pair from two distinct sources.
    ///
    /// # Panics
    /// Panics if `a == b`; a source is never compared with itself.
    #[inline]
    pub fn new(a: SourceId, b: SourceId) -> Self {
        assert_ne!(a, b, "a source cannot form a pair with itself");
        if a < b {
            Self { first: a, second: b }
        } else {
            Self { first: b, second: a }
        }
    }

    /// The smaller of the two source identifiers.
    #[inline]
    pub const fn first(self) -> SourceId {
        self.first
    }

    /// The larger of the two source identifiers.
    #[inline]
    pub const fn second(self) -> SourceId {
        self.second
    }

    /// Returns the pair as a `(first, second)` tuple.
    #[inline]
    pub const fn as_tuple(self) -> (SourceId, SourceId) {
        (self.first, self.second)
    }

    /// Returns the member of the pair that is not `s`.
    ///
    /// # Panics
    /// Panics if `s` is not a member of the pair.
    #[inline]
    pub fn other(self, s: SourceId) -> SourceId {
        if s == self.first {
            self.second
        } else if s == self.second {
            self.first
        } else {
            panic!("{s} is not a member of {self}")
        }
    }

    /// Returns `true` if `s` is one of the two sources.
    #[inline]
    pub fn contains(self, s: SourceId) -> bool {
        s == self.first || s == self.second
    }
}

impl fmt::Display for SourcePair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.first, self.second)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip_and_display() {
        let s = SourceId::new(7);
        assert_eq!(s.index(), 7);
        assert_eq!(s.raw(), 7);
        assert_eq!(s.to_string(), "S7");
        assert_eq!(SourceId::from_index(7), s);
        assert_eq!(ItemId::new(3).to_string(), "D3");
        assert_eq!(ValueId::new(12).to_string(), "V12");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(SourceId::new(1) < SourceId::new(2));
        assert!(ItemId::new(0) < ItemId::new(10));
    }

    #[test]
    fn source_pair_is_canonical() {
        let a = SourceId::new(4);
        let b = SourceId::new(1);
        let p = SourcePair::new(a, b);
        assert_eq!(p.first(), b);
        assert_eq!(p.second(), a);
        assert_eq!(p, SourcePair::new(b, a));
        assert_eq!(p.as_tuple(), (b, a));
        assert_eq!(p.to_string(), "(S1, S4)");
    }

    #[test]
    fn source_pair_other_and_contains() {
        let p = SourcePair::new(SourceId::new(2), SourceId::new(9));
        assert_eq!(p.other(SourceId::new(2)), SourceId::new(9));
        assert_eq!(p.other(SourceId::new(9)), SourceId::new(2));
        assert!(p.contains(SourceId::new(2)));
        assert!(!p.contains(SourceId::new(3)));
    }

    #[test]
    #[should_panic(expected = "cannot form a pair with itself")]
    fn source_pair_rejects_self_pair() {
        let _ = SourcePair::new(SourceId::new(3), SourceId::new(3));
    }

    #[test]
    #[should_panic(expected = "not a member")]
    fn source_pair_other_rejects_non_member() {
        let p = SourcePair::new(SourceId::new(0), SourceId::new(1));
        let _ = p.other(SourceId::new(2));
    }
}
