//! Rank-disciplined lock wrappers: [`RankedMutex`] and [`RankedRwLock`].
//!
//! The serving stack holds a small lock hierarchy — the sharded store's
//! global name registry over per-shard store mutexes, plus the frontend's
//! connection registry — and the only thing standing between "works today"
//! and "deadlocks under next month's refactor" is the *order* those locks
//! are taken in. This module turns that order from a convention into a
//! machine-checked invariant, twice over:
//!
//! * **statically** — `copydet-audit` requires every `Mutex`/`RwLock`
//!   declaration in the workspace to carry a `// lock-rank: N (name)`
//!   annotation and cross-checks the declared ranks against the table in
//!   `DESIGN.md` (§8);
//! * **dynamically** — these wrappers keep a thread-local stack of held
//!   ranks and `debug_assert` on every acquisition that the new lock's rank
//!   is **strictly greater** than every rank the thread already holds.
//!
//! Strictly-greater (not greater-or-equal) means a thread can never nest
//! two locks of the same rank — which is exactly the discipline the
//! item-partitioned shard mutexes rely on: they share one rank and are only
//! ever taken one at a time, so two threads sweeping the shards in
//! different orders cannot deadlock.
//!
//! The bookkeeping exists only under `cfg(debug_assertions)`; release
//! builds compile the wrappers down to the plain `std::sync` primitives
//! with zero overhead. Debug test runs — including the ingest-while-
//! detecting stress suites — therefore double as lock-order checkers.
//!
//! Lock poisoning is handled inside the wrappers: a panic while holding a
//! lock poisons it, and any later acquisition panics with the lock's
//! registered name. That keeps `unwrap`/`expect` chains out of the audited
//! server paths while preserving fail-fast semantics.

use std::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(debug_assertions)]
mod rank_stack {
    use std::cell::RefCell;

    thread_local! {
        /// Ranks (with names and acquisition tokens) currently held by this
        /// thread, in acquisition order. Tokens make release order-agnostic:
        /// guards may drop in any order, so each pops its own entry.
        static HELD: RefCell<Vec<(u32, &'static str, u64)>> = const { RefCell::new(Vec::new()) };
        static NEXT_TOKEN: RefCell<u64> = const { RefCell::new(0) };
    }

    /// Records an acquisition, asserting the rank discipline first.
    pub(super) fn acquire(rank: u32, name: &'static str) -> u64 {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(&(top_rank, top_name, _)) = held.iter().max_by_key(|&&(rank, _, _)| rank) {
                assert!(
                    rank > top_rank,
                    "lock rank violation: acquiring '{name}' (rank {rank}) while holding \
                     '{top_name}' (rank {top_rank}); locks must be acquired in strictly \
                     increasing rank order (see DESIGN.md §8)"
                );
            }
            let token = NEXT_TOKEN.with(|t| {
                let mut t = t.borrow_mut();
                *t += 1;
                *t
            });
            held.push((rank, name, token));
            token
        })
    }

    /// Records a release by acquisition token.
    pub(super) fn release(token: u64) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&(_, _, t)| t == token) {
                held.remove(pos);
            }
        });
    }

    /// Greatest rank currently held by this thread, if any (test hook).
    pub(super) fn max_held() -> Option<u32> {
        HELD.with(|held| held.borrow().iter().map(|&(rank, _, _)| rank).max())
    }
}

/// RAII record of one rank acquisition; popping happens on drop, so it must
/// be held alongside the lock guard it accounts for.
#[derive(Debug)]
struct RankToken {
    #[cfg(debug_assertions)]
    token: u64,
}

impl RankToken {
    fn acquire(rank: u32, name: &'static str) -> Self {
        #[cfg(debug_assertions)]
        {
            Self { token: rank_stack::acquire(rank, name) }
        }
        #[cfg(not(debug_assertions))]
        {
            let _ = (rank, name);
            Self {}
        }
    }
}

impl Drop for RankToken {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        rank_stack::release(self.token);
    }
}

/// Greatest lock rank the current thread holds, if any.
///
/// Debug-only introspection for tests that want to assert a code path runs
/// lock-free (or at a bounded rank); returns `None` in release builds.
pub fn max_held_rank() -> Option<u32> {
    #[cfg(debug_assertions)]
    {
        rank_stack::max_held()
    }
    #[cfg(not(debug_assertions))]
    {
        None
    }
}

/// A [`Mutex`] that participates in the workspace lock hierarchy.
///
/// Construction registers a **rank** and a **name**; every
/// [`lock`](Self::lock) asserts (debug builds only) that the acquiring
/// thread holds no lock of equal or greater rank. See the module docs for
/// the discipline.
#[derive(Debug, Default)]
pub struct RankedMutex<T> {
    rank: u32,
    name: &'static str,
    inner: Mutex<T>,
}

/// The guard of a [`RankedMutex`]; releases the rank on drop.
#[derive(Debug)]
pub struct RankedMutexGuard<'a, T> {
    // Declaration order matters: the lock guard drops before the rank pops.
    guard: MutexGuard<'a, T>,
    _token: RankToken,
}

impl<T> RankedMutex<T> {
    /// Wraps `value` in a mutex of the given `rank`, named for diagnostics.
    pub fn new(rank: u32, name: &'static str, value: T) -> Self {
        Self { rank, name, inner: Mutex::new(value) }
    }

    /// The mutex's rank in the lock hierarchy.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// The mutex's diagnostic name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Acquires the mutex, asserting the rank discipline in debug builds.
    ///
    /// # Panics
    /// Panics if the lock is poisoned (a previous holder panicked), or — in
    /// debug builds — if the acquiring thread already holds a lock of equal
    /// or greater rank.
    pub fn lock(&self) -> RankedMutexGuard<'_, T> {
        let token = RankToken::acquire(self.rank, self.name);
        match self.inner.lock() {
            Ok(guard) => RankedMutexGuard { guard, _token: token },
            Err(poisoned) => {
                drop(poisoned);
                panic!("lock '{}' poisoned: a previous holder panicked", self.name)
            }
        }
    }
}

impl<T> std::ops::Deref for RankedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> std::ops::DerefMut for RankedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// An [`RwLock`] that participates in the workspace lock hierarchy.
///
/// Both [`read`](Self::read) and [`write`](Self::write) count as
/// acquisitions for the rank discipline: a shared read nested inside a
/// same-rank lock can deadlock against a queued writer just as a write can,
/// so neither is exempt.
#[derive(Debug, Default)]
pub struct RankedRwLock<T> {
    rank: u32,
    name: &'static str,
    inner: RwLock<T>,
}

/// The shared-read guard of a [`RankedRwLock`].
#[derive(Debug)]
pub struct RankedReadGuard<'a, T> {
    guard: RwLockReadGuard<'a, T>,
    _token: RankToken,
}

/// The exclusive-write guard of a [`RankedRwLock`].
#[derive(Debug)]
pub struct RankedWriteGuard<'a, T> {
    guard: RwLockWriteGuard<'a, T>,
    _token: RankToken,
}

impl<T> RankedRwLock<T> {
    /// Wraps `value` in an rwlock of the given `rank`, named for
    /// diagnostics.
    pub fn new(rank: u32, name: &'static str, value: T) -> Self {
        Self { rank, name, inner: RwLock::new(value) }
    }

    /// The lock's rank in the lock hierarchy.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// The lock's diagnostic name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Acquires shared read access, asserting the rank discipline in debug
    /// builds.
    ///
    /// # Panics
    /// Panics if the lock is poisoned, or — in debug builds — on a rank
    /// violation.
    pub fn read(&self) -> RankedReadGuard<'_, T> {
        let token = RankToken::acquire(self.rank, self.name);
        match self.inner.read() {
            Ok(guard) => RankedReadGuard { guard, _token: token },
            Err(poisoned) => {
                drop(poisoned);
                panic!("lock '{}' poisoned: a previous holder panicked", self.name)
            }
        }
    }

    /// Acquires exclusive write access, asserting the rank discipline in
    /// debug builds.
    ///
    /// # Panics
    /// Panics if the lock is poisoned, or — in debug builds — on a rank
    /// violation.
    pub fn write(&self) -> RankedWriteGuard<'_, T> {
        let token = RankToken::acquire(self.rank, self.name);
        match self.inner.write() {
            Ok(guard) => RankedWriteGuard { guard, _token: token },
            Err(poisoned) => {
                drop(poisoned);
                panic!("lock '{}' poisoned: a previous holder panicked", self.name)
            }
        }
    }
}

impl<T> std::ops::Deref for RankedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> std::ops::Deref for RankedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> std::ops::DerefMut for RankedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascending_acquisition_is_allowed_and_released() {
        let low = RankedMutex::new(10, "low", 1);
        let high = RankedMutex::new(20, "high", 2);
        {
            let a = low.lock();
            let b = high.lock();
            assert_eq!(*a + *b, 3);
            if cfg!(debug_assertions) {
                assert_eq!(max_held_rank(), Some(20));
            }
        }
        assert_eq!(max_held_rank(), None);
        // After release, each lock is acquirable again on its own.
        drop(high.lock());
        drop(low.lock());
    }

    #[test]
    fn guards_release_out_of_order() {
        let a = RankedMutex::new(10, "a", ());
        let b = RankedMutex::new(20, "b", ());
        let c = RankedMutex::new(30, "c", ());
        let ga = a.lock();
        let gb = b.lock();
        let gc = c.lock();
        // Release the middle guard first: the stack must not corrupt.
        drop(gb);
        if cfg!(debug_assertions) {
            assert_eq!(max_held_rank(), Some(30));
        }
        drop(ga);
        drop(gc);
        assert_eq!(max_held_rank(), None);
    }

    #[test]
    fn rwlock_read_then_higher_write_is_allowed() {
        let registry = RankedRwLock::new(10, "registry", vec![1, 2]);
        let shard = RankedMutex::new(20, "shard", 0u32);
        let names = registry.read();
        let mut guard = shard.lock();
        *guard += names.len() as u32;
        drop(guard);
        drop(names);
        *registry.write() = vec![3];
        assert_eq!(*registry.read(), vec![3]);
    }

    #[test]
    fn ranks_and_names_are_introspectable() {
        let m = RankedMutex::new(42, "answer", ());
        assert_eq!((m.rank(), m.name()), (42, "answer"));
        let rw = RankedRwLock::new(7, "seven", ());
        assert_eq!((rw.rank(), rw.name()), (7, "seven"));
    }

    // The inverted-acquisition tests only exist in debug builds: release
    // builds compile the rank bookkeeping away entirely.

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock rank violation")]
    fn inverted_mutex_acquisition_panics() {
        let registry = RankedMutex::new(10, "registry", ());
        let shard = RankedMutex::new(20, "shard", ());
        let _shard_guard = shard.lock();
        let _registry_guard = registry.lock(); // rank 10 under rank 20: refused
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock rank violation")]
    fn same_rank_nesting_panics() {
        let a = RankedMutex::new(20, "shard-a", ());
        let b = RankedMutex::new(20, "shard-b", ());
        let _ga = a.lock();
        let _gb = b.lock(); // two shard-rank locks nested: refused
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock rank violation")]
    fn inverted_rwlock_read_under_mutex_panics() {
        let registry = RankedRwLock::new(10, "registry", ());
        let shard = RankedMutex::new(20, "shard", ());
        let _shard_guard = shard.lock();
        let _read = registry.read(); // even a shared read is an acquisition
    }

    #[test]
    fn poisoned_lock_panics_with_its_name() {
        let m = std::sync::Arc::new(RankedMutex::new(10, "poisoned-demo", ()));
        let clone = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = clone.lock();
            panic!("poison it");
        })
        .join();
        let err = std::panic::catch_unwind(|| {
            let _ = m.lock();
        })
        .expect_err("poisoned lock must refuse");
        let message = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_owned()))
            .unwrap_or_default();
        assert!(message.contains("poisoned-demo"), "panic names the lock: {message}");
    }
}
