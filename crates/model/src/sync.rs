//! Rank-disciplined lock wrappers: [`RankedMutex`] and [`RankedRwLock`].
//!
//! The serving stack holds a small lock hierarchy — the sharded store's
//! global name registry over per-shard store mutexes, plus the frontend's
//! connection registry — and the only thing standing between "works today"
//! and "deadlocks under next month's refactor" is the *order* those locks
//! are taken in. This module turns that order from a convention into a
//! machine-checked invariant, twice over:
//!
//! * **statically** — `copydet-audit` requires every `Mutex`/`RwLock`
//!   declaration in the workspace to carry a `// lock-rank: N (name)`
//!   annotation and cross-checks the declared ranks against the table in
//!   `DESIGN.md` (§8);
//! * **dynamically** — these wrappers keep a thread-local stack of held
//!   ranks and `debug_assert` on every acquisition that the new lock's rank
//!   is **strictly greater** than every rank the thread already holds.
//!
//! Strictly-greater (not greater-or-equal) means a thread can never nest
//! two locks of the same rank — which is exactly the discipline the
//! item-partitioned shard mutexes rely on: they share one rank and are only
//! ever taken one at a time, so two threads sweeping the shards in
//! different orders cannot deadlock.
//!
//! The bookkeeping exists only under `cfg(debug_assertions)`; release
//! builds compile the wrappers down to the plain `std::sync` primitives
//! with zero overhead. Debug test runs — including the ingest-while-
//! detecting stress suites — therefore double as lock-order checkers.
//!
//! Lock poisoning is handled inside the wrappers: a panic while holding a
//! lock poisons it, and any later acquisition panics with the lock's
//! registered name. That keeps `unwrap`/`expect` chains out of the audited
//! server paths while preserving fail-fast semantics.
//!
//! ## Contention probes
//!
//! Every ranked lock additionally carries an **always-on** contention probe
//! (release builds included): three relaxed atomics counting acquisitions,
//! contended acquisitions (the uncontended `try_lock` fast path failed) and
//! total nanoseconds spent blocked. Locks sharing a `(rank, name)` pair —
//! the item-partitioned shards, for instance — share one probe, so the
//! numbers aggregate per hierarchy entry. [`lock_probe_snapshots`] returns
//! the current readings; `copydet-obs` republishes them as
//! `copydet_lock_*{rank,name}` gauges for the METRICS verb. The uncontended
//! path costs one `fetch_add` (~ns); timing happens only on the blocking
//! path, which already costs a context switch.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(debug_assertions)]
mod rank_stack {
    use std::cell::RefCell;

    thread_local! {
        /// Ranks (with names and acquisition tokens) currently held by this
        /// thread, in acquisition order. Tokens make release order-agnostic:
        /// guards may drop in any order, so each pops its own entry.
        static HELD: RefCell<Vec<(u32, &'static str, u64)>> = const { RefCell::new(Vec::new()) };
        static NEXT_TOKEN: RefCell<u64> = const { RefCell::new(0) };
    }

    /// Records an acquisition, asserting the rank discipline first.
    pub(super) fn acquire(rank: u32, name: &'static str) -> u64 {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(&(top_rank, top_name, _)) = held.iter().max_by_key(|&&(rank, _, _)| rank) {
                assert!(
                    rank > top_rank,
                    "lock rank violation: acquiring '{name}' (rank {rank}) while holding \
                     '{top_name}' (rank {top_rank}); locks must be acquired in strictly \
                     increasing rank order (see DESIGN.md §8)"
                );
            }
            let token = NEXT_TOKEN.with(|t| {
                let mut t = t.borrow_mut();
                *t += 1;
                *t
            });
            held.push((rank, name, token));
            token
        })
    }

    /// Records a release by acquisition token.
    pub(super) fn release(token: u64) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&(_, _, t)| t == token) {
                held.remove(pos);
            }
        });
    }

    /// Greatest rank currently held by this thread, if any (test hook).
    pub(super) fn max_held() -> Option<u32> {
        HELD.with(|held| held.borrow().iter().map(|&(rank, _, _)| rank).max())
    }
}

/// RAII record of one rank acquisition; popping happens on drop, so it must
/// be held alongside the lock guard it accounts for.
#[derive(Debug)]
struct RankToken {
    #[cfg(debug_assertions)]
    token: u64,
}

impl RankToken {
    fn acquire(rank: u32, name: &'static str) -> Self {
        #[cfg(debug_assertions)]
        {
            Self { token: rank_stack::acquire(rank, name) }
        }
        #[cfg(not(debug_assertions))]
        {
            let _ = (rank, name);
            Self {}
        }
    }
}

impl Drop for RankToken {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        rank_stack::release(self.token);
    }
}

/// Greatest lock rank the current thread holds, if any.
///
/// Debug-only introspection for tests that want to assert a code path runs
/// lock-free (or at a bounded rank); returns `None` in release builds.
pub fn max_held_rank() -> Option<u32> {
    #[cfg(debug_assertions)]
    {
        rank_stack::max_held()
    }
    #[cfg(not(debug_assertions))]
    {
        None
    }
}

/// Contention counters of one `(rank, name)` entry in the lock hierarchy.
///
/// All counters are relaxed atomics: they are monotone tallies read for
/// dashboards, not synchronization. A probe is shared by every lock
/// constructed with the same rank and name (shards aggregate).
#[derive(Debug)]
pub struct LockProbe {
    rank: u32,
    name: &'static str,
    acquisitions: AtomicU64,
    contended: AtomicU64,
    wait_nanos: AtomicU64,
}

impl LockProbe {
    fn detached(rank: u32, name: &'static str) -> Self {
        Self {
            rank,
            name,
            acquisitions: AtomicU64::new(0),
            contended: AtomicU64::new(0),
            wait_nanos: AtomicU64::new(0),
        }
    }

    /// Counts one acquisition on the uncontended fast path.
    fn hit(&self) {
        self.acquisitions.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one contended acquisition and the nanoseconds it blocked.
    fn blocked(&self, waited: std::time::Duration) {
        self.contended.fetch_add(1, Ordering::Relaxed);
        let nanos = u64::try_from(waited.as_nanos()).unwrap_or(u64::MAX);
        self.wait_nanos.fetch_add(nanos, Ordering::Relaxed);
    }
}

impl Default for LockProbe {
    /// A detached probe (rank 0, empty name) for `Default`-constructed
    /// locks; never registered, so it cannot pollute the snapshots.
    fn default() -> Self {
        Self::detached(0, "")
    }
}

/// A point-in-time reading of one [`LockProbe`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockProbeSnapshot {
    /// The lock's rank in the hierarchy.
    pub rank: u32,
    /// The lock's diagnostic name.
    pub name: &'static str,
    /// Total acquisitions (lock / read / write) since process start.
    pub acquisitions: u64,
    /// Acquisitions that found the lock held and had to block.
    pub contended: u64,
    /// Total nanoseconds spent blocked across all contended acquisitions.
    pub wait_nanos: u64,
}

/// The process-global probe directory. A plain `Mutex` (not a ranked one):
/// it is touched only at lock *construction* and snapshot time, never on an
/// acquisition path, so it sits outside the rank hierarchy by design.
fn probe_directory() -> &'static Mutex<Vec<Arc<LockProbe>>> {
    static PROBES: OnceLock<Mutex<Vec<Arc<LockProbe>>>> = OnceLock::new();
    PROBES.get_or_init(|| Mutex::new(Vec::new()))
}

/// The shared probe for `(rank, name)`, registering it on first sight.
fn probe_for(rank: u32, name: &'static str) -> Arc<LockProbe> {
    let mut probes = match probe_directory().lock() {
        Ok(guard) => guard,
        // A panic between find and push cannot leave the Vec torn; keep
        // serving probes rather than poisoning every lock constructor.
        Err(poisoned) => poisoned.into_inner(),
    };
    if let Some(existing) = probes.iter().find(|p| p.rank == rank && p.name == name) {
        return Arc::clone(existing);
    }
    let probe = Arc::new(LockProbe::detached(rank, name));
    probes.push(Arc::clone(&probe));
    probe
}

/// Current readings of every registered lock probe, sorted by rank then
/// name. The observability layer republishes these as registry gauges.
pub fn lock_probe_snapshots() -> Vec<LockProbeSnapshot> {
    let probes = match probe_directory().lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    };
    let mut snapshots: Vec<LockProbeSnapshot> = probes
        .iter()
        .map(|p| LockProbeSnapshot {
            rank: p.rank,
            name: p.name,
            acquisitions: p.acquisitions.load(Ordering::Relaxed),
            contended: p.contended.load(Ordering::Relaxed),
            wait_nanos: p.wait_nanos.load(Ordering::Relaxed),
        })
        .collect();
    snapshots.sort_by(|a, b| a.rank.cmp(&b.rank).then_with(|| a.name.cmp(b.name)));
    snapshots
}

/// A [`Mutex`] that participates in the workspace lock hierarchy.
///
/// Construction registers a **rank** and a **name**; every
/// [`lock`](Self::lock) asserts (debug builds only) that the acquiring
/// thread holds no lock of equal or greater rank. See the module docs for
/// the discipline.
#[derive(Debug, Default)]
pub struct RankedMutex<T> {
    rank: u32,
    name: &'static str,
    probe: Arc<LockProbe>,
    inner: Mutex<T>,
}

/// The guard of a [`RankedMutex`]; releases the rank on drop.
#[derive(Debug)]
pub struct RankedMutexGuard<'a, T> {
    // Declaration order matters: the lock guard drops before the rank pops.
    guard: MutexGuard<'a, T>,
    _token: RankToken,
}

impl<T> RankedMutex<T> {
    /// Wraps `value` in a mutex of the given `rank`, named for diagnostics.
    pub fn new(rank: u32, name: &'static str, value: T) -> Self {
        Self { rank, name, probe: probe_for(rank, name), inner: Mutex::new(value) }
    }

    /// The mutex's rank in the lock hierarchy.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// The mutex's diagnostic name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Acquires the mutex, asserting the rank discipline in debug builds.
    ///
    /// # Panics
    /// Panics if the lock is poisoned (a previous holder panicked), or — in
    /// debug builds — if the acquiring thread already holds a lock of equal
    /// or greater rank.
    pub fn lock(&self) -> RankedMutexGuard<'_, T> {
        let token = RankToken::acquire(self.rank, self.name);
        self.probe.hit();
        let guard = match self.inner.try_lock() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::WouldBlock) => {
                let start = std::time::Instant::now();
                let acquired = self.inner.lock();
                self.probe.blocked(start.elapsed());
                match acquired {
                    Ok(guard) => guard,
                    Err(poisoned) => {
                        drop(poisoned);
                        panic!("lock '{}' poisoned: a previous holder panicked", self.name)
                    }
                }
            }
            Err(std::sync::TryLockError::Poisoned(poisoned)) => {
                drop(poisoned);
                panic!("lock '{}' poisoned: a previous holder panicked", self.name)
            }
        };
        RankedMutexGuard { guard, _token: token }
    }
}

impl<T> std::ops::Deref for RankedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> std::ops::DerefMut for RankedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// An [`RwLock`] that participates in the workspace lock hierarchy.
///
/// Both [`read`](Self::read) and [`write`](Self::write) count as
/// acquisitions for the rank discipline: a shared read nested inside a
/// same-rank lock can deadlock against a queued writer just as a write can,
/// so neither is exempt.
#[derive(Debug, Default)]
pub struct RankedRwLock<T> {
    rank: u32,
    name: &'static str,
    probe: Arc<LockProbe>,
    inner: RwLock<T>,
}

/// The shared-read guard of a [`RankedRwLock`].
#[derive(Debug)]
pub struct RankedReadGuard<'a, T> {
    guard: RwLockReadGuard<'a, T>,
    _token: RankToken,
}

/// The exclusive-write guard of a [`RankedRwLock`].
#[derive(Debug)]
pub struct RankedWriteGuard<'a, T> {
    guard: RwLockWriteGuard<'a, T>,
    _token: RankToken,
}

impl<T> RankedRwLock<T> {
    /// Wraps `value` in an rwlock of the given `rank`, named for
    /// diagnostics.
    pub fn new(rank: u32, name: &'static str, value: T) -> Self {
        Self { rank, name, probe: probe_for(rank, name), inner: RwLock::new(value) }
    }

    /// The lock's rank in the lock hierarchy.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// The lock's diagnostic name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Acquires shared read access, asserting the rank discipline in debug
    /// builds.
    ///
    /// # Panics
    /// Panics if the lock is poisoned, or — in debug builds — on a rank
    /// violation.
    pub fn read(&self) -> RankedReadGuard<'_, T> {
        let token = RankToken::acquire(self.rank, self.name);
        self.probe.hit();
        let guard = match self.inner.try_read() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::WouldBlock) => {
                let start = std::time::Instant::now();
                let acquired = self.inner.read();
                self.probe.blocked(start.elapsed());
                match acquired {
                    Ok(guard) => guard,
                    Err(poisoned) => {
                        drop(poisoned);
                        panic!("lock '{}' poisoned: a previous holder panicked", self.name)
                    }
                }
            }
            Err(std::sync::TryLockError::Poisoned(poisoned)) => {
                drop(poisoned);
                panic!("lock '{}' poisoned: a previous holder panicked", self.name)
            }
        };
        RankedReadGuard { guard, _token: token }
    }

    /// Acquires exclusive write access, asserting the rank discipline in
    /// debug builds.
    ///
    /// # Panics
    /// Panics if the lock is poisoned, or — in debug builds — on a rank
    /// violation.
    pub fn write(&self) -> RankedWriteGuard<'_, T> {
        let token = RankToken::acquire(self.rank, self.name);
        self.probe.hit();
        let guard = match self.inner.try_write() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::WouldBlock) => {
                let start = std::time::Instant::now();
                let acquired = self.inner.write();
                self.probe.blocked(start.elapsed());
                match acquired {
                    Ok(guard) => guard,
                    Err(poisoned) => {
                        drop(poisoned);
                        panic!("lock '{}' poisoned: a previous holder panicked", self.name)
                    }
                }
            }
            Err(std::sync::TryLockError::Poisoned(poisoned)) => {
                drop(poisoned);
                panic!("lock '{}' poisoned: a previous holder panicked", self.name)
            }
        };
        RankedWriteGuard { guard, _token: token }
    }
}

impl<T> std::ops::Deref for RankedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> std::ops::Deref for RankedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> std::ops::DerefMut for RankedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascending_acquisition_is_allowed_and_released() {
        let low = RankedMutex::new(10, "low", 1);
        let high = RankedMutex::new(20, "high", 2);
        {
            let a = low.lock();
            let b = high.lock();
            assert_eq!(*a + *b, 3);
            if cfg!(debug_assertions) {
                assert_eq!(max_held_rank(), Some(20));
            }
        }
        assert_eq!(max_held_rank(), None);
        // After release, each lock is acquirable again on its own.
        drop(high.lock());
        drop(low.lock());
    }

    #[test]
    fn guards_release_out_of_order() {
        let a = RankedMutex::new(10, "a", ());
        let b = RankedMutex::new(20, "b", ());
        let c = RankedMutex::new(30, "c", ());
        let ga = a.lock();
        let gb = b.lock();
        let gc = c.lock();
        // Release the middle guard first: the stack must not corrupt.
        drop(gb);
        if cfg!(debug_assertions) {
            assert_eq!(max_held_rank(), Some(30));
        }
        drop(ga);
        drop(gc);
        assert_eq!(max_held_rank(), None);
    }

    #[test]
    fn rwlock_read_then_higher_write_is_allowed() {
        let registry = RankedRwLock::new(10, "registry", vec![1, 2]);
        let shard = RankedMutex::new(20, "shard", 0u32);
        let names = registry.read();
        let mut guard = shard.lock();
        *guard += names.len() as u32;
        drop(guard);
        drop(names);
        *registry.write() = vec![3];
        assert_eq!(*registry.read(), vec![3]);
    }

    #[test]
    fn ranks_and_names_are_introspectable() {
        let m = RankedMutex::new(42, "answer", ());
        assert_eq!((m.rank(), m.name()), (42, "answer"));
        let rw = RankedRwLock::new(7, "seven", ());
        assert_eq!((rw.rank(), rw.name()), (7, "seven"));
    }

    // The inverted-acquisition tests only exist in debug builds: release
    // builds compile the rank bookkeeping away entirely.

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock rank violation")]
    fn inverted_mutex_acquisition_panics() {
        let registry = RankedMutex::new(10, "registry", ());
        let shard = RankedMutex::new(20, "shard", ());
        let _shard_guard = shard.lock();
        let _registry_guard = registry.lock(); // rank 10 under rank 20: refused
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock rank violation")]
    fn same_rank_nesting_panics() {
        let a = RankedMutex::new(20, "shard-a", ());
        let b = RankedMutex::new(20, "shard-b", ());
        let _ga = a.lock();
        let _gb = b.lock(); // two shard-rank locks nested: refused
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock rank violation")]
    fn inverted_rwlock_read_under_mutex_panics() {
        let registry = RankedRwLock::new(10, "registry", ());
        let shard = RankedMutex::new(20, "shard", ());
        let _shard_guard = shard.lock();
        let _read = registry.read(); // even a shared read is an acquisition
    }

    #[test]
    fn probes_count_acquisitions_and_contention() {
        let find = |snaps: &[LockProbeSnapshot]| {
            snaps.iter().find(|s| s.rank == 91 && s.name == "probe-demo").cloned()
        };
        let m = std::sync::Arc::new(RankedMutex::new(91, "probe-demo", 0u32));
        let before = find(&lock_probe_snapshots()).unwrap_or(LockProbeSnapshot {
            rank: 91,
            name: "probe-demo",
            acquisitions: 0,
            contended: 0,
            wait_nanos: 0,
        });
        // Uncontended: acquisitions move, contention does not.
        drop(m.lock());
        let after = find(&lock_probe_snapshots()).expect("probe registered at construction");
        assert_eq!(after.acquisitions, before.acquisitions + 1);
        assert_eq!(after.contended, before.contended);

        // Forced contention: hold the lock while another thread acquires.
        let held = m.lock();
        let contender = {
            let m = std::sync::Arc::clone(&m);
            std::thread::spawn(move || {
                let _guard = m.lock();
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(held);
        contender.join().expect("contender finishes");
        let contended = find(&lock_probe_snapshots()).expect("probe still registered");
        assert_eq!(contended.acquisitions, after.acquisitions + 2);
        assert!(contended.contended > after.contended, "the blocked acquisition counted");
        assert!(contended.wait_nanos > after.wait_nanos, "the block accrued wait time");
    }

    #[test]
    fn same_rank_and_name_locks_share_one_probe() {
        let a = RankedMutex::new(92, "probe-shared", ());
        let b = RankedMutex::new(92, "probe-shared", ());
        let reading = |snaps: &[LockProbeSnapshot]| {
            snaps
                .iter()
                .find(|s| s.rank == 92 && s.name == "probe-shared")
                .map(|s| s.acquisitions)
                .unwrap_or(0)
        };
        let before = reading(&lock_probe_snapshots());
        drop(a.lock());
        drop(b.lock());
        assert_eq!(reading(&lock_probe_snapshots()), before + 2, "both locks feed one probe");
    }

    #[test]
    fn default_locks_use_a_detached_probe() {
        let m: RankedMutex<u8> = RankedMutex::default();
        drop(m.lock());
        assert!(
            !lock_probe_snapshots().iter().any(|s| s.rank == 0 && s.name.is_empty()),
            "Default-constructed locks must not register probes"
        );
    }

    #[test]
    fn poisoned_lock_panics_with_its_name() {
        let m = std::sync::Arc::new(RankedMutex::new(10, "poisoned-demo", ()));
        let clone = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = clone.lock();
            panic!("poison it");
        })
        .join();
        let err = std::panic::catch_unwind(|| {
            let _ = m.lock();
        })
        .expect_err("poisoned lock must refuse");
        let message = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_owned()))
            .unwrap_or_default();
        assert!(message.contains("poisoned-demo"), "panic names the lock: {message}");
    }
}
