//! Dataset summary statistics (the quantities reported in Table V and
//! Section VI-A of the paper).

use crate::dataset::Dataset;
use serde::{Deserialize, Serialize};

/// Summary statistics of a [`Dataset`].
///
/// These are the quantities the paper uses to characterize its four
/// evaluation datasets: number of sources, number of data items, number of
/// distinct values, how many values are shared (i.e. would be indexed), the
/// conflict fan-out per item, and the coverage skew across sources.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Number of sources.
    pub num_sources: usize,
    /// Number of data items.
    pub num_items: usize,
    /// Number of data items with at least one claim.
    pub num_claimed_items: usize,
    /// Total number of claims.
    pub num_claims: usize,
    /// Number of distinct `(item, value)` combinations.
    pub num_distinct_item_values: usize,
    /// Number of `(item, value)` combinations provided by ≥ 2 sources; this
    /// is the number of entries the inverted index will contain.
    pub num_shared_item_values: usize,
    /// Average number of distinct values per claimed item (the paper's
    /// "conflicting values provided for each data item").
    pub avg_values_per_item: f64,
    /// Average fraction of items covered by a source.
    pub avg_source_coverage: f64,
    /// Fraction of sources that cover at most 1% of the items (the paper's
    /// characterization of the Book datasets).
    pub frac_sources_low_coverage: f64,
    /// Fraction of sources that cover at least half of the items (the
    /// paper's characterization of the Stock datasets).
    pub frac_sources_high_coverage: f64,
    /// Maximum number of items covered by any single source.
    pub max_source_coverage: usize,
    /// Minimum number of items covered by any single source (0 if a source
    /// has no claims).
    pub min_source_coverage: usize,
}

impl DatasetStats {
    /// Computes statistics for `ds`.
    pub fn compute(ds: &Dataset) -> Self {
        let num_sources = ds.num_sources();
        let num_items = ds.num_items();
        let num_claims = ds.num_claims();

        let mut num_claimed_items = 0;
        let mut num_distinct_item_values = 0;
        let mut num_shared_item_values = 0;
        for d in ds.items() {
            let groups = ds.values_of_item(d);
            if !groups.is_empty() {
                num_claimed_items += 1;
            }
            num_distinct_item_values += groups.len();
            num_shared_item_values += groups.iter().filter(|g| g.support() >= 2).count();
        }

        let avg_values_per_item = if num_claimed_items > 0 {
            num_distinct_item_values as f64 / num_claimed_items as f64
        } else {
            0.0
        };

        let coverages: Vec<usize> = ds.sources().map(|s| ds.coverage(s)).collect();
        let avg_source_coverage = if num_sources > 0 && num_items > 0 {
            coverages.iter().sum::<usize>() as f64 / (num_sources as f64 * num_items as f64)
        } else {
            0.0
        };
        let low_threshold = (num_items as f64 * 0.01).ceil() as usize;
        let high_threshold = num_items / 2;
        let frac_sources_low_coverage = if num_sources > 0 {
            coverages.iter().filter(|&&c| c <= low_threshold).count() as f64 / num_sources as f64
        } else {
            0.0
        };
        let frac_sources_high_coverage = if num_sources > 0 {
            coverages.iter().filter(|&&c| c >= high_threshold).count() as f64 / num_sources as f64
        } else {
            0.0
        };

        DatasetStats {
            num_sources,
            num_items,
            num_claimed_items,
            num_claims,
            num_distinct_item_values,
            num_shared_item_values,
            avg_values_per_item,
            avg_source_coverage,
            frac_sources_low_coverage,
            frac_sources_high_coverage,
            max_source_coverage: coverages.iter().copied().max().unwrap_or(0),
            min_source_coverage: coverages.iter().copied().min().unwrap_or(0),
        }
    }
}

impl std::fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "sources:               {}", self.num_sources)?;
        writeln!(f, "items:                 {}", self.num_items)?;
        writeln!(f, "claims:                {}", self.num_claims)?;
        writeln!(f, "distinct item-values:  {}", self.num_distinct_item_values)?;
        writeln!(f, "shared item-values:    {}", self.num_shared_item_values)?;
        writeln!(f, "avg values per item:   {:.2}", self.avg_values_per_item)?;
        writeln!(f, "avg source coverage:   {:.4}", self.avg_source_coverage)?;
        writeln!(f, "low-coverage sources:  {:.2}%", self.frac_sources_low_coverage * 100.0)?;
        write!(f, "high-coverage sources: {:.2}%", self.frac_sources_high_coverage * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::DatasetBuilder;

    #[test]
    fn stats_on_small_dataset() {
        let mut b = DatasetBuilder::new();
        b.add_claim("S0", "D0", "a");
        b.add_claim("S1", "D0", "a");
        b.add_claim("S2", "D0", "b");
        b.add_claim("S0", "D1", "c");
        let ds = b.build();
        let st = ds.stats();
        assert_eq!(st.num_sources, 3);
        assert_eq!(st.num_items, 2);
        assert_eq!(st.num_claims, 4);
        assert_eq!(st.num_claimed_items, 2);
        // D0 has values {a,b}, D1 has {c}
        assert_eq!(st.num_distinct_item_values, 3);
        // only D0.a is provided by >=2 sources
        assert_eq!(st.num_shared_item_values, 1);
        assert!((st.avg_values_per_item - 1.5).abs() < 1e-12);
        assert_eq!(st.max_source_coverage, 2);
        assert_eq!(st.min_source_coverage, 1);
        // coverage fractions: items=2, half = 1, everyone covers >= 1 item
        assert!((st.frac_sources_high_coverage - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stats_on_empty_dataset() {
        let ds = DatasetBuilder::new().build();
        let st = ds.stats();
        assert_eq!(st.num_sources, 0);
        assert_eq!(st.num_claims, 0);
        assert_eq!(st.avg_values_per_item, 0.0);
        assert_eq!(st.avg_source_coverage, 0.0);
    }

    #[test]
    fn display_renders() {
        let mut b = DatasetBuilder::new();
        b.add_claim("S0", "D0", "a");
        let text = b.build().stats().to_string();
        assert!(text.contains("sources:"));
        assert!(text.contains("claims:"));
    }
}
