//! Stable binary serialization of interned claims and the primitives the
//! on-disk store formats are built from.
//!
//! Everything is little-endian and length-prefixed:
//!
//! * integers — fixed-width `u8` / `u32` / `u64`,
//! * strings — `u32` byte length followed by UTF-8 bytes (bounded by
//!   [`MAX_STR_LEN`] so a corrupted length can never drive an absurd
//!   allocation),
//! * claims — the three raw `u32` ids in `(source, item, value)` order.
//!
//! The claim encoding is **stable**: it is defined purely in terms of the
//! dense id values, which [`NameTable`](crate::NameTable) / [`Interner`]
//! assign in first-seen order. Two stores fed the same claim stream produce
//! byte-identical encodings, and a store recovered from disk re-interns its
//! persisted name tables in index order so every persisted id resolves to
//! the same string it was written with.
//!
//! Decoding is total: any byte slice either decodes or returns a typed
//! [`CodecError`] — never a panic — which is what lets the store treat
//! arbitrary on-disk bytes as untrusted input. This module is on the
//! `copydet-audit` **no-panic** and **lossy-cast** lists: every length
//! conversion is a checked `try_from` (see [`u32_to_usize`] /
//! [`usize_to_u64`]) and every slice access is a total `get`-style read.
//!
//! The same primitives carry the **serving wire protocol**: request and
//! response payloads travel as checksummed frames
//! (`[kind][len][payload][crc32]`, see [`encode_wire_frame`] /
//! [`decode_wire_frame`]), sized for a stream reader that learns the body
//! length from the fixed [`WIRE_HEADER_LEN`]-byte header (then validates
//! header + body with [`decode_wire_parts`], no reassembly copy) and
//! bounded by [`MAX_WIRE_FRAME_LEN`] so hostile peers cannot drive
//! allocations.
//!
//! [`Interner`]: crate::Interner

use crate::ids::{ItemId, SourceId, ValueId};
use crate::observation::Claim;
use std::fmt;

/// Upper bound on the byte length of an encoded string (1 MiB).
///
/// Source/item names and values are human-scale strings; the bound exists so
/// a corrupted length prefix is rejected instead of driving a huge
/// allocation.
pub const MAX_STR_LEN: usize = 1 << 20;

/// Errors produced while decoding (or encoding) the binary claim format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the declared value was complete.
    Truncated {
        /// Bytes the decoder needed to make progress.
        needed: usize,
        /// Bytes that were actually available.
        have: usize,
    },
    /// A string's bytes were not valid UTF-8.
    Utf8 {
        /// Byte offset of the first invalid byte within the string.
        valid_up_to: usize,
    },
    /// A string length exceeded [`MAX_STR_LEN`] (encode or decode side), or
    /// a wire-frame length exceeded [`MAX_WIRE_FRAME_LEN`].
    StringTooLong {
        /// The offending length in bytes.
        len: usize,
    },
    /// A wire-frame payload exceeded [`MAX_WIRE_FRAME_LEN`] on the encode
    /// side.
    FrameTooLong {
        /// The offending payload length in bytes.
        len: usize,
    },
    /// A wire frame's checksum did not match its payload.
    ChecksumMismatch {
        /// The checksum carried by the frame.
        stored: u32,
        /// The checksum computed over the received payload.
        computed: u32,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, have } => {
                write!(f, "truncated input: needed {needed} byte(s), have {have}")
            }
            CodecError::Utf8 { valid_up_to } => {
                write!(f, "invalid UTF-8 in string after {valid_up_to} byte(s)")
            }
            CodecError::StringTooLong { len } => {
                write!(f, "string of {len} bytes exceeds the {MAX_STR_LEN}-byte limit")
            }
            CodecError::FrameTooLong { len } => {
                write!(
                    f,
                    "wire payload of {len} bytes exceeds the {MAX_WIRE_FRAME_LEN}-byte frame limit"
                )
            }
            CodecError::ChecksumMismatch { stored, computed } => {
                write!(f, "checksum mismatch: frame carries {stored:#010x}, payload computes {computed:#010x}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

// ---------------------------------------------------------------------------
// Checked width conversions
// ---------------------------------------------------------------------------

/// Widens a `u32` to `usize` without an `as` cast.
///
/// Lossless on every supported target (`usize` is at least 32 bits); the
/// saturating fallback keeps the conversion total — and panic-free — even
/// on a hypothetical 16-bit target, where a saturated length simply fails
/// the caller's bounds check instead of wrapping.
#[must_use]
pub fn u32_to_usize(v: u32) -> usize {
    usize::try_from(v).unwrap_or(usize::MAX)
}

/// Widens a `usize` to `u64` without an `as` cast.
///
/// Lossless on every supported target (`usize` is at most 64 bits); the
/// saturating fallback keeps the conversion total everywhere else.
#[must_use]
pub fn usize_to_u64(v: usize) -> u64 {
    u64::try_from(v).unwrap_or(u64::MAX)
}

// ---------------------------------------------------------------------------
// Primitive writers
// ---------------------------------------------------------------------------

/// Appends a `u8` to `out`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a little-endian `u32` to `out`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64` to `out`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed UTF-8 string to `out`.
///
/// # Errors
/// Returns [`CodecError::StringTooLong`] if `s` exceeds [`MAX_STR_LEN`]
/// bytes; nothing is written in that case.
pub fn put_str(out: &mut Vec<u8>, s: &str) -> Result<(), CodecError> {
    if s.len() > MAX_STR_LEN {
        return Err(CodecError::StringTooLong { len: s.len() });
    }
    // MAX_STR_LEN < u32::MAX, so this only fails if the check above is
    // broken — and then it fails loudly as an error, not a truncation.
    let len = u32::try_from(s.len()).map_err(|_| CodecError::StringTooLong { len: s.len() })?;
    put_u32(out, len);
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

/// Appends a claim's three raw ids (12 bytes) to `out`.
pub fn put_claim(out: &mut Vec<u8>, claim: &Claim) {
    put_u32(out, claim.source.raw());
    put_u32(out, claim.item.raw());
    put_u32(out, claim.value.raw());
}

// ---------------------------------------------------------------------------
// Wire frames
// ---------------------------------------------------------------------------

/// Upper bound on a wire-frame payload (16 MiB): a corrupted or hostile
/// length prefix is rejected before any allocation.
pub const MAX_WIRE_FRAME_LEN: u32 = 1 << 24;

/// Byte length of a wire-frame header (`kind` + payload length).
pub const WIRE_HEADER_LEN: usize = 5;

/// Frames a request/response payload for the serving wire protocol:
///
/// ```text
/// [kind: u8][len: u32][payload: len bytes][crc32(payload): u32]
/// ```
///
/// The header is fixed-size so a stream reader can read exactly
/// [`WIRE_HEADER_LEN`] bytes, learn the remaining length, and then read
/// `len + 4` more; [`decode_wire_parts`] validates the two pieces without
/// reassembling them. `kind` identifies the request/response type — the
/// codec does not interpret it.
///
/// # Errors
/// Returns [`CodecError::FrameTooLong`] if `payload` exceeds
/// [`MAX_WIRE_FRAME_LEN`] bytes; oversized responses must surface as typed
/// protocol errors, never kill a handler thread.
pub fn encode_wire_frame(kind: u8, payload: &[u8]) -> Result<Vec<u8>, CodecError> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&len| len <= MAX_WIRE_FRAME_LEN)
        .ok_or(CodecError::FrameTooLong { len: payload.len() })?;
    let mut out = Vec::with_capacity(WIRE_HEADER_LEN + payload.len() + 4);
    put_u8(&mut out, kind);
    put_u32(&mut out, len);
    out.extend_from_slice(payload);
    put_u32(&mut out, crc32_ieee(payload));
    Ok(out)
}

/// Decodes the declared payload length from a wire-frame header, bounding it
/// by [`MAX_WIRE_FRAME_LEN`]. Returns the number of bytes that follow the
/// header (payload + checksum).
///
/// # Errors
/// [`CodecError::StringTooLong`] (reusing the bounded-length error) if the
/// declared length exceeds the frame limit.
pub fn wire_frame_body_len(header: &[u8; WIRE_HEADER_LEN]) -> Result<usize, CodecError> {
    let [_, l0, l1, l2, l3] = *header;
    let len = u32::from_le_bytes([l0, l1, l2, l3]);
    if len > MAX_WIRE_FRAME_LEN {
        return Err(CodecError::StringTooLong { len: u32_to_usize(len) });
    }
    Ok(u32_to_usize(len) + 4)
}

/// Validates a wire frame split into its fixed-size header and the body a
/// stream reader fetched separately ([`wire_frame_body_len`] bytes), and
/// returns `(kind, payload)` borrowing from `body` — no reassembly copy.
///
/// Extra bytes beyond the declared payload + checksum are ignored, so a
/// caller holding a longer buffer can pass it unsliced.
///
/// # Errors
/// [`CodecError::Truncated`] if `body` ends before the declared payload and
/// checksum, [`CodecError::StringTooLong`] for an over-limit declared
/// length, [`CodecError::ChecksumMismatch`] when the payload fails its CRC.
pub fn decode_wire_parts<'a>(
    header: &[u8; WIRE_HEADER_LEN],
    body: &'a [u8],
) -> Result<(u8, &'a [u8]), CodecError> {
    let [kind, l0, l1, l2, l3] = *header;
    let len = u32::from_le_bytes([l0, l1, l2, l3]);
    if len > MAX_WIRE_FRAME_LEN {
        return Err(CodecError::StringTooLong { len: u32_to_usize(len) });
    }
    let payload_len = u32_to_usize(len);
    let needed = payload_len + 4;
    let payload =
        body.get(..payload_len).ok_or(CodecError::Truncated { needed, have: body.len() })?;
    let stored = match body.get(payload_len..needed) {
        Some(&[c0, c1, c2, c3]) => u32::from_le_bytes([c0, c1, c2, c3]),
        _ => return Err(CodecError::Truncated { needed, have: body.len() }),
    };
    let computed = crc32_ieee(payload);
    if stored != computed {
        return Err(CodecError::ChecksumMismatch { stored, computed });
    }
    Ok((kind, payload))
}

/// Validates a complete contiguous wire frame (header + payload + checksum)
/// and returns `(kind, payload)`. Convenience wrapper over
/// [`decode_wire_parts`] for callers that hold the whole frame in one
/// buffer.
///
/// # Errors
/// As [`decode_wire_parts`], plus [`CodecError::Truncated`] if even the
/// header is incomplete.
pub fn decode_wire_frame(bytes: &[u8]) -> Result<(u8, &[u8]), CodecError> {
    let too_short = CodecError::Truncated { needed: WIRE_HEADER_LEN, have: bytes.len() };
    let (header, body) = bytes.split_at_checked(WIRE_HEADER_LEN).ok_or(too_short.clone())?;
    let header: &[u8; WIRE_HEADER_LEN] = header.try_into().map_err(|_| too_short)?;
    decode_wire_parts(header, body)
}

#[allow(clippy::cast_possible_truncation, clippy::indexing_slicing)]
const WIRE_CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        // Const-eval has no `try_from`; `i` stays in 0..256, so both the
        // cast and the index are in range by construction.
        let mut crc = i as u32; // audit: allow(lossy-cast) — const loop var in 0..256
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc; // audit: allow(no-panic) — const index in 0..256 of a [u32; 256]
        i += 1;
    }
    table
};

/// One CRC table step: the table is 256 entries, so a `u8` index is total.
fn wire_crc(index: u8) -> u32 {
    WIRE_CRC_TABLE.get(usize::from(index)).copied().unwrap_or(0)
}

/// CRC32 (IEEE 802.3) of `bytes` — the checksum of wire frames, shared with
/// the store's on-disk envelopes.
pub fn crc32_ieee(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        let [low, ..] = (crc ^ u32::from(b)).to_le_bytes();
        crc = (crc >> 8) ^ wire_crc(low);
    }
    !crc
}

/// A cursor over an immutable byte slice, yielding typed values.
///
/// Every read either succeeds and advances the cursor or fails with a
/// [`CodecError`] and leaves the cursor where it was.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Returns `true` if every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Current offset from the start of the underlying slice.
    pub fn pos(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let short = CodecError::Truncated { needed: n, have: self.remaining() };
        let end = self.pos.checked_add(n).ok_or(short.clone())?;
        let slice = self.buf.get(self.pos..end).ok_or(short)?;
        self.pos = end;
        Ok(slice)
    }

    /// Reads exactly `N` bytes into an array.
    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], CodecError> {
        let slice = self.take(N)?;
        // `take` returned exactly N bytes; the conversion is total anyway.
        slice.try_into().map_err(|_| CodecError::Truncated { needed: N, have: slice.len() })
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        let [b] = self.take_array()?;
        Ok(b)
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }

    /// Reads a length-prefixed UTF-8 string as a borrowed slice.
    pub fn str_ref(&mut self) -> Result<&'a str, CodecError> {
        let start = self.pos;
        let len = u32_to_usize(self.u32()?);
        if len > MAX_STR_LEN {
            self.pos = start;
            return Err(CodecError::StringTooLong { len });
        }
        let bytes = match self.take(len) {
            Ok(b) => b,
            Err(e) => {
                self.pos = start;
                return Err(e);
            }
        };
        match std::str::from_utf8(bytes) {
            Ok(s) => Ok(s),
            Err(e) => {
                self.pos = start;
                Err(CodecError::Utf8 { valid_up_to: e.valid_up_to() })
            }
        }
    }

    /// Reads a length-prefixed UTF-8 string as an owned `String`.
    pub fn string(&mut self) -> Result<String, CodecError> {
        self.str_ref().map(str::to_owned)
    }

    /// Reads a claim's three raw ids (12 bytes).
    pub fn claim(&mut self) -> Result<Claim, CodecError> {
        let start = self.pos;
        let read = (|| -> Result<Claim, CodecError> {
            Ok(Claim {
                source: SourceId::new(self.u32()?),
                item: ItemId::new(self.u32()?),
                value: ValueId::new(self.u32()?),
            })
        })();
        if read.is_err() {
            self.pos = start;
        }
        read
    }
}

#[cfg(test)]
#[allow(clippy::indexing_slicing, clippy::cast_possible_truncation)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrip() {
        let mut out = Vec::new();
        put_u8(&mut out, 0xAB);
        put_u32(&mut out, 0xDEAD_BEEF);
        put_u64(&mut out, u64::MAX - 1);
        put_str(&mut out, "café 雪").unwrap();
        put_str(&mut out, "").unwrap();
        let claim =
            Claim { source: SourceId::new(3), item: ItemId::new(0), value: ValueId::new(7) };
        put_claim(&mut out, &claim);

        let mut r = Reader::new(&out);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.str_ref().unwrap(), "café 雪");
        assert_eq!(r.string().unwrap(), "");
        assert_eq!(r.claim().unwrap(), claim);
        assert!(r.is_empty());
    }

    #[test]
    fn width_conversions_are_lossless() {
        assert_eq!(u32_to_usize(0), 0);
        assert_eq!(u32_to_usize(u32::MAX), u32::MAX as usize);
        assert_eq!(usize_to_u64(0), 0);
        assert_eq!(usize_to_u64(usize::MAX), usize::MAX as u64);
    }

    #[test]
    fn truncated_reads_fail_without_advancing() {
        let mut out = Vec::new();
        put_u32(&mut out, 10);
        out.extend_from_slice(b"abc"); // declared 10 bytes, only 3 present
        let mut r = Reader::new(&out);
        let before = r.pos();
        assert_eq!(r.str_ref(), Err(CodecError::Truncated { needed: 10, have: 3 }));
        assert_eq!(r.pos(), before, "a failed read must not consume input");
        assert_eq!(Reader::new(&[1, 2]).u32(), Err(CodecError::Truncated { needed: 4, have: 2 }));
        assert_eq!(
            Reader::new(&[0; 11]).claim().unwrap_err(),
            CodecError::Truncated { needed: 4, have: 3 }
        );
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut out = Vec::new();
        put_u32(&mut out, 2);
        out.extend_from_slice(&[0xFF, 0xFE]);
        assert!(matches!(Reader::new(&out).str_ref(), Err(CodecError::Utf8 { .. })));
    }

    #[test]
    fn string_length_is_bounded() {
        let huge = "x".repeat(MAX_STR_LEN + 1);
        let mut out = Vec::new();
        assert_eq!(
            put_str(&mut out, &huge),
            Err(CodecError::StringTooLong { len: MAX_STR_LEN + 1 })
        );
        assert!(out.is_empty(), "a failed encode must not write");

        // Exactly at the limit round-trips.
        let max = "y".repeat(MAX_STR_LEN);
        put_str(&mut out, &max).unwrap();
        assert_eq!(Reader::new(&out).str_ref().unwrap(), max);

        // A corrupt oversized length prefix is rejected before allocating.
        let mut bad = Vec::new();
        put_u32(&mut bad, (MAX_STR_LEN + 1) as u32);
        assert_eq!(
            Reader::new(&bad).str_ref(),
            Err(CodecError::StringTooLong { len: MAX_STR_LEN + 1 })
        );
    }

    #[test]
    fn errors_display() {
        assert!(CodecError::Truncated { needed: 4, have: 1 }.to_string().contains("needed 4"));
        assert!(CodecError::Utf8 { valid_up_to: 2 }.to_string().contains("UTF-8"));
        assert!(CodecError::StringTooLong { len: 9 }.to_string().contains("9 bytes"));
        assert!(CodecError::FrameTooLong { len: 99 }.to_string().contains("99 bytes"));
        assert!(CodecError::ChecksumMismatch { stored: 1, computed: 2 }
            .to_string()
            .contains("checksum mismatch"));
    }

    #[test]
    fn wire_frame_roundtrip_and_validation() {
        let mut payload = Vec::new();
        put_str(&mut payload, "hello").unwrap();
        put_u32(&mut payload, 42);
        let frame = encode_wire_frame(7, &payload).unwrap();
        assert_eq!(frame.len(), WIRE_HEADER_LEN + payload.len() + 4);

        // The header alone predicts the body length for a stream reader.
        let header: [u8; WIRE_HEADER_LEN] = frame[..WIRE_HEADER_LEN].try_into().unwrap();
        assert_eq!(wire_frame_body_len(&header).unwrap(), payload.len() + 4);

        let (kind, got) = decode_wire_frame(&frame).unwrap();
        assert_eq!(kind, 7);
        assert_eq!(got, payload.as_slice());

        // The split-decode path a stream reader uses agrees exactly.
        let (kind, got) = decode_wire_parts(&header, &frame[WIRE_HEADER_LEN..]).unwrap();
        assert_eq!(kind, 7);
        assert_eq!(got, payload.as_slice());

        // Truncations are truncation, not corruption.
        assert!(matches!(
            decode_wire_frame(&frame[..frame.len() - 1]),
            Err(CodecError::Truncated { .. })
        ));
        assert!(matches!(decode_wire_frame(&frame[..3]), Err(CodecError::Truncated { .. })));

        // A flipped payload bit fails the checksum.
        let mut flipped = frame.clone();
        flipped[WIRE_HEADER_LEN + 1] ^= 0x04;
        assert!(matches!(decode_wire_frame(&flipped), Err(CodecError::ChecksumMismatch { .. })));

        // A hostile length prefix is rejected before any allocation.
        let mut huge = frame;
        huge[1..5].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_wire_frame(&huge), Err(CodecError::StringTooLong { .. })));
        let header: [u8; WIRE_HEADER_LEN] = huge[..WIRE_HEADER_LEN].try_into().unwrap();
        assert!(matches!(wire_frame_body_len(&header), Err(CodecError::StringTooLong { .. })));

        // Empty payloads are legal frames (SHUTDOWN, STATS requests).
        let empty = encode_wire_frame(4, &[]).unwrap();
        assert_eq!(decode_wire_frame(&empty).unwrap(), (4, &[][..]));
    }

    #[test]
    fn oversized_encode_is_a_typed_error() {
        let huge = vec![0u8; u32_to_usize(MAX_WIRE_FRAME_LEN) + 1];
        assert_eq!(
            encode_wire_frame(1, &huge).unwrap_err(),
            CodecError::FrameTooLong { len: huge.len() }
        );
    }

    #[test]
    fn crc32_ieee_known_vectors() {
        assert_eq!(crc32_ieee(b""), 0);
        assert_eq!(crc32_ieee(b"123456789"), 0xCBF4_3926);
    }
}
