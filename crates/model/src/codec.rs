//! Stable binary serialization of interned claims and the primitives the
//! on-disk store formats are built from.
//!
//! Everything is little-endian and length-prefixed:
//!
//! * integers — fixed-width `u8` / `u32` / `u64`,
//! * strings — `u32` byte length followed by UTF-8 bytes (bounded by
//!   [`MAX_STR_LEN`] so a corrupted length can never drive an absurd
//!   allocation),
//! * claims — the three raw `u32` ids in `(source, item, value)` order.
//!
//! The claim encoding is **stable**: it is defined purely in terms of the
//! dense id values, which [`NameTable`](crate::NameTable) / [`Interner`]
//! assign in first-seen order. Two stores fed the same claim stream produce
//! byte-identical encodings, and a store recovered from disk re-interns its
//! persisted name tables in index order so every persisted id resolves to
//! the same string it was written with.
//!
//! Decoding is total: any byte slice either decodes or returns a typed
//! [`CodecError`] — never a panic — which is what lets the store treat
//! arbitrary on-disk bytes as untrusted input.
//!
//! [`Interner`]: crate::Interner

use crate::ids::{ItemId, SourceId, ValueId};
use crate::observation::Claim;
use std::fmt;

/// Upper bound on the byte length of an encoded string (1 MiB).
///
/// Source/item names and values are human-scale strings; the bound exists so
/// a corrupted length prefix is rejected instead of driving a huge
/// allocation.
pub const MAX_STR_LEN: usize = 1 << 20;

/// Errors produced while decoding (or encoding) the binary claim format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the declared value was complete.
    Truncated {
        /// Bytes the decoder needed to make progress.
        needed: usize,
        /// Bytes that were actually available.
        have: usize,
    },
    /// A string's bytes were not valid UTF-8.
    Utf8 {
        /// Byte offset of the first invalid byte within the string.
        valid_up_to: usize,
    },
    /// A string length exceeded [`MAX_STR_LEN`] (encode or decode side).
    StringTooLong {
        /// The offending length in bytes.
        len: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, have } => {
                write!(f, "truncated input: needed {needed} byte(s), have {have}")
            }
            CodecError::Utf8 { valid_up_to } => {
                write!(f, "invalid UTF-8 in string after {valid_up_to} byte(s)")
            }
            CodecError::StringTooLong { len } => {
                write!(f, "string of {len} bytes exceeds the {MAX_STR_LEN}-byte limit")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Appends a `u8` to `out`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a little-endian `u32` to `out`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64` to `out`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed UTF-8 string to `out`.
///
/// # Errors
/// Returns [`CodecError::StringTooLong`] if `s` exceeds [`MAX_STR_LEN`]
/// bytes; nothing is written in that case.
pub fn put_str(out: &mut Vec<u8>, s: &str) -> Result<(), CodecError> {
    if s.len() > MAX_STR_LEN {
        return Err(CodecError::StringTooLong { len: s.len() });
    }
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

/// Appends a claim's three raw ids (12 bytes) to `out`.
pub fn put_claim(out: &mut Vec<u8>, claim: &Claim) {
    put_u32(out, claim.source.raw());
    put_u32(out, claim.item.raw());
    put_u32(out, claim.value.raw());
}

/// A cursor over an immutable byte slice, yielding typed values.
///
/// Every read either succeeds and advances the cursor or fails with a
/// [`CodecError`] and leaves the cursor where it was.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Returns `true` if every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Current offset from the start of the underlying slice.
    pub fn pos(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated { needed: n, have: self.remaining() });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a length-prefixed UTF-8 string as a borrowed slice.
    pub fn str_ref(&mut self) -> Result<&'a str, CodecError> {
        let start = self.pos;
        let len = self.u32()? as usize;
        if len > MAX_STR_LEN {
            self.pos = start;
            return Err(CodecError::StringTooLong { len });
        }
        let bytes = match self.take(len) {
            Ok(b) => b,
            Err(e) => {
                self.pos = start;
                return Err(e);
            }
        };
        match std::str::from_utf8(bytes) {
            Ok(s) => Ok(s),
            Err(e) => {
                self.pos = start;
                Err(CodecError::Utf8 { valid_up_to: e.valid_up_to() })
            }
        }
    }

    /// Reads a length-prefixed UTF-8 string as an owned `String`.
    pub fn string(&mut self) -> Result<String, CodecError> {
        self.str_ref().map(str::to_owned)
    }

    /// Reads a claim's three raw ids (12 bytes).
    pub fn claim(&mut self) -> Result<Claim, CodecError> {
        let start = self.pos;
        let read = (|| -> Result<Claim, CodecError> {
            Ok(Claim {
                source: SourceId::new(self.u32()?),
                item: ItemId::new(self.u32()?),
                value: ValueId::new(self.u32()?),
            })
        })();
        if read.is_err() {
            self.pos = start;
        }
        read
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrip() {
        let mut out = Vec::new();
        put_u8(&mut out, 0xAB);
        put_u32(&mut out, 0xDEAD_BEEF);
        put_u64(&mut out, u64::MAX - 1);
        put_str(&mut out, "café 雪").unwrap();
        put_str(&mut out, "").unwrap();
        let claim =
            Claim { source: SourceId::new(3), item: ItemId::new(0), value: ValueId::new(7) };
        put_claim(&mut out, &claim);

        let mut r = Reader::new(&out);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.str_ref().unwrap(), "café 雪");
        assert_eq!(r.string().unwrap(), "");
        assert_eq!(r.claim().unwrap(), claim);
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_reads_fail_without_advancing() {
        let mut out = Vec::new();
        put_u32(&mut out, 10);
        out.extend_from_slice(b"abc"); // declared 10 bytes, only 3 present
        let mut r = Reader::new(&out);
        let before = r.pos();
        assert_eq!(r.str_ref(), Err(CodecError::Truncated { needed: 10, have: 3 }));
        assert_eq!(r.pos(), before, "a failed read must not consume input");
        assert_eq!(Reader::new(&[1, 2]).u32(), Err(CodecError::Truncated { needed: 4, have: 2 }));
        assert_eq!(
            Reader::new(&[0; 11]).claim().unwrap_err(),
            CodecError::Truncated { needed: 4, have: 3 }
        );
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut out = Vec::new();
        put_u32(&mut out, 2);
        out.extend_from_slice(&[0xFF, 0xFE]);
        assert!(matches!(Reader::new(&out).str_ref(), Err(CodecError::Utf8 { .. })));
    }

    #[test]
    fn string_length_is_bounded() {
        let huge = "x".repeat(MAX_STR_LEN + 1);
        let mut out = Vec::new();
        assert_eq!(
            put_str(&mut out, &huge),
            Err(CodecError::StringTooLong { len: MAX_STR_LEN + 1 })
        );
        assert!(out.is_empty(), "a failed encode must not write");

        // Exactly at the limit round-trips.
        let max = "y".repeat(MAX_STR_LEN);
        put_str(&mut out, &max).unwrap();
        assert_eq!(Reader::new(&out).str_ref().unwrap(), max);

        // A corrupt oversized length prefix is rejected before allocating.
        let mut bad = Vec::new();
        put_u32(&mut bad, (MAX_STR_LEN + 1) as u32);
        assert_eq!(
            Reader::new(&bad).str_ref(),
            Err(CodecError::StringTooLong { len: MAX_STR_LEN + 1 })
        );
    }

    #[test]
    fn errors_display() {
        assert!(CodecError::Truncated { needed: 4, have: 1 }.to_string().contains("needed 4"));
        assert!(CodecError::Utf8 { valid_up_to: 2 }.to_string().contains("UTF-8"));
        assert!(CodecError::StringTooLong { len: 9 }.to_string().contains("9 bytes"));
    }
}
