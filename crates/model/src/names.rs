//! A first-seen-order name table: strings to dense indices.

use std::collections::HashMap;
use std::sync::Arc;

/// Maps names to dense indices in first-seen order.
///
/// This is the *single* implementation of the id-assignment policy that both
/// [`DatasetBuilder`](crate::DatasetBuilder) and external claim stores
/// (`copydet-store`) rely on: two tables fed the same name sequence assign
/// identical indices, which is what makes a store snapshot bit-identical to
/// a one-pass builder build. (Unlike [`Interner`](crate::Interner), which is
/// specialized to [`ValueId`](crate::ValueId)s and serialization, this table
/// deals in raw indices; callers wrap them in their typed id.)
///
/// The index-ordered name list lives behind a shared [`Arc`] handle:
/// [`shared_names`](NameTable::shared_names) hands it out without copying a
/// single string, and [`intern`](NameTable::intern) appends copy-on-write —
/// the list is only deep-copied if a new name arrives *while* an older handle
/// is still alive. Snapshot cost therefore no longer scales with vocabulary
/// size.
#[derive(Debug, Clone, Default)]
pub struct NameTable {
    names: Arc<Vec<String>>,
    lookup: HashMap<String, usize>,
}

impl NameTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its dense index (existing index if seen
    /// before, `self.len()` before the call otherwise).
    pub fn intern(&mut self, name: &str) -> usize {
        if let Some(&idx) = self.lookup.get(name) {
            return idx;
        }
        let idx = self.names.len();
        Arc::make_mut(&mut self.names).push(name.to_owned());
        self.lookup.insert(name.to_owned(), idx);
        idx
    }

    /// The index of `name`, if it has been interned.
    pub fn get(&self, name: &str) -> Option<usize> {
        self.lookup.get(name).copied()
    }

    /// The name at `idx`.
    ///
    /// # Panics
    /// Panics if `idx` was not produced by this table.
    pub fn name(&self, idx: usize) -> &str {
        &self.names[idx]
    }

    /// Number of distinct names interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Returns `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The names in index order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// A zero-copy handle to the index-ordered name list.
    ///
    /// The handle aliases the table's storage: no string is copied. A later
    /// [`intern`](NameTable::intern) of a *new* name clones the list
    /// copy-on-write, so the handle stays frozen at its snapshot state.
    pub fn shared_names(&self) -> Arc<Vec<String>> {
        Arc::clone(&self.names)
    }

    /// Consumes the table into its index-ordered name list.
    pub fn into_names(self) -> Vec<String> {
        Arc::try_unwrap(self.names).unwrap_or_else(|shared| (*shared).clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_seen_dense_indices() {
        let mut t = NameTable::new();
        assert!(t.is_empty());
        assert_eq!(t.intern("a"), 0);
        assert_eq!(t.intern("b"), 1);
        assert_eq!(t.intern("a"), 0, "re-interning is stable");
        assert_eq!(t.len(), 2);
        assert_eq!(t.get("b"), Some(1));
        assert_eq!(t.get("c"), None);
        assert_eq!(t.name(0), "a");
        assert_eq!(t.names(), &["a".to_owned(), "b".to_owned()]);
        assert_eq!(t.into_names(), vec!["a".to_owned(), "b".to_owned()]);
    }

    #[test]
    fn shared_names_alias_until_a_new_name_arrives() {
        let mut t = NameTable::new();
        t.intern("a");
        t.intern("b");
        let snap = t.shared_names();
        assert!(Arc::ptr_eq(&snap, &t.shared_names()), "handles alias the same storage");

        // Re-interning existing names appends nothing: the handle still
        // aliases the live table.
        t.intern("a");
        assert!(Arc::ptr_eq(&snap, &t.shared_names()));

        // A new name clones copy-on-write: the old handle keeps its frozen
        // two-name view while the table moves on.
        t.intern("c");
        assert!(!Arc::ptr_eq(&snap, &t.shared_names()));
        assert_eq!(snap.len(), 2);
        assert_eq!(t.len(), 3);
        assert_eq!(t.name(2), "c");
    }

    #[test]
    fn into_names_avoids_cloning_when_unique() {
        let mut t = NameTable::new();
        t.intern("x");
        let held = t.shared_names();
        assert_eq!(t.into_names(), vec!["x".to_owned()], "clone path (handle held)");
        assert_eq!(held.as_slice(), &["x".to_owned()]);
    }
}
