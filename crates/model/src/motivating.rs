//! The paper's motivating example (Table I): ten sources describing the
//! capitals of five US states, with known copying between `S2–S4` and
//! between `S6–S8`.
//!
//! The example is used throughout the paper's Sections II–V to illustrate the
//! Bayesian scoring, the inverted index (Table III), early termination
//! (Examples 4.2/4.3), and incremental detection (Table IV, Examples
//! 5.1/5.2). We reproduce the same data here so the corresponding unit tests
//! in the other crates can check the worked numbers.

use crate::builder::DatasetBuilder;
use crate::dataset::Dataset;
use crate::ids::{ItemId, SourceId, SourcePair, ValueId};
use std::collections::HashMap;

/// The motivating example of the paper: the dataset of Table I together with
/// the auxiliary knowledge used in the worked examples (source accuracies,
/// value probabilities as in Table III, the identity of the true values, and
/// the planted copying relationships).
#[derive(Debug, Clone)]
pub struct MotivatingExample {
    /// The claims of Table I.
    pub dataset: Dataset,
    /// Source accuracy per source, indexed by `SourceId::index()`
    /// (column "Accu" of Table I).
    pub accuracies: Vec<f64>,
    /// Probability of each provided value being true, keyed by
    /// `(item, value)`, as assumed in Table III.
    pub value_probabilities: HashMap<(ItemId, ValueId), f64>,
    /// The true value of every item.
    pub true_values: HashMap<ItemId, ValueId>,
    /// The pairs of sources with a real copying relationship
    /// (within {S2,S3,S4} and within {S6,S7,S8}).
    pub copying_pairs: Vec<SourcePair>,
    /// The a-priori copying probability α used in the examples (0.1).
    pub alpha: f64,
    /// The copying selectivity s used in the examples (0.8).
    pub selectivity: f64,
    /// The number of uniformly-distributed false values n used in the
    /// examples (50).
    pub n_false_values: u32,
}

/// Rows of Table I: (source name, accuracy, [NJ, AZ, NY, FL, TX]), where an
/// empty string denotes a missing value.
const TABLE_I: &[(&str, f64, [&str; 5])] = &[
    ("S0", 0.99, ["Trenton", "Phoenix", "Albany", "", "Austin"]),
    ("S1", 0.99, ["Trenton", "Phoenix", "Albany", "Orlando", "Austin"]),
    ("S2", 0.2, ["Atlantic", "Phoenix", "NewYork", "Miami", "Houston"]),
    ("S3", 0.2, ["Atlantic", "Phoenix", "NewYork", "Miami", "Arlington"]),
    ("S4", 0.4, ["Atlantic", "Phoenix", "NewYork", "Orlando", "Houston"]),
    ("S5", 0.6, ["Union", "Tempe", "Albany", "Orlando", "Austin"]),
    ("S6", 0.01, ["", "Tempe", "Buffalo", "PalmBay", "Dallas"]),
    ("S7", 0.25, ["Trenton", "", "Buffalo", "PalmBay", "Dallas"]),
    ("S8", 0.2, ["Trenton", "Tucson", "Buffalo", "PalmBay", "Dallas"]),
    ("S9", 0.99, ["Trenton", "", "", "Orlando", "Austin"]),
];

const ITEMS: [&str; 5] = ["NJ", "AZ", "NY", "FL", "TX"];
const TRUE_VALUES: [(&str, &str); 5] =
    [("NJ", "Trenton"), ("AZ", "Phoenix"), ("NY", "Albany"), ("FL", "Orlando"), ("TX", "Austin")];

/// The value probabilities assumed when Table III is constructed (the paper
/// lists them in its "Pr" column); values provided by a single source do not
/// appear in the index and are not listed.
const TABLE_III_PROBABILITIES: &[(&str, &str, f64)] = &[
    ("AZ", "Tempe", 0.02),
    ("NJ", "Atlantic", 0.01),
    ("TX", "Houston", 0.02),
    ("NY", "NewYork", 0.02),
    ("TX", "Dallas", 0.02),
    ("NY", "Buffalo", 0.04),
    ("FL", "PalmBay", 0.05),
    ("FL", "Miami", 0.03),
    ("AZ", "Phoenix", 0.95),
    ("NJ", "Trenton", 0.97),
    ("FL", "Orlando", 0.92),
    ("NY", "Albany", 0.94),
    ("TX", "Austin", 0.96),
    // Values provided by a single source; their probabilities are not used by
    // the index but are needed when computing full pairwise scores.
    ("NJ", "Union", 0.01),
    ("AZ", "Tucson", 0.01),
    ("TX", "Arlington", 0.01),
];

/// Builds the motivating example.
pub fn motivating_example() -> MotivatingExample {
    let mut builder = DatasetBuilder::new();
    // Register sources and items in table order so ids match the paper's
    // numbering (S0..S9, NJ..TX).
    for (name, _, _) in TABLE_I {
        builder.source(name);
    }
    for item in ITEMS {
        builder.item(item);
    }
    for (name, _, values) in TABLE_I {
        for (item, value) in ITEMS.iter().zip(values.iter()) {
            if !value.is_empty() {
                builder.add_claim(name, item, value);
            }
        }
    }
    let dataset = builder.build();

    let accuracies = TABLE_I.iter().map(|&(_, a, _)| a).collect();

    let mut value_probabilities = HashMap::new();
    for &(item, value, p) in TABLE_III_PROBABILITIES {
        let d = dataset.item_by_name(item).expect("item exists");
        if let Some(v) = dataset.value_by_str(value) {
            value_probabilities.insert((d, v), p);
        }
    }

    let mut true_values = HashMap::new();
    for (item, value) in TRUE_VALUES {
        let d = dataset.item_by_name(item).expect("item exists");
        let v = dataset.value_by_str(value).expect("true value is provided by someone");
        true_values.insert(d, v);
    }

    let group_a = [2u32, 3, 4];
    let group_b = [6u32, 7, 8];
    let mut copying_pairs = Vec::new();
    for group in [group_a, group_b] {
        for i in 0..group.len() {
            for j in (i + 1)..group.len() {
                copying_pairs
                    .push(SourcePair::new(SourceId::new(group[i]), SourceId::new(group[j])));
            }
        }
    }

    MotivatingExample {
        dataset,
        accuracies,
        value_probabilities,
        true_values,
        copying_pairs,
        alpha: 0.1,
        selectivity: 0.8,
        n_false_values: 50,
    }
}

impl MotivatingExample {
    /// Probability of value `v` of item `d` being true according to Table III,
    /// defaulting to 0.01 for values not listed there.
    pub fn probability(&self, d: ItemId, v: ValueId) -> f64 {
        self.value_probabilities.get(&(d, v)).copied().unwrap_or(0.01)
    }

    /// Value probabilities as a dense per-item map usable by the scoring
    /// layer: for each item, `(value, probability)` for every provided value.
    pub fn probability_table(&self) -> Vec<Vec<(ValueId, f64)>> {
        let mut table = vec![Vec::new(); self.dataset.num_items()];
        for d in self.dataset.items() {
            for group in self.dataset.values_of_item(d) {
                table[d.index()].push((group.value, self.probability(d, group.value)));
            }
        }
        table
    }

    /// Returns `true` if `pair` is one of the planted copying relationships.
    pub fn is_copying_pair(&self, pair: SourcePair) -> bool {
        self.copying_pairs.contains(&pair)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_shape() {
        let ex = motivating_example();
        assert_eq!(ex.dataset.num_sources(), 10);
        assert_eq!(ex.dataset.num_items(), 5);
        // S0 misses FL, S6 misses NJ, S7 misses AZ, S9 misses AZ and NY:
        // 10*5 - 5 missing = 45 claims.
        assert_eq!(ex.dataset.num_claims(), 45);
    }

    #[test]
    fn source_ids_match_paper_numbering() {
        let ex = motivating_example();
        for i in 0..10 {
            assert_eq!(ex.dataset.source_name(SourceId::new(i)), format!("S{i}"));
        }
        assert_eq!(ex.dataset.item_name(ItemId::new(0)), "NJ");
        assert_eq!(ex.dataset.item_name(ItemId::new(4)), "TX");
    }

    #[test]
    fn accuracies_match_table_i() {
        let ex = motivating_example();
        assert_eq!(ex.accuracies.len(), 10);
        assert!((ex.accuracies[0] - 0.99).abs() < 1e-12);
        assert!((ex.accuracies[4] - 0.4).abs() < 1e-12);
        assert!((ex.accuracies[6] - 0.01).abs() < 1e-12);
    }

    #[test]
    fn true_values_are_the_capitals() {
        let ex = motivating_example();
        for (item, value) in TRUE_VALUES {
            let d = ex.dataset.item_by_name(item).unwrap();
            let v = ex.dataset.value_by_str(value).unwrap();
            assert_eq!(ex.true_values[&d], v);
        }
    }

    #[test]
    fn copying_pairs_are_the_two_cliques() {
        let ex = motivating_example();
        assert_eq!(ex.copying_pairs.len(), 6);
        assert!(ex.is_copying_pair(SourcePair::new(SourceId::new(2), SourceId::new(3))));
        assert!(ex.is_copying_pair(SourcePair::new(SourceId::new(6), SourceId::new(8))));
        assert!(!ex.is_copying_pair(SourcePair::new(SourceId::new(0), SourceId::new(1))));
    }

    #[test]
    fn shared_values_match_example_2_1() {
        let ex = motivating_example();
        let s2 = SourceId::new(2);
        let s3 = SourceId::new(3);
        // S2 and S3 share 5 items and agree on 4 of them (all but TX).
        assert_eq!(ex.dataset.shared_item_count(s2, s3), 5);
        assert_eq!(ex.dataset.shared_value_count(s2, s3), 4);
        // S0 and S1 share 4 items and agree on all 4 (S0 misses FL).
        let s0 = SourceId::new(0);
        let s1 = SourceId::new(1);
        assert_eq!(ex.dataset.shared_item_count(s0, s1), 4);
        assert_eq!(ex.dataset.shared_value_count(s0, s1), 4);
    }

    #[test]
    fn probability_lookup_defaults() {
        let ex = motivating_example();
        let nj = ex.dataset.item_by_name("NJ").unwrap();
        let atlantic = ex.dataset.value_by_str("Atlantic").unwrap();
        assert!((ex.probability(nj, atlantic) - 0.01).abs() < 1e-12);
        let union = ex.dataset.value_by_str("Union").unwrap();
        assert!((ex.probability(nj, union) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn probability_table_covers_all_groups() {
        let ex = motivating_example();
        let table = ex.probability_table();
        assert_eq!(table.len(), 5);
        let total: usize = table.iter().map(Vec::len).sum();
        let groups: usize = ex.dataset.items().map(|d| ex.dataset.values_of_item(d).len()).sum();
        assert_eq!(total, groups);
        for row in &table {
            for &(_, p) in row {
                assert!(p > 0.0 && p < 1.0);
            }
        }
    }
}
