//! Claim types: a single `(source, item, value)` observation.

use crate::ids::{ItemId, SourceId, ValueId};
use serde::{Deserialize, Serialize};

/// An owned claim in terms of dense identifiers: source `source` provides
/// value `value` for data item `item`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Claim {
    /// The providing source.
    pub source: SourceId,
    /// The data item the claim is about.
    pub item: ItemId,
    /// The provided value.
    pub value: ValueId,
}

impl Claim {
    /// Creates a new claim.
    pub fn new(source: SourceId, item: ItemId, value: ValueId) -> Self {
        Self { source, item, value }
    }
}

/// A borrowed, string-resolved view of a claim, convenient for display and
/// for exporting datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClaimRef<'a> {
    /// Name of the providing source.
    pub source: &'a str,
    /// Name of the data item.
    pub item: &'a str,
    /// The provided value string.
    pub value: &'a str,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_construction() {
        let c = Claim::new(SourceId::new(1), ItemId::new(2), ValueId::new(3));
        assert_eq!(c.source, SourceId::new(1));
        assert_eq!(c.item, ItemId::new(2));
        assert_eq!(c.value, ValueId::new(3));
    }
}
