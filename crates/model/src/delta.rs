//! Claim-level deltas between two dataset snapshots.
//!
//! A [`DatasetDelta`] records which claims were added or changed between an
//! older and a newer [`Dataset`] over the *same identifier space* (the newer
//! snapshot may introduce additional sources, items and values, but ids that
//! exist in both snapshots must mean the same thing — exactly the guarantee
//! the `copydet-store` claim store provides between consecutive snapshots).
//!
//! Deltas drive incremental index maintenance and delta-driven copy
//! detection: only the pairs whose evidence can have moved — pairs involving
//! a touched source, or pairs co-occurring in a value group of a touched
//! item — need to be re-examined (see `DESIGN.md` §5).

use crate::dataset::Dataset;
use crate::ids::{ItemId, SourceId, ValueId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// One claim that was added or changed between two snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClaimChange {
    /// The source whose claim changed.
    pub source: SourceId,
    /// The item the claim is about.
    pub item: ItemId,
    /// The value in the older snapshot (`None` when the claim is new).
    pub old: Option<ValueId>,
    /// The value in the newer snapshot.
    pub new: ValueId,
}

impl ClaimChange {
    /// Returns `true` if the claim did not exist in the older snapshot.
    pub fn is_addition(&self) -> bool {
        self.old.is_none()
    }
}

/// The set of claims added or changed between an older and a newer
/// [`Dataset`] snapshot, with per-source and per-item views.
///
/// Claims are never removed between snapshots (stores are append-oriented;
/// re-claiming an item overwrites the value), so a delta consists purely of
/// additions and in-place value changes.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DatasetDelta {
    /// All changes, sorted by `(source, item)`.
    changes: Vec<ClaimChange>,
    /// Sources with at least one added/changed claim.
    sources: BTreeSet<SourceId>,
    /// Items with at least one added/changed claim.
    items: BTreeSet<ItemId>,
    /// `(item, value)` groups whose provider membership changed (the new
    /// value's group gained the source; the old value's group, if any, lost
    /// it). These are exactly the index entries whose contribution score can
    /// have moved through membership rather than probability.
    groups: BTreeSet<(ItemId, ValueId)>,
}

impl DatasetDelta {
    /// Builds a delta from an explicit list of changes.
    ///
    /// Changes are de-duplicated by `(source, item)` keeping the last entry
    /// (and its earliest recorded `old` value), mirroring last-claim-wins
    /// ingest semantics. No-op changes (`old == Some(new)`) are dropped.
    pub fn from_changes(changes: impl IntoIterator<Item = ClaimChange>) -> Self {
        let mut merged: BTreeMap<(SourceId, ItemId), ClaimChange> = BTreeMap::new();
        for c in changes {
            merged
                .entry((c.source, c.item))
                .and_modify(|existing| existing.new = c.new)
                .or_insert(c);
        }
        let mut delta = DatasetDelta::default();
        for (_, c) in merged {
            if c.old == Some(c.new) {
                continue;
            }
            delta.sources.insert(c.source);
            delta.items.insert(c.item);
            delta.groups.insert((c.item, c.new));
            if let Some(old) = c.old {
                delta.groups.insert((c.item, old));
            }
            delta.changes.push(c);
        }
        delta
    }

    /// Diffs two snapshots over the same identifier space.
    ///
    /// # Panics
    /// Panics if `new` drops a claim that `old` had (snapshots are
    /// append-oriented: values may change, claims may appear, but never
    /// disappear).
    pub fn between(old: &Dataset, new: &Dataset) -> Self {
        assert!(
            new.num_sources() >= old.num_sources() && new.num_items() >= old.num_items(),
            "the newer snapshot must extend the older snapshot's id space"
        );
        let mut changes = Vec::new();
        for s in new.sources() {
            let old_claims: &[(ItemId, ValueId)] =
                if s.index() < old.num_sources() { old.claims_of(s) } else { &[] };
            let mut oi = 0;
            for &(d, v) in new.claims_of(s) {
                assert!(
                    oi >= old_claims.len() || old_claims[oi].0 >= d,
                    "claim ({s}, {}) present in the old snapshot is missing from the new one",
                    old_claims[oi].0
                );
                let old_value = if oi < old_claims.len() && old_claims[oi].0 == d {
                    oi += 1;
                    Some(old_claims[oi - 1].1)
                } else {
                    None
                };
                if old_value != Some(v) {
                    changes.push(ClaimChange { source: s, item: d, old: old_value, new: v });
                }
            }
            assert!(
                oi == old_claims.len(),
                "source {s} lost {} claim(s) between snapshots",
                old_claims.len() - oi
            );
        }
        Self::from_changes(changes)
    }

    /// Returns `true` if nothing changed.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Number of added/changed claims.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// All changes, sorted by `(source, item)`.
    pub fn changes(&self) -> &[ClaimChange] {
        &self.changes
    }

    /// Sources with at least one added/changed claim.
    pub fn touched_sources(&self) -> &BTreeSet<SourceId> {
        &self.sources
    }

    /// Items with at least one added/changed claim.
    pub fn touched_items(&self) -> &BTreeSet<ItemId> {
        &self.items
    }

    /// `(item, value)` groups whose provider membership changed.
    pub fn touched_groups(&self) -> &BTreeSet<(ItemId, ValueId)> {
        &self.groups
    }

    /// Returns `true` if `s` has added/changed claims in this delta.
    pub fn touches_source(&self, s: SourceId) -> bool {
        self.sources.contains(&s)
    }

    /// Returns `true` if `d` has added/changed claims in this delta.
    pub fn touches_item(&self, d: ItemId) -> bool {
        self.items.contains(&d)
    }

    /// Iterator over the purely-new claims (no previous value).
    pub fn additions(&self) -> impl Iterator<Item = &ClaimChange> + '_ {
        self.changes.iter().filter(|c| c.is_addition())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DatasetBuilder;

    fn build(claims: &[(&str, &str, &str)]) -> Dataset {
        let mut b = DatasetBuilder::new();
        for (s, d, v) in claims {
            b.add_claim(s, d, v);
        }
        b.build()
    }

    #[test]
    fn between_detects_additions_and_changes() {
        let old = build(&[("S0", "NJ", "Trenton"), ("S1", "NJ", "Newark")]);
        let new = build(&[
            ("S0", "NJ", "Trenton"),
            ("S1", "NJ", "Trenton"), // changed
            ("S2", "NJ", "Trenton"), // new source
            ("S0", "AZ", "Phoenix"), // new item
        ]);
        let delta = DatasetDelta::between(&old, &new);
        assert_eq!(delta.len(), 3);
        assert!(!delta.is_empty());
        let nj = new.item_by_name("NJ").unwrap();
        let az = new.item_by_name("AZ").unwrap();
        let s0 = new.source_by_name("S0").unwrap();
        let s1 = new.source_by_name("S1").unwrap();
        let s2 = new.source_by_name("S2").unwrap();
        assert!(delta.touches_source(s0), "S0 gained the AZ claim");
        assert!(delta.touches_source(s1));
        assert!(delta.touches_source(s2));
        assert!(delta.touches_item(nj) && delta.touches_item(az));
        // S1's change records the old value.
        let change = delta.changes().iter().find(|c| c.source == s1).unwrap();
        assert_eq!(change.old, old.value_of(s1, nj));
        assert!(!change.is_addition());
        // The old and new groups of the changed claim are both touched.
        assert!(delta.touched_groups().contains(&(nj, change.new)));
        assert!(delta.touched_groups().contains(&(nj, change.old.unwrap())));
        assert_eq!(delta.additions().count(), 2);
    }

    #[test]
    fn between_identical_snapshots_is_empty() {
        let ds = build(&[("S0", "NJ", "Trenton"), ("S1", "AZ", "Phoenix")]);
        let delta = DatasetDelta::between(&ds, &ds.clone());
        assert!(delta.is_empty());
        assert_eq!(delta.len(), 0);
        assert!(delta.touched_sources().is_empty());
        assert!(delta.touched_items().is_empty());
        assert!(delta.touched_groups().is_empty());
    }

    #[test]
    fn from_changes_dedups_by_source_item() {
        let s = SourceId::new(0);
        let d = ItemId::new(0);
        let delta = DatasetDelta::from_changes(vec![
            ClaimChange { source: s, item: d, old: None, new: ValueId::new(1) },
            ClaimChange { source: s, item: d, old: Some(ValueId::new(1)), new: ValueId::new(2) },
        ]);
        // Merged into a single addition whose final value is V2.
        assert_eq!(delta.len(), 1);
        assert_eq!(delta.changes()[0].new, ValueId::new(2));
        assert!(delta.changes()[0].is_addition());
    }

    #[test]
    fn from_changes_drops_noop_roundtrips() {
        let s = SourceId::new(0);
        let d = ItemId::new(0);
        let v = ValueId::new(1);
        let delta = DatasetDelta::from_changes(vec![
            ClaimChange { source: s, item: d, old: Some(v), new: ValueId::new(2) },
            ClaimChange { source: s, item: d, old: Some(ValueId::new(2)), new: v },
        ]);
        assert!(delta.is_empty(), "a value changed back to its snapshot state is a no-op");
    }

    #[test]
    #[should_panic(expected = "lost 1 claim(s)")]
    fn between_rejects_dropped_claims() {
        let old = build(&[("S0", "NJ", "Trenton"), ("S0", "AZ", "Phoenix")]);
        let new = build(&[("S0", "NJ", "Trenton"), ("S1", "AZ", "Phoenix")]);
        let _ = DatasetDelta::between(&old, &new);
    }
}
