//! A simple string interner mapping value strings to dense [`ValueId`]s.

use crate::ids::ValueId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Interns value strings so the rest of the system can work with dense
/// `u32`-backed [`ValueId`]s.
///
/// Interning is append-only: once a string has been assigned an id, the id is
/// stable for the lifetime of the interner. Lookup is `O(1)` expected in both
/// directions.
///
/// Both the id-ordered string list and the reverse-lookup map live behind
/// shared [`Arc`] handles: [`Interner::clone`] is two reference-count bumps
/// regardless of vocabulary size, and [`intern`](Interner::intern) appends
/// copy-on-write — storage is only deep-copied when a new string arrives
/// while an older clone is still alive. This is what keeps
/// `ClaimStore::snapshot()` free of per-value string copies.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Interner {
    strings: Arc<Vec<String>>,
    #[serde(skip)]
    lookup: Arc<HashMap<String, ValueId>>,
}

impl PartialEq for Interner {
    /// Two interners are equal when they intern the same strings with the
    /// same ids; the derived reverse-lookup table is ignored (it may be
    /// empty right after deserialization).
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.strings, &other.strings) || self.strings == other.strings
    }
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its id. Returns the existing id if `s` has been
    /// interned before.
    pub fn intern(&mut self, s: &str) -> ValueId {
        if let Some(&id) = self.lookup.get(s) {
            return id;
        }
        let id = ValueId::from_index(self.strings.len());
        Arc::make_mut(&mut self.strings).push(s.to_owned());
        Arc::make_mut(&mut self.lookup).insert(s.to_owned(), id);
        id
    }

    /// Returns the id of `s` if it has been interned.
    pub fn get(&self, s: &str) -> Option<ValueId> {
        self.lookup.get(s).copied()
    }

    /// Returns the string for `id`.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this interner.
    pub fn resolve(&self, id: ValueId) -> &str {
        &self.strings[id.index()]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Returns `true` if nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates over `(id, string)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ValueId, &str)> {
        self.strings.iter().enumerate().map(|(i, s)| (ValueId::from_index(i), s.as_str()))
    }

    /// A zero-copy handle to the id-ordered string list.
    ///
    /// The handle aliases the interner's storage: no string is copied. A
    /// later [`intern`](Interner::intern) of a *new* string clones the list
    /// copy-on-write, so the handle stays frozen at its snapshot state.
    pub fn shared_strings(&self) -> Arc<Vec<String>> {
        Arc::clone(&self.strings)
    }

    /// Returns `true` if both interners alias the same underlying string
    /// storage (clone without intervening new-string interns).
    pub fn ptr_eq(&self, other: &Interner) -> bool {
        Arc::ptr_eq(&self.strings, &other.strings)
    }

    /// Rebuilds the reverse-lookup table. Needed after deserialization because
    /// the lookup map is not serialized.
    pub fn rebuild_lookup(&mut self) {
        self.lookup = Arc::new(
            self.strings
                .iter()
                .enumerate()
                .map(|(i, s)| (s.clone(), ValueId::from_index(i)))
                .collect(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("Trenton");
        let b = i.intern("Phoenix");
        let a2 = i.intern("Trenton");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
        assert_eq!(i.resolve(a), "Trenton");
        assert_eq!(i.resolve(b), "Phoenix");
    }

    #[test]
    fn get_returns_none_for_unknown() {
        let mut i = Interner::new();
        i.intern("x");
        assert!(i.get("y").is_none());
        assert_eq!(i.get("x"), Some(ValueId::new(0)));
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut i = Interner::new();
        let ids: Vec<_> = ["a", "b", "c"].iter().map(|s| i.intern(s)).collect();
        let collected: Vec<_> = i.iter().collect();
        assert_eq!(collected.len(), 3);
        for (k, (id, s)) in collected.iter().enumerate() {
            assert_eq!(*id, ids[k]);
            assert_eq!(*s, ["a", "b", "c"][k]);
        }
    }

    #[test]
    fn rebuild_lookup_restores_queries() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        let mut copy =
            Interner { strings: Arc::clone(&i.strings), lookup: Arc::new(HashMap::new()) };
        assert!(copy.get("a").is_none());
        copy.rebuild_lookup();
        assert_eq!(copy.get("a"), Some(ValueId::new(0)));
        assert_eq!(copy.get("b"), Some(ValueId::new(1)));
    }

    #[test]
    fn empty_interner() {
        let i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }

    #[test]
    fn clones_alias_until_a_new_string_arrives() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        let snapshot = i.clone();
        assert!(snapshot.ptr_eq(&i), "a clone aliases the same storage");

        i.intern("a"); // existing string: no append, still aliased
        assert!(snapshot.ptr_eq(&i));

        i.intern("c"); // new string: copy-on-write detaches the live interner
        assert!(!snapshot.ptr_eq(&i));
        assert_eq!(snapshot.len(), 2, "the clone keeps its frozen view");
        assert_eq!(i.len(), 3);
        assert_eq!(i.resolve(ValueId::new(2)), "c");
        assert!(snapshot.get("c").is_none());
    }
}
