//! Incremental construction of [`Dataset`]s from string claims.

use crate::dataset::Dataset;
use crate::ids::{ItemId, SourceId, ValueId};
use crate::interner::Interner;
use crate::names::NameTable;
use std::collections::HashMap;

/// Builds a [`Dataset`] from `(source, item, value)` claims given as strings.
///
/// * Sources, items and values are assigned dense ids in first-seen order, so
///   construction is deterministic for a fixed insertion order.
/// * A source may claim each item at most once; re-adding a claim for the
///   same `(source, item)` overwrites the previous value (the count of such
///   overwrites is available via [`DatasetBuilder::overwritten`]).
/// * Empty value strings are accepted and treated like any other value; a
///   *missing* value is expressed by simply not adding a claim.
#[derive(Debug, Default)]
pub struct DatasetBuilder {
    sources: NameTable,
    items: NameTable,
    values: Interner,
    /// claim map per source: item -> value
    claims: Vec<HashMap<ItemId, ValueId>>,
    overwritten: usize,
}

impl DatasetBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns (or retrieves) a source by name.
    pub fn source(&mut self, name: &str) -> SourceId {
        let idx = self.sources.intern(name);
        if idx == self.claims.len() {
            self.claims.push(HashMap::new());
        }
        SourceId::from_index(idx)
    }

    /// Interns (or retrieves) a data item by name.
    pub fn item(&mut self, name: &str) -> ItemId {
        ItemId::from_index(self.items.intern(name))
    }

    /// Interns (or retrieves) a value string.
    pub fn value(&mut self, s: &str) -> ValueId {
        self.values.intern(s)
    }

    /// Adds the claim "source provides `value` for `item`", interning all
    /// three strings. Returns the claim as dense ids.
    pub fn add_claim(
        &mut self,
        source: &str,
        item: &str,
        value: &str,
    ) -> (SourceId, ItemId, ValueId) {
        let s = self.source(source);
        let d = self.item(item);
        let v = self.value(value);
        self.add_claim_ids(s, d, v);
        (s, d, v)
    }

    /// Adds a claim using already-interned identifiers.
    ///
    /// # Panics
    /// Panics if any id was not produced by this builder.
    pub fn add_claim_ids(&mut self, source: SourceId, item: ItemId, value: ValueId) {
        assert!(source.index() < self.sources.len(), "unknown source id {source}");
        assert!(item.index() < self.items.len(), "unknown item id {item}");
        assert!(value.index() < self.values.len(), "unknown value id {value}");
        if self.claims[source.index()].insert(item, value).is_some() {
            self.overwritten += 1;
        }
    }

    /// Number of claims that overwrote a previous claim for the same
    /// `(source, item)`.
    pub fn overwritten(&self) -> usize {
        self.overwritten
    }

    /// Number of sources registered so far.
    pub fn num_sources(&self) -> usize {
        self.sources.len()
    }

    /// Number of items registered so far.
    pub fn num_items(&self) -> usize {
        self.items.len()
    }

    /// Number of claims registered so far.
    pub fn num_claims(&self) -> usize {
        self.claims.iter().map(HashMap::len).sum()
    }

    /// Finalizes the builder into an immutable [`Dataset`].
    pub fn build(self) -> Dataset {
        // Per-source sorted claim lists.
        let mut claims: Vec<Vec<(ItemId, ValueId)>> = Vec::with_capacity(self.claims.len());
        for map in &self.claims {
            let mut list: Vec<(ItemId, ValueId)> = map.iter().map(|(&d, &v)| (d, v)).collect();
            list.sort_unstable_by_key(|&(d, _)| d);
            claims.push(list);
        }
        Dataset::from_sorted_claims(
            self.sources.into_names(),
            self.items.into_names(),
            self.values,
            claims,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_first_seen_order() {
        let mut b = DatasetBuilder::new();
        let s0 = b.source("alpha");
        let s1 = b.source("beta");
        assert_eq!(s0, SourceId::new(0));
        assert_eq!(s1, SourceId::new(1));
        assert_eq!(b.source("alpha"), s0);
        let d0 = b.item("x");
        assert_eq!(d0, ItemId::new(0));
        assert_eq!(b.item("x"), d0);
    }

    #[test]
    fn duplicate_claims_overwrite() {
        let mut b = DatasetBuilder::new();
        b.add_claim("S", "D", "v1");
        b.add_claim("S", "D", "v2");
        assert_eq!(b.overwritten(), 1);
        assert_eq!(b.num_claims(), 1);
        let ds = b.build();
        assert_eq!(ds.num_claims(), 1);
        let s = ds.source_by_name("S").unwrap();
        let d = ds.item_by_name("D").unwrap();
        assert_eq!(ds.value_of(s, d), ds.value_by_str("v2"));
    }

    #[test]
    fn build_produces_sorted_structures() {
        let mut b = DatasetBuilder::new();
        // Insert out of item order on purpose.
        b.add_claim("S0", "D2", "b");
        b.add_claim("S0", "D0", "a");
        b.add_claim("S0", "D1", "c");
        b.add_claim("S1", "D1", "c");
        let ds = b.build();
        let s0 = ds.source_by_name("S0").unwrap();
        let items: Vec<_> = ds.claims_of(s0).iter().map(|&(d, _)| d.index()).collect();
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(items, sorted);
        // providers sorted
        let d1 = ds.item_by_name("D1").unwrap();
        for g in ds.values_of_item(d1) {
            let mut p = g.providers.clone();
            p.sort_unstable();
            assert_eq!(p, g.providers);
        }
    }

    #[test]
    fn counts_before_build() {
        let mut b = DatasetBuilder::new();
        b.add_claim("S0", "D0", "x");
        b.add_claim("S1", "D0", "x");
        b.add_claim("S1", "D1", "y");
        assert_eq!(b.num_sources(), 2);
        assert_eq!(b.num_items(), 2);
        assert_eq!(b.num_claims(), 3);
    }

    #[test]
    #[should_panic(expected = "unknown source id")]
    fn add_claim_ids_validates() {
        let mut b = DatasetBuilder::new();
        let d = b.item("D");
        let v = b.value("x");
        b.add_claim_ids(SourceId::new(5), d, v);
    }

    #[test]
    fn empty_build_is_allowed() {
        let ds = DatasetBuilder::new().build();
        assert_eq!(ds.num_sources(), 0);
        assert_eq!(ds.num_items(), 0);
        assert_eq!(ds.num_claims(), 0);
    }
}
