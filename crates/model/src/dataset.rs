//! The immutable [`Dataset`] snapshot and its access paths.

use crate::ids::{ItemId, SourceId, ValueId};
use crate::interner::Interner;
use crate::observation::{Claim, ClaimRef};
use crate::stats::DatasetStats;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::sync::Arc;

/// One distinct value of one data item together with the sources that provide
/// it.
///
/// This is the unit from which the inverted index is built: an index entry
/// exists for every group with at least two providers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ItemValueGroup {
    /// The data item.
    pub item: ItemId,
    /// The distinct value.
    pub value: ValueId,
    /// Sources providing `value` for `item`, sorted by id.
    pub providers: Vec<SourceId>,
}

impl ItemValueGroup {
    /// Number of sources that provide this value.
    pub fn support(&self) -> usize {
        self.providers.len()
    }
}

/// An immutable snapshot of all claims made by a set of sources over a set of
/// data items.
///
/// The dataset owns three mutually consistent representations of the claims:
///
/// 1. per-source claim lists sorted by item (`claims_of`),
/// 2. per-item groups of distinct values with their providers
///    (`values_of_item` / `groups`),
/// 3. name/id maps for sources, items and values.
///
/// A source provides **at most one** value per item (duplicate insertions in
/// the builder keep the last value), so within one item's groups the provider
/// sets are disjoint — the property the paper relies on when building the
/// inverted index ("the presence of a source in an index entry guarantees its
/// absence in all entries that correspond to other values for the same data
/// item").
///
/// ## Shared, immutable storage
///
/// Every representation lives behind [`Arc`] handles: the name tables and the
/// value interner as whole-table handles, the claim lists per source and the
/// value groups per item. Cloning a dataset is therefore a handful of
/// reference-count bumps plus two pointer-sized copies per source/item — no
/// string, claim or provider list is ever duplicated. Claim stores exploit
/// this through [`Dataset::with_patches`], which derives the next snapshot
/// from the previous one in time proportional to the *changed* entities while
/// aliasing everything untouched.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    pub(crate) source_names: Arc<Vec<String>>,
    pub(crate) item_names: Arc<Vec<String>>,
    pub(crate) values: Interner,
    /// `claims[s]` = claims of source `s`, sorted by item id.
    pub(crate) claims: Vec<Arc<Vec<(ItemId, ValueId)>>>,
    /// `item_groups[d]` = distinct values of item `d` with their providers.
    pub(crate) item_groups: Vec<Arc<Vec<ItemValueGroup>>>,
    /// Total number of claims.
    pub(crate) num_claims: usize,
}

impl Dataset {
    /// Assembles a snapshot directly from id-space claim lists, bypassing
    /// string interning.
    ///
    /// This is the owned-tables convenience over
    /// [`Dataset::from_shared_claims`]; see there for the contract.
    ///
    /// # Panics
    /// Panics if a claim list is not strictly sorted by item, or if any id is
    /// out of range for the provided name tables.
    pub fn from_sorted_claims(
        source_names: Vec<String>,
        item_names: Vec<String>,
        values: Interner,
        claims: Vec<Vec<(ItemId, ValueId)>>,
    ) -> Dataset {
        Self::from_shared_claims(Arc::new(source_names), Arc::new(item_names), values, claims)
    }

    /// Assembles a snapshot from *shared* name tables and id-space claim
    /// lists.
    ///
    /// This is the construction hook used by segmented claim stores
    /// (`copydet-store`): the caller holds the name tables behind `Arc`
    /// handles (e.g. [`NameTable::shared_names`](crate::NameTable::shared_names))
    /// and the snapshot aliases them without copying a string; the per-item
    /// value groups are derived here with exactly the same normalization as
    /// [`DatasetBuilder::build`](crate::DatasetBuilder::build), so a snapshot
    /// assembled this way is indistinguishable from one built by a single
    /// builder pass over the same claims.
    ///
    /// # Panics
    /// Panics if a claim list is not strictly sorted by item, or if any id is
    /// out of range for the provided name tables.
    pub fn from_shared_claims(
        source_names: Arc<Vec<String>>,
        item_names: Arc<Vec<String>>,
        values: Interner,
        claims: Vec<Vec<(ItemId, ValueId)>>,
    ) -> Dataset {
        assert_eq!(claims.len(), source_names.len(), "one claim list per source");
        for list in &claims {
            assert!(
                list.windows(2).all(|w| w[0].0 < w[1].0),
                "claim lists must be strictly sorted by item"
            );
            for &(d, v) in list {
                assert!(d.index() < item_names.len(), "unknown item id {d}");
                assert!(v.index() < values.len(), "unknown value id {v}");
            }
        }
        let item_groups =
            group_claims(&claims, item_names.len()).into_iter().map(Arc::new).collect();
        let num_claims = claims.iter().map(Vec::len).sum();
        let claims = claims.into_iter().map(Arc::new).collect();
        Dataset { source_names, item_names, values, claims, item_groups, num_claims }
    }

    /// Derives the next snapshot from this one by replacing the claim lists
    /// of the given sources and the value groups of the given items, aliasing
    /// every untouched entity.
    ///
    /// This is the O(delta) snapshot path of segmented claim stores: cost is
    /// proportional to the replaced lists (plus one pointer copy per
    /// source/item), never to the corpus vocabulary. The name tables may
    /// extend this snapshot's (new sources/items/values); sources and items
    /// beyond this snapshot's range start with empty claim lists/groups
    /// unless patched.
    ///
    /// The caller is responsible for delta-completeness (every source whose
    /// claims changed and every item whose groups changed must be patched)
    /// and for the builder normalization of the replacements: claim lists
    /// strictly sorted by item, groups sorted by value with providers sorted
    /// by id. Structural invariants are `debug_assert`ed; equivalence with a
    /// from-scratch build is property-tested in `copydet-store`.
    ///
    /// # Panics
    /// Panics if the new name tables are shorter than this snapshot's, or if
    /// a patched source/item id is out of range. At most one patch per
    /// source/item may be supplied.
    pub fn with_patches(
        &self,
        source_names: Arc<Vec<String>>,
        item_names: Arc<Vec<String>>,
        values: Interner,
        patched_sources: Vec<(SourceId, Vec<(ItemId, ValueId)>)>,
        patched_items: Vec<(ItemId, Vec<ItemValueGroup>)>,
    ) -> Dataset {
        assert!(
            source_names.len() >= self.source_names.len()
                && item_names.len() >= self.item_names.len()
                && values.len() >= self.values.len(),
            "the new name tables must extend the snapshot's id space"
        );
        let mut claims = self.claims.clone();
        claims.resize_with(source_names.len(), Default::default);
        let mut item_groups = self.item_groups.clone();
        item_groups.resize_with(item_names.len(), Default::default);
        let mut num_claims = self.num_claims;
        for (s, list) in patched_sources {
            assert!(s.index() < claims.len(), "unknown source id {s}");
            debug_assert!(
                list.windows(2).all(|w| w[0].0 < w[1].0),
                "claim lists must be strictly sorted by item"
            );
            debug_assert!(
                list.iter().all(|&(d, v)| d.index() < item_names.len() && v.index() < values.len()),
                "patched claims must stay inside the id space"
            );
            num_claims = num_claims - claims[s.index()].len() + list.len();
            claims[s.index()] = Arc::new(list);
        }
        for (d, groups) in patched_items {
            assert!(d.index() < item_groups.len(), "unknown item id {d}");
            debug_assert!(
                groups.windows(2).all(|w| w[0].value < w[1].value),
                "groups must be sorted by value"
            );
            debug_assert!(
                groups.iter().all(|g| g.item == d && g.providers.windows(2).all(|w| w[0] < w[1])),
                "groups must carry their item id and sorted providers"
            );
            item_groups[d.index()] = Arc::new(groups);
        }
        Dataset { source_names, item_names, values, claims, item_groups, num_claims }
    }

    /// Number of sources.
    pub fn num_sources(&self) -> usize {
        self.source_names.len()
    }

    /// Number of data items.
    pub fn num_items(&self) -> usize {
        self.item_names.len()
    }

    /// Number of distinct value strings across all items.
    pub fn num_distinct_values(&self) -> usize {
        self.values.len()
    }

    /// Total number of `(source, item, value)` claims.
    pub fn num_claims(&self) -> usize {
        self.num_claims
    }

    /// Iterator over all source ids.
    pub fn sources(&self) -> impl Iterator<Item = SourceId> + '_ {
        (0..self.num_sources()).map(SourceId::from_index)
    }

    /// Iterator over all item ids.
    pub fn items(&self) -> impl Iterator<Item = ItemId> + '_ {
        (0..self.num_items()).map(ItemId::from_index)
    }

    /// Name of a source.
    pub fn source_name(&self, s: SourceId) -> &str {
        &self.source_names[s.index()]
    }

    /// Name of a data item.
    pub fn item_name(&self, d: ItemId) -> &str {
        &self.item_names[d.index()]
    }

    /// String of a value.
    pub fn value_str(&self, v: ValueId) -> &str {
        self.values.resolve(v)
    }

    /// Looks up a source by name.
    pub fn source_by_name(&self, name: &str) -> Option<SourceId> {
        self.source_names.iter().position(|n| n == name).map(SourceId::from_index)
    }

    /// Looks up an item by name.
    pub fn item_by_name(&self, name: &str) -> Option<ItemId> {
        self.item_names.iter().position(|n| n == name).map(ItemId::from_index)
    }

    /// Looks up a value id by string.
    pub fn value_by_str(&self, s: &str) -> Option<ValueId> {
        self.values.get(s)
    }

    /// The claims of source `s`, sorted by item id.
    pub fn claims_of(&self, s: SourceId) -> &[(ItemId, ValueId)] {
        &self.claims[s.index()]
    }

    /// Number of items covered by source `s`.
    pub fn coverage(&self, s: SourceId) -> usize {
        self.claims[s.index()].len()
    }

    /// The value that source `s` provides for item `d`, if any.
    pub fn value_of(&self, s: SourceId, d: ItemId) -> Option<ValueId> {
        let claims = &self.claims[s.index()];
        claims.binary_search_by_key(&d, |&(item, _)| item).ok().map(|i| claims[i].1)
    }

    /// Returns `true` if both sources provide *some* value for item `d`.
    pub fn shares_item(&self, a: SourceId, b: SourceId, d: ItemId) -> bool {
        self.value_of(a, d).is_some() && self.value_of(b, d).is_some()
    }

    /// Distinct values of item `d`, each with its providers.
    pub fn values_of_item(&self, d: ItemId) -> &[ItemValueGroup] {
        &self.item_groups[d.index()]
    }

    /// Sources providing value `v` for item `d` (empty if none).
    pub fn providers_of(&self, d: ItemId, v: ValueId) -> &[SourceId] {
        self.item_groups[d.index()]
            .iter()
            .find(|g| g.value == v)
            .map(|g| g.providers.as_slice())
            .unwrap_or(&[])
    }

    /// Number of sources that provide *any* value for item `d`.
    pub fn item_provider_count(&self, d: ItemId) -> usize {
        self.item_groups[d.index()].iter().map(|g| g.providers.len()).sum()
    }

    /// Iterator over every `(item, value)` group in the dataset, in item
    /// order.
    pub fn groups(&self) -> impl Iterator<Item = &ItemValueGroup> + '_ {
        self.item_groups.iter().flat_map(|g| g.iter())
    }

    /// Iterator over all claims as id triples, grouped by source.
    pub fn claims_iter(&self) -> impl Iterator<Item = Claim> + '_ {
        self.claims.iter().enumerate().flat_map(|(s, list)| {
            let s = SourceId::from_index(s);
            list.iter().map(move |&(item, value)| Claim { source: s, item, value })
        })
    }

    /// Iterator over all claims with names resolved.
    pub fn claim_refs(&self) -> impl Iterator<Item = ClaimRef<'_>> + '_ {
        self.claims_iter().map(move |c| ClaimRef {
            source: self.source_name(c.source),
            item: self.item_name(c.item),
            value: self.value_str(c.value),
        })
    }

    /// The shared handle to the index-ordered source-name table.
    ///
    /// Exposed so aliasing can be *observed*: two snapshots whose handles are
    /// [`Arc::ptr_eq`] provably share storage (the zero-copy snapshot
    /// regression tests assert exactly this).
    pub fn shared_source_names(&self) -> &Arc<Vec<String>> {
        &self.source_names
    }

    /// The shared handle to the index-ordered item-name table (see
    /// [`Dataset::shared_source_names`]).
    pub fn shared_item_names(&self) -> &Arc<Vec<String>> {
        &self.item_names
    }

    /// The value interner (cheaply cloneable; see
    /// [`Interner::shared_strings`]).
    pub fn values_interner(&self) -> &Interner {
        &self.values
    }

    /// The shared handle to source `s`'s claim list (see
    /// [`Dataset::shared_source_names`] for the aliasing contract).
    pub fn shared_claims_of(&self, s: SourceId) -> &Arc<Vec<(ItemId, ValueId)>> {
        &self.claims[s.index()]
    }

    /// The shared handle to item `d`'s value groups (see
    /// [`Dataset::shared_source_names`] for the aliasing contract).
    pub fn shared_groups_of(&self, d: ItemId) -> &Arc<Vec<ItemValueGroup>> {
        &self.item_groups[d.index()]
    }

    /// Number of data items shared by two sources (both provide some value),
    /// computed by merging the two sorted claim lists.
    ///
    /// The detection algorithms use the bulk variant in `copydet-index`
    /// (shared-item counting over the whole dataset); this per-pair query is
    /// mostly useful for tests and diagnostics.
    pub fn shared_item_count(&self, a: SourceId, b: SourceId) -> usize {
        let (mut ia, mut ib) = (0, 0);
        let (ca, cb) = (&self.claims[a.index()], &self.claims[b.index()]);
        let mut count = 0;
        while ia < ca.len() && ib < cb.len() {
            match ca[ia].0.cmp(&cb[ib].0) {
                std::cmp::Ordering::Less => ia += 1,
                std::cmp::Ordering::Greater => ib += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    ia += 1;
                    ib += 1;
                }
            }
        }
        count
    }

    /// Number of data items on which two sources provide the *same* value.
    pub fn shared_value_count(&self, a: SourceId, b: SourceId) -> usize {
        let (mut ia, mut ib) = (0, 0);
        let (ca, cb) = (&self.claims[a.index()], &self.claims[b.index()]);
        let mut count = 0;
        while ia < ca.len() && ib < cb.len() {
            match ca[ia].0.cmp(&cb[ib].0) {
                std::cmp::Ordering::Less => ia += 1,
                std::cmp::Ordering::Greater => ib += 1,
                std::cmp::Ordering::Equal => {
                    if ca[ia].1 == cb[ib].1 {
                        count += 1;
                    }
                    ia += 1;
                    ib += 1;
                }
            }
        }
        count
    }

    /// Computes summary statistics for the dataset.
    pub fn stats(&self) -> DatasetStats {
        DatasetStats::compute(self)
    }

    /// Projects the dataset onto a subset of data items, keeping source and
    /// item identifiers (and names) stable.
    ///
    /// Claims for items outside `keep` are dropped; everything else —
    /// including sources that end up with zero claims — is preserved, so copy
    /// decisions on the projection can be compared pair-by-pair with
    /// decisions on the full dataset. This is the substrate for the sampling
    /// strategies (SAMPLE1/SAMPLE2/SCALESAMPLE). The name tables and the
    /// groups of kept items are aliased, not copied.
    pub fn project_items(&self, keep: &HashSet<ItemId>) -> Dataset {
        let claims: Vec<Arc<Vec<(ItemId, ValueId)>>> = self
            .claims
            .iter()
            .map(|list| Arc::new(list.iter().copied().filter(|(d, _)| keep.contains(d)).collect()))
            .collect();
        let item_groups: Vec<Arc<Vec<ItemValueGroup>>> = self
            .item_groups
            .iter()
            .enumerate()
            .map(|(d, groups)| {
                if keep.contains(&ItemId::from_index(d)) {
                    Arc::clone(groups)
                } else {
                    Arc::default()
                }
            })
            .collect();
        let num_claims = claims.iter().map(|l| l.len()).sum();
        Dataset {
            source_names: Arc::clone(&self.source_names),
            item_names: Arc::clone(&self.item_names),
            values: self.values.clone(),
            claims,
            item_groups,
            num_claims,
        }
    }
}

/// Derives the per-item value groups from per-source sorted claim lists —
/// the normalization shared by [`DatasetBuilder::build`](crate::DatasetBuilder)
/// and [`Dataset::from_shared_claims`]: providers sorted by id within each
/// group, groups sorted by value within each item.
pub(crate) fn group_claims(
    claims: &[Vec<(ItemId, ValueId)>],
    num_items: usize,
) -> Vec<Vec<ItemValueGroup>> {
    let mut per_item: Vec<std::collections::HashMap<ValueId, Vec<SourceId>>> =
        vec![std::collections::HashMap::new(); num_items];
    for (s, list) in claims.iter().enumerate() {
        let s = SourceId::from_index(s);
        for &(d, v) in list {
            per_item[d.index()].entry(v).or_default().push(s);
        }
    }
    per_item
        .into_iter()
        .enumerate()
        .map(|(d, map)| {
            let item = ItemId::from_index(d);
            let mut groups: Vec<ItemValueGroup> = map
                .into_iter()
                .map(|(value, mut providers)| {
                    providers.sort_unstable();
                    ItemValueGroup { item, value, providers }
                })
                .collect();
            groups.sort_unstable_by_key(|g| g.value);
            groups
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DatasetBuilder;

    fn sample() -> Dataset {
        let mut b = DatasetBuilder::new();
        b.add_claim("S0", "NJ", "Trenton");
        b.add_claim("S0", "AZ", "Phoenix");
        b.add_claim("S1", "NJ", "Trenton");
        b.add_claim("S1", "AZ", "Tempe");
        b.add_claim("S2", "NJ", "Atlantic");
        b.build()
    }

    #[test]
    fn basic_counts() {
        let ds = sample();
        assert_eq!(ds.num_sources(), 3);
        assert_eq!(ds.num_items(), 2);
        assert_eq!(ds.num_claims(), 5);
        assert_eq!(ds.num_distinct_values(), 4);
    }

    #[test]
    fn name_lookups_roundtrip() {
        let ds = sample();
        let s1 = ds.source_by_name("S1").unwrap();
        assert_eq!(ds.source_name(s1), "S1");
        let nj = ds.item_by_name("NJ").unwrap();
        assert_eq!(ds.item_name(nj), "NJ");
        let v = ds.value_by_str("Tempe").unwrap();
        assert_eq!(ds.value_str(v), "Tempe");
        assert!(ds.source_by_name("nope").is_none());
        assert!(ds.item_by_name("nope").is_none());
        assert!(ds.value_by_str("nope").is_none());
    }

    #[test]
    fn value_of_and_sharing() {
        let ds = sample();
        let s0 = ds.source_by_name("S0").unwrap();
        let s1 = ds.source_by_name("S1").unwrap();
        let s2 = ds.source_by_name("S2").unwrap();
        let nj = ds.item_by_name("NJ").unwrap();
        let az = ds.item_by_name("AZ").unwrap();

        assert_eq!(ds.value_of(s0, nj), ds.value_by_str("Trenton"));
        assert_eq!(ds.value_of(s2, az), None);
        assert!(ds.shares_item(s0, s1, nj));
        assert!(!ds.shares_item(s0, s2, az));

        assert_eq!(ds.shared_item_count(s0, s1), 2);
        assert_eq!(ds.shared_value_count(s0, s1), 1);
        assert_eq!(ds.shared_item_count(s0, s2), 1);
        assert_eq!(ds.shared_value_count(s0, s2), 0);
    }

    #[test]
    fn provider_groups_are_disjoint_per_item() {
        let ds = sample();
        let nj = ds.item_by_name("NJ").unwrap();
        let groups = ds.values_of_item(nj);
        assert_eq!(groups.len(), 2);
        let mut all: Vec<SourceId> = groups.iter().flat_map(|g| g.providers.clone()).collect();
        let before = all.len();
        all.sort();
        all.dedup();
        assert_eq!(before, all.len(), "a source appears in two groups of one item");
        assert_eq!(ds.item_provider_count(nj), 3);
    }

    #[test]
    fn providers_of_specific_value() {
        let ds = sample();
        let nj = ds.item_by_name("NJ").unwrap();
        let trenton = ds.value_by_str("Trenton").unwrap();
        let provs = ds.providers_of(nj, trenton);
        assert_eq!(provs.len(), 2);
        let tempe = ds.value_by_str("Tempe").unwrap();
        assert!(ds.providers_of(nj, tempe).is_empty());
    }

    #[test]
    fn claims_iterators_are_consistent() {
        let ds = sample();
        assert_eq!(ds.claims_iter().count(), ds.num_claims());
        assert_eq!(ds.claim_refs().count(), ds.num_claims());
        let any = ds.claim_refs().any(|c| c.source == "S1" && c.item == "AZ" && c.value == "Tempe");
        assert!(any);
    }

    #[test]
    fn project_items_keeps_ids_stable() {
        let ds = sample();
        let nj = ds.item_by_name("NJ").unwrap();
        let az = ds.item_by_name("AZ").unwrap();
        let keep: HashSet<ItemId> = [nj].into_iter().collect();
        let proj = ds.project_items(&keep);
        assert_eq!(proj.num_sources(), ds.num_sources());
        assert_eq!(proj.num_items(), ds.num_items());
        assert_eq!(proj.num_claims(), 3);
        assert!(proj.values_of_item(az).is_empty());
        let s0 = proj.source_by_name("S0").unwrap();
        assert_eq!(proj.value_of(s0, az), None);
        assert_eq!(proj.value_of(s0, nj), ds.value_of(s0, nj));
    }

    #[test]
    fn project_items_aliases_names_and_kept_groups() {
        let ds = sample();
        let nj = ds.item_by_name("NJ").unwrap();
        let keep: HashSet<ItemId> = [nj].into_iter().collect();
        let proj = ds.project_items(&keep);
        assert!(Arc::ptr_eq(proj.shared_source_names(), ds.shared_source_names()));
        assert!(Arc::ptr_eq(proj.shared_item_names(), ds.shared_item_names()));
        assert!(proj.values_interner().ptr_eq(ds.values_interner()));
        assert!(Arc::ptr_eq(proj.shared_groups_of(nj), ds.shared_groups_of(nj)));
    }

    #[test]
    fn from_sorted_claims_matches_builder() {
        let ds = sample();
        let claims: Vec<Vec<(ItemId, ValueId)>> =
            ds.sources().map(|s| ds.claims_of(s).to_vec()).collect();
        let assembled = Dataset::from_shared_claims(
            Arc::clone(&ds.source_names),
            Arc::clone(&ds.item_names),
            ds.values.clone(),
            claims,
        );
        assert_eq!(assembled, ds, "assembled snapshot must equal the builder-built one");
        assert!(
            Arc::ptr_eq(assembled.shared_source_names(), ds.shared_source_names()),
            "shared tables are aliased, not copied"
        );
    }

    #[test]
    #[should_panic(expected = "strictly sorted")]
    fn from_sorted_claims_rejects_unsorted_lists() {
        let ds = sample();
        let _ = Dataset::from_sorted_claims(
            vec!["S".into()],
            (*ds.item_names).clone(),
            ds.values.clone(),
            vec![vec![(ItemId::new(1), ValueId::new(0)), (ItemId::new(0), ValueId::new(0))]],
        );
    }

    #[test]
    fn with_patches_replaces_only_the_patched_entities() {
        let ds = sample();
        let s2 = ds.source_by_name("S2").unwrap();
        let s0 = ds.source_by_name("S0").unwrap();
        let az = ds.item_by_name("AZ").unwrap();
        let nj = ds.item_by_name("NJ").unwrap();
        let phoenix = ds.value_by_str("Phoenix").unwrap();

        // S2 gains an AZ claim (Phoenix): patch S2's list and AZ's groups.
        let mut s2_claims = ds.claims_of(s2).to_vec();
        s2_claims.push((az, phoenix));
        s2_claims.sort_unstable_by_key(|&(d, _)| d);
        let mut az_groups = ds.values_of_item(az).to_vec();
        az_groups
            .iter_mut()
            .find(|g| g.value == phoenix)
            .expect("Phoenix group exists")
            .providers
            .push(s2);
        let patched = ds.with_patches(
            Arc::clone(&ds.source_names),
            Arc::clone(&ds.item_names),
            ds.values.clone(),
            vec![(s2, s2_claims)],
            vec![(az, az_groups)],
        );

        assert_eq!(patched.num_claims(), ds.num_claims() + 1);
        assert_eq!(patched.value_of(s2, az), Some(phoenix));
        assert_eq!(patched.providers_of(az, phoenix).len(), 2);
        // Untouched entities alias the previous snapshot's storage.
        assert!(Arc::ptr_eq(patched.shared_claims_of(s0), ds.shared_claims_of(s0)));
        assert!(Arc::ptr_eq(patched.shared_groups_of(nj), ds.shared_groups_of(nj)));
        assert!(Arc::ptr_eq(patched.shared_source_names(), ds.shared_source_names()));
        // The patched entities do not.
        assert!(!Arc::ptr_eq(patched.shared_claims_of(s2), ds.shared_claims_of(s2)));
        assert!(!Arc::ptr_eq(patched.shared_groups_of(az), ds.shared_groups_of(az)));
        // The previous snapshot is untouched.
        assert_eq!(ds.value_of(s2, az), None);
    }

    #[test]
    fn with_patches_extends_the_id_space() {
        let ds = sample();
        let mut source_names = (*ds.source_names).clone();
        source_names.push("S3".to_owned());
        let patched = ds.with_patches(
            Arc::new(source_names),
            Arc::clone(&ds.item_names),
            ds.values.clone(),
            Vec::new(),
            Vec::new(),
        );
        assert_eq!(patched.num_sources(), 4);
        assert_eq!(patched.num_claims(), ds.num_claims());
        let s3 = patched.source_by_name("S3").unwrap();
        assert!(patched.claims_of(s3).is_empty());
    }

    #[test]
    #[should_panic(expected = "extend the snapshot's id space")]
    fn with_patches_rejects_shrunken_tables() {
        let ds = sample();
        let _ = ds.with_patches(
            Arc::new(vec!["S0".to_owned()]),
            Arc::clone(&ds.item_names),
            ds.values.clone(),
            Vec::new(),
            Vec::new(),
        );
    }

    #[test]
    fn group_support() {
        let ds = sample();
        let nj = ds.item_by_name("NJ").unwrap();
        let trenton = ds.value_by_str("Trenton").unwrap();
        let g = ds.values_of_item(nj).iter().find(|g| g.value == trenton).unwrap();
        assert_eq!(g.support(), 2);
    }
}
