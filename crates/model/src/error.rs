//! Error type for dataset construction and (de)serialization.

use std::fmt;
use std::io;

/// Errors produced while building, loading or storing datasets.
#[derive(Debug)]
pub enum ModelError {
    /// An I/O error while reading or writing a dataset file.
    Io(io::Error),
    /// A malformed line in a TSV dataset file.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Explanation of what was wrong with the line.
        message: String,
    },
    /// A query referenced a source, item or value that does not exist in the
    /// dataset.
    UnknownEntity(String),
    /// The dataset is empty where a non-empty one is required.
    EmptyDataset,
    /// A name or value cannot be written in the requested serialization
    /// format (e.g. a TSV field containing a tab, or a source name a TSV
    /// parser would mistake for a comment). Refusing beats writing a file
    /// that silently parses back to different claims.
    Unrepresentable {
        /// What was unrepresentable, and why.
        what: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Io(e) => write!(f, "I/O error: {e}"),
            ModelError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            ModelError::UnknownEntity(what) => write!(f, "unknown entity: {what}"),
            ModelError::EmptyDataset => write!(f, "the dataset contains no claims"),
            ModelError::Unrepresentable { what } => {
                write!(f, "unrepresentable in this format: {what}")
            }
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ModelError {
    fn from(e: io::Error) -> Self {
        ModelError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ModelError::Parse { line: 3, message: "expected 3 fields".into() };
        assert!(e.to_string().contains("line 3"));
        assert!(ModelError::EmptyDataset.to_string().contains("no claims"));
        assert!(ModelError::UnknownEntity("source X".into()).to_string().contains("source X"));
    }

    #[test]
    fn io_error_has_source() {
        use std::error::Error;
        let e = ModelError::from(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gone"));
    }
}
