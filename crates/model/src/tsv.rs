//! A minimal tab-separated claim format for importing and exporting datasets.
//!
//! The format is one claim per line:
//!
//! ```text
//! <source-name> \t <item-name> \t <value>
//! ```
//!
//! Lines that are empty or start with `#` are ignored. Values may contain any
//! character except tab and newline. This mirrors the flat triple dumps the
//! paper's datasets (AbeBooks / stock crawls) were distributed as, without
//! pulling in an external CSV dependency.

use crate::builder::DatasetBuilder;
use crate::dataset::Dataset;
use crate::error::ModelError;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Parses a dataset from a TSV reader.
pub fn read_dataset<R: Read>(reader: R) -> Result<Dataset, ModelError> {
    let mut builder = DatasetBuilder::new();
    let buf = BufReader::new(reader);
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split('\t');
        let source = fields.next().unwrap_or("");
        let item = fields.next();
        let value = fields.next();
        let extra = fields.next();
        match (item, value, extra) {
            (Some(item), Some(value), None) if !source.is_empty() && !item.is_empty() => {
                builder.add_claim(source, item, value);
            }
            _ => {
                return Err(ModelError::Parse {
                    line: lineno + 1,
                    message: format!(
                        "expected exactly 3 tab-separated non-empty fields, got {trimmed:?}"
                    ),
                });
            }
        }
    }
    Ok(builder.build())
}

/// Parses a dataset from a TSV string.
pub fn parse_dataset(text: &str) -> Result<Dataset, ModelError> {
    read_dataset(text.as_bytes())
}

/// Reads a dataset from a TSV file on disk.
pub fn load_dataset<P: AsRef<Path>>(path: P) -> Result<Dataset, ModelError> {
    let file = std::fs::File::open(path)?;
    read_dataset(file)
}

/// Rejects a field the TSV format cannot carry faithfully. Without this
/// check a written file could silently parse back to *different* claims: a
/// tab splits a field in two, a newline splits a line, and a source name
/// starting with `#` turns its whole line into a comment.
fn check_field(
    kind: &str,
    value: &str,
    allow_empty: bool,
    is_line_start: bool,
) -> Result<(), ModelError> {
    if value.contains(['\t', '\n', '\r'])
        || (!allow_empty && value.is_empty())
        || (is_line_start && value.starts_with('#'))
    {
        return Err(ModelError::Unrepresentable {
            what: format!(
                "{kind} {value:?} (TSV fields must be tab/newline-free{}{})",
                if allow_empty { "" } else { ", non-empty" },
                if is_line_start { ", and a source must not start with '#'" } else { "" },
            ),
        });
    }
    Ok(())
}

/// Writes a dataset as TSV to `writer`, one claim per line, grouped by source
/// in id order.
///
/// # Errors
/// Returns [`ModelError::Unrepresentable`] — **before writing a single
/// byte** — if any claim cannot be carried faithfully (fields containing
/// tabs or newlines, empty source/item names, or a source name starting
/// with `#`, which a reader would drop as a comment). Validating up front
/// is deliberate: erroring mid-stream would leave a truncated file that
/// silently parses back to a subset of the claims.
pub fn write_dataset<W: Write>(ds: &Dataset, writer: W) -> Result<(), ModelError> {
    check_dataset(ds)?;
    write_lines(ds, writer)
}

/// Emits the claim lines of an already-validated dataset.
fn write_lines<W: Write>(ds: &Dataset, mut writer: W) -> Result<(), ModelError> {
    for claim in ds.claim_refs() {
        writeln!(writer, "{}\t{}\t{}", claim.source, claim.item, claim.value)?;
    }
    Ok(())
}

/// Validates that every claim of `ds` is TSV-representable.
fn check_dataset(ds: &Dataset) -> Result<(), ModelError> {
    for claim in ds.claim_refs() {
        check_field("source name", claim.source, false, true)?;
        check_field("item name", claim.item, false, false)?;
        check_field("value", claim.value, true, false)?;
    }
    Ok(())
}

/// Serializes a dataset to a TSV string.
///
/// # Errors
/// Returns [`ModelError::Unrepresentable`] under the same conditions as
/// [`write_dataset`].
pub fn dataset_to_string(ds: &Dataset) -> Result<String, ModelError> {
    let mut out = Vec::new();
    write_dataset(ds, &mut out)?;
    Ok(String::from_utf8(out).expect("dataset names and values are valid UTF-8"))
}

/// Writes a dataset to a TSV file on disk.
///
/// # Errors
/// Returns [`ModelError::Unrepresentable`] *before the file is touched* if
/// any claim cannot be carried faithfully — an existing file at `path` is
/// not truncated on refusal.
pub fn save_dataset<P: AsRef<Path>>(ds: &Dataset, path: P) -> Result<(), ModelError> {
    check_dataset(ds)?;
    let file = std::fs::File::create(path)?;
    write_lines(ds, std::io::BufWriter::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple() {
        let ds = parse_dataset("S0\tNJ\tTrenton\nS1\tNJ\tAtlantic\n# comment\n\nS1\tAZ\tPhoenix\n")
            .unwrap();
        assert_eq!(ds.num_sources(), 2);
        assert_eq!(ds.num_items(), 2);
        assert_eq!(ds.num_claims(), 3);
    }

    #[test]
    fn parse_rejects_bad_lines() {
        let err = parse_dataset("S0\tNJ\n").unwrap_err();
        match err {
            ModelError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("unexpected error {other:?}"),
        }
        assert!(parse_dataset("S0\tNJ\tTrenton\textra\n").is_err());
        assert!(parse_dataset("\tNJ\tTrenton\n").is_err());
    }

    #[test]
    fn roundtrip_through_string() {
        let original =
            parse_dataset("S0\tNJ\tTrenton\nS1\tNJ\tAtlantic\nS1\tAZ\tPhoenix\n").unwrap();
        let text = dataset_to_string(&original).unwrap();
        let reparsed = parse_dataset(&text).unwrap();
        assert_eq!(reparsed.num_sources(), original.num_sources());
        assert_eq!(reparsed.num_items(), original.num_items());
        assert_eq!(reparsed.num_claims(), original.num_claims());
        // every original claim survives
        for c in original.claim_refs() {
            let s = reparsed.source_by_name(c.source).unwrap();
            let d = reparsed.item_by_name(c.item).unwrap();
            let v = reparsed.value_of(s, d).unwrap();
            assert_eq!(reparsed.value_str(v), c.value);
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("copydet_model_tsv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.tsv");
        let ds = parse_dataset("A\tD1\tx\nB\tD1\ty\n").unwrap();
        save_dataset(&ds, &path).unwrap();
        let loaded = load_dataset(&path).unwrap();
        assert_eq!(loaded.num_claims(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unrepresentable_names_are_refused_not_silently_lost() {
        // A source starting with '#' would write a line the parser drops as
        // a comment — the claim would vanish on the round trip.
        let mut b = crate::DatasetBuilder::new();
        b.add_claim("#evil", "NJ", "Trenton");
        let err = dataset_to_string(&b.build()).unwrap_err();
        assert!(matches!(err, ModelError::Unrepresentable { .. }), "unexpected {err:?}");
        assert!(err.to_string().contains("#evil"));

        // Embedded tabs and newlines would re-split fields and lines.
        for (s, d, v) in
            [("a\tb", "NJ", "x"), ("S", "D\n", "x"), ("S", "D", "x\ry"), ("S", "", "x")]
        {
            let mut b = crate::DatasetBuilder::new();
            b.add_claim(s, d, v);
            assert!(
                matches!(dataset_to_string(&b.build()), Err(ModelError::Unrepresentable { .. })),
                "({s:?}, {d:?}, {v:?}) must be refused"
            );
        }

        // Validation runs before the first byte is written: a bad claim in
        // the middle of the dataset must not leave a truncated prefix that
        // would parse back as a plausible subset.
        let mut b = crate::DatasetBuilder::new();
        b.add_claim("good", "D0", "x");
        b.add_claim("#bad", "D1", "y");
        b.add_claim("also-good", "D2", "z");
        let mut out = Vec::new();
        let bad = b.build();
        assert!(write_dataset(&bad, &mut out).is_err());
        assert!(out.is_empty(), "nothing may be written when any claim is unrepresentable");

        // save_dataset must refuse *before* touching the destination: an
        // existing file survives a refused overwrite intact.
        let dir = std::env::temp_dir().join(format!("copydet_tsv_refuse_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.tsv");
        std::fs::write(&path, "keep\tD\tv\n").unwrap();
        assert!(save_dataset(&bad, &path).is_err());
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "keep\tD\tv\n");
        std::fs::remove_dir_all(&dir).ok();

        // Non-ASCII and an empty value are fine — and survive the trip.
        let mut b = crate::DatasetBuilder::new();
        b.add_claim("søurce 雪", "itém", "");
        b.add_claim("a#b", "D", "v");
        let text = dataset_to_string(&b.build()).unwrap();
        let back = parse_dataset(&text).unwrap();
        assert_eq!(back.num_claims(), 2);
        let s = back.source_by_name("søurce 雪").unwrap();
        let d = back.item_by_name("itém").unwrap();
        assert_eq!(back.value_str(back.value_of(s, d).unwrap()), "");
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = load_dataset("/definitely/not/a/file.tsv").unwrap_err();
        assert!(matches!(err, ModelError::Io(_)));
    }
}
