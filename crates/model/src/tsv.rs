//! A minimal tab-separated claim format for importing and exporting datasets.
//!
//! The format is one claim per line:
//!
//! ```text
//! <source-name> \t <item-name> \t <value>
//! ```
//!
//! Lines that are empty or start with `#` are ignored. Values may contain any
//! character except tab and newline. This mirrors the flat triple dumps the
//! paper's datasets (AbeBooks / stock crawls) were distributed as, without
//! pulling in an external CSV dependency.

use crate::builder::DatasetBuilder;
use crate::dataset::Dataset;
use crate::error::ModelError;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Parses a dataset from a TSV reader.
pub fn read_dataset<R: Read>(reader: R) -> Result<Dataset, ModelError> {
    let mut builder = DatasetBuilder::new();
    let buf = BufReader::new(reader);
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split('\t');
        let source = fields.next().unwrap_or("");
        let item = fields.next();
        let value = fields.next();
        let extra = fields.next();
        match (item, value, extra) {
            (Some(item), Some(value), None) if !source.is_empty() && !item.is_empty() => {
                builder.add_claim(source, item, value);
            }
            _ => {
                return Err(ModelError::Parse {
                    line: lineno + 1,
                    message: format!(
                        "expected exactly 3 tab-separated non-empty fields, got {trimmed:?}"
                    ),
                });
            }
        }
    }
    Ok(builder.build())
}

/// Parses a dataset from a TSV string.
pub fn parse_dataset(text: &str) -> Result<Dataset, ModelError> {
    read_dataset(text.as_bytes())
}

/// Reads a dataset from a TSV file on disk.
pub fn load_dataset<P: AsRef<Path>>(path: P) -> Result<Dataset, ModelError> {
    let file = std::fs::File::open(path)?;
    read_dataset(file)
}

/// Writes a dataset as TSV to `writer`, one claim per line, grouped by source
/// in id order.
pub fn write_dataset<W: Write>(ds: &Dataset, mut writer: W) -> Result<(), ModelError> {
    for claim in ds.claim_refs() {
        writeln!(writer, "{}\t{}\t{}", claim.source, claim.item, claim.value)?;
    }
    Ok(())
}

/// Serializes a dataset to a TSV string.
pub fn dataset_to_string(ds: &Dataset) -> String {
    let mut out = Vec::new();
    write_dataset(ds, &mut out).expect("writing to a Vec cannot fail");
    String::from_utf8(out).expect("dataset names and values are valid UTF-8")
}

/// Writes a dataset to a TSV file on disk.
pub fn save_dataset<P: AsRef<Path>>(ds: &Dataset, path: P) -> Result<(), ModelError> {
    let file = std::fs::File::create(path)?;
    write_dataset(ds, std::io::BufWriter::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple() {
        let ds = parse_dataset("S0\tNJ\tTrenton\nS1\tNJ\tAtlantic\n# comment\n\nS1\tAZ\tPhoenix\n")
            .unwrap();
        assert_eq!(ds.num_sources(), 2);
        assert_eq!(ds.num_items(), 2);
        assert_eq!(ds.num_claims(), 3);
    }

    #[test]
    fn parse_rejects_bad_lines() {
        let err = parse_dataset("S0\tNJ\n").unwrap_err();
        match err {
            ModelError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("unexpected error {other:?}"),
        }
        assert!(parse_dataset("S0\tNJ\tTrenton\textra\n").is_err());
        assert!(parse_dataset("\tNJ\tTrenton\n").is_err());
    }

    #[test]
    fn roundtrip_through_string() {
        let original =
            parse_dataset("S0\tNJ\tTrenton\nS1\tNJ\tAtlantic\nS1\tAZ\tPhoenix\n").unwrap();
        let text = dataset_to_string(&original);
        let reparsed = parse_dataset(&text).unwrap();
        assert_eq!(reparsed.num_sources(), original.num_sources());
        assert_eq!(reparsed.num_items(), original.num_items());
        assert_eq!(reparsed.num_claims(), original.num_claims());
        // every original claim survives
        for c in original.claim_refs() {
            let s = reparsed.source_by_name(c.source).unwrap();
            let d = reparsed.item_by_name(c.item).unwrap();
            let v = reparsed.value_of(s, d).unwrap();
            assert_eq!(reparsed.value_str(v), c.value);
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("copydet_model_tsv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.tsv");
        let ds = parse_dataset("A\tD1\tx\nB\tD1\ty\n").unwrap();
        save_dataset(&ds, &path).unwrap();
        let loaded = load_dataset(&path).unwrap();
        assert_eq!(loaded.num_claims(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = load_dataset("/definitely/not/a/file.tsv").unwrap_err();
        assert!(matches!(err, ModelError::Io(_)));
    }
}
