//! The synthetic claim generator.

use crate::config::{AccuracyModel, CopyingConfig, CoverageModel, SynthConfig};
use crate::gold::{GoldStandard, PlantedCopy, SyntheticDataset};
use crate::zipf::ZipfSampler;
use copydet_model::{DatasetBuilder, ItemId, SourceId, ValueId};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Generates a synthetic dataset with planted truth, errors and copying.
///
/// The procedure, per source:
///
/// 1. assign an accuracy from the configured [`AccuracyModel`];
/// 2. pick the covered items from the configured [`CoverageModel`];
/// 3. for every covered item, provide the true value with probability equal
///    to the source's accuracy, otherwise one of the item's `n` false values
///    uniformly at random (the paper's error model);
/// 4. copier sources additionally overwrite their claims: for every item the
///    designated original provides, with probability `selectivity` the
///    copier claims exactly the original's value (false values propagate —
///    the phenomenon copy detection exists to catch).
///
/// The generator is deterministic for a fixed configuration (including the
/// seed).
pub fn generate(name: &str, config: &SynthConfig) -> SyntheticDataset {
    assert!(config.num_sources >= 1, "need at least one source");
    assert!(config.num_items >= 1, "need at least one item");
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);

    let mut builder = DatasetBuilder::new();
    // Register sources and items up front so identifiers are dense and
    // stable regardless of claim order.
    let sources: Vec<SourceId> =
        (0..config.num_sources).map(|i| builder.source(&format!("src{i:05}"))).collect();
    let items: Vec<ItemId> =
        (0..config.num_items).map(|d| builder.item(&format!("item{d:06}"))).collect();

    // True and false value ids per item.
    let mut true_values: HashMap<ItemId, ValueId> = HashMap::with_capacity(items.len());
    for (d, &item) in items.iter().enumerate() {
        let v = builder.value(&format!("item{d:06}/true"));
        true_values.insert(item, v);
    }

    // Planted accuracies.
    let accuracies: Vec<f64> = (0..config.num_sources)
        .map(|_| match config.accuracy {
            AccuracyModel::Uniform { min, max } => rng.gen_range(min..=max),
            AccuracyModel::Bimodal { good, bad, fraction_good } => {
                if rng.gen_bool(fraction_good) {
                    good
                } else {
                    bad
                }
            }
        })
        .collect();

    // Coverage: which items each source answers.
    let coverages: Vec<Vec<ItemId>> = (0..config.num_sources)
        .map(|rank| {
            let fraction = match config.coverage {
                CoverageModel::Uniform { min_fraction, max_fraction } => {
                    rng.gen_range(min_fraction..=max_fraction)
                }
                CoverageModel::Zipf { max_fraction, exponent, min_items } => {
                    let z = ZipfSampler::new(exponent);
                    let f = max_fraction * z.weight(rank + 1);
                    f.max(min_items as f64 / config.num_items as f64)
                }
            };
            let count =
                ((config.num_items as f64 * fraction).round() as usize).clamp(1, config.num_items);
            let mut shuffled = items.clone();
            shuffled.shuffle(&mut rng);
            shuffled.truncate(count);
            shuffled
        })
        .collect();

    // Independent claims.
    let mut claims: Vec<HashMap<ItemId, ValueId>> = Vec::with_capacity(config.num_sources);
    for (s, covered) in coverages.iter().enumerate() {
        let mut own = HashMap::with_capacity(covered.len());
        for &item in covered {
            let value = if rng.gen_bool(accuracies[s]) {
                true_values[&item]
            } else {
                let false_idx = rng.gen_range(0..config.n_false_values);
                builder.value(&format!("{}/false{}", builder_item_name(item), false_idx))
            };
            own.insert(item, value);
        }
        claims.push(own);
    }

    // Plant copier groups.
    let copies = plant_copying(&config.copying, &sources, &mut claims, &mut rng);

    // Materialize all claims.
    for (s, own) in claims.iter().enumerate() {
        for (&item, &value) in own {
            builder.add_claim_ids(sources[s], item, value);
        }
    }

    let dataset = builder.build();
    SyntheticDataset {
        dataset,
        gold: GoldStandard { true_values, copies, planted_accuracies: accuracies },
        name: name.to_string(),
    }
}

/// Item names are generated as `item{d:06}`; reconstruct the name from the
/// dense id so false-value strings stay per-item.
fn builder_item_name(item: ItemId) -> String {
    format!("item{:06}", item.index())
}

fn plant_copying(
    config: &CopyingConfig,
    sources: &[SourceId],
    claims: &mut [HashMap<ItemId, ValueId>],
    rng: &mut impl Rng,
) -> Vec<PlantedCopy> {
    let mut copies = Vec::new();
    if config.num_groups == 0 || sources.len() < 2 {
        return copies;
    }
    // Choose disjoint groups of sources.
    let mut pool: Vec<usize> = (0..sources.len()).collect();
    pool.shuffle(rng);
    let mut cursor = 0;
    for _ in 0..config.num_groups {
        let copiers = if config.max_copiers > config.min_copiers {
            rng.gen_range(config.min_copiers..=config.max_copiers)
        } else {
            config.min_copiers
        };
        let group_size = copiers + 1;
        if cursor + group_size > pool.len() || copiers == 0 {
            break;
        }
        let group = &pool[cursor..cursor + group_size];
        cursor += group_size;
        let original = group[0];
        // Sort so the RNG draws happen in a deterministic order regardless of
        // hash-map iteration order.
        let mut original_claims: Vec<(ItemId, ValueId)> =
            claims[original].iter().map(|(&d, &v)| (d, v)).collect();
        original_claims.sort_unstable_by_key(|&(d, _)| d);
        for &copier in &group[1..] {
            for &(item, value) in &original_claims {
                if rng.gen_bool(config.selectivity) {
                    claims[copier].insert(item, value);
                }
            }
            copies.push(PlantedCopy { copier: sources[copier], original: sources[original] });
        }
    }
    copies
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SynthConfig;

    #[test]
    fn generation_is_deterministic() {
        let config = SynthConfig::small(42);
        let a = generate("test", &config);
        let b = generate("test", &config);
        assert_eq!(a.dataset.num_claims(), b.dataset.num_claims());
        assert_eq!(a.gold.copies, b.gold.copies);
        for s in a.dataset.sources() {
            assert_eq!(a.dataset.claims_of(s), b.dataset.claims_of(s));
        }
        let c = generate("test", &SynthConfig::small(43));
        assert_ne!(a.dataset.num_claims(), 0);
        // Different seeds almost surely differ.
        assert!(
            a.dataset.num_claims() != c.dataset.num_claims()
                || a.dataset.claims_of(SourceId::new(0)) != c.dataset.claims_of(SourceId::new(0))
        );
    }

    #[test]
    fn shape_matches_configuration() {
        let config = SynthConfig::small(7);
        let synth = generate("shape", &config);
        assert_eq!(synth.dataset.num_sources(), config.num_sources);
        assert_eq!(synth.dataset.num_items(), config.num_items);
        assert_eq!(synth.gold.true_values.len(), config.num_items);
        assert_eq!(synth.gold.planted_accuracies.len(), config.num_sources);
        assert_eq!(synth.name, "shape");
        // Coverage stays within the configured bounds (roughly).
        for s in synth.dataset.sources() {
            let cov = synth.dataset.coverage(s) as f64 / config.num_items as f64;
            assert!((0.3..=1.0).contains(&cov), "coverage {cov} out of range for {s}");
        }
    }

    #[test]
    fn accurate_sources_mostly_tell_the_truth() {
        let mut config = SynthConfig::small(11);
        config.accuracy = AccuracyModel::Bimodal { good: 0.95, bad: 0.2, fraction_good: 0.5 };
        config.copying = CopyingConfig::none();
        let synth = generate("acc", &config);
        for (s_idx, &planted) in synth.gold.planted_accuracies.iter().enumerate() {
            let s = SourceId::new(s_idx as u32);
            let claims = synth.dataset.claims_of(s);
            let correct = claims.iter().filter(|&&(d, v)| synth.gold.is_true(d, v)).count();
            let observed = correct as f64 / claims.len() as f64;
            assert!(
                (observed - planted).abs() < 0.2,
                "source {s}: observed accuracy {observed} too far from planted {planted}"
            );
        }
    }

    #[test]
    fn copiers_share_most_of_the_originals_claims() {
        let mut config = SynthConfig::small(13);
        config.copying =
            CopyingConfig { num_groups: 1, min_copiers: 2, max_copiers: 2, selectivity: 0.9 };
        let synth = generate("copy", &config);
        assert_eq!(synth.gold.copies.len(), 2);
        for copy in &synth.gold.copies {
            let shared_values = synth.dataset.shared_value_count(copy.copier, copy.original);
            let original_coverage = synth.dataset.coverage(copy.original);
            let overlap = shared_values as f64 / original_coverage as f64;
            assert!(
                overlap > 0.5,
                "copier {} shares only {overlap:.2} of original {}'s claims",
                copy.copier,
                copy.original
            );
        }
        // Copier groups are disjoint by construction.
        let pairs = synth.gold.copying_pairs();
        assert_eq!(pairs.len(), synth.gold.copies.len());
    }

    #[test]
    fn no_copying_config_plants_nothing() {
        let mut config = SynthConfig::small(17);
        config.copying = CopyingConfig::none();
        let synth = generate("nocopy", &config);
        assert!(synth.gold.copies.is_empty());
    }
}
