//! Ground truth attached to synthetic datasets.

use copydet_model::{Dataset, ItemId, SourceId, SourcePair, ValueId};
use std::collections::{HashMap, HashSet};

/// One planted copying relationship, with direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlantedCopy {
    /// The copying source.
    pub copier: SourceId,
    /// The source being copied from.
    pub original: SourceId,
}

impl PlantedCopy {
    /// The undirected pair (the granularity at which detection quality is
    /// measured).
    pub fn pair(&self) -> SourcePair {
        SourcePair::new(self.copier, self.original)
    }
}

/// The exact ground truth of a synthetic dataset.
#[derive(Debug, Clone)]
pub struct GoldStandard {
    /// The true value of every item.
    pub true_values: HashMap<ItemId, ValueId>,
    /// Every planted copying relationship.
    pub copies: Vec<PlantedCopy>,
    /// The accuracy each source was generated with (its probability of
    /// providing the true value when answering independently).
    pub planted_accuracies: Vec<f64>,
}

impl GoldStandard {
    /// The set of undirected pairs with a planted copying relationship.
    pub fn copying_pairs(&self) -> HashSet<SourcePair> {
        self.copies.iter().map(PlantedCopy::pair).collect()
    }

    /// Returns `true` if the value is the true value of the item.
    pub fn is_true(&self, item: ItemId, value: ValueId) -> bool {
        self.true_values.get(&item) == Some(&value)
    }

    /// Fraction of `truths` (item → chosen value) that match the gold
    /// standard, evaluated over the provided subset of items (or every gold
    /// item when `items` is `None`).
    pub fn fusion_accuracy(
        &self,
        truths: &HashMap<ItemId, ValueId>,
        items: Option<&[ItemId]>,
    ) -> f64 {
        let evaluate: Vec<ItemId> = match items {
            Some(items) => items.to_vec(),
            None => self.true_values.keys().copied().collect(),
        };
        if evaluate.is_empty() {
            return 0.0;
        }
        let correct = evaluate
            .iter()
            .filter(|item| {
                truths.get(item).copied() == self.true_values.get(item).copied()
                    && truths.contains_key(item)
            })
            .count();
        correct as f64 / evaluate.len() as f64
    }
}

/// A synthetic dataset together with its ground truth.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// The generated claims.
    pub dataset: Dataset,
    /// The ground truth.
    pub gold: GoldStandard,
    /// A human-readable name for reports ("book-cs", "stock-1day", …).
    pub name: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planted_copy_pair_is_undirected() {
        let c = PlantedCopy { copier: SourceId::new(3), original: SourceId::new(1) };
        assert_eq!(c.pair(), SourcePair::new(SourceId::new(1), SourceId::new(3)));
    }

    #[test]
    fn fusion_accuracy_counts_matches() {
        let gold = GoldStandard {
            true_values: [(ItemId::new(0), ValueId::new(0)), (ItemId::new(1), ValueId::new(1))]
                .into_iter()
                .collect(),
            copies: vec![],
            planted_accuracies: vec![],
        };
        let mut truths = HashMap::new();
        truths.insert(ItemId::new(0), ValueId::new(0));
        truths.insert(ItemId::new(1), ValueId::new(9));
        assert!((gold.fusion_accuracy(&truths, None) - 0.5).abs() < 1e-12);
        // Restricted to the correctly-answered item only.
        assert!((gold.fusion_accuracy(&truths, Some(&[ItemId::new(0)])) - 1.0).abs() < 1e-12);
        assert_eq!(gold.fusion_accuracy(&truths, Some(&[])), 0.0);
        assert!(gold.is_true(ItemId::new(0), ValueId::new(0)));
        assert!(!gold.is_true(ItemId::new(0), ValueId::new(1)));
    }
}
