//! A small Zipf-like rank sampler used for skewed coverage distributions.

/// Produces rank-based Zipf weights: `weight(rank) = rank^(−exponent)` for
/// ranks `1..=n`, normalized to `[0, 1]` relative to rank 1.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    exponent: f64,
}

impl ZipfSampler {
    /// Creates a sampler with the given exponent (`0` = uniform, larger =
    /// steeper).
    pub fn new(exponent: f64) -> Self {
        assert!(exponent >= 0.0, "Zipf exponent must be non-negative");
        Self { exponent }
    }

    /// Relative weight of the given 1-based rank (rank 1 has weight 1.0).
    pub fn weight(&self, rank: usize) -> f64 {
        assert!(rank >= 1, "ranks are 1-based");
        (rank as f64).powf(-self.exponent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_decrease_with_rank() {
        let z = ZipfSampler::new(1.0);
        assert!((z.weight(1) - 1.0).abs() < 1e-12);
        assert!(z.weight(2) < z.weight(1));
        assert!(z.weight(100) < z.weight(10));
        assert!((z.weight(2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = ZipfSampler::new(0.0);
        assert!((z.weight(1) - z.weight(50)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn rank_zero_rejected() {
        let _ = ZipfSampler::new(1.0).weight(0);
    }
}
