//! # copydet-synth
//!
//! Synthetic structured-data workloads with planted copying and exact gold
//! standards.
//!
//! The paper evaluates on four crawled datasets (Book-CS, Book-full,
//! Stock-1day, Stock-2wk) that are not redistributable; what the detection
//! algorithms are sensitive to, however, is only the datasets' *shape*: the
//! number of sources and items, the per-source coverage distribution (many
//! low-coverage book stores vs few high-coverage stock feeds), the conflict
//! fan-out per item, the per-source error rates, and the amount and
//! selectivity of copying. This crate generates datasets with a controlled
//! version of exactly those properties (see DESIGN.md §4 for the
//! substitution argument), plus the ground truth the crawled datasets lack:
//!
//! * the true value of every item,
//! * the planted copying relationships (with direction), and
//! * every source's planted accuracy.
//!
//! [`presets`] mirrors the published statistics of the paper's four datasets
//! (Table V / Section VI-A) at configurable scale factors.

#![forbid(unsafe_code)]
#![deny(unused_must_use)]
#![warn(missing_docs)]

mod config;
mod generator;
mod gold;
pub mod presets;
mod zipf;

pub use config::{AccuracyModel, CopyingConfig, CoverageModel, SynthConfig};
pub use generator::generate;
pub use gold::{GoldStandard, PlantedCopy, SyntheticDataset};
pub use zipf::ZipfSampler;
