//! Presets mirroring the shape of the paper's four evaluation datasets
//! (Table V and Section VI-A), at configurable scale.
//!
//! | Preset | Paper dataset | Sources | Items | Shape |
//! |--------|---------------|---------|-------|-------|
//! | [`book_cs`] | Book-CS | 894 | 2,528 | many sources, Zipf coverage (≈85% of sources cover ≤1% of items), ~5.9 conflicting values per item |
//! | [`book_full`] | Book-full | 3,182 | 147,431 | like Book-CS but much larger and sparser (~1.1 conflicting values per item) |
//! | [`stock_1day`] | Stock-1day | 55 | 16,000 | few sources, dense coverage (≈80% of sources cover more than half of the items), ~6.5 conflicting values per item |
//! | [`stock_2wk`] | Stock-2wk | 55 | 160,000 | Stock-1day over ten trading days |
//!
//! The `scale` argument shrinks the *item* dimension (and, for the Book
//! presets, the source dimension) so experiments stay laptop-sized; the
//! structural properties the algorithms are sensitive to are preserved at
//! any scale. `scale = 1.0` reproduces the paper's published sizes.

use crate::config::{AccuracyModel, CopyingConfig, CoverageModel, SynthConfig};
use crate::generator::generate;
use crate::gold::SyntheticDataset;

fn scaled(value: usize, scale: f64, min: usize) -> usize {
    ((value as f64 * scale).round() as usize).max(min)
}

/// The Book-CS-like preset: 894 sources × 2,528 items at full scale.
pub fn book_cs(scale: f64, seed: u64) -> SyntheticDataset {
    let config = SynthConfig {
        num_sources: scaled(894, scale, 30),
        num_items: scaled(2528, scale, 60),
        n_false_values: 25,
        coverage: CoverageModel::Zipf { max_fraction: 0.8, exponent: 1.1, min_items: 3 },
        accuracy: AccuracyModel::Uniform { min: 0.35, max: 0.95 },
        copying: CopyingConfig {
            num_groups: scaled(30, scale, 3),
            min_copiers: 1,
            max_copiers: 3,
            selectivity: 0.75,
        },
        seed,
    };
    generate("book-cs", &config)
}

/// The Book-full-like preset: 3,182 sources × 147,431 items at full scale.
pub fn book_full(scale: f64, seed: u64) -> SyntheticDataset {
    let config = SynthConfig {
        num_sources: scaled(3182, scale, 60),
        num_items: scaled(147_431, scale, 300),
        n_false_values: 20,
        coverage: CoverageModel::Zipf { max_fraction: 0.5, exponent: 1.25, min_items: 3 },
        accuracy: AccuracyModel::Uniform { min: 0.55, max: 0.98 },
        copying: CopyingConfig {
            num_groups: scaled(60, scale, 4),
            min_copiers: 1,
            max_copiers: 4,
            selectivity: 0.7,
        },
        seed,
    };
    generate("book-full", &config)
}

/// The Stock-1day-like preset: 55 sources × 16,000 items at full scale.
///
/// The source dimension is intrinsic to the shape (few, dense feeds) and is
/// not scaled down.
pub fn stock_1day(scale: f64, seed: u64) -> SyntheticDataset {
    let config = SynthConfig {
        num_sources: 55,
        num_items: scaled(16_000, scale, 200),
        n_false_values: 30,
        coverage: CoverageModel::Uniform { min_fraction: 0.45, max_fraction: 0.98 },
        accuracy: AccuracyModel::Uniform { min: 0.45, max: 0.95 },
        copying: CopyingConfig { num_groups: 6, min_copiers: 1, max_copiers: 2, selectivity: 0.85 },
        seed,
    };
    generate("stock-1day", &config)
}

/// The Stock-2wk-like preset: 55 sources × 160,000 items at full scale.
pub fn stock_2wk(scale: f64, seed: u64) -> SyntheticDataset {
    let config = SynthConfig {
        num_sources: 55,
        num_items: scaled(160_000, scale, 400),
        n_false_values: 30,
        coverage: CoverageModel::Uniform { min_fraction: 0.4, max_fraction: 0.95 },
        accuracy: AccuracyModel::Uniform { min: 0.45, max: 0.95 },
        copying: CopyingConfig { num_groups: 6, min_copiers: 1, max_copiers: 2, selectivity: 0.85 },
        seed,
    };
    generate("stock-2wk", &config)
}

/// All four presets at the given per-family scales, in the order the paper
/// lists them (Book-CS, Stock-1day, Book-full, Stock-2wk).
pub fn all_presets(book_scale: f64, stock_scale: f64, seed: u64) -> Vec<SyntheticDataset> {
    vec![
        book_cs(book_scale, seed),
        stock_1day(stock_scale, seed + 1),
        book_full(book_scale, seed + 2),
        stock_2wk(stock_scale, seed + 3),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn book_cs_shape_is_zipf_skewed() {
        let synth = book_cs(0.15, 1);
        let stats = synth.dataset.stats();
        assert_eq!(stats.num_sources, (894.0f64 * 0.15).round() as usize);
        // The defining property: most sources cover very few items.
        assert!(
            stats.frac_sources_low_coverage > 0.5,
            "expected a majority of low-coverage sources, got {}",
            stats.frac_sources_low_coverage
        );
        assert!(stats.num_shared_item_values > 0);
        assert!(!synth.gold.copies.is_empty());
    }

    #[test]
    fn stock_shape_is_dense() {
        let synth = stock_1day(0.02, 2);
        let stats = synth.dataset.stats();
        assert_eq!(stats.num_sources, 55);
        assert!(
            stats.frac_sources_high_coverage > 0.6,
            "expected most sources to cover more than half the items, got {}",
            stats.frac_sources_high_coverage
        );
        // Dense conflict fan-out, in the spirit of 6.5 values per item.
        assert!(stats.avg_values_per_item > 2.0);
    }

    #[test]
    fn stock_2wk_is_larger_than_1day() {
        let day = stock_1day(0.02, 3);
        let wk = stock_2wk(0.02, 3);
        assert!(wk.dataset.num_items() > day.dataset.num_items() * 5);
        assert_eq!(wk.dataset.num_sources(), 55);
    }

    #[test]
    fn book_full_is_sparser_than_book_cs() {
        let cs = book_cs(0.1, 4);
        let full = book_full(0.02, 4);
        let cs_stats = cs.dataset.stats();
        let full_stats = full.dataset.stats();
        assert!(full_stats.avg_values_per_item < cs_stats.avg_values_per_item);
    }

    #[test]
    fn all_presets_returns_four_named_datasets() {
        let presets = all_presets(0.05, 0.01, 9);
        let names: Vec<&str> = presets.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, vec!["book-cs", "stock-1day", "book-full", "stock-2wk"]);
        for p in &presets {
            assert!(p.dataset.num_claims() > 0);
            assert_eq!(p.gold.true_values.len(), p.dataset.num_items());
        }
    }
}
