//! Configuration of the synthetic workload generator.

use serde::{Deserialize, Serialize};

/// How many items each source covers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CoverageModel {
    /// Every source covers an (independently sampled) fraction of the items
    /// drawn uniformly from `[min_fraction, max_fraction]` — the Stock-like
    /// shape where most sources cover more than half of the items.
    Uniform {
        /// Lower bound of the coverage fraction.
        min_fraction: f64,
        /// Upper bound of the coverage fraction.
        max_fraction: f64,
    },
    /// Coverage follows a Zipf-like rank distribution: the `rank`-th source
    /// covers `max_fraction · rank^(−exponent)` of the items (at least
    /// `min_items`) — the Book-like shape where a handful of aggregators
    /// cover a lot and ~85% of sources cover at most 1% of the items.
    Zipf {
        /// Coverage fraction of the highest-ranked source.
        max_fraction: f64,
        /// Zipf exponent (larger ⇒ steeper drop-off).
        exponent: f64,
        /// Minimum number of items every source covers.
        min_items: usize,
    },
}

/// How per-source accuracies are assigned.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AccuracyModel {
    /// Accuracies drawn uniformly from `[min, max]`.
    Uniform {
        /// Lower bound.
        min: f64,
        /// Upper bound.
        max: f64,
    },
    /// A fraction of sources is "good" with one accuracy, the rest "bad"
    /// with another — the shape of the paper's motivating example.
    Bimodal {
        /// Accuracy of good sources.
        good: f64,
        /// Accuracy of bad sources.
        bad: f64,
        /// Fraction of sources that are good.
        fraction_good: f64,
    },
}

/// How copier groups are planted.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CopyingConfig {
    /// Number of copier groups. Each group has one original and one or more
    /// copiers.
    pub num_groups: usize,
    /// Minimum number of copiers per group (excluding the original).
    pub min_copiers: usize,
    /// Maximum number of copiers per group (excluding the original).
    pub max_copiers: usize,
    /// Probability that a copier copies the original's value on an item the
    /// original provides (the model's selectivity `s`).
    pub selectivity: f64,
}

impl CopyingConfig {
    /// No copying at all.
    pub fn none() -> Self {
        Self { num_groups: 0, min_copiers: 0, max_copiers: 0, selectivity: 0.0 }
    }
}

/// Full configuration of a synthetic dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SynthConfig {
    /// Number of sources.
    pub num_sources: usize,
    /// Number of data items.
    pub num_items: usize,
    /// Number of false values in each item's domain.
    pub n_false_values: u32,
    /// Coverage model.
    pub coverage: CoverageModel,
    /// Accuracy model.
    pub accuracy: AccuracyModel,
    /// Copying model.
    pub copying: CopyingConfig,
    /// RNG seed; the generator is fully deterministic for a fixed
    /// configuration.
    pub seed: u64,
}

impl SynthConfig {
    /// A small default configuration useful in tests: 20 sources, 200 items,
    /// mixed accuracies, two copier groups.
    pub fn small(seed: u64) -> Self {
        Self {
            num_sources: 20,
            num_items: 200,
            n_false_values: 20,
            coverage: CoverageModel::Uniform { min_fraction: 0.4, max_fraction: 0.9 },
            accuracy: AccuracyModel::Uniform { min: 0.5, max: 0.95 },
            copying: CopyingConfig {
                num_groups: 2,
                min_copiers: 1,
                max_copiers: 3,
                selectivity: 0.8,
            },
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_config_is_well_formed() {
        let c = SynthConfig::small(1);
        assert_eq!(c.num_sources, 20);
        assert!(c.copying.num_groups > 0);
        assert_eq!(CopyingConfig::none().num_groups, 0);
    }
}
