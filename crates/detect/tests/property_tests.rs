//! Property-based tests across the detection algorithms: decision parity and
//! accounting invariants must hold for arbitrary datasets, not just the
//! motivating example.

use copydet_bayes::{CopyParams, SourceAccuracies, ValueProbabilities};
use copydet_detect::parallel::parallel_index_detection;
use copydet_detect::{
    bound_detection, hybrid_detection, index_detection, pairwise_detection, CopyDetector,
    FaginInputDetector, RoundInput,
};
use copydet_model::{Dataset, DatasetBuilder, SourcePair};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Random claim sets over a small universe so that sharing (and copying-like
/// overlap) is frequent.
fn claims_strategy() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    prop::collection::vec((0u8..8, 0u8..15, 0u8..4), 1..200)
}

fn build(claims: &[(u8, u8, u8)]) -> Dataset {
    let mut b = DatasetBuilder::new();
    for (s, d, v) in claims {
        b.add_claim(&format!("S{s}"), &format!("D{d}"), &format!("v{v}"));
    }
    b.build()
}

fn state_for(ds: &Dataset, seed: u64) -> (SourceAccuracies, ValueProbabilities) {
    // Deterministic pseudo-random accuracies and probabilities derived from
    // the seed, spanning honest and unreliable sources.
    let accs: Vec<f64> = (0..ds.num_sources())
        .map(|i| 0.1 + 0.85 * (((i as u64 * 37 + seed * 13) % 100) as f64 / 100.0))
        .collect();
    let accuracies = SourceAccuracies::from_vec(accs).unwrap();
    let mut probabilities = ValueProbabilities::new(ds.num_items());
    for (k, group) in ds.groups().enumerate() {
        let p = 0.02 + 0.9 * (((k as u64 * 53 + seed * 7) % 100) as f64 / 100.0);
        probabilities.set(group.item, group.value, p).unwrap();
    }
    (accuracies, probabilities)
}

fn copying_set(result: &copydet_detect::DetectionResult) -> BTreeSet<SourcePair> {
    result.copying_pairs().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Proposition 3.5: INDEX produces exactly the same binary decisions as
    /// PAIRWISE, on any dataset and any accuracy/probability state. The
    /// parallel scan and FAGININPUT (whose totals are exact) must agree too.
    #[test]
    fn exact_algorithms_agree_with_pairwise(claims in claims_strategy(), seed in 0u64..500) {
        let ds = build(&claims);
        let (accuracies, probabilities) = state_for(&ds, seed);
        let params = CopyParams::paper_defaults();
        let input = RoundInput::new(&ds, &accuracies, &probabilities, params);

        let expected = copying_set(&pairwise_detection(&input));
        prop_assert_eq!(copying_set(&index_detection(&input)), expected.clone());
        prop_assert_eq!(copying_set(&parallel_index_detection(&input, 3)), expected.clone());
        let mut fagin = FaginInputDetector::new();
        prop_assert_eq!(copying_set(&fagin.detect_round(&input, 1)), expected);
    }

    /// The bounded algorithms may deviate from PAIRWISE only in the direction
    /// the paper allows (decisions are "rarely different"); structurally,
    /// every pair they flag as copying must at least share a value, and their
    /// examined-value counts never exceed INDEX's.
    #[test]
    fn bounded_algorithms_structural_invariants(claims in claims_strategy(), seed in 0u64..500) {
        let ds = build(&claims);
        let (accuracies, probabilities) = state_for(&ds, seed);
        let params = CopyParams::paper_defaults();
        let input = RoundInput::new(&ds, &accuracies, &probabilities, params);
        let index_result = index_detection(&input);

        for result in [
            bound_detection(&input, false),
            bound_detection(&input, true),
            hybrid_detection(&input, 16),
        ] {
            prop_assert!(
                result.shared_values_examined <= index_result.shared_values_examined,
                "{} examined more shared values than INDEX",
                result.algorithm
            );
            for pair in result.copying_pairs() {
                prop_assert!(
                    ds.shared_value_count(pair.first(), pair.second()) > 0,
                    "{} flagged {pair} which shares no value",
                    result.algorithm
                );
            }
            // Every pair INDEX considers strong enough to flag shares values;
            // the bounded variant must have an outcome for it (it cannot
            // silently drop materialized copying pairs).
            for pair in index_result.copying_pairs() {
                prop_assert!(
                    result.outcomes.contains_key(&pair),
                    "{} never materialized the copying pair {pair}",
                    result.algorithm
                );
            }
        }
    }

    /// Computation accounting: INDEX never does more scoring work than
    /// PAIRWISE, and HYBRID never examines more shared values than INDEX.
    #[test]
    fn computation_accounting_is_monotone(claims in claims_strategy(), seed in 0u64..500) {
        let ds = build(&claims);
        let (accuracies, probabilities) = state_for(&ds, seed);
        let params = CopyParams::paper_defaults();
        let input = RoundInput::new(&ds, &accuracies, &probabilities, params);
        let pairwise = pairwise_detection(&input);
        let index = index_detection(&input);
        let hybrid = hybrid_detection(&input, 16);
        prop_assert!(index.counter.score_updates <= pairwise.counter.score_updates);
        prop_assert!(hybrid.shared_values_examined <= index.shared_values_examined);
        // Every algorithm reports at least as many outcomes as copying pairs.
        for r in [&pairwise, &index, &hybrid] {
            prop_assert!(r.num_copying_pairs() <= r.outcomes.len());
            prop_assert!(r.pairs_considered >= r.outcomes.len());
        }
    }
}
