//! Cross-shard detection: per-shard overlap evidence and the merge that
//! turns it into global pairwise decisions.
//!
//! `copydet-serve` hash-partitions **data items** across shards, each an
//! independent claim store with its own dense id space. Because the shards
//! are item-disjoint, a pair of sources' evidence decomposes exactly: every
//! shared item lives in precisely one shard, so the global pairwise scores
//! of Eq. 2 are the fold of the per-shard shared-item observations — no
//! cross-shard interaction terms exist.
//!
//! The merge is **bit-identical** to a single-store PAIRWISE run, not just
//! approximately equal, because floating-point accumulation is
//! order-sensitive and the fold is careful about order:
//!
//! 1. each shard reports *observations* (shared item + the value-agreement
//!    probability), not partial score sums, with ids already translated to
//!    the global id space via a [`ShardIdMap`];
//! 2. [`merge_shard_rounds`] sorts each pair's observations by global item
//!    id and folds them in that order — exactly the order in which
//!    `ScoringContext::score_pair` walks a single store's claim lists.
//!
//! The remaining input, the per-value truth probability, is order-sensitive
//! too (the vote normalizes over an item's value groups in sequence); shard
//! drivers obtain bit-identical probabilities by voting each item's groups
//! in global value-id order via
//! `copydet_fusion::vote_group_probabilities` — see `copydet-serve`.

use crate::api::RoundInput;
use crate::result::{DetectionResult, PairOutcome};
use copydet_bayes::{CopyDecision, CopyParams, PairEvidence, SourceAccuracies};
use copydet_index::SharedItemCounts;
use copydet_model::codec::usize_to_u64;
use copydet_model::{ItemId, SourceId, SourcePair};
use std::collections::HashMap;
use std::time::Instant;

/// Translation from one shard's dense ids to the global id space.
///
/// Index `i` holds the global id of the shard's local id `i`. The maps are
/// built by the shard router, which interns every name globally in arrival
/// order, so a fresh store fed the same claim stream assigns the same ids.
#[derive(Debug, Clone, Default)]
pub struct ShardIdMap {
    /// Global source id of each local source id.
    pub sources: Vec<SourceId>,
    /// Global item id of each local item id.
    pub items: Vec<ItemId>,
}

/// One shared data item observed for a pair of sources, in global ids.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SharedItemObservation {
    /// The shared item (global id).
    pub item: ItemId,
    /// `Some(p)` when both sources provide the same value for the item,
    /// where `p` is that value's truth probability; `None` when their
    /// values differ.
    pub same_value_probability: Option<f64>,
}

/// The overlap evidence one shard contributes to a detection round: for
/// every pair of sources that shares at least one item *within the shard*,
/// the per-item observations, keyed by the **global** source pair.
#[derive(Debug, Clone, Default)]
pub struct ShardRoundEvidence {
    /// Per-pair shared-item observations (ascending global item id, since a
    /// shard's local item order is the global order restricted to it).
    pub pairs: HashMap<SourcePair, Vec<SharedItemObservation>>,
}

impl ShardRoundEvidence {
    /// Total number of shared-item observations across all pairs.
    pub fn num_observations(&self) -> usize {
        self.pairs.values().map(Vec::len).sum()
    }
}

/// Collects one shard's overlap evidence for a detection round.
///
/// Candidate pairs come from the shard's incrementally-maintained
/// [`SharedItemCounts`] — only pairs that actually share an item in this
/// shard are visited, so the scan is `O(Σ pair overlaps)`, not
/// `O(|S_shard|²)`. For each candidate pair the two claim lists are merged
/// (the same walk as `ScoringContext::score_pair`) and every shared item
/// becomes a [`SharedItemObservation`] carrying the truth probability of the
/// agreed value, translated to global ids via `map`.
///
/// # Panics
/// Panics if `counts` disagrees with the snapshot in `input` (a listed pair
/// must share the counted number of items) — the caller must capture both
/// under one store lock — or if `map` does not cover the snapshot's ids.
pub fn collect_shard_evidence(
    input: &RoundInput<'_>,
    counts: &SharedItemCounts,
    map: &ShardIdMap,
) -> ShardRoundEvidence {
    let mut evidence = ShardRoundEvidence::default();
    for (pair, count) in counts.iter_nonzero() {
        let (l1, l2) = (pair.first(), pair.second());
        let claims1 = input.dataset.claims_of(l1);
        let claims2 = input.dataset.claims_of(l2);
        let mut observations = Vec::with_capacity(count as usize);
        let (mut i, mut j) = (0, 0);
        while i < claims1.len() && j < claims2.len() {
            let (d1, v1) = claims1[i];
            let (d2, v2) = claims2[j];
            match d1.cmp(&d2) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let same_value_probability =
                        (v1 == v2).then(|| input.probabilities.get(d1, v1));
                    observations.push(SharedItemObservation {
                        item: map.items[d1.index()],
                        same_value_probability,
                    });
                    i += 1;
                    j += 1;
                }
            }
        }
        assert_eq!(
            observations.len(),
            count as usize,
            "shared-item counts disagree with the snapshot for local pair {pair}: counts and \
             snapshot must be captured under one store lock"
        );
        let global = SourcePair::new(map.sources[l1.index()], map.sources[l2.index()]);
        evidence.pairs.insert(global, observations);
    }
    evidence
}

/// Merges per-shard overlap evidence into global pairwise decisions.
///
/// For every pair, the observations of all shards are concatenated, sorted
/// by global item id (shards are item-disjoint, so there are no duplicates)
/// and folded into a [`PairEvidence`] in that order — the identical sequence
/// of floating-point operations a single-store `score_pair` walk performs —
/// then the posterior of Eq. 2 decides. `accuracies` are the **global**
/// source accuracies; the computation counters use the same accounting as
/// PAIRWISE (two directional score updates per shared item, one posterior
/// per materialized pair).
pub fn merge_shard_rounds(
    rounds: Vec<ShardRoundEvidence>,
    accuracies: &SourceAccuracies,
    params: CopyParams,
) -> DetectionResult {
    merge_shard_rounds_timed(rounds, accuracies, params).0
}

/// Wall-time decomposition of one [`merge_shard_rounds_timed`] call.
///
/// The three phase durations partition the merge's own work: gathering
/// per-shard evidence into one per-pair map (`collect`), the per-pair
/// sort-and-fold of observations into a [`PairEvidence`] (`fold`), and the
/// per-pair posterior plus decision (`vote`). The fold/vote split is
/// measured with one extra clock read per pair, so for very small pairs the
/// split is clock-granularity coarse even though the sum stays accurate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeTimings {
    /// Nanoseconds spent concatenating shard evidence into the per-pair map.
    pub collect_nanos: u64,
    /// Nanoseconds spent sorting and folding observations, across all pairs.
    pub fold_nanos: u64,
    /// Nanoseconds spent on posteriors and decisions, across all pairs.
    pub vote_nanos: u64,
    /// Number of source pairs the merge materialized.
    pub pairs: u64,
}

impl MergeTimings {
    /// Sum of the three phase durations (saturating).
    pub fn total_nanos(&self) -> u64 {
        self.collect_nanos.saturating_add(self.fold_nanos).saturating_add(self.vote_nanos)
    }
}

fn nanos_of(duration: std::time::Duration) -> u64 {
    u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX)
}

/// [`merge_shard_rounds`] plus a wall-time breakdown of its phases.
///
/// The returned [`DetectionResult`] is bit-identical to what
/// [`merge_shard_rounds`] produces (that function is a thin wrapper over
/// this one); the [`MergeTimings`] feed round traces and the serving
/// benchmark's merge breakdown.
pub fn merge_shard_rounds_timed(
    rounds: Vec<ShardRoundEvidence>,
    accuracies: &SourceAccuracies,
    params: CopyParams,
) -> (DetectionResult, MergeTimings) {
    let start = Instant::now();
    let mut result = DetectionResult::new("SHARDED");
    let mut timings = MergeTimings::default();
    let mut merged: HashMap<SourcePair, Vec<SharedItemObservation>> = HashMap::new();
    for round in rounds {
        for (pair, mut observations) in round.pairs {
            merged.entry(pair).or_default().append(&mut observations);
        }
    }
    timings.collect_nanos = nanos_of(start.elapsed());
    timings.pairs = usize_to_u64(merged.len());
    for (pair, mut observations) in merged {
        let fold_start = Instant::now();
        observations.sort_by_key(|o| o.item);
        debug_assert!(
            observations.windows(2).all(|w| w[0].item < w[1].item),
            "shards must be item-disjoint"
        );
        let a_first = accuracies.get(pair.first());
        let a_second = accuracies.get(pair.second());
        let mut evidence = PairEvidence::empty();
        for observation in &observations {
            match observation.same_value_probability {
                Some(p) => evidence.add_same_value(p, a_first, a_second, &params),
                None => evidence.add_different_value(&params),
            }
        }
        result.counter.score_updates += 2 * evidence.shared_items() as u64;
        result.shared_values_examined += evidence.shared_values as u64;
        let vote_start = Instant::now();
        timings.fold_nanos = timings.fold_nanos.saturating_add(nanos_of(vote_start - fold_start));
        let posterior = evidence.posterior_independence(&params);
        result.counter.pair_finalizations += 1;
        result.pairs_considered += 1;
        result.outcomes.insert(
            pair,
            PairOutcome {
                decision: CopyDecision::from_posterior(posterior),
                posterior: Some(posterior),
                c_to: evidence.c_to,
                c_from: evidence.c_from,
            },
        );
        timings.vote_nanos = timings.vote_nanos.saturating_add(nanos_of(vote_start.elapsed()));
    }
    result.detection_time = start.elapsed();
    (result, timings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairwise::pairwise_detection;
    use copydet_bayes::ValueProbabilities;
    use copydet_model::{Dataset, DatasetBuilder};

    const CLAIMS: &[(&str, &str, &str)] = &[
        ("S0", "D0", "x"),
        ("S1", "D0", "x"),
        ("S2", "D0", "y"),
        ("S0", "D1", "a"),
        ("S1", "D1", "a"),
        ("S0", "D2", "q"),
        ("S1", "D2", "r"),
        ("S2", "D3", "z"),
        ("S0", "D3", "z"),
    ];

    fn dataset(claims: &[(&str, &str, &str)]) -> Dataset {
        let mut b = DatasetBuilder::new();
        for (s, d, v) in claims {
            b.add_claim(s, d, v);
        }
        b.build()
    }

    /// Splitting the items of a dataset into shards (each rebuilt from its
    /// own claim subsequence, with shard-local ids) and merging reproduces
    /// the PAIRWISE baseline bit for bit.
    #[test]
    fn two_item_shards_merge_to_the_pairwise_baseline() {
        let global = dataset(CLAIMS);
        let params = CopyParams::paper_defaults();
        let accuracies = SourceAccuracies::uniform(global.num_sources(), 0.8).unwrap();
        let probabilities = ValueProbabilities::uniform_over_dataset(&global, 0.4).unwrap();
        let baseline =
            pairwise_detection(&RoundInput::new(&global, &accuracies, &probabilities, params));

        // Partition items by parity of their id.
        let mut rounds = Vec::new();
        for parity in 0..2u32 {
            let shard_claims: Vec<_> = CLAIMS
                .iter()
                .filter(|(_, d, _)| global.item_by_name(d).unwrap().raw() % 2 == parity)
                .copied()
                .collect();
            let shard = dataset(&shard_claims);
            let map = ShardIdMap {
                sources: shard
                    .sources()
                    .map(|s| global.source_by_name(shard.source_name(s)).unwrap())
                    .collect(),
                items: shard
                    .items()
                    .map(|d| global.item_by_name(shard.item_name(d)).unwrap())
                    .collect(),
            };
            // Shard-local probabilities: look the uniform default up through
            // the global table so the values agree bitwise.
            let shard_probs = ValueProbabilities::uniform_over_dataset(&shard, 0.4).unwrap();
            let shard_accs = SourceAccuracies::uniform(shard.num_sources(), 0.8).unwrap();
            let counts = SharedItemCounts::build(&shard);
            let input = RoundInput::new(&shard, &shard_accs, &shard_probs, params);
            rounds.push(collect_shard_evidence(&input, &counts, &map));
        }

        let merged = merge_shard_rounds(rounds, &accuracies, params);
        assert_eq!(merged.algorithm, "SHARDED");
        assert_eq!(merged.outcomes.len(), baseline.outcomes.len());
        for (pair, expected) in &baseline.outcomes {
            let got = merged.outcomes.get(pair).expect("pair must be materialized");
            assert_eq!(got, expected, "pair {pair} diverged from PAIRWISE");
        }
        assert_eq!(merged.counter.score_updates, baseline.counter.score_updates);
        assert_eq!(merged.counter.pair_finalizations, baseline.counter.pair_finalizations);
        assert_eq!(merged.shared_values_examined, baseline.shared_values_examined);
    }

    /// A single shard covering everything degenerates to PAIRWISE exactly.
    #[test]
    fn single_shard_is_pairwise() {
        let global = dataset(CLAIMS);
        let params = CopyParams::paper_defaults();
        let accuracies = SourceAccuracies::uniform(global.num_sources(), 0.8).unwrap();
        let probabilities = ValueProbabilities::uniform_over_dataset(&global, 0.4).unwrap();
        let input = RoundInput::new(&global, &accuracies, &probabilities, params);
        let baseline = pairwise_detection(&input);
        let map =
            ShardIdMap { sources: global.sources().collect(), items: global.items().collect() };
        let counts = SharedItemCounts::build(&global);
        let evidence = collect_shard_evidence(&input, &counts, &map);
        let merged = merge_shard_rounds(vec![evidence], &accuracies, params);
        assert_eq!(merged.outcomes, baseline.outcomes);
    }

    /// The timed merge returns the same outcomes and accounts every pair in
    /// its timing breakdown.
    #[test]
    fn timed_merge_matches_and_counts_pairs() {
        let global = dataset(CLAIMS);
        let params = CopyParams::paper_defaults();
        let accuracies = SourceAccuracies::uniform(global.num_sources(), 0.8).unwrap();
        let probabilities = ValueProbabilities::uniform_over_dataset(&global, 0.4).unwrap();
        let input = RoundInput::new(&global, &accuracies, &probabilities, params);
        let map =
            ShardIdMap { sources: global.sources().collect(), items: global.items().collect() };
        let counts = SharedItemCounts::build(&global);
        let evidence = collect_shard_evidence(&input, &counts, &map);
        let baseline = merge_shard_rounds(vec![evidence.clone()], &accuracies, params);
        let (timed, timings) = merge_shard_rounds_timed(vec![evidence], &accuracies, params);
        assert_eq!(timed.outcomes, baseline.outcomes);
        assert_eq!(timings.pairs, usize_to_u64(baseline.pairs_considered));
        assert!(timings.total_nanos() >= timings.fold_nanos);
    }

    #[test]
    fn empty_rounds_merge_to_an_empty_result() {
        let accuracies = SourceAccuracies::uniform(3, 0.8).unwrap();
        let merged = merge_shard_rounds(
            vec![ShardRoundEvidence::default()],
            &accuracies,
            CopyParams::paper_defaults(),
        );
        assert!(merged.outcomes.is_empty());
        assert_eq!(merged.pairs_considered, 0);
    }
}
