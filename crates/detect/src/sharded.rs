//! Cross-shard detection: per-shard overlap evidence and the merge that
//! turns it into global pairwise decisions.
//!
//! `copydet-serve` hash-partitions **data items** across shards, each an
//! independent claim store with its own dense id space. Because the shards
//! are item-disjoint, a pair of sources' evidence decomposes exactly: every
//! shared item lives in precisely one shard, so the global pairwise scores
//! of Eq. 2 are the fold of the per-shard shared-item observations — no
//! cross-shard interaction terms exist.
//!
//! The merge is **bit-identical** to a single-store PAIRWISE run, not just
//! approximately equal, because floating-point accumulation is
//! order-sensitive and the fold is careful about order:
//!
//! 1. each shard reports *observations* (shared item + the value-agreement
//!    probability), not partial score sums, with ids already translated to
//!    the global id space via a [`ShardIdMap`]; a shard's per-pair
//!    observation list is already **sorted by global item id** (a shard's
//!    local item order is the global order restricted to it);
//! 2. [`merge_shard_rounds_parallel`] stream-folds each pair's sorted
//!    per-shard runs in ascending global item id — exactly the order in
//!    which `ScoringContext::score_pair` walks a single store's claim
//!    lists — without ever concatenating and re-sorting them.
//!
//! Source pairs are independent of each other, so the per-pair folds are
//! embarrassingly parallel: pairs are partitioned **deterministically** (a
//! stable FNV-1a hash of the global pair ids) across `parallelism` workers
//! in a [`std::thread::scope`]. Every worker performs the identical
//! per-pair float sequence the sequential merge performs, and the partial
//! results combine through order-insensitive operations only (disjoint
//! outcome maps, exact integer counter sums) — which is why the parallel
//! merge is bit-identical to the sequential one for every thread count
//! (property-tested in `copydet-serve`'s `shard_equivalence` suite).
//!
//! Pairs whose merged evidence is empty are **pruned** before a
//! [`PairEvidence`] is materialized (they cannot arise from
//! [`collect_shard_evidence`], which only visits pairs the shard counts say
//! share an item, but hand-assembled evidence can carry them).
//!
//! The remaining input, the per-value truth probability, is order-sensitive
//! too (the vote normalizes over an item's value groups in sequence); shard
//! drivers obtain bit-identical probabilities by voting each item's groups
//! in global value-id order via
//! `copydet_fusion::vote_group_probabilities` — see `copydet-serve`.

use crate::api::RoundInput;
use crate::error::DetectError;
use crate::result::{DetectionResult, PairOutcome};
use copydet_bayes::{CopyDecision, CopyParams, PairEvidence, SourceAccuracies};
use copydet_index::SharedItemCounts;
use copydet_model::codec::{u32_to_usize, usize_to_u64};
use copydet_model::{ItemId, SourceId, SourcePair};
use std::collections::HashMap;
use std::time::Instant;

/// Hard cap on merge workers: partitioning 2 000-odd pairs over more
/// threads than this only buys scheduler overhead.
const MAX_MERGE_PARALLELISM: usize = 64;

/// Translation from one shard's dense ids to the global id space.
///
/// Index `i` holds the global id of the shard's local id `i`. The maps are
/// built by the shard router, which interns every name globally in arrival
/// order, so a fresh store fed the same claim stream assigns the same ids.
#[derive(Debug, Clone, Default)]
pub struct ShardIdMap {
    /// Global source id of each local source id.
    pub sources: Vec<SourceId>,
    /// Global item id of each local item id.
    pub items: Vec<ItemId>,
}

/// One shared data item observed for a pair of sources, in global ids.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SharedItemObservation {
    /// The shared item (global id).
    pub item: ItemId,
    /// `Some(p)` when both sources provide the same value for the item,
    /// where `p` is that value's truth probability; `None` when their
    /// values differ.
    pub same_value_probability: Option<f64>,
}

/// The overlap evidence one shard contributes to a detection round: for
/// every pair of sources that shares at least one item *within the shard*,
/// the per-item observations, keyed by the **global** source pair.
#[derive(Debug, Clone, Default)]
pub struct ShardRoundEvidence {
    /// Per-pair shared-item observations (ascending global item id, since a
    /// shard's local item order is the global order restricted to it).
    pub pairs: HashMap<SourcePair, Vec<SharedItemObservation>>,
}

impl ShardRoundEvidence {
    /// Total number of shared-item observations across all pairs.
    pub fn num_observations(&self) -> usize {
        self.pairs.values().map(Vec::len).sum()
    }
}

/// Collects one shard's overlap evidence for a detection round.
///
/// Candidate pairs come from the shard's incrementally-maintained
/// [`SharedItemCounts`] — only pairs that actually share an item in this
/// shard are visited, so the scan is `O(Σ pair overlaps)`, not
/// `O(|S_shard|²)`. For each candidate pair the two claim lists are merged
/// (the same walk as `ScoringContext::score_pair`) and every shared item
/// becomes a [`SharedItemObservation`] carrying the truth probability of the
/// agreed value, translated to global ids via `map`.
///
/// # Errors
/// [`DetectError::ShardEvidenceMismatch`] if `counts` disagrees with the
/// snapshot in `input` (a listed pair must share exactly the counted number
/// of items). The two are only consistent when captured together under one
/// store lock; on the serving path a mismatch is a recoverable request
/// failure, not a dead round thread.
///
/// # Panics
/// Panics if `map` does not cover the snapshot's ids.
pub fn collect_shard_evidence(
    input: &RoundInput<'_>,
    counts: &SharedItemCounts,
    map: &ShardIdMap,
) -> Result<ShardRoundEvidence, DetectError> {
    let mut evidence = ShardRoundEvidence::default();
    for (pair, count) in counts.iter_nonzero() {
        let (l1, l2) = (pair.first(), pair.second());
        let claims1 = input.dataset.claims_of(l1);
        let claims2 = input.dataset.claims_of(l2);
        let mut observations = Vec::with_capacity(u32_to_usize(count));
        let (mut i, mut j) = (0, 0);
        while i < claims1.len() && j < claims2.len() {
            let (d1, v1) = claims1[i];
            let (d2, v2) = claims2[j];
            match d1.cmp(&d2) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let same_value_probability =
                        (v1 == v2).then(|| input.probabilities.get(d1, v1));
                    observations.push(SharedItemObservation {
                        item: map.items[d1.index()],
                        same_value_probability,
                    });
                    i += 1;
                    j += 1;
                }
            }
        }
        let global = SourcePair::new(map.sources[l1.index()], map.sources[l2.index()]);
        if observations.len() != u32_to_usize(count) {
            return Err(DetectError::ShardEvidenceMismatch {
                pair: global,
                counted: u32_to_usize(count),
                observed: observations.len(),
            });
        }
        evidence.pairs.insert(global, observations);
    }
    Ok(evidence)
}

/// Merges per-shard overlap evidence into global pairwise decisions,
/// sequentially (one merge worker).
///
/// For every pair, the sorted observation runs of all shards are
/// stream-folded in ascending global item id (shards are item-disjoint, so
/// there are no duplicates) into a [`PairEvidence`] — the identical
/// sequence of floating-point operations a single-store `score_pair` walk
/// performs — then the posterior of Eq. 2 decides. `accuracies` are the
/// **global** source accuracies; the computation counters use the same
/// accounting as PAIRWISE (two directional score updates per shared item,
/// one posterior per materialized pair). Pairs with no observations at all
/// are pruned without materializing evidence.
pub fn merge_shard_rounds(
    rounds: Vec<ShardRoundEvidence>,
    accuracies: &SourceAccuracies,
    params: CopyParams,
) -> DetectionResult {
    merge_shard_rounds_timed(rounds, accuracies, params).0
}

/// Wall-time decomposition of one cross-shard merge.
///
/// The three phase durations partition the merge's own work: partitioning
/// per-shard evidence runs into per-pair (and, when parallel, per-worker)
/// buckets (`collect`), the per-pair stream-fold of sorted observation runs
/// into a [`PairEvidence`] (`fold`), and the per-pair posterior plus
/// decision (`vote`). With more than one merge worker, `fold_nanos` and
/// `vote_nanos` are **summed across workers** (CPU time, not wall time);
/// the per-worker wall times live in the [`MergeWorkerReport`]s. The
/// fold/vote split is measured with one extra clock read per pair, so for
/// very small pairs the split is clock-granularity coarse even though the
/// sum stays accurate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeTimings {
    /// Nanoseconds spent partitioning shard evidence into per-pair buckets.
    pub collect_nanos: u64,
    /// Nanoseconds spent stream-folding observation runs, summed across all
    /// pairs and workers.
    pub fold_nanos: u64,
    /// Nanoseconds spent on posteriors and decisions, summed across all
    /// pairs and workers.
    pub vote_nanos: u64,
    /// Number of source pairs the merge materialized.
    pub pairs: u64,
    /// Number of source pairs skipped because their merged evidence was
    /// empty (no [`PairEvidence`] was materialized for them).
    pub pruned_pairs: u64,
}

impl MergeTimings {
    /// Sum of the three phase durations (saturating).
    pub fn total_nanos(&self) -> u64 {
        self.collect_nanos.saturating_add(self.fold_nanos).saturating_add(self.vote_nanos)
    }
}

/// One merge worker's share of a parallel cross-shard merge, for round
/// traces and benchmarks. Workers are reported in partition-index order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeWorkerReport {
    /// Source pairs this worker materialized.
    pub pairs: u64,
    /// Source pairs this worker pruned (empty merged evidence).
    pub pruned_pairs: u64,
    /// Nanoseconds this worker spent stream-folding observation runs.
    pub fold_nanos: u64,
    /// Nanoseconds this worker spent on posteriors and decisions.
    pub vote_nanos: u64,
    /// Wall-clock nanoseconds of the worker's whole fold+vote pass.
    pub wall_nanos: u64,
}

fn nanos_of(duration: std::time::Duration) -> u64 {
    u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX)
}

/// Stable partition of a global source pair onto one of `workers` merge
/// workers: FNV-1a over the two dense ids, so the assignment is identical
/// across runs, processes and architectures (it feeds deterministic
/// per-worker accounting, not just load balancing).
fn pair_partition(pair: SourcePair, workers: usize) -> usize {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for index in [pair.first().index(), pair.second().index()] {
        for byte in usize_to_u64(index).to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    // `workers` is clamped to [1, MAX_MERGE_PARALLELISM]; the modulus fits
    // usize on every supported target.
    usize::try_from(hash % usize_to_u64(workers)).unwrap_or(0)
}

/// The sorted per-shard observation runs of one pair, in shard order.
pub type PairRuns = Vec<Vec<SharedItemObservation>>;

/// Folds one observation into the pair's evidence.
#[inline]
fn fold_observation(
    evidence: &mut PairEvidence,
    observation: &SharedItemObservation,
    a_first: f64,
    a_second: f64,
    params: &CopyParams,
) {
    match observation.same_value_probability {
        Some(p) => evidence.add_same_value(p, a_first, a_second, params),
        None => evidence.add_different_value(params),
    }
}

/// Merges two item-sorted runs into one (shards are item-disjoint, so no
/// key ever ties).
fn merge_two_runs(
    a: Vec<SharedItemObservation>,
    b: Vec<SharedItemObservation>,
) -> Vec<SharedItemObservation> {
    let mut merged = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        debug_assert!(a[i].item != b[j].item, "shards must be item-disjoint");
        if a[i].item < b[j].item {
            merged.push(a[i]);
            i += 1;
        } else {
            merged.push(b[j]);
            j += 1;
        }
    }
    merged.extend_from_slice(&a[i..]);
    merged.extend_from_slice(&b[j..]);
    merged
}

/// Stream-folds a pair's sorted runs in ascending global item id without
/// concatenating and re-sorting them: more than two runs are first reduced
/// pairwise (the merged sequence is the unique sorted order, so the
/// reduction strategy cannot change the fold order), then the final one or
/// two runs fold directly.
///
/// Public because the top-k serving path ([`crate::topk`] plus the serve
/// crate's per-pair evaluator) must fold a single pair's runs through the
/// *identical* float sequence as the full-round merge — bit-identity with
/// `detect_round` is the correctness bar there.
pub fn fold_pair_runs(
    mut runs: PairRuns,
    a_first: f64,
    a_second: f64,
    params: &CopyParams,
) -> PairEvidence {
    while runs.len() > 2 {
        let mut reduced = Vec::with_capacity(runs.len().div_ceil(2));
        let mut iter = runs.into_iter();
        while let Some(a) = iter.next() {
            match iter.next() {
                Some(b) => reduced.push(merge_two_runs(a, b)),
                None => reduced.push(a),
            }
        }
        runs = reduced;
    }
    let mut evidence = PairEvidence::empty();
    match runs.len() {
        0 => {}
        1 => {
            for observation in &runs[0] {
                fold_observation(&mut evidence, observation, a_first, a_second, params);
            }
        }
        _ => {
            let (a, b) = (&runs[0], &runs[1]);
            let (mut i, mut j) = (0, 0);
            while i < a.len() && j < b.len() {
                debug_assert!(a[i].item != b[j].item, "shards must be item-disjoint");
                if a[i].item < b[j].item {
                    fold_observation(&mut evidence, &a[i], a_first, a_second, params);
                    i += 1;
                } else {
                    fold_observation(&mut evidence, &b[j], a_first, a_second, params);
                    j += 1;
                }
            }
            for observation in &a[i..] {
                fold_observation(&mut evidence, observation, a_first, a_second, params);
            }
            for observation in &b[j..] {
                fold_observation(&mut evidence, observation, a_first, a_second, params);
            }
        }
    }
    evidence
}

/// One worker's partial merge result: per-pair outcomes plus exact counter
/// contributions, combined by the caller through order-insensitive
/// operations only (disjoint map union, integer sums).
#[derive(Debug, Default)]
struct MergePartial {
    outcomes: Vec<(SourcePair, PairOutcome)>,
    score_updates: u64,
    shared_values: u64,
    pruned_pairs: u64,
    fold_nanos: u64,
    vote_nanos: u64,
    wall_nanos: u64,
}

/// Folds every pair of one worker's bucket. The identical per-pair float
/// sequence as the sequential merge; only the set of pairs differs.
fn fold_bucket(
    bucket: HashMap<SourcePair, PairRuns>,
    accuracies: &SourceAccuracies,
    params: &CopyParams,
) -> MergePartial {
    let wall_start = Instant::now();
    let mut partial =
        MergePartial { outcomes: Vec::with_capacity(bucket.len()), ..Default::default() };
    for (pair, runs) in bucket {
        if runs.is_empty() {
            // Every run was empty: prune before materializing evidence.
            partial.pruned_pairs += 1;
            continue;
        }
        let fold_start = Instant::now();
        let a_first = accuracies.get(pair.first());
        let a_second = accuracies.get(pair.second());
        let evidence = fold_pair_runs(runs, a_first, a_second, params);
        partial.score_updates += 2 * usize_to_u64(evidence.shared_items());
        partial.shared_values += usize_to_u64(evidence.shared_values);
        let vote_start = Instant::now();
        partial.fold_nanos = partial.fold_nanos.saturating_add(nanos_of(vote_start - fold_start));
        let posterior = evidence.posterior_independence(params);
        partial.outcomes.push((
            pair,
            PairOutcome {
                decision: CopyDecision::from_posterior(posterior),
                posterior: Some(posterior),
                c_to: evidence.c_to,
                c_from: evidence.c_from,
            },
        ));
        partial.vote_nanos = partial.vote_nanos.saturating_add(nanos_of(vote_start.elapsed()));
    }
    partial.wall_nanos = nanos_of(wall_start.elapsed());
    partial
}

/// [`merge_shard_rounds`] plus a wall-time breakdown of its phases (one
/// merge worker; see [`merge_shard_rounds_parallel`] for the fan-out).
pub fn merge_shard_rounds_timed(
    rounds: Vec<ShardRoundEvidence>,
    accuracies: &SourceAccuracies,
    params: CopyParams,
) -> (DetectionResult, MergeTimings) {
    let (result, timings, _) = merge_shard_rounds_parallel(rounds, accuracies, params, 1);
    (result, timings)
}

/// The cross-shard merge, fanned out across `parallelism` workers.
///
/// Pairs are partitioned deterministically by a stable hash of the global
/// pair ids ([`pair_partition`]); each worker stream-folds its pairs' sorted
/// per-shard runs in ascending global item id and votes their posteriors.
/// The partial results combine through disjoint map union and exact integer
/// sums, so the returned [`DetectionResult`] is **bit-identical** for every
/// `parallelism` (including 1, the sequential merge) — parallelism changes
/// wall time, never a single bit of the output.
///
/// `parallelism` is clamped to `1..=64`; empty partitions are skipped
/// without spawning a thread, and `parallelism == 1` runs inline. The
/// returned [`MergeWorkerReport`]s (one per partition, in partition order)
/// feed the round trace's per-worker merge spans.
pub fn merge_shard_rounds_parallel(
    rounds: Vec<ShardRoundEvidence>,
    accuracies: &SourceAccuracies,
    params: CopyParams,
    parallelism: usize,
) -> (DetectionResult, MergeTimings, Vec<MergeWorkerReport>) {
    let start = Instant::now();
    let workers = parallelism.clamp(1, MAX_MERGE_PARALLELISM);
    let mut result = DetectionResult::new("SHARDED");
    let mut timings = MergeTimings::default();

    // Collect: move every per-shard run (a handle, not its observations)
    // into its pair's bucket. Empty runs are dropped here — but the pair
    // entry is still created, so a pair whose evidence is empty in *every*
    // shard is visible to the fold phase as a prunable entry.
    let mut buckets: Vec<HashMap<SourcePair, PairRuns>> = Vec::new();
    buckets.resize_with(workers, HashMap::new);
    for round in rounds {
        for (pair, observations) in round.pairs {
            let bucket = match buckets.get_mut(pair_partition(pair, workers)) {
                Some(bucket) => bucket,
                None => continue, // unreachable: the partition is < workers
            };
            let runs = bucket.entry(pair).or_default();
            if !observations.is_empty() {
                runs.push(observations);
            }
        }
    }
    timings.collect_nanos = nanos_of(start.elapsed());

    // Fold + vote: one worker per non-empty partition.
    let mut partials: Vec<MergePartial> = Vec::with_capacity(workers);
    partials.resize_with(workers, MergePartial::default);
    if workers == 1 {
        if let (Some(slot), Some(bucket)) = (partials.get_mut(0), buckets.pop()) {
            *slot = fold_bucket(bucket, accuracies, &params);
        }
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = buckets
                .into_iter()
                .enumerate()
                .filter(|(_, bucket)| !bucket.is_empty())
                .map(|(index, bucket)| {
                    (index, scope.spawn(move || fold_bucket(bucket, accuracies, &params)))
                })
                .collect();
            for (index, handle) in handles {
                if let (Ok(partial), Some(slot)) = (handle.join(), partials.get_mut(index)) {
                    *slot = partial;
                }
            }
        });
    }

    let mut reports = Vec::with_capacity(workers);
    for partial in partials {
        reports.push(MergeWorkerReport {
            pairs: usize_to_u64(partial.outcomes.len()),
            pruned_pairs: partial.pruned_pairs,
            fold_nanos: partial.fold_nanos,
            vote_nanos: partial.vote_nanos,
            wall_nanos: partial.wall_nanos,
        });
        timings.fold_nanos = timings.fold_nanos.saturating_add(partial.fold_nanos);
        timings.vote_nanos = timings.vote_nanos.saturating_add(partial.vote_nanos);
        timings.pairs += usize_to_u64(partial.outcomes.len());
        timings.pruned_pairs += partial.pruned_pairs;
        result.counter.score_updates += partial.score_updates;
        result.counter.pair_finalizations += usize_to_u64(partial.outcomes.len());
        result.pairs_considered += partial.outcomes.len();
        result.shared_values_examined += partial.shared_values;
        result.outcomes.extend(partial.outcomes);
    }
    result.detection_time = start.elapsed();
    (result, timings, reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairwise::pairwise_detection;
    use copydet_bayes::ValueProbabilities;
    use copydet_model::{Dataset, DatasetBuilder};

    const CLAIMS: &[(&str, &str, &str)] = &[
        ("S0", "D0", "x"),
        ("S1", "D0", "x"),
        ("S2", "D0", "y"),
        ("S0", "D1", "a"),
        ("S1", "D1", "a"),
        ("S0", "D2", "q"),
        ("S1", "D2", "r"),
        ("S2", "D3", "z"),
        ("S0", "D3", "z"),
    ];

    fn dataset(claims: &[(&str, &str, &str)]) -> Dataset {
        let mut b = DatasetBuilder::new();
        for (s, d, v) in claims {
            b.add_claim(s, d, v);
        }
        b.build()
    }

    /// Splitting the items of a dataset into shards (each rebuilt from its
    /// own claim subsequence, with shard-local ids) and merging reproduces
    /// the PAIRWISE baseline bit for bit.
    #[test]
    fn two_item_shards_merge_to_the_pairwise_baseline() {
        let global = dataset(CLAIMS);
        let params = CopyParams::paper_defaults();
        let accuracies = SourceAccuracies::uniform(global.num_sources(), 0.8).unwrap();
        let probabilities = ValueProbabilities::uniform_over_dataset(&global, 0.4).unwrap();
        let baseline =
            pairwise_detection(&RoundInput::new(&global, &accuracies, &probabilities, params));

        // Partition items by parity of their id.
        let mut rounds = Vec::new();
        for parity in 0..2u32 {
            let shard_claims: Vec<_> = CLAIMS
                .iter()
                .filter(|(_, d, _)| global.item_by_name(d).unwrap().raw() % 2 == parity)
                .copied()
                .collect();
            let shard = dataset(&shard_claims);
            let map = ShardIdMap {
                sources: shard
                    .sources()
                    .map(|s| global.source_by_name(shard.source_name(s)).unwrap())
                    .collect(),
                items: shard
                    .items()
                    .map(|d| global.item_by_name(shard.item_name(d)).unwrap())
                    .collect(),
            };
            // Shard-local probabilities: look the uniform default up through
            // the global table so the values agree bitwise.
            let shard_probs = ValueProbabilities::uniform_over_dataset(&shard, 0.4).unwrap();
            let shard_accs = SourceAccuracies::uniform(shard.num_sources(), 0.8).unwrap();
            let counts = SharedItemCounts::build(&shard);
            let input = RoundInput::new(&shard, &shard_accs, &shard_probs, params);
            rounds.push(collect_shard_evidence(&input, &counts, &map).expect("consistent counts"));
        }

        let merged = merge_shard_rounds(rounds, &accuracies, params);
        assert_eq!(merged.algorithm, "SHARDED");
        assert_eq!(merged.outcomes.len(), baseline.outcomes.len());
        for (pair, expected) in &baseline.outcomes {
            let got = merged.outcomes.get(pair).expect("pair must be materialized");
            assert_eq!(got, expected, "pair {pair} diverged from PAIRWISE");
        }
        assert_eq!(merged.counter.score_updates, baseline.counter.score_updates);
        assert_eq!(merged.counter.pair_finalizations, baseline.counter.pair_finalizations);
        assert_eq!(merged.shared_values_examined, baseline.shared_values_examined);
    }

    /// A single shard covering everything degenerates to PAIRWISE exactly.
    #[test]
    fn single_shard_is_pairwise() {
        let global = dataset(CLAIMS);
        let params = CopyParams::paper_defaults();
        let accuracies = SourceAccuracies::uniform(global.num_sources(), 0.8).unwrap();
        let probabilities = ValueProbabilities::uniform_over_dataset(&global, 0.4).unwrap();
        let input = RoundInput::new(&global, &accuracies, &probabilities, params);
        let baseline = pairwise_detection(&input);
        let map =
            ShardIdMap { sources: global.sources().collect(), items: global.items().collect() };
        let counts = SharedItemCounts::build(&global);
        let evidence = collect_shard_evidence(&input, &counts, &map).expect("consistent counts");
        let merged = merge_shard_rounds(vec![evidence], &accuracies, params);
        assert_eq!(merged.outcomes, baseline.outcomes);
    }

    /// The timed merge returns the same outcomes and accounts every pair in
    /// its timing breakdown.
    #[test]
    fn timed_merge_matches_and_counts_pairs() {
        let global = dataset(CLAIMS);
        let params = CopyParams::paper_defaults();
        let accuracies = SourceAccuracies::uniform(global.num_sources(), 0.8).unwrap();
        let probabilities = ValueProbabilities::uniform_over_dataset(&global, 0.4).unwrap();
        let input = RoundInput::new(&global, &accuracies, &probabilities, params);
        let map =
            ShardIdMap { sources: global.sources().collect(), items: global.items().collect() };
        let counts = SharedItemCounts::build(&global);
        let evidence = collect_shard_evidence(&input, &counts, &map).expect("consistent counts");
        let baseline = merge_shard_rounds(vec![evidence.clone()], &accuracies, params);
        let (timed, timings) = merge_shard_rounds_timed(vec![evidence], &accuracies, params);
        assert_eq!(timed.outcomes, baseline.outcomes);
        assert_eq!(timings.pairs, usize_to_u64(baseline.pairs_considered));
        assert_eq!(timings.pruned_pairs, 0);
        assert!(timings.total_nanos() >= timings.fold_nanos);
    }

    /// Every parallelism produces the identical result, and the per-worker
    /// reports account for every pair exactly once.
    #[test]
    fn parallel_merge_is_bit_identical_for_every_worker_count() {
        let global = dataset(CLAIMS);
        let params = CopyParams::paper_defaults();
        let accuracies = SourceAccuracies::uniform(global.num_sources(), 0.8).unwrap();
        let probabilities = ValueProbabilities::uniform_over_dataset(&global, 0.4).unwrap();
        let input = RoundInput::new(&global, &accuracies, &probabilities, params);
        let map =
            ShardIdMap { sources: global.sources().collect(), items: global.items().collect() };
        let counts = SharedItemCounts::build(&global);
        let evidence = collect_shard_evidence(&input, &counts, &map).expect("consistent counts");
        let (sequential, seq_timings) =
            merge_shard_rounds_timed(vec![evidence.clone()], &accuracies, params);
        for workers in [2usize, 3, 8, 0, usize::MAX] {
            let (parallel, timings, reports) =
                merge_shard_rounds_parallel(vec![evidence.clone()], &accuracies, params, workers);
            assert_eq!(parallel.outcomes, sequential.outcomes, "{workers} workers");
            assert_eq!(parallel.counter.score_updates, sequential.counter.score_updates);
            assert_eq!(parallel.counter.pair_finalizations, sequential.counter.pair_finalizations);
            assert_eq!(parallel.shared_values_examined, sequential.shared_values_examined);
            assert_eq!(timings.pairs, seq_timings.pairs);
            let reported: u64 = reports.iter().map(|r| r.pairs).sum();
            assert_eq!(reported, timings.pairs, "{workers} workers");
        }
    }

    /// Pairs whose merged evidence is empty are pruned (no outcome, no
    /// counter contribution) identically at every parallelism.
    #[test]
    fn empty_evidence_pairs_are_pruned() {
        let accuracies = SourceAccuracies::uniform(4, 0.8).unwrap();
        let params = CopyParams::paper_defaults();
        let empty_pair = SourcePair::new(SourceId::from_index(0), SourceId::from_index(3));
        let mut round = ShardRoundEvidence::default();
        round.pairs.insert(empty_pair, Vec::new());
        let mut other = ShardRoundEvidence::default();
        other.pairs.insert(empty_pair, Vec::new());
        for workers in [1usize, 4] {
            let (result, timings, reports) = merge_shard_rounds_parallel(
                vec![round.clone(), other.clone()],
                &accuracies,
                params,
                workers,
            );
            assert!(result.outcomes.is_empty(), "{workers} workers");
            assert_eq!(result.pairs_considered, 0);
            assert_eq!(result.counter.pair_finalizations, 0);
            assert_eq!(timings.pairs, 0);
            assert_eq!(timings.pruned_pairs, 1, "{workers} workers");
            let pruned: u64 = reports.iter().map(|r| r.pruned_pairs).sum();
            assert_eq!(pruned, 1);
        }
    }

    /// Counts that disagree with the snapshot are a typed error, not a dead
    /// round thread.
    #[test]
    fn mismatched_counts_are_a_typed_error() {
        let global = dataset(CLAIMS);
        let params = CopyParams::paper_defaults();
        let accuracies = SourceAccuracies::uniform(global.num_sources(), 0.8).unwrap();
        let probabilities = ValueProbabilities::uniform_over_dataset(&global, 0.4).unwrap();
        let input = RoundInput::new(&global, &accuracies, &probabilities, params);
        let map =
            ShardIdMap { sources: global.sources().collect(), items: global.items().collect() };
        // Counts captured from a *smaller* snapshot: S0/S1 share one item
        // fewer than the dataset in `input` says.
        let stale = dataset(&CLAIMS[..CLAIMS.len() - 4]);
        let counts = SharedItemCounts::build(&stale);
        let err = collect_shard_evidence(&input, &counts, &map)
            .expect_err("racy counts/snapshot capture must surface as a typed error");
        match err {
            DetectError::ShardEvidenceMismatch { counted, observed, .. } => {
                assert_ne!(counted, observed);
            }
            other => panic!("expected ShardEvidenceMismatch, got {other:?}"),
        }
    }

    /// The pair partition is stable (pinned values) and total.
    #[test]
    fn pair_partition_is_stable_and_total() {
        let pair = SourcePair::new(SourceId::from_index(0), SourceId::from_index(1));
        for workers in 1..=9 {
            assert!(pair_partition(pair, workers) < workers);
        }
        assert_eq!(pair_partition(pair, 1), 0);
        // Pinned: the partition feeds deterministic per-worker accounting.
        let other = SourcePair::new(SourceId::from_index(2), SourceId::from_index(5));
        assert_eq!(pair_partition(pair, 8), pair_partition(pair, 8));
        let spread: std::collections::HashSet<usize> = (0..64)
            .map(|i| {
                pair_partition(
                    SourcePair::new(SourceId::from_index(i), SourceId::from_index(i + 1)),
                    8,
                )
            })
            .collect();
        assert!(spread.len() > 1, "the hash spreads pairs over workers");
        let _ = other;
    }

    #[test]
    fn empty_rounds_merge_to_an_empty_result() {
        let accuracies = SourceAccuracies::uniform(3, 0.8).unwrap();
        let merged = merge_shard_rounds(
            vec![ShardRoundEvidence::default()],
            &accuracies,
            CopyParams::paper_defaults(),
        );
        assert!(merged.outcomes.is_empty());
        assert_eq!(merged.pairs_considered, 0);
    }
}
