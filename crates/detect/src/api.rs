//! The detector interface the iterative truth-finding loop drives.

use crate::result::DetectionResult;
use copydet_bayes::{CopyParams, ScoringContext, SourceAccuracies, ValueProbabilities};
use copydet_model::{Dataset, DatasetDelta};

/// Everything a detection round needs: the claims, the current estimates of
/// source accuracy and value truthfulness, and the model priors.
///
/// In single-round use the estimates come from prior knowledge or from simple
/// voting; in the iterative loop (`copydet-fusion`) they are the previous
/// round's outputs.
#[derive(Debug, Clone, Copy)]
pub struct RoundInput<'a> {
    /// The dataset of claims.
    pub dataset: &'a Dataset,
    /// Current source accuracies `A(S)`.
    pub accuracies: &'a SourceAccuracies,
    /// Current value probabilities `P(D.v)`.
    pub probabilities: &'a ValueProbabilities,
    /// Model priors (α, n, s).
    pub params: CopyParams,
    /// Claims added or changed since the detector last saw this dataset
    /// (`None` for a fixed dataset, the batch reproduction case).
    ///
    /// Stateful detectors use the delta to maintain their cross-round
    /// bookkeeping instead of rescanning: `IncrementalDetector` rebuilds only
    /// the index entries of touched items and re-decides only the pairs the
    /// delta can have affected. Stateless detectors ignore it.
    pub delta: Option<&'a DatasetDelta>,
}

impl<'a> RoundInput<'a> {
    /// Creates a round input over a fixed dataset (no delta).
    pub fn new(
        dataset: &'a Dataset,
        accuracies: &'a SourceAccuracies,
        probabilities: &'a ValueProbabilities,
        params: CopyParams,
    ) -> Self {
        Self { dataset, accuracies, probabilities, params, delta: None }
    }

    /// Attaches the claim delta that grew `dataset` since the previous
    /// detection round.
    pub fn with_delta(mut self, delta: &'a DatasetDelta) -> Self {
        self.delta = Some(delta);
        self
    }

    /// A per-pair scoring context over the same state.
    pub fn scoring_context(&self) -> ScoringContext<'a> {
        ScoringContext::new(self.dataset, self.accuracies, self.probabilities, self.params)
    }
}

/// An owned detection-round input: the same state as [`RoundInput`], but
/// holding the snapshot and estimates by value instead of borrowing them.
///
/// [`Dataset`] is backed by shared immutable storage, so the `dataset` field
/// is a cheap *handle* (reference-count bumps, no claim or string copies).
/// That makes this the hand-off type for concurrent pipelines: prepare the
/// round under a store lock (or on one thread), move it across the
/// lock/thread boundary, and run the detector via
/// [`as_round_input`](OwnedRoundInput::as_round_input) while ingest continues
/// on the live store. `copydet-store`'s `LiveDetector` assembles one of these
/// per observed snapshot.
#[derive(Debug, Clone)]
pub struct OwnedRoundInput {
    /// The snapshot of claims (a shared-storage handle).
    pub dataset: Dataset,
    /// Source accuracies `A(S)` for the round.
    pub accuracies: SourceAccuracies,
    /// Value probabilities `P(D.v)` for the round.
    pub probabilities: ValueProbabilities,
    /// Model priors (α, n, s).
    pub params: CopyParams,
    /// Claims added or changed since the detector last saw this dataset.
    pub delta: Option<DatasetDelta>,
}

impl OwnedRoundInput {
    /// Borrows the owned state as the [`RoundInput`] every detector consumes.
    pub fn as_round_input(&self) -> RoundInput<'_> {
        RoundInput {
            dataset: &self.dataset,
            accuracies: &self.accuracies,
            probabilities: &self.probabilities,
            params: self.params,
            delta: self.delta.as_ref(),
        }
    }
}

/// A copy-detection algorithm that can be run once per round of the iterative
/// truth-finding process.
///
/// Detectors may keep state between rounds (INCREMENTAL does); stateless
/// detectors simply ignore the round number.
pub trait CopyDetector {
    /// A short, stable name ("PAIRWISE", "INDEX", …) used in reports.
    fn name(&self) -> &'static str;

    /// Runs copy detection for the given round (1-based) and returns the
    /// per-pair outcomes.
    fn detect_round(&mut self, input: &RoundInput<'_>, round: usize) -> DetectionResult;

    /// Clears any cross-round state, returning the detector to the state it
    /// had before the first round. The default is a no-op, which is correct
    /// for stateless detectors.
    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use copydet_bayes::CopyDecision;
    use copydet_model::motivating_example;

    struct TrivialDetector;
    impl CopyDetector for TrivialDetector {
        fn name(&self) -> &'static str {
            "TRIVIAL"
        }
        fn detect_round(&mut self, input: &RoundInput<'_>, _round: usize) -> DetectionResult {
            let mut r = DetectionResult::new(self.name());
            r.pairs_considered = input.dataset.num_sources();
            r
        }
    }

    #[test]
    fn round_input_exposes_scoring_context() {
        let ex = motivating_example();
        let acc = SourceAccuracies::from_vec(ex.accuracies.clone()).unwrap();
        let probs = ValueProbabilities::from_table(ex.probability_table()).unwrap();
        let input = RoundInput::new(&ex.dataset, &acc, &probs, CopyParams::paper_defaults());
        let ctx = input.scoring_context();
        let e = ctx.score_pair(copydet_model::SourceId::new(2), copydet_model::SourceId::new(3));
        assert_eq!(e.decision(&input.params), CopyDecision::Copying);
    }

    #[test]
    fn trait_object_works() {
        let ex = motivating_example();
        let acc = SourceAccuracies::from_vec(ex.accuracies.clone()).unwrap();
        let probs = ValueProbabilities::from_table(ex.probability_table()).unwrap();
        let input = RoundInput::new(&ex.dataset, &acc, &probs, CopyParams::paper_defaults());
        let mut detector: Box<dyn CopyDetector> = Box::new(TrivialDetector);
        let result = detector.detect_round(&input, 1);
        assert_eq!(result.algorithm, "TRIVIAL");
        assert_eq!(result.pairs_considered, 10);
        detector.reset();
    }
}
