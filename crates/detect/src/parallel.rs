//! Parallel index scanning — the "parallelize computation among entries"
//! extension sketched in the paper's conclusion (Section VIII).
//!
//! The exhaustive INDEX accumulation is embarrassingly parallel across
//! entries: each thread scans a contiguous slice of the (score-ordered)
//! entries and accumulates per-pair partial evidence locally; the partial
//! maps are then merged and finalized exactly like the sequential algorithm.
//! Early-terminating variants (BOUND/HYBRID) do not parallelize this way
//! because termination depends on the global scan prefix, which is why the
//! paper singles out the INDEX-style accumulation for this strategy.

use crate::api::RoundInput;
use crate::result::{DetectionResult, PairOutcome};
use copydet_bayes::contribution::same_value_scores_both;
use copydet_bayes::{CopyDecision, PairEvidence};
use copydet_index::InvertedIndex;
use copydet_model::SourcePair;
use std::collections::HashMap;
use std::time::Instant;

#[derive(Debug, Clone, Default)]
struct PartialPair {
    evidence: PairEvidence,
    non_ebar_values: u32,
}

/// Runs the INDEX accumulation over `index` using `num_threads` worker
/// threads and returns the same decisions as the sequential algorithm.
///
/// With `num_threads == 1` this degenerates to (a slightly reorganized)
/// sequential INDEX.
pub fn parallel_index_scan(
    input: &RoundInput<'_>,
    index: &InvertedIndex,
    num_threads: usize,
) -> DetectionResult {
    let start = Instant::now();
    let num_threads = num_threads.max(1);
    let params = &input.params;
    let accuracies = input.accuracies;
    let entries = index.entries();

    let chunk_size = entries.len().div_ceil(num_threads).max(1);
    let chunks: Vec<(usize, &[copydet_index::IndexEntry])> =
        entries.chunks(chunk_size).enumerate().map(|(i, c)| (i * chunk_size, c)).collect();

    let partials: Vec<(HashMap<SourcePair, PartialPair>, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|(offset, chunk)| {
                scope.spawn(move || {
                    let mut local: HashMap<SourcePair, PartialPair> = HashMap::new();
                    let mut score_updates = 0u64;
                    for (k, entry) in chunk.iter().enumerate() {
                        let in_ebar = index.in_ebar(offset + k);
                        for i in 0..entry.providers.len() {
                            for j in (i + 1)..entry.providers.len() {
                                let pair = SourcePair::new(entry.providers[i], entry.providers[j]);
                                let (to, from) = same_value_scores_both(
                                    entry.probability,
                                    accuracies.get(pair.first()),
                                    accuracies.get(pair.second()),
                                    params,
                                );
                                score_updates += 2;
                                let slot = local.entry(pair).or_default();
                                slot.evidence.c_to += to;
                                slot.evidence.c_from += from;
                                slot.evidence.shared_values += 1;
                                if !in_ebar {
                                    slot.non_ebar_values += 1;
                                }
                            }
                        }
                    }
                    (local, score_updates)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("scan worker panicked")).collect()
    });

    // Merge the partial maps.
    let mut merged: HashMap<SourcePair, PartialPair> = HashMap::new();
    let mut result = DetectionResult::new("PARALLEL-INDEX");
    for (local, updates) in partials {
        result.counter.score_updates += updates;
        for (pair, partial) in local {
            let slot = merged.entry(pair).or_default();
            slot.evidence.c_to += partial.evidence.c_to;
            slot.evidence.c_from += partial.evidence.c_from;
            slot.evidence.shared_values += partial.evidence.shared_values;
            slot.non_ebar_values += partial.non_ebar_values;
        }
    }

    // Finalize exactly like INDEX: drop pairs that only share Ē values, add
    // the bulk different-value adjustment, compute the posterior.
    for (pair, mut partial) in merged {
        if partial.non_ebar_values == 0 {
            continue;
        }
        result.pairs_considered += 1;
        result.shared_values_examined += partial.evidence.shared_values as u64;
        let l = index.shared_items(pair);
        let different = l.saturating_sub(partial.evidence.shared_values as u32);
        partial.evidence.add_different_values(different as usize, params);
        result.counter.pair_finalizations += 1;
        let posterior = partial.evidence.posterior_independence(params);
        result.counter.pair_finalizations += 1;
        result.outcomes.insert(
            pair,
            PairOutcome {
                decision: CopyDecision::from_posterior(posterior),
                posterior: Some(posterior),
                c_to: partial.evidence.c_to,
                c_from: partial.evidence.c_from,
            },
        );
    }
    result.detection_time = start.elapsed();
    result
}

/// Builds the index and runs [`parallel_index_scan`].
pub fn parallel_index_detection(input: &RoundInput<'_>, num_threads: usize) -> DetectionResult {
    let build_start = Instant::now();
    let index =
        InvertedIndex::build(input.dataset, input.accuracies, input.probabilities, &input.params);
    let build_time = build_start.elapsed();
    let mut result = parallel_index_scan(input, &index, num_threads);
    result.index_build_time = build_time;
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::index_detection;
    use copydet_bayes::{CopyParams, SourceAccuracies, ValueProbabilities};
    use copydet_model::motivating_example;

    fn input_fixture(
    ) -> (copydet_model::MotivatingExample, SourceAccuracies, ValueProbabilities, CopyParams) {
        let ex = motivating_example();
        let acc = SourceAccuracies::from_vec(ex.accuracies.clone()).unwrap();
        let probs = ValueProbabilities::from_table(ex.probability_table()).unwrap();
        (ex, acc, probs, CopyParams::paper_defaults())
    }

    #[test]
    fn parallel_matches_sequential_index_for_any_thread_count() {
        let (ex, acc, probs, params) = input_fixture();
        let input = RoundInput::new(&ex.dataset, &acc, &probs, params);
        let sequential = index_detection(&input);
        let expected: std::collections::BTreeSet<_> = sequential.copying_pairs().collect();
        for threads in [1, 2, 3, 8] {
            let parallel = parallel_index_detection(&input, threads);
            let got: std::collections::BTreeSet<_> = parallel.copying_pairs().collect();
            assert_eq!(got, expected, "{threads} threads");
            assert_eq!(parallel.pairs_considered, sequential.pairs_considered);
            // Workers cannot know in advance whether a pair will ever occur
            // outside Ē, so the parallel scan may score a handful of pairs
            // the sequential scan skips — but never fewer.
            assert!(parallel.counter.score_updates >= sequential.counter.score_updates);
        }
    }

    #[test]
    fn parallel_posteriors_match_sequential() {
        let (ex, acc, probs, params) = input_fixture();
        let input = RoundInput::new(&ex.dataset, &acc, &probs, params);
        let sequential = index_detection(&input);
        let parallel = parallel_index_detection(&input, 4);
        for (pair, outcome) in &sequential.outcomes {
            let other = parallel.outcomes.get(pair).expect("pair missing in parallel result");
            assert!((outcome.c_to - other.c_to).abs() < 1e-9);
            assert!((outcome.c_from - other.c_from).abs() < 1e-9);
        }
    }
}
