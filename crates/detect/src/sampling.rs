//! Item-sampling strategies (Section VI-A's SAMPLE1/SAMPLE2 baselines and
//! Section VI-E's coverage-aware SCALESAMPLE).
//!
//! All strategies select a subset of *data items*; detection then runs on the
//! dataset projected onto that subset ([`copydet_model::Dataset::project_items`]),
//! with source and item identifiers unchanged so the resulting copy decisions
//! remain comparable pair-by-pair.

use crate::api::{CopyDetector, RoundInput};
use crate::error::DetectError;
use crate::result::DetectionResult;
use copydet_model::{Dataset, ItemId};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::time::Instant;

/// How data items are sampled before detection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SamplingStrategy {
    /// SAMPLE1 / BYITEM: keep a uniformly random fraction of the data items.
    ByItem {
        /// Fraction of items to keep, in `(0, 1]`.
        rate: f64,
    },
    /// SAMPLE2 / BYCELL: add random items until the kept claims ("non-empty
    /// cells" of the source × item table) reach this fraction of all claims.
    ByCell {
        /// Fraction of claims to cover, in `(0, 1]`.
        cell_fraction: f64,
    },
    /// SCALESAMPLE: keep a random fraction of the items but guarantee that
    /// every source keeps at least `min_items_per_source` of its own items
    /// (when it has that many), so low-coverage sources are not starved.
    CoverageAware {
        /// Base fraction of items to keep, in `(0, 1]`.
        rate: f64,
        /// Minimum number of items retained per source (the paper uses 4).
        min_items_per_source: usize,
    },
}

impl SamplingStrategy {
    /// The paper's SCALESAMPLE setting: the given rate with at least 4 items
    /// per source.
    pub fn scale_sample(rate: f64) -> Self {
        SamplingStrategy::CoverageAware { rate, min_items_per_source: 4 }
    }

    fn validate(&self) -> Result<(), DetectError> {
        let rate = match *self {
            SamplingStrategy::ByItem { rate } => rate,
            SamplingStrategy::ByCell { cell_fraction } => cell_fraction,
            SamplingStrategy::CoverageAware { rate, .. } => rate,
        };
        if rate > 0.0 && rate <= 1.0 {
            Ok(())
        } else {
            Err(DetectError::InvalidSamplingRate(rate))
        }
    }
}

/// Samples a set of data items from `dataset` according to `strategy`,
/// deterministically for a fixed `seed`.
pub fn sample_items(
    dataset: &Dataset,
    strategy: SamplingStrategy,
    seed: u64,
) -> Result<HashSet<ItemId>, DetectError> {
    strategy.validate()?;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut items: Vec<ItemId> = dataset.items().collect();
    items.shuffle(&mut rng);

    let selected: HashSet<ItemId> = match strategy {
        SamplingStrategy::ByItem { rate } => {
            let keep = ((dataset.num_items() as f64 * rate).round() as usize).max(1);
            items.into_iter().take(keep.min(dataset.num_items())).collect()
        }
        SamplingStrategy::ByCell { cell_fraction } => {
            let target = (dataset.num_claims() as f64 * cell_fraction).round() as usize;
            let mut covered = 0usize;
            let mut keep = HashSet::new();
            for d in items {
                if covered >= target && !keep.is_empty() {
                    break;
                }
                covered += dataset.item_provider_count(d);
                keep.insert(d);
            }
            keep
        }
        SamplingStrategy::CoverageAware { rate, min_items_per_source } => {
            let keep_count = ((dataset.num_items() as f64 * rate).round() as usize).max(1);
            let mut keep: HashSet<ItemId> =
                items.iter().copied().take(keep_count.min(dataset.num_items())).collect();
            // Guarantee every source keeps at least `min_items_per_source`
            // of the items it actually provides.
            for s in dataset.sources() {
                let claims = dataset.claims_of(s);
                let already = claims.iter().filter(|(d, _)| keep.contains(d)).count();
                if already >= min_items_per_source || claims.is_empty() {
                    continue;
                }
                let mut candidates: Vec<ItemId> =
                    claims.iter().map(|&(d, _)| d).filter(|d| !keep.contains(d)).collect();
                candidates.shuffle(&mut rng);
                let need = (min_items_per_source - already).min(candidates.len());
                keep.extend(candidates.into_iter().take(need));
            }
            keep
        }
    };
    Ok(selected)
}

/// Runs any detector on a sampled projection of the dataset.
///
/// The item sample is drawn once (at the first round) and reused in later
/// rounds, so iterative detection sees a consistent subset. Sampling time is
/// charged to the reported detection time, mirroring how the paper accounts
/// for sampling overhead.
pub struct SampledDetector<D> {
    strategy: SamplingStrategy,
    seed: u64,
    inner: D,
    name: &'static str,
    sample: Option<HashSet<ItemId>>,
}

impl<D: CopyDetector> SampledDetector<D> {
    /// Wraps `inner` so it runs on items sampled with `strategy`.
    pub fn new(strategy: SamplingStrategy, seed: u64, inner: D, name: &'static str) -> Self {
        Self { strategy, seed, inner, name, sample: None }
    }

    /// The paper's SCALESAMPLE method: INCREMENTAL-style inner detection is
    /// typical, but any detector works.
    pub fn scale_sample(rate: f64, seed: u64, inner: D) -> Self {
        Self::new(SamplingStrategy::scale_sample(rate), seed, inner, "SCALESAMPLE")
    }

    /// The sampled item set, if a round has run already.
    pub fn sampled_items(&self) -> Option<&HashSet<ItemId>> {
        self.sample.as_ref()
    }
}

impl<D: CopyDetector> CopyDetector for SampledDetector<D> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn detect_round(&mut self, input: &RoundInput<'_>, round: usize) -> DetectionResult {
        let start = Instant::now();
        if self.sample.is_none() {
            self.sample = Some(
                sample_items(input.dataset, self.strategy, self.seed)
                    .expect("sampling strategy was validated at construction"),
            );
        }
        let sample = self.sample.as_ref().expect("sample drawn above");
        let projected = input.dataset.project_items(sample);
        let sampling_time = start.elapsed();

        let projected_input =
            RoundInput::new(&projected, input.accuracies, input.probabilities, input.params);
        let mut result = self.inner.detect_round(&projected_input, round);
        result.algorithm = self.name.to_string();
        result.detection_time += sampling_time;
        result
    }

    fn reset(&mut self) {
        self.sample = None;
        self.inner.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairwise::PairwiseDetector;
    use crate::scan::IndexDetector;
    use copydet_bayes::{CopyParams, SourceAccuracies, ValueProbabilities};
    use copydet_model::motivating_example;

    #[test]
    fn by_item_respects_rate() {
        let ex = motivating_example();
        let items = sample_items(&ex.dataset, SamplingStrategy::ByItem { rate: 0.4 }, 1).unwrap();
        assert_eq!(items.len(), 2); // 40% of 5 items
                                    // deterministic
        let again = sample_items(&ex.dataset, SamplingStrategy::ByItem { rate: 0.4 }, 1).unwrap();
        assert_eq!(items, again);
        let other_seed =
            sample_items(&ex.dataset, SamplingStrategy::ByItem { rate: 0.4 }, 2).unwrap();
        assert_eq!(other_seed.len(), 2);
    }

    #[test]
    fn by_cell_reaches_target_fraction() {
        let ex = motivating_example();
        let items =
            sample_items(&ex.dataset, SamplingStrategy::ByCell { cell_fraction: 0.5 }, 3).unwrap();
        let covered: usize = items.iter().map(|&d| ex.dataset.item_provider_count(d)).sum();
        assert!(covered >= (ex.dataset.num_claims() as f64 * 0.5) as usize);
        assert!(items.len() < ex.dataset.num_items());
    }

    #[test]
    fn coverage_aware_guarantees_minimum_per_source() {
        let ex = motivating_example();
        let items = sample_items(
            &ex.dataset,
            SamplingStrategy::CoverageAware { rate: 0.2, min_items_per_source: 3 },
            7,
        )
        .unwrap();
        for s in ex.dataset.sources() {
            let kept = ex.dataset.claims_of(s).iter().filter(|(d, _)| items.contains(d)).count();
            let available = ex.dataset.coverage(s);
            assert!(kept >= 3.min(available), "source {s} kept only {kept} items");
        }
    }

    #[test]
    fn invalid_rates_are_rejected() {
        let ex = motivating_example();
        assert!(sample_items(&ex.dataset, SamplingStrategy::ByItem { rate: 0.0 }, 0).is_err());
        assert!(sample_items(&ex.dataset, SamplingStrategy::ByItem { rate: 1.5 }, 0).is_err());
        assert!(
            sample_items(&ex.dataset, SamplingStrategy::ByCell { cell_fraction: -0.1 }, 0).is_err()
        );
    }

    #[test]
    fn full_rate_keeps_everything() {
        let ex = motivating_example();
        let items = sample_items(&ex.dataset, SamplingStrategy::ByItem { rate: 1.0 }, 0).unwrap();
        assert_eq!(items.len(), ex.dataset.num_items());
    }

    #[test]
    fn sampled_detector_runs_and_caches_sample() {
        let ex = motivating_example();
        let acc = SourceAccuracies::from_vec(ex.accuracies.clone()).unwrap();
        let probs = ValueProbabilities::from_table(ex.probability_table()).unwrap();
        let input = RoundInput::new(&ex.dataset, &acc, &probs, CopyParams::paper_defaults());
        let mut d = SampledDetector::new(
            SamplingStrategy::ByItem { rate: 0.6 },
            5,
            PairwiseDetector::new(),
            "SAMPLE1",
        );
        assert!(d.sampled_items().is_none());
        let r1 = d.detect_round(&input, 1);
        assert_eq!(r1.algorithm, "SAMPLE1");
        let sample1 = d.sampled_items().unwrap().clone();
        let _ = d.detect_round(&input, 2);
        assert_eq!(&sample1, d.sampled_items().unwrap(), "sample is reused across rounds");
        d.reset();
        assert!(d.sampled_items().is_none());
    }

    #[test]
    fn full_rate_sampling_reproduces_unsampled_decisions() {
        let ex = motivating_example();
        let acc = SourceAccuracies::from_vec(ex.accuracies.clone()).unwrap();
        let probs = ValueProbabilities::from_table(ex.probability_table()).unwrap();
        let input = RoundInput::new(&ex.dataset, &acc, &probs, CopyParams::paper_defaults());
        let mut sampled = SampledDetector::scale_sample(1.0, 9, IndexDetector::new());
        assert_eq!(sampled.name(), "SCALESAMPLE");
        let r = sampled.detect_round(&input, 1);
        let full = crate::scan::index_detection(&input);
        assert_eq!(
            r.copying_pairs().collect::<std::collections::BTreeSet<_>>(),
            full.copying_pairs().collect::<std::collections::BTreeSet<_>>()
        );
    }
}
