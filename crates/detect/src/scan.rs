//! The unified inverted-index scan behind INDEX, BOUND, BOUND+ and HYBRID.
//!
//! All four single-round algorithms of Sections III–IV share the same outer
//! structure: scan the index entries (strong evidence first), maintain state
//! for every pair of sources that co-occurs in an entry outside `Ē`, and
//! finalize whatever is still undecided after the scan. They differ only in
//! *how each pair is treated while scanning*:
//!
//! * **exhaustive** pairs (INDEX, and HYBRID's small pairs) just accumulate
//!   contribution scores and are finalized after the scan;
//! * **bounded** pairs (BOUND/BOUND+, and HYBRID's large pairs) additionally
//!   maintain the lower/upper bounds of Eq. 9–10 and terminate as soon as a
//!   bound crosses `θcp` or `θind`; BOUND+ re-evaluates the bounds lazily
//!   using the `Tmin`/`Tmax` timers of Section IV-B.
//!
//! [`index_scan`] implements this once; [`index_detection`],
//! [`bound_detection`] and [`hybrid_detection`] are thin configurations of
//! it. The scan can also record the per-pair bookkeeping INCREMENTAL needs
//! for later rounds ([`ScanRecords`]).

use crate::api::{CopyDetector, RoundInput};
use crate::result::{DetectionResult, PairOutcome};
use copydet_bayes::contribution::same_value_scores_both;
use copydet_bayes::{CopyDecision, PairEvidence};
use copydet_index::{EntryOrdering, InvertedIndex};
use copydet_model::{ItemId, SourcePair, ValueId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::Instant;

/// How the scan decides which pairs get bound maintenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PairModeRule {
    /// Every pair accumulates scores exhaustively (INDEX).
    AllExhaustive,
    /// Every pair maintains bounds and may terminate early (BOUND / BOUND+).
    AllBounded,
    /// Pairs sharing at most this many items are exhaustive, the rest are
    /// bounded (HYBRID; the paper uses 16).
    HybridThreshold(u32),
}

/// Configuration of one index scan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IndexScanConfig {
    /// Order in which entries are processed.
    pub ordering: EntryOrdering,
    /// Which pairs are bounded.
    pub mode_rule: PairModeRule,
    /// Re-evaluate bounds lazily with the `Tmin`/`Tmax` timers (BOUND+)
    /// instead of on every update (BOUND). Ignored for exhaustive pairs.
    pub lazy_bounds: bool,
    /// Record the per-pair bookkeeping INCREMENTAL needs.
    pub track_records: bool,
}

impl IndexScanConfig {
    /// INDEX: exhaustive accumulation for every pair.
    pub fn index() -> Self {
        Self {
            ordering: EntryOrdering::ByContribution,
            mode_rule: PairModeRule::AllExhaustive,
            lazy_bounds: false,
            track_records: false,
        }
    }

    /// BOUND (`lazy = false`) or BOUND+ (`lazy = true`).
    pub fn bound(lazy: bool) -> Self {
        Self {
            ordering: EntryOrdering::ByContribution,
            mode_rule: PairModeRule::AllBounded,
            lazy_bounds: lazy,
            track_records: false,
        }
    }

    /// HYBRID with the given shared-item switch threshold (the paper uses
    /// 16).
    pub fn hybrid(threshold: u32) -> Self {
        Self {
            ordering: EntryOrdering::ByContribution,
            mode_rule: PairModeRule::HybridThreshold(threshold),
            lazy_bounds: true,
            track_records: false,
        }
    }
}

/// Per-pair bookkeeping recorded for INCREMENTAL (Section V's "preparation
/// step").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairScanRecord {
    /// The decision reached this round.
    pub decision: CopyDecision,
    /// Exact posterior, when one was computed.
    pub posterior: Option<f64>,
    /// Starting score `Ĉ→` for the next round.
    pub c_hat_to: f64,
    /// Starting score `Ĉ←` for the next round.
    pub c_hat_from: f64,
    /// Position in the processing order after which the pair was decided
    /// (`u32::MAX` when it was only decided at finalization).
    pub decision_pos: u32,
    /// Shared values observed before (and at) the decision point.
    pub shared_before_decision: u32,
    /// Shared values observed after the decision point (`|Ē₁|`).
    pub shared_after_decision: u32,
    /// Number of items the pair shares (`l(S1, S2)`).
    pub shared_items: u32,
    /// Whether the pair was decided from bounds (`true`) or from exact
    /// accumulated scores (`false`).
    pub decided_by_bounds: bool,
}

/// The bookkeeping of one scan, consumed by INCREMENTAL.
#[derive(Debug, Clone)]
pub struct ScanRecords {
    /// Per-pair records.
    pub pairs: HashMap<SourcePair, PairScanRecord>,
    /// The processing order, as `(item, value)` entry keys.
    pub order_keys: Vec<(ItemId, ValueId)>,
}

/// Result of [`index_scan`]: the detection result plus optional bookkeeping.
#[derive(Debug, Clone)]
pub struct ScanOutput {
    /// The per-pair outcomes and efficiency accounting.
    pub result: DetectionResult,
    /// Bookkeeping for INCREMENTAL, when requested.
    pub records: Option<ScanRecords>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum PairMode {
    Exhaustive,
    Bounded,
}

#[derive(Debug, Clone)]
struct PairState {
    mode: PairMode,
    evidence: PairEvidence,
    shared_items: u32,
    concluded: Option<CopyDecision>,
    decision_pos: u32,
    c_dec_to: f64,
    c_dec_from: f64,
    shared_after_decision: u32,
    // BOUND+ timers
    next_min_check: u32,
    next_max_n1: u32,
    next_max_n2: u32,
}

impl PairState {
    fn new(mode: PairMode, shared_items: u32) -> Self {
        Self {
            mode,
            evidence: PairEvidence::empty(),
            shared_items,
            concluded: None,
            decision_pos: u32::MAX,
            c_dec_to: 0.0,
            c_dec_from: 0.0,
            shared_after_decision: 0,
            next_min_check: 0,
            next_max_n1: 0,
            next_max_n2: 0,
        }
    }
}

/// Runs the unified scan over a pre-built index.
///
/// The index must have been built from the same dataset and the same
/// accuracy / probability state as `input`.
pub fn index_scan(
    input: &RoundInput<'_>,
    index: &InvertedIndex,
    config: &IndexScanConfig,
    algorithm_name: &str,
) -> ScanOutput {
    let start = Instant::now();
    let params = &input.params;
    let thresholds = params.thresholds();
    let diff_penalty = params.different_value_score();
    let dataset = input.dataset;
    let accuracies = input.accuracies;

    let order = index.processing_order(config.ordering);
    let suffix_max = index.suffix_max_scores(&order);
    let coverage: Vec<u32> = dataset.sources().map(|s| dataset.coverage(s) as u32).collect();
    let mut n_seen: Vec<u32> = vec![0; dataset.num_sources()];

    let mut result = DetectionResult::new(algorithm_name);
    let mut states: HashMap<SourcePair, PairState> = HashMap::new();

    for (pos, &entry_idx) in order.iter().enumerate() {
        let entry = &index.entries()[entry_idx as usize];
        let in_ebar = index.in_ebar(entry_idx as usize);
        let m_next = suffix_max[pos + 1];

        for &s in &entry.providers {
            n_seen[s.index()] += 1;
        }

        for i in 0..entry.providers.len() {
            for j in (i + 1)..entry.providers.len() {
                let s1 = entry.providers[i];
                let s2 = entry.providers[j];
                let pair = SourcePair::new(s1, s2);

                let state = match states.get_mut(&pair) {
                    Some(state) => state,
                    None => {
                        if in_ebar {
                            // Step III only touches pairs encountered before.
                            continue;
                        }
                        let shared_items = index.shared_items(pair);
                        let mode = match config.mode_rule {
                            PairModeRule::AllExhaustive => PairMode::Exhaustive,
                            PairModeRule::AllBounded => PairMode::Bounded,
                            PairModeRule::HybridThreshold(t) => {
                                if shared_items <= t {
                                    PairMode::Exhaustive
                                } else {
                                    PairMode::Bounded
                                }
                            }
                        };
                        states.entry(pair).or_insert_with(|| PairState::new(mode, shared_items))
                    }
                };

                if state.concluded.is_some() {
                    if config.track_records {
                        state.shared_after_decision += 1;
                    }
                    continue;
                }

                // Fold the shared value into both directional scores.
                let (to, from) = same_value_scores_both(
                    entry.probability,
                    accuracies.get(pair.first()),
                    accuracies.get(pair.second()),
                    params,
                );
                state.evidence.c_to += to;
                state.evidence.c_from += from;
                state.evidence.shared_values += 1;
                result.counter.score_updates += 2;

                if state.mode != PairMode::Bounded {
                    continue;
                }

                let n0 = state.evidence.shared_values as u32;
                let l = state.shared_items;
                let first_observation = n0 == 1;

                // Lower bounds (Eq. 9): assume every remaining shared item
                // disagrees.
                let check_min =
                    !config.lazy_bounds || first_observation || n0 >= state.next_min_check;
                if check_min {
                    let remaining = (l - n0) as f64;
                    let cmin_to = state.evidence.c_to + remaining * diff_penalty;
                    let cmin_from = state.evidence.c_from + remaining * diff_penalty;
                    result.counter.bound_computations += 1;
                    if cmin_to >= thresholds.theta_cp || cmin_from >= thresholds.theta_cp {
                        state.concluded = Some(CopyDecision::Copying);
                        state.decision_pos = pos as u32;
                        state.c_dec_to = cmin_to;
                        state.c_dec_from = cmin_from;
                        continue;
                    }
                    if config.lazy_bounds {
                        let gap = thresholds.theta_cp - cmin_to.max(cmin_from);
                        let per_value = m_next - diff_penalty;
                        let t_min = (gap / per_value).ceil().max(1.0) as u32;
                        state.next_min_check = n0 + t_min;
                    }
                }

                // Upper bounds (Eq. 10): estimate how many scanned items the
                // two sources must already disagree on, assume every unseen
                // shared item scores the best remaining entry score.
                let cov1 = coverage[pair.first().index()].max(1) as f64;
                let cov2 = coverage[pair.second().index()].max(1) as f64;
                let seen1 = n_seen[pair.first().index()] as f64;
                let seen2 = n_seen[pair.second().index()] as f64;
                let check_max = !config.lazy_bounds
                    || first_observation
                    || seen1 as u32 >= state.next_max_n1
                    || seen2 as u32 >= state.next_max_n2;
                if check_max {
                    let l_f = l as f64;
                    let h_est = (seen1 * l_f / cov1).max(seen2 * l_f / cov2);
                    let h = h_est.max(n0 as f64).min(l_f);
                    let cmax_to =
                        state.evidence.c_to + (h - n0 as f64) * diff_penalty + (l_f - h) * m_next;
                    let cmax_from =
                        state.evidence.c_from + (h - n0 as f64) * diff_penalty + (l_f - h) * m_next;
                    result.counter.bound_computations += 1;
                    if cmax_to < thresholds.theta_ind && cmax_from < thresholds.theta_ind {
                        state.concluded = Some(CopyDecision::NoCopying);
                        state.decision_pos = pos as u32;
                        state.c_dec_to = cmax_to;
                        state.c_dec_from = cmax_from;
                        continue;
                    }
                    if config.lazy_bounds {
                        let per_value = m_next - diff_penalty;
                        let t_max0 = ((cmax_to.max(cmax_from) - thresholds.theta_ind) / per_value)
                            .ceil()
                            .max(1.0);
                        let needed = t_max0 + (h - n0 as f64);
                        state.next_max_n1 = (needed * cov1 / l_f).ceil() as u32;
                        state.next_max_n2 = (needed * cov2 / l_f).ceil() as u32;
                    }
                }
            }
        }
    }

    // Finalization (Step IV / INDEX step 3).
    let mut records = config.track_records.then(|| ScanRecords {
        pairs: HashMap::with_capacity(states.len()),
        order_keys: order
            .iter()
            .map(|&i| {
                let e = &index.entries()[i as usize];
                (e.item, e.value)
            })
            .collect(),
    });

    result.pairs_considered = states.len();
    for (pair, mut state) in states {
        result.shared_values_examined += state.evidence.shared_values as u64;
        let outcome = match state.concluded {
            Some(decision) => PairOutcome {
                decision,
                posterior: None,
                c_to: state.c_dec_to,
                c_from: state.c_dec_from,
            },
            None => {
                let n0 = state.evidence.shared_values as u32;
                let different = state.shared_items.saturating_sub(n0);
                state.evidence.add_different_values(different as usize, params);
                result.counter.pair_finalizations += 1;
                state.decision_pos = u32::MAX;
                state.c_dec_to = state.evidence.c_to;
                state.c_dec_from = state.evidence.c_from;
                if state.mode == PairMode::Bounded && state.evidence.implies_no_copying(&thresholds)
                {
                    PairOutcome {
                        decision: CopyDecision::NoCopying,
                        posterior: None,
                        c_to: state.evidence.c_to,
                        c_from: state.evidence.c_from,
                    }
                } else {
                    let posterior = state.evidence.posterior_independence(params);
                    result.counter.pair_finalizations += 1;
                    PairOutcome {
                        decision: CopyDecision::from_posterior(posterior),
                        posterior: Some(posterior),
                        c_to: state.evidence.c_to,
                        c_from: state.evidence.c_from,
                    }
                }
            }
        };
        result.outcomes.insert(pair, outcome);

        if let Some(records) = records.as_mut() {
            let decided_by_bounds = state.decision_pos != u32::MAX;
            // Ĉ for copying pairs removes the pessimistic penalty that Cmin
            // charged for the shared values observed after the decision
            // point; for everything else Ĉ is the recorded score itself.
            let (c_hat_to, c_hat_from) =
                if decided_by_bounds && outcome.decision == CopyDecision::Copying {
                    let lift = state.shared_after_decision as f64 * params.different_value_score();
                    (state.c_dec_to - lift, state.c_dec_from - lift)
                } else {
                    (state.c_dec_to, state.c_dec_from)
                };
            records.pairs.insert(
                pair,
                PairScanRecord {
                    decision: outcome.decision,
                    posterior: outcome.posterior,
                    c_hat_to,
                    c_hat_from,
                    decision_pos: state.decision_pos,
                    shared_before_decision: state.evidence.shared_values as u32,
                    shared_after_decision: state.shared_after_decision,
                    shared_items: state.shared_items,
                    decided_by_bounds,
                },
            );
        }
    }

    result.detection_time = start.elapsed();
    ScanOutput { result, records }
}

fn build_index(input: &RoundInput<'_>) -> (InvertedIndex, std::time::Duration) {
    let start = Instant::now();
    let index =
        InvertedIndex::build(input.dataset, input.accuracies, input.probabilities, &input.params);
    (index, start.elapsed())
}

/// The INDEX algorithm of Section III: build the inverted index, scan it in
/// decreasing score order, accumulate exact scores for every pair that
/// co-occurs outside `Ē`, finalize with the bulk different-value adjustment.
///
/// Produces the same binary decisions as PAIRWISE (Proposition 3.5).
pub fn index_detection(input: &RoundInput<'_>) -> DetectionResult {
    let (index, build_time) = build_index(input);
    let mut out = index_scan(input, &index, &IndexScanConfig::index(), "INDEX");
    out.result.index_build_time = build_time;
    out.result
}

/// The BOUND (`lazy = false`) / BOUND+ (`lazy = true`) algorithms of
/// Section IV.
pub fn bound_detection(input: &RoundInput<'_>, lazy: bool) -> DetectionResult {
    let (index, build_time) = build_index(input);
    let name = if lazy { "BOUND+" } else { "BOUND" };
    let mut out = index_scan(input, &index, &IndexScanConfig::bound(lazy), name);
    out.result.index_build_time = build_time;
    out.result
}

/// The HYBRID algorithm (end of Section IV): INDEX-style handling for pairs
/// sharing at most `threshold` items, BOUND+ for the rest.
pub fn hybrid_detection(input: &RoundInput<'_>, threshold: u32) -> DetectionResult {
    let (index, build_time) = build_index(input);
    let mut out = index_scan(input, &index, &IndexScanConfig::hybrid(threshold), "HYBRID");
    out.result.index_build_time = build_time;
    out.result
}

/// INDEX as a reusable detector.
#[derive(Debug, Clone, Copy)]
pub struct IndexDetector {
    /// Entry processing order (ByContribution unless overridden for the
    /// Figure 3 ordering experiments).
    pub ordering: EntryOrdering,
}

impl Default for IndexDetector {
    fn default() -> Self {
        Self { ordering: EntryOrdering::ByContribution }
    }
}

impl IndexDetector {
    /// Creates the detector with the default (by-contribution) ordering.
    pub fn new() -> Self {
        Self::default()
    }
}

impl CopyDetector for IndexDetector {
    fn name(&self) -> &'static str {
        "INDEX"
    }

    fn detect_round(&mut self, input: &RoundInput<'_>, _round: usize) -> DetectionResult {
        let (index, build_time) = build_index(input);
        let config = IndexScanConfig { ordering: self.ordering, ..IndexScanConfig::index() };
        let mut out = index_scan(input, &index, &config, "INDEX");
        out.result.index_build_time = build_time;
        out.result
    }
}

/// BOUND / BOUND+ as a reusable detector.
#[derive(Debug, Clone, Copy)]
pub struct BoundDetector {
    /// Use the lazy `Tmin`/`Tmax` timers of Section IV-B (BOUND+).
    pub lazy: bool,
    /// Entry processing order.
    pub ordering: EntryOrdering,
}

impl BoundDetector {
    /// BOUND: bounds re-evaluated on every update.
    pub fn eager() -> Self {
        Self { lazy: false, ordering: EntryOrdering::ByContribution }
    }

    /// BOUND+: bounds re-evaluated lazily.
    pub fn lazy() -> Self {
        Self { lazy: true, ordering: EntryOrdering::ByContribution }
    }
}

impl CopyDetector for BoundDetector {
    fn name(&self) -> &'static str {
        if self.lazy {
            "BOUND+"
        } else {
            "BOUND"
        }
    }

    fn detect_round(&mut self, input: &RoundInput<'_>, _round: usize) -> DetectionResult {
        let (index, build_time) = build_index(input);
        let config =
            IndexScanConfig { ordering: self.ordering, ..IndexScanConfig::bound(self.lazy) };
        let mut out = index_scan(input, &index, &config, self.name());
        out.result.index_build_time = build_time;
        out.result
    }
}

/// HYBRID as a reusable detector.
#[derive(Debug, Clone, Copy)]
pub struct HybridDetector {
    /// Pairs sharing at most this many items are handled INDEX-style
    /// (the paper uses 16).
    pub switch_threshold: u32,
    /// Entry processing order.
    pub ordering: EntryOrdering,
}

impl Default for HybridDetector {
    fn default() -> Self {
        Self { switch_threshold: 16, ordering: EntryOrdering::ByContribution }
    }
}

impl HybridDetector {
    /// Creates the detector with the paper's switch threshold of 16 shared
    /// items.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates the detector with a custom switch threshold.
    pub fn with_threshold(switch_threshold: u32) -> Self {
        Self { switch_threshold, ordering: EntryOrdering::ByContribution }
    }
}

impl CopyDetector for HybridDetector {
    fn name(&self) -> &'static str {
        "HYBRID"
    }

    fn detect_round(&mut self, input: &RoundInput<'_>, _round: usize) -> DetectionResult {
        let (index, build_time) = build_index(input);
        let config = IndexScanConfig {
            ordering: self.ordering,
            ..IndexScanConfig::hybrid(self.switch_threshold)
        };
        let mut out = index_scan(input, &index, &config, "HYBRID");
        out.result.index_build_time = build_time;
        out.result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairwise::pairwise_detection;
    use copydet_bayes::{CopyParams, SourceAccuracies, ValueProbabilities};
    use copydet_model::{motivating_example, SourceId};

    struct Fixture {
        ex: copydet_model::MotivatingExample,
        accuracies: SourceAccuracies,
        probabilities: ValueProbabilities,
        params: CopyParams,
    }

    impl Fixture {
        fn new() -> Self {
            let ex = motivating_example();
            let accuracies = SourceAccuracies::from_vec(ex.accuracies.clone()).unwrap();
            let probabilities = ValueProbabilities::from_table(ex.probability_table()).unwrap();
            Self { ex, accuracies, probabilities, params: CopyParams::paper_defaults() }
        }

        fn input(&self) -> RoundInput<'_> {
            RoundInput::new(&self.ex.dataset, &self.accuracies, &self.probabilities, self.params)
        }
    }

    fn pair(a: u32, b: u32) -> SourcePair {
        SourcePair::new(SourceId::new(a), SourceId::new(b))
    }

    /// Proposition 3.5: INDEX obtains the same binary results as PAIRWISE.
    #[test]
    fn index_matches_pairwise_decisions() {
        let f = Fixture::new();
        let pairwise = pairwise_detection(&f.input());
        let index = index_detection(&f.input());
        let mut a: Vec<_> = pairwise.copying_pairs().collect();
        let mut b: Vec<_> = index.copying_pairs().collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        // Every planted copying pair is found.
        for &p in &f.ex.copying_pairs {
            assert!(index.decision(p).is_copying());
        }
    }

    /// Example 3.6: INDEX considers 26 pairs, examines 51 shared values and
    /// performs 51·2 + 26·2 = 154 computations, versus PAIRWISE's
    /// 181·2 = 362 score computations on this data.
    #[test]
    fn example_3_6_computation_counts() {
        let f = Fixture::new();
        let result = index_detection(&f.input());
        assert_eq!(result.pairs_considered, 26);
        assert_eq!(result.shared_values_examined, 51);
        assert_eq!(result.counter.score_updates, 51 * 2);
        assert_eq!(result.counter.pair_finalizations, 26 * 2);
        assert_eq!(result.computations(), 154);
        let pairwise = pairwise_detection(&f.input());
        assert!(result.computations() < pairwise.computations());
    }

    /// Example 4.2: BOUND concludes copying for (S2, S3) after observing only
    /// 2 of their 4 shared values, and concludes no-copying for (S0, S1)
    /// after 3 of 4.
    #[test]
    fn example_4_2_early_termination() {
        let f = Fixture::new();
        let (index, _) = build_index(&f.input());
        let out = index_scan(
            &f.input(),
            &index,
            &IndexScanConfig { track_records: true, ..IndexScanConfig::bound(false) },
            "BOUND",
        );
        let records = out.records.unwrap();
        let r23 = records.pairs[&pair(2, 3)];
        assert_eq!(r23.decision, CopyDecision::Copying);
        assert!(r23.decided_by_bounds);
        assert_eq!(r23.shared_before_decision, 2, "copying concluded after 2 shared values");
        let r01 = records.pairs[&pair(0, 1)];
        assert_eq!(r01.decision, CopyDecision::NoCopying);
        assert!(r01.decided_by_bounds);
        assert_eq!(r01.shared_before_decision, 3, "no-copying concluded after 3 shared values");
        // BOUND examines fewer shared values than INDEX overall
        // (the paper reports 33 vs 51).
        let index_result = index_detection(&f.input());
        assert!(out.result.shared_values_examined < index_result.shared_values_examined);
        assert_eq!(out.result.pairs_considered, 26);
    }

    /// BOUND / BOUND+ / HYBRID agree with PAIRWISE on the motivating example
    /// (the paper accepts small deviations in general; here there are none).
    #[test]
    fn bounded_variants_match_pairwise_here() {
        let f = Fixture::new();
        let expected: std::collections::BTreeSet<_> =
            pairwise_detection(&f.input()).copying_pairs().collect();
        for result in [
            bound_detection(&f.input(), false),
            bound_detection(&f.input(), true),
            hybrid_detection(&f.input(), 16),
            hybrid_detection(&f.input(), 0),
            hybrid_detection(&f.input(), u32::MAX),
        ] {
            let got: std::collections::BTreeSet<_> = result.copying_pairs().collect();
            assert_eq!(got, expected, "{} disagrees with PAIRWISE", result.algorithm);
        }
    }

    /// BOUND+ performs at most as many bound evaluations as BOUND.
    #[test]
    fn lazy_bounds_reduce_bound_computations() {
        let f = Fixture::new();
        let eager = bound_detection(&f.input(), false);
        let lazy = bound_detection(&f.input(), true);
        assert!(lazy.counter.bound_computations <= eager.counter.bound_computations);
        assert_eq!(
            eager.copying_pairs().collect::<std::collections::BTreeSet<_>>(),
            lazy.copying_pairs().collect::<std::collections::BTreeSet<_>>()
        );
    }

    /// HYBRID with threshold u32::MAX degenerates to INDEX and with 0 to
    /// BOUND+, computation-wise.
    #[test]
    fn hybrid_extremes_match_components() {
        let f = Fixture::new();
        let as_index = hybrid_detection(&f.input(), u32::MAX);
        let index = index_detection(&f.input());
        assert_eq!(as_index.counter.score_updates, index.counter.score_updates);
        assert_eq!(as_index.counter.bound_computations, 0);
        let as_bound = hybrid_detection(&f.input(), 0);
        let bound_plus = bound_detection(&f.input(), true);
        assert_eq!(as_bound.counter.score_updates, bound_plus.counter.score_updates);
        assert_eq!(as_bound.counter.bound_computations, bound_plus.counter.bound_computations);
    }

    /// All entry orderings produce the same INDEX decisions (they only change
    /// how fast evidence accumulates), and the detectors expose them.
    #[test]
    fn orderings_do_not_change_index_decisions() {
        let f = Fixture::new();
        let expected: std::collections::BTreeSet<_> =
            index_detection(&f.input()).copying_pairs().collect();
        for ordering in [
            EntryOrdering::ByProvider,
            EntryOrdering::Random { seed: 11 },
            EntryOrdering::Random { seed: 99 },
        ] {
            let mut detector = IndexDetector { ordering };
            let result = detector.detect_round(&f.input(), 1);
            let got: std::collections::BTreeSet<_> = result.copying_pairs().collect();
            assert_eq!(got, expected, "ordering {ordering:?}");
        }
    }

    /// The detector wrappers report their names and run.
    #[test]
    fn detector_wrappers() {
        let f = Fixture::new();
        let input = f.input();
        let mut detectors: Vec<Box<dyn CopyDetector>> = vec![
            Box::new(IndexDetector::new()),
            Box::new(BoundDetector::eager()),
            Box::new(BoundDetector::lazy()),
            Box::new(HybridDetector::new()),
            Box::new(HybridDetector::with_threshold(4)),
        ];
        let names: Vec<&str> = detectors.iter().map(|d| d.name()).collect();
        assert_eq!(names, vec!["INDEX", "BOUND", "BOUND+", "HYBRID", "HYBRID"]);
        for d in detectors.iter_mut() {
            let r = d.detect_round(&input, 1);
            assert_eq!(r.num_copying_pairs(), 6, "{} finds the 6 planted pairs", d.name());
            assert!(r.index_build_time > std::time::Duration::ZERO);
        }
    }

    /// Scan records carry the preparation-step bookkeeping INCREMENTAL needs:
    /// Ĉ lies between Cmin at decision and the exact score.
    #[test]
    fn records_chat_between_cmin_and_exact() {
        let f = Fixture::new();
        let (index, _) = build_index(&f.input());
        let out = index_scan(
            &f.input(),
            &index,
            &IndexScanConfig { track_records: true, ..IndexScanConfig::hybrid(0) },
            "HYBRID",
        );
        let records = out.records.unwrap();
        assert_eq!(records.order_keys.len(), index.len());
        let ctx = f.input().scoring_context();
        for (&p, rec) in &records.pairs {
            if rec.decision == CopyDecision::Copying && rec.decided_by_bounds {
                let exact = ctx.score_pair(p.first(), p.second());
                assert!(rec.c_hat_to <= exact.c_to + 1e-9, "Ĉ→ exceeds exact C→ for {p}");
                assert!(rec.c_hat_from <= exact.c_from + 1e-9);
                // Ĉ is at least Cmin at decision (the lift removes a
                // negative penalty).
                assert!(rec.shared_before_decision + rec.shared_after_decision <= rec.shared_items);
            }
        }
    }
}
