//! Top-k copier queries with admissible upper-bound pruning.
//!
//! The paper's serving question is narrow — "who are the k most likely
//! copiers of source X?" — yet a full detection round scores *every* pair
//! that shares at least one item. This module answers the narrow question
//! from the incrementally maintained per-shard indexes instead:
//!
//! 1. Each shard contributes a **sorted candidate list**: every pair its
//!    [`SharedItemCounts`](copydet_index) index says shares ≥ 1 item
//!    (optionally restricted to pairs containing the query source), scored
//!    by `shared_count × C_max` — an admissible upper bound on the shard's
//!    contribution to the pair's Bayesian evidence (see
//!    [`pair_score_upper_bound`]).
//! 2. The lists feed Fagin's NRA ([`NoRandomAccess`]) — sequential access
//!    only, exactly what a sorted index provides — which narrows the fleet
//!    to a candidate frontier without touching any claim data.
//! 3. Only frontier survivors are scored **exactly** (the caller supplies
//!    the evaluator, which must reproduce the full round's float sequence),
//!    and a posterior-space stopping test decides when no unevaluated pair
//!    can still enter the answer.
//!
//! The correctness bar is *bit-identity*: the ranked answer must equal the
//! top-k extracted from a full [`detect_round`](crate) — same pairs, same
//! posteriors to the last bit, same deterministic tie order — while
//! evaluating a fraction of the pairs.
//!
//! # Why the bound is admissible
//!
//! A pair's evidence in either direction is a sum of per-shared-item
//! contributions. A different-value observation contributes
//! `ln(1 − s) < 0`; a same-value observation with vote probability `p`
//! contributes `same_value_score(p, a_c, a_o) ≥ 0` (the numerator
//! dominates the denominator for every admissible accuracy). Both the
//! numerator and denominator of the score's inner ratio are linear in `p`,
//! so the ratio is a Möbius transform of `p` with no pole inside `[0, 1]`
//! (the denominator is positive at both endpoints and linear): the ratio —
//! and hence the log — is monotone in `p` and attains its supremum at an
//! endpoint, `p = 0` or `p = 1`. Maximizing over both endpoints *and both
//! orientations* of the pair yields a per-item constant `C_max` with
//! `contribution ≤ C_max` for every observation, every direction. Summing:
//! `evidence ≤ shared_count × C_max` per shard, and the NRA aggregate
//! (sum over shards) bounds the pair's total evidence in both directions.
//! A small multiplicative slack absorbs floating-point accumulation error
//! so the float-computed bound still dominates the float-computed evidence.
//!
//! Because [`posterior_independence`] is monotone *decreasing* in each
//! evidence direction, an upper bound `U` on both directions is a lower
//! bound `posterior_independence(U, U)` on the pair's posterior — pairs
//! whose best possible posterior is strictly worse (higher) than the k-th
//! best evaluated posterior can never enter the top-k and are pruned
//! without materializing evidence.

use crate::result::PairOutcome;
use copydet_bayes::contribution::same_value_score;
use copydet_bayes::{posterior_independence, CopyParams};
use copydet_model::codec::usize_to_u64;
use copydet_model::{SourceId, SourcePair};
use copydet_nra::{NoRandomAccess, SortedList};
use std::collections::BTreeMap;

/// Multiplicative slack applied to every candidate upper bound.
///
/// The exact evidence is accumulated in floating point over at most a few
/// million terms; each term is itself a float evaluation of the same
/// closed form the bound maximizes. Relative rounding error is therefore
/// on the order of `count × ε ≈ 1e-10` — a `1e-6` relative slack dominates
/// it by four orders of magnitude while loosening the bound negligibly.
const UPPER_BOUND_SLACK: f64 = 1.0 + 1e-6;

/// Admissible per-shared-item upper bound on a pair's evidence
/// contribution, in either direction.
///
/// Maximizes [`same_value_score`] over the endpoints `p ∈ {0, 1}` (the
/// score is a monotone Möbius function of the vote probability, so its
/// supremum on `[0, 1]` is at an endpoint — see the module docs) and over
/// both orientations of the pair, then applies [`UPPER_BOUND_SLACK`].
/// Different-value observations contribute `ln(1 − s) < 0` and are bounded
/// by `0 ≤ C_max` a fortiori.
pub fn pair_score_upper_bound(a_first: f64, a_second: f64, params: &CopyParams) -> f64 {
    let mut best = 0.0_f64;
    for p in [0.0, 1.0] {
        for (a_copier, a_original) in [(a_first, a_second), (a_second, a_first)] {
            let score = same_value_score(p, a_copier, a_original, params);
            if score > best {
                best = score;
            }
        }
    }
    best * UPPER_BOUND_SLACK
}

/// Builds one shard's sorted candidate list from its nonzero shared-item
/// count entries (already mapped to *global* pair ids).
///
/// Pairs not containing `target` are dropped when a target source is given
/// (the per-source query); `upper_bound` supplies the per-item bound —
/// typically [`pair_score_upper_bound`] of the pair's accuracies — and the
/// list entry score is `count × bound`, the shard's admissible
/// contribution to the pair's NRA aggregate.
pub fn shard_candidate_list(
    counts: impl IntoIterator<Item = (SourcePair, u32)>,
    target: Option<SourceId>,
    mut upper_bound: impl FnMut(SourcePair) -> f64,
) -> SortedList<SourcePair> {
    let scored = counts.into_iter().filter_map(|(pair, count)| {
        if count == 0 {
            return None;
        }
        if let Some(t) = target {
            if pair.first() != t && pair.second() != t {
                return None;
            }
        }
        Some((pair, f64::from(count) * upper_bound(pair)))
    });
    SortedList::from_pairs(scored)
}

/// Work counters of one top-k query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TopKStats {
    /// Distinct pairs appearing in at least one shard's candidate list —
    /// the full-round evaluation universe for this query.
    pub candidates: u64,
    /// Pairs whose exact evidence was materialized and folded.
    pub evaluated: u64,
    /// `candidates − evaluated`: pairs ruled out by the bound alone.
    pub pruned: u64,
    /// `(pair, score)` entries read from the sorted lists by the deepest
    /// NRA pass.
    pub entries_read: u64,
    /// NRA passes run (the frontier doubles until the answer is certain).
    pub rounds: u64,
    /// Whether the final pass stopped on the pruning bound (`true`) or by
    /// exhausting every candidate (`false` — exact either way).
    pub converged: bool,
}

/// A ranked top-k answer plus its work counters.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKResult {
    /// At most `k` pairs, most suspicious first: ascending posterior, ties
    /// broken by ascending pair id — the same order a full round's top-k
    /// extraction yields.
    pub ranked: Vec<(SourcePair, PairOutcome)>,
    /// Work counters for observability and acceptance checks.
    pub stats: TopKStats,
}

/// Posterior used for ranking; the evaluator always populates it, but a
/// missing value ranks last (least suspicious) rather than panicking.
fn ranking_posterior(outcome: &PairOutcome) -> f64 {
    outcome.posterior.unwrap_or(1.0)
}

/// Runs the pruned top-k query over per-shard candidate lists.
///
/// `evaluate` materializes one pair's exact evidence (bit-identical to the
/// full round's fold); it is called at most once per pair. The answer is
/// exact: every pair the full round would rank in its top-k is evaluated,
/// and the stopping test only fires when no unevaluated pair can beat the
/// current k-th best posterior *strictly* — equal-posterior ties are
/// impossible across the pruning boundary, so the deterministic
/// by-pair-id tie order of the full round is preserved.
pub fn topk_with_pruning(
    lists: Vec<SortedList<SourcePair>>,
    k: usize,
    params: &CopyParams,
    mut evaluate: impl FnMut(SourcePair) -> PairOutcome,
) -> TopKResult {
    let candidates = {
        let mut distinct = std::collections::BTreeSet::new();
        for list in &lists {
            for entry in list.entries() {
                distinct.insert(entry.key);
            }
        }
        usize_to_u64(distinct.len())
    };
    let mut stats = TopKStats { candidates, ..TopKStats::default() };
    if k == 0 || candidates == 0 {
        stats.pruned = candidates;
        stats.converged = true;
        return TopKResult { ranked: Vec::new(), stats };
    }

    let nra = NoRandomAccess::new(lists);
    // Exact outcomes already materialized, keyed deterministically.
    let mut cache: BTreeMap<SourcePair, PairOutcome> = BTreeMap::new();
    let mut frontier_k = k;
    loop {
        stats.rounds = stats.rounds.saturating_add(1);
        let out = nra.top_k(frontier_k);
        stats.entries_read = usize_to_u64(out.entries_read);
        // Score every frontier member exactly (once each, ever).
        for result in &out.top_k {
            cache.entry(result.key).or_insert_with(|| evaluate(result.key));
        }
        // Rank all evaluated pairs: ascending posterior (most suspicious
        // first), ties by ascending pair id — matching a full round's
        // deterministic extraction order.
        let mut ranked: Vec<(SourcePair, PairOutcome)> =
            cache.iter().map(|(&pair, &outcome)| (pair, outcome)).collect();
        ranked.sort_by(|a, b| {
            ranking_posterior(&a.1).total_cmp(&ranking_posterior(&b.1)).then_with(|| a.0.cmp(&b.0))
        });

        // The frontier covered every candidate: the ranking is exhaustive
        // and therefore exact.
        let exhausted =
            out.top_k.len() < frontier_k || usize_to_u64(cache.len()) >= stats.candidates;
        // Pruning test. Every candidate outside the NRA frontier has an
        // aggregate upper bound at most `floor` (the k'-th largest lower
        // bound when converged; its exact aggregate when the lists were
        // exhausted), so its evidence in *each* direction is at most
        // `floor` and its posterior at least `posterior(floor, floor)`.
        // If that best case is still strictly worse (higher) than the
        // k-th best evaluated posterior, no unevaluated pair can enter
        // the answer — strictness means ties across the boundary cannot
        // occur, so the by-pair-id tie order stays exact.
        let certain = match (ranked.get(k.saturating_sub(1)), out.top_k.last()) {
            (Some((_, kth)), Some(floor_entry)) if !exhausted => {
                let floor = floor_entry.lower.max(0.0);
                posterior_independence(floor, floor, params) > ranking_posterior(kth)
            }
            _ => false,
        };
        if exhausted || certain {
            stats.evaluated = usize_to_u64(cache.len());
            stats.pruned = stats.candidates.saturating_sub(stats.evaluated);
            stats.converged = !exhausted;
            ranked.truncate(k);
            return TopKResult { ranked, stats };
        }
        frontier_k = frontier_k.saturating_mul(2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copydet_bayes::CopyDecision;

    fn params() -> CopyParams {
        CopyParams::default()
    }

    fn outcome(posterior: f64) -> PairOutcome {
        PairOutcome {
            decision: CopyDecision::from_posterior(posterior),
            posterior: Some(posterior),
            c_to: 0.0,
            c_from: 0.0,
        }
    }

    fn pair(a: u32, b: u32) -> SourcePair {
        SourcePair::new(SourceId::new(a), SourceId::new(b))
    }

    #[test]
    fn upper_bound_dominates_every_score_sample() {
        let p = params();
        let bound = pair_score_upper_bound(0.8, 0.8, &p);
        assert!(bound > 0.0);
        for i in 0..=100 {
            let vote = f64::from(i) / 100.0;
            let score = same_value_score(vote, 0.8, 0.8, &p);
            assert!(score <= bound, "score {score} exceeds bound {bound} at p={vote}");
        }
        // Different-value contributions are negative, trivially below.
        assert!(copydet_bayes::contribution::different_value_score(&p) < 0.0);
    }

    #[test]
    fn candidate_list_filters_by_target_and_zero_counts() {
        let entries = vec![(pair(0, 1), 3_u32), (pair(0, 2), 0), (pair(1, 2), 5), (pair(0, 3), 1)];
        let list = shard_candidate_list(entries, Some(SourceId::new(0)), |_| 1.0);
        let keys: Vec<SourcePair> = list.entries().iter().map(|e| e.key).collect();
        assert_eq!(keys, vec![pair(0, 1), pair(0, 3)]);
        // Scores are count × bound, sorted descending.
        assert_eq!(list.entries()[0].score, 3.0);
        assert_eq!(list.entries()[1].score, 1.0);
    }

    #[test]
    fn k_zero_or_no_candidates_short_circuits() {
        let p = params();
        let out = topk_with_pruning(vec![], 5, &p, |_| unreachable!("no candidates"));
        assert!(out.ranked.is_empty());
        assert_eq!(out.stats.candidates, 0);
        let list = shard_candidate_list([(pair(0, 1), 2_u32)], None, |_| 1.0);
        let out = topk_with_pruning(vec![list], 0, &p, |_| unreachable!("k = 0"));
        assert!(out.ranked.is_empty());
        assert_eq!(out.stats.candidates, 1);
        assert_eq!(out.stats.pruned, 1);
    }

    #[test]
    fn prunes_weak_candidates_without_evaluating_them() {
        let p = params();
        let bound = pair_score_upper_bound(0.8, 0.8, &p);
        // One dominant pair (large shared count) plus many weak ones. The
        // dominant pair evaluates to a damning posterior; the weak pairs'
        // best possible posterior is far higher, so they are pruned.
        let mut entries = vec![(pair(0, 1), 1000_u32)];
        for other in 2..40_u32 {
            entries.push((pair(0, other), 1));
        }
        let list = shard_candidate_list(entries, Some(SourceId::new(0)), |_| bound);
        let mut evaluated = Vec::new();
        let out = topk_with_pruning(vec![list], 1, &p, |pr| {
            evaluated.push(pr);
            // Dominant pair: overwhelming copying evidence.
            if pr == pair(0, 1) {
                outcome(1e-9)
            } else {
                outcome(0.95)
            }
        });
        assert_eq!(out.ranked.len(), 1);
        assert_eq!(out.ranked[0].0, pair(0, 1));
        assert!(out.stats.converged, "should stop on the bound, not exhaustion");
        assert!(
            out.stats.evaluated < out.stats.candidates,
            "evaluated {} of {} candidates",
            out.stats.evaluated,
            out.stats.candidates
        );
        assert_eq!(out.stats.pruned, out.stats.candidates - out.stats.evaluated);
        assert_eq!(u64::try_from(evaluated.len()).unwrap(), out.stats.evaluated);
    }

    #[test]
    fn exhaustion_returns_exact_ranking_with_pair_tiebreak() {
        let p = params();
        // All candidates tie on posterior: the ranking must fall back to
        // ascending pair id, exactly like a full round's extraction.
        let entries: Vec<(SourcePair, u32)> = (1..6_u32).map(|other| (pair(0, other), 2)).collect();
        let list = shard_candidate_list(entries, None, |_| 1.0);
        let out = topk_with_pruning(vec![list], 3, &p, |_| outcome(0.5));
        let keys: Vec<SourcePair> = out.ranked.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![pair(0, 1), pair(0, 2), pair(0, 3)]);
        assert!(!out.stats.converged);
        assert_eq!(out.stats.evaluated, 5);
        assert_eq!(out.stats.pruned, 0);
    }

    #[test]
    fn multi_shard_aggregates_bound_across_lists() {
        let p = params();
        let bound = pair_score_upper_bound(0.8, 0.8, &p);
        // The same pair appears in two shards; its aggregate bound is the
        // sum. A competitor appears in one shard with a larger single-shard
        // count but smaller aggregate.
        let shard_a =
            shard_candidate_list([(pair(0, 1), 600_u32), (pair(0, 2), 700)], None, |_| bound);
        let shard_b = shard_candidate_list([(pair(0, 1), 600_u32)], None, |_| bound);
        let out = topk_with_pruning(vec![shard_a, shard_b], 1, &p, |pr| {
            if pr == pair(0, 1) {
                outcome(1e-12)
            } else {
                outcome(0.9)
            }
        });
        assert_eq!(out.ranked[0].0, pair(0, 1));
        assert_eq!(out.stats.candidates, 2);
    }
}
