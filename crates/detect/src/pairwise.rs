//! PAIRWISE — the exhaustive baseline of Dong et al. (Section II-B).
//!
//! For every pair of sources, every shared data item's contribution is
//! computed and accumulated, then the posterior of Eq. 2 decides copying.
//! Complexity `O(|D|·|S|²)` per round.

use crate::api::{CopyDetector, RoundInput};
use crate::result::{DetectionResult, PairOutcome};
use copydet_bayes::CopyDecision;
use copydet_model::SourcePair;
use std::time::Instant;

/// Runs one round of exhaustive pairwise copy detection.
///
/// Pairs that share no data item are not materialized in the result (their
/// posterior is the prior and the decision is always no-copying), matching
/// how the other algorithms report results.
pub fn pairwise_detection(input: &RoundInput<'_>) -> DetectionResult {
    let start = Instant::now();
    let ctx = input.scoring_context();
    let mut result = DetectionResult::new("PAIRWISE");
    let sources: Vec<_> = input.dataset.sources().collect();
    for (i, &s1) in sources.iter().enumerate() {
        for &s2 in &sources[i + 1..] {
            let evidence = ctx.score_pair(s1, s2);
            let shared_items = evidence.shared_items();
            if shared_items == 0 {
                continue;
            }
            // Two directional score evaluations per shared item (the paper's
            // "183 × 2" accounting for the motivating example).
            result.counter.score_updates += 2 * shared_items as u64;
            result.shared_values_examined += evidence.shared_values as u64;
            let posterior = evidence.posterior_independence(&input.params);
            result.counter.pair_finalizations += 1;
            result.pairs_considered += 1;
            result.outcomes.insert(
                SourcePair::new(s1, s2),
                PairOutcome {
                    decision: CopyDecision::from_posterior(posterior),
                    posterior: Some(posterior),
                    c_to: evidence.c_to,
                    c_from: evidence.c_from,
                },
            );
        }
    }
    result.detection_time = start.elapsed();
    result
}

/// The PAIRWISE baseline as a reusable detector.
#[derive(Debug, Clone, Copy, Default)]
pub struct PairwiseDetector;

impl PairwiseDetector {
    /// Creates the detector.
    pub fn new() -> Self {
        Self
    }
}

impl CopyDetector for PairwiseDetector {
    fn name(&self) -> &'static str {
        "PAIRWISE"
    }

    fn detect_round(&mut self, input: &RoundInput<'_>, _round: usize) -> DetectionResult {
        pairwise_detection(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use copydet_bayes::{CopyParams, SourceAccuracies, ValueProbabilities};
    use copydet_model::{motivating_example, SourceId};

    fn run() -> (copydet_model::MotivatingExample, DetectionResult) {
        let ex = motivating_example();
        let acc = SourceAccuracies::from_vec(ex.accuracies.clone()).unwrap();
        let probs = ValueProbabilities::from_table(ex.probability_table()).unwrap();
        let input = RoundInput::new(&ex.dataset, &acc, &probs, CopyParams::paper_defaults());
        let result = pairwise_detection(&input);
        (ex, result)
    }

    #[test]
    fn detects_planted_cliques_and_nothing_else() {
        let (ex, result) = run();
        let mut copying: Vec<_> = result.copying_pairs().collect();
        copying.sort();
        let mut expected = ex.copying_pairs.clone();
        expected.sort();
        assert_eq!(copying, expected);
    }

    /// Every one of the 45 pairs shares at least one item (everyone provides
    /// TX), so all of them are materialized, and the computation count is
    /// 2 × 181 shared items + one posterior per pair.
    #[test]
    fn computation_accounting() {
        let (_, result) = run();
        assert_eq!(result.pairs_considered, 45);
        assert_eq!(result.counter.score_updates, 2 * 181);
        assert_eq!(result.counter.pair_finalizations, 45);
        assert_eq!(result.outcomes.len(), 45);
    }

    #[test]
    fn posteriors_match_worked_example() {
        let (_, result) = run();
        let p23 = result.outcomes[&SourcePair::new(SourceId::new(2), SourceId::new(3))];
        assert!(p23.posterior.unwrap() < 1e-4);
        let p01 = result.outcomes[&SourcePair::new(SourceId::new(0), SourceId::new(1))];
        assert!((p01.posterior.unwrap() - 0.79).abs() < 0.02);
    }

    #[test]
    fn detector_trait_roundtrip() {
        let ex = motivating_example();
        let acc = SourceAccuracies::from_vec(ex.accuracies.clone()).unwrap();
        let probs = ValueProbabilities::from_table(ex.probability_table()).unwrap();
        let input = RoundInput::new(&ex.dataset, &acc, &probs, CopyParams::paper_defaults());
        let mut d = PairwiseDetector::new();
        assert_eq!(d.name(), "PAIRWISE");
        let r1 = d.detect_round(&input, 1);
        let r2 = d.detect_round(&input, 2);
        assert_eq!(r1.num_copying_pairs(), r2.num_copying_pairs());
    }
}
