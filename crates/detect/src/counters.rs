//! Computation accounting shared by every detection algorithm.
//!
//! The paper measures efficiency both in wall-clock time and in the "number
//! of computations" an algorithm performs (Figure 2, Examples 3.6 / 4.2 /
//! 5.4). We use one explicit convention across all algorithms so the counts
//! are comparable:
//!
//! * **score updates** — every directional contribution-score evaluation
//!   counts 1 (so folding one shared item or value into both `C→` and `C←`
//!   counts 2, exactly like the paper's `183 × 2` for PAIRWISE and `51 × 2`
//!   for INDEX on the motivating example);
//! * **bound computations** — every evaluation of a `Cmin`/`Cmax` pair of
//!   bounds (both directions at once) counts 1;
//! * **pair finalizations** — per pair finalized after the scan, the bulk
//!   different-value adjustment counts 1 and the posterior evaluation counts
//!   1 (the paper's "2 additional computations for each pair of sources on
//!   different values").

use serde::{Deserialize, Serialize};
use std::ops::AddAssign;

/// Counters for the amount of arithmetic a detection run performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ComputationCounter {
    /// Directional contribution-score evaluations.
    pub score_updates: u64,
    /// `Cmin`/`Cmax` bound evaluations (one per direction pair).
    pub bound_computations: u64,
    /// Per-pair finalization steps (bulk different-value adjustment,
    /// posterior evaluation).
    pub pair_finalizations: u64,
    /// Entries or claims touched while generating auxiliary inputs
    /// (e.g. FAGININPUT's list construction, sampling overhead).
    pub auxiliary: u64,
}

impl ComputationCounter {
    /// A counter with everything at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of computations.
    pub fn total(&self) -> u64 {
        self.score_updates + self.bound_computations + self.pair_finalizations + self.auxiliary
    }
}

impl AddAssign for ComputationCounter {
    fn add_assign(&mut self, rhs: Self) {
        self.score_updates += rhs.score_updates;
        self.bound_computations += rhs.bound_computations;
        self.pair_finalizations += rhs.pair_finalizations;
        self.auxiliary += rhs.auxiliary;
    }
}

impl std::fmt::Display for ComputationCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} computations ({} score updates, {} bound evaluations, {} finalizations, {} auxiliary)",
            self.total(),
            self.score_updates,
            self.bound_computations,
            self.pair_finalizations,
            self.auxiliary
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_all_categories() {
        let c = ComputationCounter {
            score_updates: 10,
            bound_computations: 3,
            pair_finalizations: 2,
            auxiliary: 1,
        };
        assert_eq!(c.total(), 16);
        assert!(c.to_string().contains("16 computations"));
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = ComputationCounter { score_updates: 1, ..Default::default() };
        let b =
            ComputationCounter { score_updates: 2, bound_computations: 5, ..Default::default() };
        a += b;
        assert_eq!(a.score_updates, 3);
        assert_eq!(a.bound_computations, 5);
        assert_eq!(ComputationCounter::new().total(), 0);
    }
}
